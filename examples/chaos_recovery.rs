//! Chaos-recovery demo: supervised distributed training under a seeded,
//! fully reproducible fault plan.
//!
//! ```text
//! cargo run --release --example chaos_recovery -- [seed] [steps]
//! ```
//!
//! A [`FaultPlan`] is generated from the seed (worker crashes, parameter-
//! server stalls, network drops/tampering, checkpoint corruption, CAS
//! outages) and a [`Supervisor`] heals the cluster through it: heartbeat
//! probes over authenticated channels, CAS re-attested respawns with
//! bounded backoff, and rollback to the last sealed checkpoint. The same
//! seed always prints the same schedule digest and the same final loss.

use securetf_distrib::cluster::{Cluster, ClusterConfig};
use securetf_distrib::faults::FaultPlan;
use securetf_distrib::supervisor::{Supervisor, SupervisorConfig};
use securetf_distrib::trainer::DistributedTrainer;
use securetf_shield::fs::UntrustedStore;
use securetf_tee::ExecutionMode;
use securetf_tensor::layers;

const WORKERS: usize = 3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let seed: u64 = match args.next() {
        Some(s) => s
            .parse()
            .map_err(|_| format!("seed must be a u64, got '{s}'"))?,
        None => 42,
    };
    let steps: u64 = match args.next() {
        Some(s) => s
            .parse()
            .map_err(|_| format!("steps must be a u64, got '{s}'"))?,
        None => 10,
    };

    let plan = FaultPlan::generate(seed, steps, WORKERS);
    println!("fault plan: seed={seed} events={} digest={:#018x}", plan.len(), plan.schedule_digest());
    for step in 0..steps {
        let events = plan.events_at(step);
        if !events.is_empty() {
            println!("  step {step:>3}: {events:?}");
        }
    }

    let cluster = Cluster::new(ClusterConfig {
        workers: WORKERS,
        parameter_servers: 1,
        mode: ExecutionMode::Simulation,
        network_shield: true,
        runtime_bytes: 8 * 1024 * 1024,
        heap_bytes: 16 * 1024 * 1024,
        ..ClusterConfig::default()
    })?;
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
    let model = layers::mlp_classifier(784, &[32], 10, &mut rng)?;
    let data = securetf_data::synthetic_mnist(300, 5);
    let trainer = DistributedTrainer::new(cluster, model, data, 100, 0.2)?;

    let mut supervisor = Supervisor::new(
        trainer,
        plan,
        SupervisorConfig::default(),
        UntrustedStore::new(),
    )?;
    let report = supervisor.train_steps(steps)?;
    let stats = supervisor.stats();

    println!();
    println!("training survived:");
    println!("  steps              {}", report.steps);
    println!("  samples            {}", report.samples);
    println!("  final loss         {:.6} (bits {:#010x})", report.final_loss, report.final_loss.to_bits());
    println!("  virtual time       {:.3} ms", report.elapsed_ns as f64 / 1e6);
    println!();
    println!("supervisor stats:");
    println!("  faults injected    {}", stats.faults_injected);
    println!("  heartbeats         {} ({} missed, {} tampered)", stats.heartbeats, stats.missed_heartbeats, stats.tampered_heartbeats);
    println!("  respawns           {}", stats.respawns);
    println!("  rollbacks          {}", stats.rollbacks);
    println!("  checkpoints        {} ({} fallbacks)", stats.checkpoints, stats.checkpoint_fallbacks);
    println!("  supervision time   {:.3} ms", stats.supervision_ns as f64 / 1e6);
    Ok(())
}
