//! Challenge ❹: elastic and fault-tolerant computing.
//!
//! Public clouds spawn and kill containers constantly; every new secure
//! container must attest before it may join. With the traditional IAS
//! flow each join costs a WAN round trip (~325 ms); with CAS it is a
//! local operation (~17 ms), making elastic scaling practical. This
//! example scales a training cluster from 1 to 4 workers mid-run, kills
//! one, and lets the runtime respawn + re-attest it.
//!
//! Run with: `cargo run --release --example elastic_scaling`

use rand::SeedableRng;
use securetf_distrib::cluster::{Cluster, ClusterConfig};
use securetf_distrib::trainer::DistributedTrainer;
use securetf_tee::ExecutionMode;
use securetf_tensor::layers;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = Cluster::new(ClusterConfig {
        workers: 1,
        parameter_servers: 1,
        mode: ExecutionMode::Hardware,
        network_shield: true,
        runtime_bytes: 8 * 1024 * 1024,
        heap_bytes: 32 * 1024 * 1024,
        ..ClusterConfig::default()
    })?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let model = layers::mlp_classifier(784, &[48], 10, &mut rng)?;
    let data = securetf_data::synthetic_mnist(600, 12);
    let mut trainer = DistributedTrainer::new(cluster, model, data, 100, 0.05)?;

    println!("phase 1: training with 1 worker…");
    let r1 = trainer.train_steps(5)?;
    println!(
        "  loss {:.3}, throughput {:.0} samples/s (virtual)",
        r1.final_loss,
        r1.samples_per_sec()
    );

    println!("phase 2: load spike — elastically adding 3 attested workers…");
    let attest_before = trainer.cluster().attestation_ns();
    for _ in 0..3 {
        let idx = trainer.cluster_mut().add_worker()?;
        println!("  worker {idx} joined (attested via CAS)");
    }
    let attest_cost = trainer.cluster().attestation_ns() - attest_before;
    println!(
        "  total attestation cost for 3 joins: {:.1} ms (IAS would need ~{} ms)",
        attest_cost as f64 / 1e6,
        3 * 325
    );
    let r2 = trainer.train_steps(5)?;
    println!(
        "  loss {:.3}, throughput {:.0} samples/s",
        r2.final_loss,
        r2.samples_per_sec()
    );

    println!("phase 3: machine failure — worker 2 dies mid-training…");
    trainer.cluster_mut().fail_worker(2)?;
    let loss = trainer.step()?;
    println!(
        "  training continued with {} live workers, loss {:.3}",
        trainer.cluster().live_workers().len(),
        loss
    );

    println!("phase 4: orchestrator respawns worker 2 (fresh enclave, re-attested)…");
    trainer.cluster_mut().respawn_worker(2)?;
    let loss = trainer.step()?;
    println!(
        "  back to {} workers, loss {:.3}",
        trainer.cluster().live_workers().len(),
        loss
    );

    let test = securetf_data::synthetic_mnist(200, 77);
    let acc = trainer.evaluate(&test)?;
    println!("final model accuracy: {:.1}%", acc * 100.0);
    println!(
        "attestations served by CAS in total: {}",
        trainer.cluster().attestations_served()
    );
    Ok(())
}
