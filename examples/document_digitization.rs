//! Paper §6.1: secure handwritten-document digitization.
//!
//! A company runs an inference service on a public cloud. Its customers
//! demand confidentiality of the document images they submit; the company
//! wants to protect its model (and code) from the cloud operator. The
//! deployment: the model is stored encrypted (file-system shield),
//! customers attest the service enclave before sending images over the
//! network shield's TLS-like channel.
//!
//! Run with: `cargo run --release --example document_digitization`

use rand::SeedableRng;
use securetf::deployment::Deployment;
use securetf::profile::RuntimeProfile;
use securetf::secure_session::SecureSession;
use securetf_shield::net::{duplex, Role, SecureChannel, Transport};
use securetf_tee::{EnclaveImage, ExecutionMode, Platform, Quote};
use securetf_tensor::layers;
use securetf_tensor::optimizer::Sgd;
use std::sync::Arc;

/// Spin-waiting transport so handshake halves can run on two threads.
struct Spin(securetf_shield::net::PipeEnd);

impl Transport for Spin {
    fn send(&self, m: Vec<u8>) {
        self.0.send(m);
    }

    fn recv(&self) -> Option<Vec<u8>> {
        for _ in 0..5_000_000 {
            if let Some(m) = self.0.recv() {
                return Some(m);
            }
            std::thread::yield_now();
        }
        None
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- The company trains its handwriting model (offline, trusted). ---
    println!("company: training the handwriting model…");
    let trainer_platform = Platform::builder().build();
    let trainer_enclave = trainer_platform.create_enclave(
        &EnclaveImage::builder().code(b"doc trainer").build(),
        ExecutionMode::Hardware,
    )?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(33);
    let model = layers::mlp_classifier(784, &[64], 10, &mut rng)?;
    let mut session = SecureSession::new(trainer_enclave, model);
    let data = securetf_data::synthetic_mnist(500, 3);
    let mut sgd = Sgd::new(0.05);
    for _ in 0..10 {
        for start in (0..500).step_by(100) {
            let (x, y) = data.batch(start, 100)?;
            session.train_step(x, y, &mut sgd)?;
        }
    }
    let lite = session.export_lite()?;

    // --- Deployment on the untrusted cloud. -----------------------------
    println!("company: publishing the encrypted model to the cloud…");
    let mut deployment = Deployment::new(ExecutionMode::Hardware);
    deployment.publish_model("digitize", "/cloud/model", &lite)?;
    // The cloud operator sees only ciphertext:
    let stored = deployment
        .store()
        .raw_contents("/cloud/model")
        .expect("stored");
    let plain = lite.to_bytes();
    assert!(!stored
        .windows(32)
        .any(|w| plain.windows(32).next() == Some(w)));
    println!("cloud operator: sees {} bytes of ciphertext only ✓", stored.len());

    let mut service =
        deployment.deploy_classifier("digitize", "/cloud/model", RuntimeProfile::scone_lite())?;
    println!(
        "service enclave: attested to CAS, model decrypted inside the enclave (measurement {})",
        service.enclave().measurement()
    );

    // --- A customer connects. -------------------------------------------
    // The customer verifies the service's quote (binding the channel
    // transcript) before sending any document image.
    let (client_end, server_end) = duplex(None);
    let service_enclave: Arc<_> = service.enclave().clone();
    let server = std::thread::spawn(move || {
        SecureChannel::handshake(Spin(server_end), service_enclave, Role::Responder)
    });
    // The customer-side "enclave" stands in for their TLS endpoint.
    let customer_platform = Platform::builder().build();
    let customer_endpoint = customer_platform.create_enclave(
        &EnclaveImage::builder().code(b"customer").build(),
        ExecutionMode::Simulation,
    )?;
    let mut client =
        SecureChannel::handshake(Spin(client_end), customer_endpoint, Role::Initiator)?;
    let mut server_channel = server.join().expect("join")?;

    // Service proves its identity over the channel.
    let quote: Quote = service
        .enclave()
        .quote(&server_channel.transcript_hash())?;
    assert_eq!(quote.report_data[..32], client.transcript_hash());
    customer_platform.verify_quote(&quote)?;
    println!("customer: service quote verified, channel bound to enclave ✓");

    // Customer sends 5 handwritten documents; only ciphertext crosses the
    // untrusted network.
    let documents = securetf_data::synthetic_mnist(5, 77);
    for i in 0..documents.len() {
        let (x, _) = documents.batch(i, 1)?;
        let bytes: Vec<u8> = x.data().iter().flat_map(|v| v.to_le_bytes()).collect();
        client.send(&bytes)?;
        let received = server_channel.recv()?;
        let pixels: Vec<f32> = received
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        let image = securetf_tensor::tensor::Tensor::from_vec(&[1, 784], pixels)?;
        let (digit, latency) = service.classify(&image)?;
        server_channel.send(&[digit as u8])?;
        let reply = client.recv()?;
        println!(
            "customer: document {i} digitized as '{}' (truth {}), {:.2} ms",
            reply[0],
            documents.label(i).expect("in range"),
            latency as f64 / 1e6
        );
    }
    println!("done: inputs, model and results never left enclaves unencrypted ✓");
    Ok(())
}
