//! Gateway serving demo: N clients with mixed deadlines multiplexed
//! through the secure inference gateway.
//!
//! ```text
//! cargo run --release --example gateway_serving -- [seed] [clients] [steps]
//! ```
//!
//! A seeded serving fault plan (request bursts, slow clients,
//! disconnects) drives traffic into the gateway, which coalesces
//! compatible requests into shape-keyed micro-batches, dispatches by
//! earliest deadline, fills batches fairly across tenants by deficit
//! round-robin, and sheds overload with retry hints. The same seed
//! always prints the same telemetry digest.

use securetf_distrib::faults::FaultPlan;
use securetf_gateway::chaos::run_chaos;
use securetf_gateway::GatewayConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let seed: u64 = match args.next() {
        Some(s) => s
            .parse()
            .map_err(|_| format!("seed must be a u64, got '{s}'"))?,
        None => 42,
    };
    let clients: usize = match args.next() {
        Some(s) => s
            .parse()
            .map_err(|_| format!("clients must be a usize, got '{s}'"))?,
        None => 5,
    };
    let steps: u64 = match args.next() {
        Some(s) => s
            .parse()
            .map_err(|_| format!("steps must be a u64, got '{s}'"))?,
        None => 40,
    };

    let plan = FaultPlan::generate_serving(seed, steps, clients);
    println!(
        "serving fault plan: seed={seed} events={} digest={:#018x}",
        plan.len(),
        plan.schedule_digest()
    );
    for step in 0..steps {
        let events = plan.events_at(step);
        if !events.is_empty() {
            println!("  step {step:>3}: {events:?}");
        }
    }

    let config = GatewayConfig::default();
    println!();
    println!(
        "gateway: max_batch={} batch_timeout={}us queue_capacity={} drr_quantum={}",
        config.max_batch,
        config.batch_timeout_ns / 1_000,
        config.queue_capacity,
        config.drr_quantum
    );
    let report = run_chaos(seed, clients, steps, config)?;

    println!();
    println!("served:");
    println!("  requests sent      {}", report.sent);
    println!("  labels             {}", report.label_count);
    println!("  errors             {}", report.error_count);
    println!("  unavailable        {}", report.unavailable_count);
    println!(
        "  exactly-once       {}",
        if report.answered_exactly_once() { "yes" } else { "NO" }
    );
    println!();
    println!("gateway stats:");
    println!("  admitted           {}", report.gateway.admitted);
    println!("  batches            {}", report.gateway.batches);
    println!("  largest batch      {}", report.gateway.largest_batch);
    println!("  shed               {}", report.gateway.shed);
    println!("  deadline misses    {}", report.gateway.deadline_misses);
    println!();
    println!("virtual-time span tree:");
    for line in report.span_tree.lines() {
        println!("  {line}");
    }
    println!();
    println!("metrics digest: {}", report.metrics_digest);
    Ok(())
}
