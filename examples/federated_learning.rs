//! Paper §6.2: secure federated learning for a medical use-case.
//!
//! Several hospitals jointly train a diagnosis model. Each hospital
//! trains locally on its private patients' data; only model parameters
//! are shared — and even those can leak training data, so the *global
//! aggregation* runs inside an attested enclave and every link is
//! protected. The hospitals attest the aggregator before uploading,
//! then push their parameters over a network-shield channel: each
//! variable is int8-quantized into its own wire frame and sealed as one
//! record (`send_vectored`), cutting upload bandwidth roughly 4x and
//! the aggregator's shield cost with it.
//!
//! Run with: `cargo run --release --example federated_learning`

use rand::SeedableRng;
use securetf::secure_session::SecureSession;
use securetf_distrib::federated::federated_average_chunked;
use securetf_distrib::wire::{self, Codec};
use securetf_shield::net::{duplex, PipeEnd, Role, SecureChannel, Transport};
use securetf_tee::{EnclaveImage, ExecutionMode, Platform};
use securetf_tensor::layers::{self, Classifier};
use securetf_tensor::optimizer::Sgd;

const HOSPITALS: usize = 3;
const ROUNDS: usize = 4;

fn fresh_model() -> Classifier {
    // All parties share the model architecture and the initial weights.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    layers::mlp_classifier(784, &[48], 10, &mut rng).expect("model")
}

/// `PipeEnd` is non-blocking, but the handshake needs the peer's first
/// message; retry briefly while the other side's thread catches up.
struct Patient(PipeEnd);

impl Transport for Patient {
    fn send(&self, message: Vec<u8>) {
        self.0.send(message);
    }
    fn recv(&self) -> Option<Vec<u8>> {
        for _ in 0..1_000_000 {
            if let Some(m) = self.0.recv() {
                return Some(m);
            }
            std::thread::yield_now();
        }
        None
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The global aggregation enclave, run by the consortium.
    let agg_platform = Platform::builder().build();
    let agg_image = EnclaveImage::builder()
        .code(b"federated-aggregator-v2")
        .name("aggregator")
        .build();
    let aggregator = agg_platform.create_enclave(&agg_image, ExecutionMode::Hardware)?;
    println!(
        "aggregator enclave started, measurement {}",
        aggregator.measurement()
    );

    // Each hospital: a private dataset, a local training enclave, and a
    // shielded channel to the aggregator.
    let mut hospitals = Vec::new();
    let mut agg_links = Vec::new();
    for h in 0..HOSPITALS {
        let platform = Platform::builder().build();
        let enclave = platform.create_enclave(
            &EnclaveImage::builder().code(b"hospital trainer v1").build(),
            ExecutionMode::Hardware,
        )?;
        // Every hospital attests the aggregator before participating.
        let quote = aggregator.quote(format!("fl-round-setup:{h}").as_bytes())?;
        platform.verify_quote(&quote)?;
        assert_eq!(quote.mrenclave, agg_image.measurement(), "wrong aggregator code");
        // Establish the network-shield channel (the aggregator side
        // answers the handshake concurrently).
        let (hospital_end, agg_end) = duplex(None);
        let agg_enclave = aggregator.clone();
        let responder = std::thread::spawn(move || {
            SecureChannel::handshake(Patient(agg_end), agg_enclave, Role::Responder)
        });
        let uplink =
            SecureChannel::handshake(Patient(hospital_end), enclave.clone(), Role::Initiator)?;
        let downlink = responder.join().expect("responder thread")?;
        assert_eq!(uplink.transcript_hash(), downlink.transcript_hash());
        println!("hospital {h}: aggregator attested, channel keyed ✓");
        let data = securetf_data::synthetic_mnist(300, 100 + h as u64);
        hospitals.push((SecureSession::new(enclave, fresh_model()), data, uplink));
        agg_links.push(downlink);
    }
    let test_set = securetf_data::synthetic_mnist(200, 999);

    let mut global_params: Option<Vec<u8>> = None;
    let mut quantized_bytes = 0u64;
    let mut dense_bytes = 0u64;
    for round in 0..ROUNDS {
        let mut uploads = Vec::new();
        for (h, (session, data, uplink)) in hospitals.iter_mut().enumerate() {
            // Install the current global model.
            if let Some(bytes) = &global_params {
                install_params(session, bytes)?;
            }
            // Local training on private data.
            let mut sgd = Sgd::new(0.05);
            for start in (0..data.len()).step_by(100) {
                let (x, y) = data.batch(start, 100)?;
                session.train_step(x, y, &mut sgd)?;
            }
            // Upload parameters only (never data): one quantized frame
            // per variable, sealed record-per-chunk in a single batch.
            let chunks = extract_chunks(session);
            quantized_bytes += chunks.iter().map(|c| c.len() as u64).sum::<u64>();
            dense_bytes += dense_upload_len(session);
            let refs: Vec<&[u8]> = chunks.iter().map(|c| c.as_slice()).collect();
            uplink.send_vectored(&refs)?;
            // Aggregator side: drain this hospital's sealed records.
            let mut received = Vec::new();
            while let Some(chunk) = agg_links[h].try_recv()? {
                received.push(chunk);
            }
            uploads.push(received);
        }
        // Global aggregation inside the enclave, charged on the
        // compressed upload bytes.
        let averaged = federated_average_chunked(&uploads, &aggregator)?;
        global_params = Some(averaged);

        // Track global model quality.
        let mut probe = SecureSession::new(
            agg_platform.create_enclave(
                &EnclaveImage::builder().code(b"fl probe").build(),
                ExecutionMode::Simulation,
            )?,
            fresh_model(),
        );
        install_params(&mut probe, global_params.as_ref().expect("set above"))?;
        let acc = probe.accuracy(&test_set)?;
        println!("round {round}: global model accuracy {:.1}%", acc * 100.0);
    }
    println!(
        "uploads: {} KB quantized vs {} KB dense-equivalent ({:.1}x smaller)",
        quantized_bytes / 1024,
        dense_bytes / 1024,
        dense_bytes as f64 / quantized_bytes as f64
    );

    // Final check: the federated model beats any single untrained model.
    let mut fresh = SecureSession::new(
        agg_platform.create_enclave(
            &EnclaveImage::builder().code(b"fresh probe").build(),
            ExecutionMode::Simulation,
        )?,
        fresh_model(),
    );
    let untrained = fresh.accuracy(&test_set)?;
    install_params(&mut fresh, global_params.as_ref().expect("trained"))?;
    let federated = fresh.accuracy(&test_set)?;
    println!(
        "untrained {:.1}% -> federated {:.1}%  (no hospital ever shared raw data)",
        untrained * 100.0,
        federated * 100.0
    );
    assert!(federated > untrained);
    Ok(())
}

/// Serializes a session's variables as per-variable quantized frames —
/// the layer-wise chunks `send_vectored` seals one record each.
fn extract_chunks(session: &SecureSession) -> Vec<Vec<u8>> {
    session
        .session()
        .variables()
        .into_iter()
        .map(|(id, t)| wire::encode_frame(&[(id.index() as u32, t.clone())], Codec::Quantized))
        .collect()
}

/// What the same upload would cost as exact dense frames.
fn dense_upload_len(session: &SecureSession) -> u64 {
    session
        .session()
        .variables()
        .into_iter()
        .map(|(id, t)| wire::dense_frame_len(&[(id.index() as u32, t.clone())]))
        .sum()
}

/// Installs a parameter frame into a session.
fn install_params(
    session: &mut SecureSession,
    bytes: &[u8],
) -> Result<(), Box<dyn std::error::Error>> {
    for (raw, tensor) in wire::decode_frame(bytes)? {
        let id = session
            .node_id(raw as usize)
            .ok_or("unknown variable in parameter message")?;
        session.set_variable(id, tensor)?;
    }
    Ok(())
}
