//! Paper §6.2: secure federated learning for a medical use-case.
//!
//! Several hospitals jointly train a diagnosis model. Each hospital
//! trains locally on its private patients' data; only model parameters
//! are shared — and even those can leak training data, so the *global
//! aggregation* runs inside an attested enclave and every link is
//! protected. The hospitals attest the aggregator before uploading.
//!
//! Run with: `cargo run --release --example federated_learning`

use rand::SeedableRng;
use securetf::secure_session::SecureSession;
use securetf_distrib::federated::federated_average;
use securetf_distrib::wire;
use securetf_tee::{EnclaveImage, ExecutionMode, Platform};
use securetf_tensor::layers::{self, Classifier};
use securetf_tensor::optimizer::Sgd;

const HOSPITALS: usize = 3;
const ROUNDS: usize = 4;

fn fresh_model() -> Classifier {
    // All parties share the model architecture and the initial weights.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    layers::mlp_classifier(784, &[48], 10, &mut rng).expect("model")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The global aggregation enclave, run by the consortium.
    let agg_platform = Platform::builder().build();
    let agg_image = EnclaveImage::builder()
        .code(b"federated-aggregator-v2")
        .name("aggregator")
        .build();
    let aggregator = agg_platform.create_enclave(&agg_image, ExecutionMode::Hardware)?;
    println!(
        "aggregator enclave started, measurement {}",
        aggregator.measurement()
    );

    // Each hospital: a private dataset and a local training enclave.
    let mut hospitals = Vec::new();
    for h in 0..HOSPITALS {
        let platform = Platform::builder().build();
        let enclave = platform.create_enclave(
            &EnclaveImage::builder().code(b"hospital trainer v1").build(),
            ExecutionMode::Hardware,
        )?;
        // Every hospital attests the aggregator before participating.
        let quote = aggregator.quote(format!("fl-round-setup:{h}").as_bytes())?;
        platform.verify_quote(&quote)?;
        assert_eq!(quote.mrenclave, agg_image.measurement(), "wrong aggregator code");
        println!("hospital {h}: aggregator attested ✓");
        let data = securetf_data::synthetic_mnist(300, 100 + h as u64);
        hospitals.push((SecureSession::new(enclave, fresh_model()), data));
    }
    let test_set = securetf_data::synthetic_mnist(200, 999);

    let mut global_params: Option<Vec<u8>> = None;
    for round in 0..ROUNDS {
        let mut uploads = Vec::new();
        for (h, (session, data)) in hospitals.iter_mut().enumerate() {
            // Install the current global model.
            if let Some(bytes) = &global_params {
                install_params(session, bytes)?;
            }
            // Local training on private data.
            let mut sgd = Sgd::new(0.05);
            for start in (0..data.len()).step_by(100) {
                let (x, y) = data.batch(start, 100)?;
                session.train_step(x, y, &mut sgd)?;
            }
            // Upload parameters only (never data).
            uploads.push(extract_params(session));
            let _ = h;
        }
        // Global aggregation inside the enclave.
        let averaged = federated_average(&uploads)?;
        global_params = Some(averaged);

        // Track global model quality.
        let mut probe = SecureSession::new(
            agg_platform.create_enclave(
                &EnclaveImage::builder().code(b"fl probe").build(),
                ExecutionMode::Simulation,
            )?,
            fresh_model(),
        );
        install_params(&mut probe, global_params.as_ref().expect("set above"))?;
        let acc = probe.accuracy(&test_set)?;
        println!("round {round}: global model accuracy {:.1}%", acc * 100.0);
    }

    // Final check: the federated model beats any single untrained model.
    let mut fresh = SecureSession::new(
        agg_platform.create_enclave(
            &EnclaveImage::builder().code(b"fresh probe").build(),
            ExecutionMode::Simulation,
        )?,
        fresh_model(),
    );
    let untrained = fresh.accuracy(&test_set)?;
    install_params(&mut fresh, global_params.as_ref().expect("trained"))?;
    let federated = fresh.accuracy(&test_set)?;
    println!(
        "untrained {:.1}% -> federated {:.1}%  (no hospital ever shared raw data)",
        untrained * 100.0,
        federated * 100.0
    );
    assert!(federated > untrained);
    Ok(())
}

/// Serializes a session's variables as a parameter message.
fn extract_params(session: &SecureSession) -> Vec<u8> {
    let entries: Vec<(u32, securetf_tensor::tensor::Tensor)> = session
        .session()
        .variables()
        .into_iter()
        .map(|(id, t)| (id.index() as u32, t.clone()))
        .collect();
    wire::encode(&entries)
}

/// Installs a parameter message into a session.
fn install_params(
    session: &mut SecureSession,
    bytes: &[u8],
) -> Result<(), Box<dyn std::error::Error>> {
    for (raw, tensor) in wire::decode(bytes)? {
        let id = session
            .node_id(raw as usize)
            .ok_or("unknown variable in parameter message")?;
        session.set_variable(id, tensor)?;
    }
    Ok(())
}
