//! Quickstart: train a model inside an enclave, export it, and serve it
//! from an attested classification service — with telemetry enabled.
//!
//! This walks the paper's full workflow (Figure 1):
//!
//! 1. train on (synthetic) MNIST inside a hardware enclave,
//! 2. verify accuracy parity with native execution,
//! 3. freeze + export the model in the Lite format,
//! 4. publish it encrypted and deploy an attested classifier,
//! 5. classify through the secure service,
//! 6. print the virtual-time span tree and export a sealed snapshot.
//!
//! The whole run shares one `SimClock` and one `Telemetry` handle, so the
//! final span tree accounts for every virtual nanosecond: the sum of
//! per-span self times equals the run's total virtual time.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::SeedableRng;
use securetf::secure_session::SecureSession;
use securetf_tee::telemetry::SealedSnapshot;
use securetf_tee::{EnclaveImage, ExecutionMode, Platform, SimClock, Telemetry};
use securetf_tensor::layers;
use securetf_tensor::optimizer::Sgd;
use securetf_tflite::interpreter::Interpreter;

fn train(
    mode: ExecutionMode,
    clock: &SimClock,
    telemetry: &Telemetry,
) -> Result<(SecureSession, f64, u64), Box<dyn std::error::Error>> {
    let platform = Platform::builder()
        .clock(clock.clone())
        .telemetry(telemetry.clone())
        .build();
    let enclave = platform.create_enclave(
        &EnclaveImage::builder()
            .code(b"quickstart-trainer-v1")
            .name("trainer")
            .build(),
        mode,
    )?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let model = layers::mlp_classifier(784, &[64], 10, &mut rng)?;
    let mut session = SecureSession::new(enclave, model);

    let data = securetf_data::synthetic_mnist(600, 2);
    let (train_set, test_set) = data.split(500);
    let mut sgd = Sgd::new(0.05);
    let t0 = clock.now_ns();
    for epoch in 0..10 {
        let mut loss = 0.0;
        for start in (0..train_set.len()).step_by(100) {
            let (x, y) = train_set.batch(start, 100)?;
            loss = session.train_step(x, y, &mut sgd)?;
        }
        println!("  [{mode}] epoch {epoch}: loss {loss:.4}");
    }
    let elapsed = clock.now_ns() - t0;
    let accuracy = session.accuracy(&test_set)?;
    Ok((session, accuracy, elapsed))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One clock, one telemetry handle, for the whole workflow.
    let clock = SimClock::new();
    let telemetry = clock.telemetry();
    let run_span = telemetry.span("quickstart");

    println!("1. Training inside a (simulated) SGX enclave, HW mode:");
    let (session, hw_acc, hw_ns) = {
        let _span = telemetry.span("train-hw");
        train(ExecutionMode::Hardware, &clock, &telemetry)?
    };
    println!("   accuracy {:.1}%, virtual time {:.2} s", hw_acc * 100.0, hw_ns as f64 / 1e9);

    println!("2. Same training natively, for the parity check:");
    let (_native, native_acc, native_ns) = {
        let _span = telemetry.span("train-native");
        train(ExecutionMode::Native, &clock, &telemetry)?
    };
    println!(
        "   accuracy {:.1}%, virtual time {:.2} s  (enclave slowdown {:.1}x)",
        native_acc * 100.0,
        native_ns as f64 / 1e9,
        hw_ns as f64 / native_ns as f64
    );
    assert_eq!(
        hw_acc, native_acc,
        "the paper's accuracy goal: protection never changes results"
    );
    println!("   parity: identical accuracy in both modes ✓");

    println!("3. Freezing and exporting the trained model (Lite format)…");
    let lite = session.export_lite()?;
    println!(
        "   exported '{}' ({} parameter bytes)",
        lite.name(),
        lite.param_bytes()
    );

    println!("4. Publishing encrypted + deploying an attested classifier…");
    let mut deployment = securetf::deployment::Deployment::instrumented(
        ExecutionMode::Hardware,
        clock.clone(),
        telemetry.clone(),
    );
    let mut classifier = {
        let _span = telemetry.span("deploy");
        deployment.publish_model("digits", "/models/digits", &lite)?;
        deployment.deploy_classifier(
            "digits",
            "/models/digits",
            securetf::profile::RuntimeProfile::scone_lite(),
        )?
    };

    println!("5. Classifying through the secure service:");
    let sample = securetf_data::synthetic_mnist(10, 99);
    let mut correct = 0;
    {
        let _span = telemetry.span("serve");
        for i in 0..10 {
            let (x, _) = sample.batch(i, 1)?;
            let (label, latency) = classifier.classify(&x)?;
            let truth = sample.label(i).expect("in range");
            if label == truth {
                correct += 1;
            }
            println!(
                "   image {i}: predicted {label}, truth {truth}, latency {:.2} ms",
                latency as f64 / 1e6
            );
        }
    }
    println!("   {correct}/10 correct through the attested enclave service");

    // Direct interpreter access gives the same answers (transparency).
    let mut direct = Interpreter::new(session.export_lite()?);
    let (x, _) = sample.batch(0, 1)?;
    let direct_label = direct.classify(&x)?;
    let (service_label, _) = classifier.classify(&x)?;
    assert_eq!(direct_label, service_label);
    println!("   transparency: direct interpreter agrees with the service ✓");

    drop(run_span);

    println!("6. Telemetry: virtual-time span tree (durations in virtual ns):");
    let report = telemetry.span_report();
    for line in report.render().lines() {
        println!("   {line}");
    }
    // Every virtual nanosecond of the run is attributed to exactly one
    // span: the per-span self times sum to the run's total virtual time.
    assert_eq!(report.total_ns(), clock.now_ns());
    assert_eq!(report.self_sum_ns(), report.total_ns());
    println!(
        "   span accounting: self-time sum {} ns == total virtual time {} ns ✓",
        report.self_sum_ns(),
        report.total_ns()
    );
    println!("   metrics digest: {}", telemetry.metrics_digest_hex());

    println!("7. Exporting a sealed telemetry snapshot:");
    let snapshot = telemetry.snapshot();
    let sealed = classifier.enclave().seal_telemetry(&snapshot)?;
    println!(
        "   sealed {} metrics + {} spans into {} ciphertext bytes",
        snapshot.metrics().len(),
        snapshot.spans().len(),
        sealed.len()
    );
    let opened = classifier.enclave().unseal_telemetry(&sealed)?;
    assert_eq!(opened.digest(), snapshot.digest());
    println!("   round trip: unsealed digest matches ✓");
    let mut tampered = sealed.as_bytes().to_vec();
    let mid = tampered.len() / 2;
    tampered[mid] ^= 0x01;
    let err = classifier
        .enclave()
        .unseal_telemetry(&SealedSnapshot::from_bytes(tampered))
        .expect_err("tampered export must fail closed");
    println!("   tampered export rejected: {err} ✓");
    Ok(())
}
