//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — `black_box`,
//! `Criterion::bench_function`/`benchmark_group`, `Bencher::iter`/
//! `iter_with_setup`, `Throughput`, and the `criterion_group!`/
//! `criterion_main!` macros — with simple wall-clock timing and one
//! plain-text line of output per benchmark. No statistics, HTML
//! reports, or CLI argument handling.

use std::time::{Duration, Instant};

/// Opaque identity function that defeats constant folding.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Units for reporting throughput alongside timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Times closures handed to [`Criterion::bench_function`].
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iterations` times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` only, re-running `setup` before each call.
    pub fn iter_with_setup<I, R, S, F>(&mut self, mut setup: S, mut routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 24 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<S, F>(&mut self, id: S, f: F) -> &mut Criterion
    where
        S: AsRef<str>,
        F: FnOnce(&mut Bencher),
    {
        run_one(id.as_ref(), self.sample_size, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: AsRef<str>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.as_ref().to_string(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput unit.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput reported for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<S, F>(&mut self, id: S, f: F) -> &mut Self
    where
        S: AsRef<str>,
        F: FnOnce(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.as_ref());
        run_one(&label, self.criterion.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (reporting happens per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

fn run_one<F: FnOnce(&mut Bencher)>(
    label: &str,
    iterations: u64,
    throughput: Option<Throughput>,
    f: F,
) {
    let mut bencher = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_nanos() as f64 / iterations.max(1) as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => format!(", {:.1} MiB/s", rate_per_sec(n, per_iter) / (1u64 << 20) as f64),
        Throughput::Elements(n) => format!(", {:.2e} elem/s", rate_per_sec(n, per_iter)),
    });
    println!(
        "bench {label:<48} {per_iter:>12.0} ns/iter ({iterations} iters{})",
        rate.unwrap_or_default()
    );
}

fn rate_per_sec(units_per_iter: u64, ns_per_iter: f64) -> f64 {
    if ns_per_iter <= 0.0 {
        return 0.0;
    }
    units_per_iter as f64 * 1.0e9 / ns_per_iter
}

/// Declares a benchmark group function, in either criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_to(n: u64) -> u64 {
        (0..n).fold(0, |a, b| a.wrapping_add(black_box(b)))
    }

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0u64;
        c.bench_function("test/sum", |b| {
            b.iter(|| {
                ran += 1;
                sum_to(100)
            })
        });
        assert_eq!(ran, 3);
    }

    #[test]
    fn iter_with_setup_excludes_setup_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut setups = 0u64;
        let mut runs = 0u64;
        c.bench_function("test/setup", |b| {
            b.iter_with_setup(
                || {
                    setups += 1;
                    7u64
                },
                |n| {
                    runs += 1;
                    sum_to(n)
                },
            )
        });
        assert_eq!((setups, runs), (2, 2));
    }

    #[test]
    fn groups_report_throughput_without_panicking() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("grp");
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("a", |b| b.iter(|| sum_to(10)));
        group.throughput(Throughput::Elements(10));
        group.bench_function("b", |b| b.iter(|| sum_to(10)));
        group.finish();
    }
}
