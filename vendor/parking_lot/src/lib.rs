//! Offline stand-in for the `parking_lot` crate.
//!
//! Provides the `Mutex`/`RwLock` API shape the workspace uses — locks
//! that return guards directly (no `Result`, no poisoning) — implemented
//! over `std::sync`. A thread that panics while holding a std lock
//! poisons it; matching parking_lot semantics, the poison flag is
//! ignored and the data is handed out anyway.

use std::sync;
pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates the lock holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose acquisitions never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates the lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std lock");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
