//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy subset the workspace's property tests use:
//! numeric ranges, `any::<T>()`, fixed-size arrays, `collection::vec`,
//! tuples, `sample::Index`, and simple `[a-z]{1,20}`-style string
//! patterns, driven by the `proptest!` / `prop_assert!` macros. Inputs
//! are drawn from a deterministic RNG seeded from the test name and
//! case index — every run explores the same cases. No shrinking: a
//! failing case panics with the ordinary assertion message.

use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// How many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value from `rng`.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value from `rng`.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen()
            }
        }
    )*};
}

arbitrary_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

/// Strategy for any value of an [`Arbitrary`] type.
pub struct Any<T>(PhantomData<T>);

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
    (A / 0, B / 1, C / 2, D / 3, E / 4)
}

/// Patterns like `"[a-z]{1,20}"` are strategies producing `String`s.
///
/// Supported regex subset: literal characters, `[x-y…]` classes of
/// ranges and singletons, and `{n}` / `{lo,hi}` repetitions.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut StdRng) -> String {
        let mut out = String::new();
        let mut chars = self.chars().peekable();
        while let Some(c) = chars.next() {
            let mut choices = Vec::new();
            if c == '[' {
                let mut prev: Option<char> = None;
                for d in chars.by_ref() {
                    match d {
                        ']' => break,
                        '-' => prev = prev.or(Some('-')),
                        _ => match prev.take() {
                            Some(lo) if !choices.is_empty() && choices.last() == Some(&lo) => {
                                // `lo-d`: the '-' consumed `prev`; extend the range.
                                choices.extend(((lo as u32 + 1)..=d as u32).filter_map(char::from_u32));
                            }
                            _ => {
                                choices.push(d);
                                prev = Some(d);
                            }
                        },
                    }
                }
            } else {
                choices.push(c);
            }
            let (lo, hi) = if chars.peek() == Some(&'{') {
                chars.next();
                let spec: String = chars.by_ref().take_while(|&d| d != '}').collect();
                let mut parts = spec.splitn(2, ',');
                let lo: usize = parts.next().unwrap_or("1").trim().parse().unwrap_or(1);
                let hi: usize = parts
                    .next()
                    .map(|p| p.trim().parse().unwrap_or(lo))
                    .unwrap_or(lo);
                (lo, hi)
            } else {
                (1, 1)
            };
            assert!(!choices.is_empty(), "empty character class in pattern {self:?}");
            for _ in 0..rng.gen_range(lo..=hi) {
                out.push(choices[rng.gen_range(0..choices.len())]);
            }
        }
        out
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use super::{StdRng, Strategy};

    /// Strategy for `[S::Value; N]` with independently drawn elements.
    pub struct UniformArray<S, const N: usize>(S);

    macro_rules! uniform_fn {
        ($($name:ident / $n:literal),*) => {$(
            /// Strategy for an array of independently drawn elements.
            pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray(element)
            }
        )*};
    }

    uniform_fn!(uniform12 / 12, uniform16 / 16, uniform24 / 24, uniform32 / 32);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn sample(&self, rng: &mut StdRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.0.sample(rng))
        }
    }
}

pub mod collection {
    //! Variable-size collection strategies.

    use super::{Rng, StdRng, Strategy};
    use std::ops::Range;

    /// Admissible lengths for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> SizeRange {
            SizeRange {
                lo: exact,
                hi_exclusive: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> SizeRange {
            assert!(range.start < range.end, "empty size range");
            SizeRange {
                lo: range.start,
                hi_exclusive: range.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` of a length drawn from the size range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy producing vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! Strategies for sampling positions within runtime-sized data.

    use super::{Arbitrary, StdRng};

    /// A position independent of the eventual collection length.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Resolves the position against a collection of `len` items.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut StdRng) -> Index {
            Index(rand::Rng::gen(rng))
        }
    }
}

pub mod test_runner {
    //! Deterministic per-case RNG construction used by `proptest!`.

    use super::StdRng;
    use rand::SeedableRng;

    /// RNG for one case of one property, seeded from both identities.
    pub fn case_rng(test_name: &str, case: u32) -> StdRng {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in test_name.bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
    }
}

pub mod prelude {
    //! The glob-importable API surface, mirroring `proptest::prelude`.

    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy};

    pub mod prop {
        //! Strategy modules, addressed as `prop::…` by convention.

        pub use crate::{array, collection, sample};
    }
}

/// Defines `#[test]` functions that run their body over many drawn inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            #[test]
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::case_rng(stringify!($name), case);
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    $body
                }
            }
        )*
    };
    (
        $(
            #[test]
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                #[test]
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => {
        assert!($($args)*)
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => {
        assert_eq!($($args)*)
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(
            small in 0u8..8,
            big in 1usize..256,
            f in -2.0f32..2.0,
        ) {
            prop_assert!(small < 8);
            prop_assert!((1..256).contains(&big));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn arrays_and_vecs_have_requested_shapes(
            key in prop::array::uniform32(any::<u8>()),
            exact in prop::collection::vec(any::<u8>(), 6),
            ranged in prop::collection::vec(any::<u8>(), 0..64),
        ) {
            prop_assert_eq!(key.len(), 32);
            prop_assert_eq!(exact.len(), 6);
            prop_assert!(ranged.len() < 64);
        }

        #[test]
        fn index_resolves_within_len(idx in any::<prop::sample::Index>()) {
            prop_assert!(idx.index(10) < 10);
        }

        #[test]
        fn pattern_strings_match_class_and_length(s in "[a-z]{1,20}") {
            prop_assert!(!s.is_empty() && s.len() <= 20);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn tuples_compose(pair in (any::<bool>(), 1u64..5)) {
            let (_flag, n) = pair;
            prop_assert!((1..5).contains(&n));
        }
    }

    #[test]
    fn cases_are_deterministic_per_test_name() {
        use crate::test_runner::case_rng;
        use rand::RngCore;
        let a = case_rng("some_test", 3).next_u64();
        let b = case_rng("some_test", 3).next_u64();
        let c = case_rng("other_test", 3).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
