//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) subset of the `rand` 0.8 API the workspace
//! actually uses: [`RngCore`], [`SeedableRng`], the [`Rng`] extension
//! trait with `gen`/`gen_range`/`fill`, [`rngs::StdRng`] and
//! [`rngs::mock::StepRng`]. The generator behind `StdRng` is
//! xoshiro256++ seeded through SplitMix64 — deterministic for a given
//! seed, which is all the simulation needs (no cryptographic claims; the
//! workspace's own `securetf-crypto` DRBG covers that).

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible randomness (never produced by these RNGs).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng failure")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG deterministically constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates the RNG from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the RNG from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let out = splitmix64(&mut state);
            let bytes = out.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable uniformly from the "standard" distribution
/// (`[0, 1)` for floats, full range for integers).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + <$t as Standard>::sample(rng) * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
        }
    )*};
}

float_range!(f32, f64);

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Fills a byte slice with randomness.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; displace it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    pub mod mock {
        //! Deterministic mock generators for tests.

        use super::super::RngCore;

        /// Returns an arithmetic sequence: `start`, `start + increment`, …
        #[derive(Debug, Clone)]
        pub struct StepRng {
            value: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates the sequence starting at `start`.
            pub fn new(start: u64, increment: u64) -> StepRng {
                StepRng {
                    value: start,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                (self.next_u64() >> 32) as u32
            }

            fn next_u64(&mut self) -> u64 {
                let v = self.value;
                self.value = self.value.wrapping_add(self.increment);
                v
            }

            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(8) {
                    let bytes = self.next_u64().to_le_bytes();
                    chunk.copy_from_slice(&bytes[..chunk.len()]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f32 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i: i32 = rng.gen_range(-4..=4);
            assert!((-4..=4).contains(&i));
            let u: usize = rng.gen_range(1usize..9);
            assert!((1..9).contains(&u));
        }
    }

    #[test]
    fn standard_floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }
}
