//! Elastic scaling and fault tolerance (challenge ❹): workers join,
//! crash and respawn mid-training, each join gated by CAS attestation.

use rand::SeedableRng;
use securetf_distrib::cluster::{Cluster, ClusterConfig};
use securetf_distrib::trainer::DistributedTrainer;
use securetf_distrib::DistribError;
use securetf_tee::ExecutionMode;
use securetf_tensor::layers;

fn trainer(workers: usize) -> DistributedTrainer {
    let cluster = Cluster::new(ClusterConfig {
        workers,
        parameter_servers: 1,
        mode: ExecutionMode::Hardware,
        network_shield: true,
        runtime_bytes: 8 * 1024 * 1024,
        heap_bytes: 16 * 1024 * 1024,
        ..ClusterConfig::default()
    })
    .expect("cluster");
    let mut rng = rand::rngs::StdRng::seed_from_u64(15);
    let model = layers::mlp_classifier(784, &[32], 10, &mut rng).expect("model");
    let data = securetf_data::synthetic_mnist(400, 11);
    DistributedTrainer::new(cluster, model, data, 50, 0.05).expect("trainer")
}

#[test]
fn join_crash_respawn_lifecycle() {
    let mut t = trainer(1);
    t.train_steps(3).expect("warm up");
    assert_eq!(t.cluster().attestations_served(), 2); // PS + worker

    // Elastic join: two more workers, each attested.
    t.cluster_mut().add_worker().expect("join");
    t.cluster_mut().add_worker().expect("join");
    assert_eq!(t.cluster().attestations_served(), 4);
    let loss_3w = t.step().expect("step with 3 workers");
    assert!(loss_3w.is_finite());

    // Crash two workers.
    t.cluster_mut().fail_worker(0).expect("fail");
    t.cluster_mut().fail_worker(2).expect("fail");
    assert_eq!(t.cluster().live_workers(), vec![1]);
    let loss_1w = t.step().expect("step with 1 worker");
    assert!(loss_1w.is_finite());

    // Crash the last one: training halts.
    t.cluster_mut().fail_worker(1).expect("fail");
    assert!(matches!(t.step(), Err(DistribError::NoWorkers)));

    // Respawn: fresh enclaves, re-attested; training resumes.
    t.cluster_mut().respawn_worker(0).expect("respawn");
    t.cluster_mut().respawn_worker(1).expect("respawn");
    assert_eq!(t.cluster().attestations_served(), 6);
    let resumed = t.step().expect("resumed step");
    assert!(resumed.is_finite());
}

#[test]
fn training_survives_failures_and_still_learns() {
    let mut t = trainer(3);
    let first = t.step().expect("first step");
    for i in 0..20 {
        if i == 5 {
            t.cluster_mut().fail_worker(1).expect("fail");
        }
        if i == 10 {
            t.cluster_mut().respawn_worker(1).expect("respawn");
        }
        t.step().expect("step");
    }
    let last = t.step().expect("last step");
    assert!(last < first, "loss {first} -> {last}");
    let test = securetf_data::synthetic_mnist(100, 70);
    let acc = t.evaluate(&test).expect("evaluate");
    assert!(acc > 0.5, "accuracy {acc}");
}

#[test]
fn elastic_join_is_cheap_with_cas() {
    let mut t = trainer(1);
    let before = t.cluster().attestation_ns();
    t.cluster_mut().add_worker().expect("join");
    let join_cost_ms = (t.cluster().attestation_ns() - before) as f64 / 1e6;
    // CAS attestation ~17 ms; IAS would be ~325 ms.
    assert!(
        join_cost_ms < 60.0,
        "join attestation cost {join_cost_ms} ms (should be CAS-fast)"
    );
}

#[test]
fn throughput_scales_with_elastic_workers() {
    let mut t = trainer(1);
    let r1 = t.train_steps(4).expect("train");
    let rate1 = r1.samples_per_sec();
    t.cluster_mut().add_worker().expect("join");
    t.cluster_mut().add_worker().expect("join");
    let r2 = t.train_steps(4).expect("train");
    // Overall throughput after scaling covers both phases; compute the
    // marginal rate of the second phase.
    let marginal = (r2.samples - r1.samples) as f64
        / ((r2.elapsed_ns - r1.elapsed_ns) as f64 / 1e9);
    assert!(
        marginal > 1.5 * rate1,
        "marginal rate {marginal} vs initial {rate1}"
    );
}
