//! Gateway acceptance tests (ISSUE 7): same-seed chaos determinism and
//! exactly-once answering, batched-vs-serial bit-identity, EDF
//! dispatch, deficit-round-robin fairness, bounded admission, and
//! malformed-frame id salvage — all through real attested channels.

use proptest::prelude::*;
use securetf::deployment::Deployment;
use securetf::profile::RuntimeProfile;
use securetf::serving::{
    decode_response, encode_request, Request, Response, RETRY_AFTER_HINT_NS,
};
use securetf_gateway::chaos::{attested_pair, demo_input, demo_model, run_chaos, SwitchTransport};
use securetf_gateway::{Gateway, GatewayConfig};
use securetf_shield::net::SecureChannel;
use securetf_tee::{EnclaveImage, ExecutionMode, Platform, SimClock};
use securetf_tensor::graph::Graph;
use securetf_tensor::tensor::Tensor;
use securetf_tflite::model::LiteModel;
use std::collections::BTreeMap;

fn model_with_dim(dim: usize) -> LiteModel {
    let mut g = Graph::new();
    let x = g.placeholder("input", &[0, dim]);
    let w = g.constant(
        "w",
        Tensor::from_vec(
            &[dim, 3],
            (0..dim * 3).map(|i| ((i * 5 + 1) % 13) as f32 * 0.1 - 0.6).collect(),
        )
        .unwrap(),
    );
    let y = g.matmul(x, w).unwrap();
    let name = g.nodes()[y.index()].name.clone();
    LiteModel::convert(&g, "input", &name).unwrap()
}

/// Deploys a classifier for `model` on a fresh instrumented platform
/// and wraps it in a gateway with `tenants` attested client channels.
fn gateway_with_clients(
    model: &LiteModel,
    config: GatewayConfig,
    tenants: usize,
) -> (
    Gateway<SwitchTransport>,
    Vec<SecureChannel<SwitchTransport>>,
    SimClock,
) {
    let clock = SimClock::new();
    let telemetry = clock.telemetry();
    let mut deployment =
        Deployment::instrumented(ExecutionMode::Hardware, clock.clone(), telemetry.clone());
    deployment.publish_model("svc", "/m", model).unwrap();
    let classifier = deployment
        .deploy_classifier("svc", "/m", RuntimeProfile::scone_lite())
        .unwrap();
    let frontend_platform = Platform::builder()
        .clock(clock.clone())
        .telemetry(telemetry)
        .build();
    let frontend = frontend_platform
        .create_enclave(
            &EnclaveImage::builder().code(b"frontend").build(),
            ExecutionMode::Simulation,
        )
        .unwrap();
    let mut gateway = Gateway::new(classifier, config);
    let mut clients = Vec::with_capacity(tenants);
    for _ in 0..tenants {
        let (server, client) = attested_pair(frontend.clone());
        gateway.accept(server);
        clients.push(client);
    }
    (gateway, clients, clock)
}

fn drain_client(client: &mut SecureChannel<SwitchTransport>) -> Vec<Response> {
    let mut out = Vec::new();
    while let Ok(Some(frame)) = client.try_recv() {
        out.push(decode_response(&frame).expect("response frame"));
    }
    out
}

#[test]
fn same_seed_chaos_runs_are_bit_identical_and_exactly_once() {
    let a = run_chaos(0xC0FFEE, 4, 30, GatewayConfig::default()).expect("chaos run");
    let b = run_chaos(0xC0FFEE, 4, 30, GatewayConfig::default()).expect("chaos run");
    assert_eq!(
        a.metrics_digest, b.metrics_digest,
        "same seed must produce bit-identical telemetry"
    );
    assert_eq!(a.schedule_digest, b.schedule_digest);
    assert_eq!(a.answers, b.answers);
    assert_eq!(a.labels, b.labels);
    assert_eq!(a.gateway, b.gateway);
    assert!(a.sent > 0, "chaos must generate traffic");
    assert!(
        a.answered_exactly_once(),
        "every sent request answered exactly once: sent={} answered_ids={} gateway={:?}",
        a.sent,
        a.answers.len(),
        a.gateway
    );
    // The seeded schedule actually exercised the gateway: batches
    // formed, and labels dominate the outcomes.
    assert!(a.gateway.batches > 0);
    assert!(a.label_count > 0);
}

#[test]
fn different_seeds_diverge() {
    let a = run_chaos(1, 3, 20, GatewayConfig::default()).expect("chaos run");
    let b = run_chaos(2, 3, 20, GatewayConfig::default()).expect("chaos run");
    assert_ne!(a.metrics_digest, b.metrics_digest);
}

#[test]
fn chaos_exercises_bursts_and_batching() {
    // Across a long run the seeded bursts must actually bite: batches
    // form beyond a single request, and still everything is answered.
    let report = run_chaos(7, 5, 60, GatewayConfig::default()).expect("chaos run");
    assert!(report.gateway.largest_batch > 1, "{:?}", report.gateway);
    assert!(report.answered_exactly_once());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Batched gateway responses are bit-identical to serial
    // single-request classification for the same inputs, independent
    // of batch ceiling, tenant count, and batch composition.
    #[test]
    fn batched_matches_serial_bitwise(
        dim_choice in 0usize..2,
        tenants in 1usize..4,
        batch_choice in 0usize..4,
        per_tenant in 1usize..6,
        salt in any::<u32>(),
    ) {
        let dim = [4, 8][dim_choice];
        let max_batch = [1usize, 2, 4, 8][batch_choice];
        let model = model_with_dim(dim);
        let config = GatewayConfig {
            max_batch,
            batch_timeout_ns: 1_000_000,
            ..GatewayConfig::default()
        };
        let (mut gateway, mut clients, _clock) = gateway_with_clients(&model, config, tenants);

        // Deterministic inputs keyed by (tenant, seq, salt).
        let mut inputs: BTreeMap<u64, Tensor> = BTreeMap::new();
        for (t, client) in clients.iter_mut().enumerate() {
            for s in 0..per_tenant {
                let id = (t as u64) << 32 | s as u64;
                let data: Vec<f32> = (0..dim)
                    .map(|k| {
                        let mix = id.wrapping_mul(2654435761).wrapping_add(k as u64 + salt as u64);
                        (mix % 23) as f32 * 0.17 - 1.9
                    })
                    .collect();
                let input = Tensor::from_vec(&[1, dim], data).unwrap();
                client.send(&encode_request(&Request::new(id, input.clone()))).unwrap();
                inputs.insert(id, input);
            }
        }
        gateway.flush().expect("flush");

        // Serial baseline: a second classifier over the same model.
        let mut deployment = Deployment::new(ExecutionMode::Hardware);
        deployment.publish_model("svc", "/m", &model).unwrap();
        let mut serial = deployment
            .deploy_classifier("svc", "/m", RuntimeProfile::scone_lite())
            .unwrap();

        let mut answered = 0usize;
        for client in clients.iter_mut() {
            for response in drain_client(client) {
                let Response::Label { id, label } = response else {
                    panic!("expected label, got {response:?}");
                };
                let (expect, _) = serial.classify(&inputs[&id]).unwrap();
                prop_assert_eq!(label as usize, expect, "request {}", id);
                answered += 1;
            }
        }
        prop_assert_eq!(answered, tenants * per_tenant);
    }
}

#[test]
fn edf_dispatches_most_urgent_first() {
    let model = model_with_dim(8);
    let config = GatewayConfig {
        max_batch: 1, // every request its own batch: dispatch order is visible
        batch_timeout_ns: 1_000_000,
        ..GatewayConfig::default()
    };
    let (mut gateway, mut clients, clock) = gateway_with_clients(&model, config, 1);
    let now = clock.now_ns();
    // Sent first but due later; sent second but due sooner.
    let relaxed = Request::with_deadline(1, demo_input(0, 1), now + 900_000_000);
    let urgent = Request::with_deadline(2, demo_input(0, 2), now + 500_000_000);
    clients[0].send(&encode_request(&relaxed)).unwrap();
    clients[0].send(&encode_request(&urgent)).unwrap();
    gateway.flush().expect("flush");
    let responses = drain_client(&mut clients[0]);
    let ids: Vec<u64> = responses
        .iter()
        .map(|r| match r {
            Response::Label { id, .. } => *id,
            other => panic!("expected label, got {other:?}"),
        })
        .collect();
    assert_eq!(ids, vec![2, 1], "EDF must answer the tighter deadline first");
}

#[test]
fn drr_keeps_a_hot_tenant_from_starving_the_rest() {
    let model = model_with_dim(8);
    let config = GatewayConfig {
        max_batch: 8,
        drr_quantum: 2,
        // Long timeout: the leftovers must not become dispatch-ready
        // within this pump just because the first batch consumed
        // virtual time.
        batch_timeout_ns: 10_000_000_000,
        queue_capacity: 64,
        ..GatewayConfig::default()
    };
    let (mut gateway, mut clients, _clock) = gateway_with_clients(&model, config, 2);
    // Tenant 0 floods; tenant 1 sends two polite requests afterwards.
    for s in 0..12u64 {
        clients[0]
            .send(&encode_request(&Request::new(s, demo_input(0, s))))
            .unwrap();
    }
    for s in 0..2u64 {
        clients[1]
            .send(&encode_request(&Request::new(100 + s, demo_input(1, s))))
            .unwrap();
    }
    // One pump: ingest everything, dispatch exactly one full batch.
    let stats = gateway.pump().expect("pump");
    assert_eq!(stats.batches, 1, "one full batch should fire immediately");
    let hot = drain_client(&mut clients[0]).len();
    let polite = drain_client(&mut clients[1]).len();
    assert_eq!(
        polite, 2,
        "both of the polite tenant's requests must ride the first batch"
    );
    assert_eq!(hot, 6, "the flooder gets the remaining slots");
    gateway.flush().expect("flush");
    assert_eq!(drain_client(&mut clients[0]).len(), 6, "flood eventually drains");
}

#[test]
fn admission_control_sheds_overflow_with_retry_hint() {
    let model = model_with_dim(8);
    let config = GatewayConfig {
        max_batch: 8,
        queue_capacity: 2,
        batch_timeout_ns: 1_000_000,
        ..GatewayConfig::default()
    };
    let (mut gateway, mut clients, _clock) = gateway_with_clients(&model, config, 1);
    for s in 0..5u64 {
        clients[0]
            .send(&encode_request(&Request::new(s, demo_input(0, s))))
            .unwrap();
    }
    gateway.flush().expect("flush");
    let responses = drain_client(&mut clients[0]);
    assert_eq!(responses.len(), 5, "every request answered exactly once");
    let shed: Vec<&Response> = responses
        .iter()
        .filter(|r| matches!(r, Response::Unavailable { .. }))
        .collect();
    assert_eq!(shed.len(), 3, "capacity 2 admits 2 of 5");
    for r in &shed {
        let Response::Unavailable { retry_after_ns, .. } = r else {
            unreachable!()
        };
        assert_eq!(*retry_after_ns, RETRY_AFTER_HINT_NS);
    }
    assert_eq!(gateway.report().shed, 3);
    assert_eq!(gateway.report().admitted, 2);
}

#[test]
fn expired_deadlines_are_shed_not_served() {
    let model = model_with_dim(8);
    let config = GatewayConfig {
        max_batch: 8,
        batch_timeout_ns: 2_000_000,
        ..GatewayConfig::default()
    };
    let (mut gateway, mut clients, clock) = gateway_with_clients(&model, config, 1);
    // A deadline that will already be stale once the gateway looks.
    let doomed = Request::with_deadline(9, demo_input(0, 0), clock.now_ns() + 1);
    clients[0].send(&encode_request(&doomed)).unwrap();
    clock.advance(10); // the deadline passes before the gateway polls
    gateway.flush().expect("flush");
    let responses = drain_client(&mut clients[0]);
    assert_eq!(responses.len(), 1);
    assert!(
        matches!(responses[0], Response::Unavailable { id: 9, .. }),
        "expired request answered unavailable, got {:?}",
        responses[0]
    );
    assert_eq!(gateway.report().deadline_misses, 1);
    assert_eq!(gateway.report().batches, 0, "nothing executed");
}

#[test]
fn malformed_frames_get_salvaged_ids_through_the_gateway() {
    let model = model_with_dim(8);
    let (mut gateway, mut clients, _clock) =
        gateway_with_clients(&model, GatewayConfig::default(), 1);
    clients[0].send(b"garbage").unwrap();
    let full = encode_request(&Request::new(77, demo_input(0, 0)));
    clients[0].send(&full[..full.len() - 2]).unwrap();
    gateway.flush().expect("flush");
    let responses = drain_client(&mut clients[0]);
    assert_eq!(responses.len(), 2);
    assert!(
        matches!(&responses[0], Response::Error { id: 0, .. }),
        "unsalvageable frame lands on id 0: {:?}",
        responses[0]
    );
    assert!(
        matches!(&responses[1], Response::Error { id: 77, .. }),
        "truncated body keeps its salvaged id: {:?}",
        responses[1]
    );
}

#[test]
fn failed_enclave_answers_unavailable_and_recovers() {
    let model = model_with_dim(8);
    let (mut gateway, mut clients, _clock) =
        gateway_with_clients(&model, GatewayConfig::default(), 1);
    gateway.classifier_mut().enclave().mark_failed();
    clients[0]
        .send(&encode_request(&Request::new(1, demo_input(0, 0))))
        .unwrap();
    gateway.flush().expect("flush");
    assert!(matches!(
        drain_client(&mut clients[0])[..],
        [Response::Unavailable { id: 1, .. }]
    ));
    gateway.classifier_mut().enclave().revive();
    clients[0]
        .send(&encode_request(&Request::new(2, demo_input(0, 1))))
        .unwrap();
    gateway.flush().expect("flush");
    assert!(matches!(
        drain_client(&mut clients[0])[..],
        [Response::Label { id: 2, .. }]
    ));
}

#[test]
fn gateway_telemetry_counts_batches_and_queue_wait() {
    let model = demo_model();
    let config = GatewayConfig {
        max_batch: 4,
        batch_timeout_ns: 1_000_000,
        ..GatewayConfig::default()
    };
    let (mut gateway, mut clients, _clock) = gateway_with_clients(&model, config, 2);
    let telemetry = gateway.classifier().enclave().telemetry().clone();
    for s in 0..4u64 {
        let c = (s % 2) as usize;
        clients[c]
            .send(&encode_request(&Request::new(s, demo_input(c, s))))
            .unwrap();
    }
    gateway.flush().expect("flush");
    assert_eq!(telemetry.counter("gateway.requests").get(), 4);
    assert_eq!(telemetry.counter("gateway.responses").get(), 4);
    assert_eq!(telemetry.counter("gateway.batches").get(), 1);
    let sizes = telemetry.histogram("gateway.batch_size").snapshot();
    assert_eq!(sizes.count, 1);
    assert_eq!(sizes.max_ns, 4, "one batch of four");
    assert_eq!(telemetry.histogram("gateway.queue_wait_ns").snapshot().count, 4);
    // Per-tenant attribution: both tenants were counted and charged.
    assert_eq!(telemetry.counter("gateway.tenant.0.requests").get(), 2);
    assert_eq!(telemetry.counter("gateway.tenant.1.requests").get(), 2);
    assert!(telemetry.counter("gateway.tenant.0.cost_ns").get() > 0);
    assert!(telemetry.counter("gateway.tenant.1.cost_ns").get() > 0);
    assert_eq!(telemetry.gauge("gateway.queue_depth").get(), 0);
}
