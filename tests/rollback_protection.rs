//! Rollback-attack protection across the stack (paper §3.3.2 and §2.3):
//! the attacker restores older-but-validly-encrypted state and every
//! layer must detect it.

use securetf_cas::audit::AuditService;
use securetf_cas::kvstore::KvStore;
use securetf_cas::CasError;
use securetf_shield::fs::{FsShield, PathPolicy, Policy, UntrustedStore};
use securetf_shield::ShieldError;
use securetf_tee::{EnclaveImage, ExecutionMode, Platform};
use std::sync::Arc;

fn enclave(code: &[u8]) -> Arc<securetf_tee::Enclave> {
    let platform = Platform::builder().build();
    platform
        .create_enclave(
            &EnclaveImage::builder().code(code).build(),
            ExecutionMode::Hardware,
        )
        .expect("enclave")
}

#[test]
fn fs_shield_detects_file_rollback_within_session() {
    let store = UntrustedStore::new();
    let mut shield = FsShield::new(enclave(b"fs rollback"), store.clone());
    shield.add_policy(PathPolicy::new("/", Policy::EncryptAuth));
    shield.write("/ckpt", b"epoch 1 weights").expect("write");
    let old = store.raw_contents("/ckpt").expect("stored");
    shield.write("/ckpt", b"epoch 2 weights").expect("write");
    store.raw_put("/ckpt", old);
    assert!(matches!(
        shield.read("/ckpt"),
        Err(ShieldError::FileTampered(_))
    ));
}

#[test]
fn fs_shield_detects_manifest_replay_across_enclave_restart() {
    // The attacker snapshots the whole store (including the sealed
    // manifest — validly MAC'd, validly sealed) at generation g, lets
    // the enclave write more generations, then replays the snapshot and
    // waits for the enclave to restart. Within-session metadata is gone,
    // so only the platform's monotonic counter can expose the replay.
    let telemetry =
        securetf_tee::Telemetry::new(Arc::new(securetf_tee::SimClock::new()));
    let platform = Platform::builder().telemetry(telemetry.clone()).build();
    let make_enclave = || {
        platform
            .create_enclave(
                &EnclaveImage::builder().code(b"manifest replay").build(),
                ExecutionMode::Hardware,
            )
            .expect("enclave")
    };
    let store = UntrustedStore::new();
    {
        let mut shield = FsShield::new(make_enclave(), store.clone());
        shield.add_policy(PathPolicy::new("/", Policy::EncryptAuth));
        shield.write("/ckpt", b"epoch 1 weights").expect("write");
    }
    let old_image = store.snapshot();
    {
        let mut shield = FsShield::new(make_enclave(), store.clone());
        shield.write("/ckpt", b"epoch 9 weights").expect("write");
    }
    // Replay the old-but-validly-sealed store image, then "restart".
    store.restore(&old_image);
    let rejections_before = telemetry.counter("shield.fs.tamper_rejections").get();
    let err = FsShield::recover(make_enclave(), store.clone());
    assert!(
        matches!(err, Err(ShieldError::FileTampered(_))),
        "replayed manifest must fail closed, got {err:?}"
    );
    assert_eq!(
        telemetry.counter("shield.fs.tamper_rejections").get(),
        rejections_before + 1,
        "the rollback must be counted as a tamper rejection"
    );
    // An honest, non-rolled-back store still recovers on this platform.
    let honest = UntrustedStore::new();
    {
        let mut shield = FsShield::new(make_enclave(), honest.clone());
        shield.add_policy(PathPolicy::new("/", Policy::EncryptAuth));
        shield.write("/ckpt", b"fresh weights").expect("write");
    }
    let (recovered, _) = FsShield::recover(make_enclave(), honest).expect("honest recovery");
    assert_eq!(recovered.read("/ckpt").expect("read"), b"fresh weights");
}

#[test]
fn audit_service_detects_rollback_across_restarts() {
    // The enclave restarts and loses its in-memory metadata; the CAS
    // auditing service still knows the freshest version.
    let store = UntrustedStore::new();
    let mut audit = AuditService::new();

    // First enclave lifetime: two updates, both reported to CAS.
    let digests = {
        let mut shield = FsShield::new(enclave(b"audited trainer"), store.clone());
        shield.add_policy(PathPolicy::new("/", Policy::EncryptAuth));
        shield.write("/model", b"v1").expect("write");
        let d1 = shield.audit_digest("/model").expect("digest");
        audit.record_update("w1", "/model", 1, d1);
        shield.write("/model", b"v2").expect("write");
        let d2 = shield.audit_digest("/model").expect("digest");
        audit.record_update("w1", "/model", 2, d2);
        (d1, d2)
    };

    // Attacker rolls the file back; a fresh enclave, presented with the
    // rolled-back state, checks with CAS before trusting it.
    assert!(matches!(
        audit.verify("/model", 1, digests.0),
        Err(CasError::RollbackDetected(_))
    ));
    assert!(audit.verify("/model", 2, digests.1).is_ok());
    assert_eq!(audit.violations(), 1);
}

#[test]
fn cas_database_rollback_detected() {
    let disk = UntrustedStore::new();
    let cas_enclave = enclave(b"cas with db");
    let path = "/cas/rollback-test-db";
    let mut db = KvStore::create(cas_enclave.clone(), disk.clone(), path).expect("create");
    db.put(b"policy/svc", b"v1 secrets").expect("put");
    let old_image = disk.raw_contents(path).expect("stored");
    db.put(b"policy/svc", b"v2 secrets").expect("put");
    drop(db);
    disk.raw_put(path, old_image);
    assert!(matches!(
        KvStore::open(cas_enclave, disk, path),
        Err(CasError::StoreCorrupted(_))
    ));
}

#[test]
fn sealed_checkpoint_rollback_detected_via_audit() {
    use rand::SeedableRng;
    use securetf::secure_session::SecureSession;
    use securetf_tensor::layers;
    use securetf_tensor::optimizer::Sgd;

    let store = UntrustedStore::new();
    let mut audit = AuditService::new();
    let platform = Platform::builder().build();
    let e = platform
        .create_enclave(
            &EnclaveImage::builder().code(b"ckpt trainer").build(),
            ExecutionMode::Hardware,
        )
        .expect("enclave");
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let model = layers::mlp_classifier(16, &[8], 10, &mut rng).expect("model");
    let mut session = SecureSession::new(e, model);
    let data = securetf_data::synthetic_mnist(50, 2);
    let mut sgd = Sgd::new(0.05);

    // Checkpoint v1 (16-feature synthetic inputs, labels from the dataset).
    let (_, y) = data.batch(0, 50).expect("batch");
    let features: Vec<f32> = (0..50 * 16).map(|i| (i % 7) as f32 * 0.1).collect();
    let x = securetf_tensor::tensor::Tensor::from_vec(&[50, 16], features).expect("tensor");
    session.train_step(x.clone(), y.clone(), &mut sgd).expect("step");
    session.save_checkpoint(&store, "/ckpt");
    let v1_blob = store.raw_contents("/ckpt").expect("stored");
    let v1_digest = securetf_crypto::sha256::digest(&v1_blob);
    audit.record_update("trainer", "/ckpt", 1, v1_digest);

    // Checkpoint v2.
    session.train_step(x, y, &mut sgd).expect("step");
    session.save_checkpoint(&store, "/ckpt");
    let v2_blob = store.raw_contents("/ckpt").expect("stored");
    let v2_digest = securetf_crypto::sha256::digest(&v2_blob);
    audit.record_update("trainer", "/ckpt", 2, v2_digest);

    // Attacker restores v1. Unsealing succeeds (it is validly sealed!),
    // but the audit check exposes the rollback.
    store.raw_put("/ckpt", v1_blob.clone());
    session.restore_checkpoint(&store, "/ckpt").expect("unseal ok");
    let current_digest = securetf_crypto::sha256::digest(
        &store.raw_contents("/ckpt").expect("stored"),
    );
    assert!(matches!(
        audit.verify("/ckpt", 1, current_digest),
        Err(CasError::RollbackDetected(_))
    ));
}
