//! Integration tests for the telemetry subsystem at the service layer:
//! span coverage of an instrumented deployment, the sealed-export
//! fail-closed contract, and the zero-overhead disabled mode.

use securetf::classifier::SecureClassifier;
use securetf::deployment::Deployment;
use securetf::profile::RuntimeProfile;
use securetf_tee::telemetry::{ExportError, SealedSnapshot};
use securetf_tee::{EnclaveImage, ExecutionMode, Platform, SimClock, Telemetry};
use securetf_tensor::graph::Graph;
use securetf_tensor::tensor::Tensor;
use securetf_tflite::model::LiteModel;

fn tiny_model() -> LiteModel {
    let mut g = Graph::new();
    let x = g.placeholder("input", &[0, 8]);
    let w = g.constant(
        "w",
        Tensor::from_vec(&[8, 4], (0..32).map(|i| (i % 7) as f32 * 0.1).collect())
            .expect("weights"),
    );
    let y = g.matmul(x, w).expect("matmul");
    let name = g.nodes()[y.index()].name.clone();
    LiteModel::convert(&g, "input", &name).expect("convert")
}

fn deploy_instrumented(clock: &SimClock, telemetry: &Telemetry) -> SecureClassifier {
    let mut deployment =
        Deployment::instrumented(ExecutionMode::Hardware, clock.clone(), telemetry.clone());
    deployment
        .publish_model("svc", "/m", &tiny_model())
        .expect("publish");
    deployment
        .deploy_classifier("svc", "/m", RuntimeProfile::scone_lite())
        .expect("deploy")
}

#[test]
fn span_tree_covers_the_whole_run_and_attributes_costs() {
    let clock = SimClock::new();
    let telemetry = clock.telemetry();
    {
        let _run = telemetry.span("run");
        let mut classifier = deploy_instrumented(&clock, &telemetry);
        let input = Tensor::full(&[1, 8], 0.5);
        {
            let _serve = telemetry.span("serve");
            for _ in 0..3 {
                classifier.classify(&input).expect("classify");
            }
        }
    }
    let report = telemetry.span_report();

    // The acceptance invariant: per-span self times sum to the run's
    // total virtual time — nothing double-counted, nothing lost.
    assert_eq!(report.total_ns(), clock.now_ns());
    assert_eq!(report.self_sum_ns(), report.total_ns());
    assert!(report.total_ns() > 0, "run advanced no virtual time");

    // The hot paths attributed their costs to the cost counters.
    for counter in ["cost.compute.ns", "cost.paging.ns", "cost.attestation.ns"] {
        assert!(
            telemetry.counter(counter).get() > 0,
            "{counter} was never charged"
        );
    }
    let rendered = report.render();
    assert!(rendered.contains("run:"));
    assert!(rendered.contains("serve:"));
}

#[test]
fn sealed_export_round_trips_and_tamper_fails_closed() {
    let clock = SimClock::new();
    let telemetry = clock.telemetry();
    let mut classifier = deploy_instrumented(&clock, &telemetry);
    let input = Tensor::full(&[1, 8], 0.5);
    classifier.classify(&input).expect("classify");

    let snapshot = telemetry.snapshot();
    assert!(!snapshot.metrics().is_empty());
    let sealed = classifier
        .enclave()
        .seal_telemetry(&snapshot)
        .expect("seal");

    // Round trip: the same identity unseals to a byte-identical snapshot.
    let opened = classifier.enclave().unseal_telemetry(&sealed).expect("unseal");
    assert_eq!(opened.digest(), snapshot.digest());
    assert_eq!(opened, snapshot);

    // Tamper: flipping any ciphertext bit surfaces as a typed integrity
    // error, never as partially decoded telemetry.
    let mut bytes = sealed.as_bytes().to_vec();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    assert_eq!(
        classifier
            .enclave()
            .unseal_telemetry(&SealedSnapshot::from_bytes(bytes))
            .unwrap_err(),
        ExportError::Integrity
    );

    // A different enclave identity (other platform, other measurement)
    // cannot open the export either.
    let alien_platform = Platform::builder().build();
    let alien = alien_platform
        .create_enclave(
            &EnclaveImage::builder().code(b"alien").build(),
            ExecutionMode::Hardware,
        )
        .expect("alien enclave");
    assert_eq!(
        alien.unseal_telemetry(&sealed).unwrap_err(),
        ExportError::Integrity
    );
}

#[test]
fn disabled_telemetry_adds_zero_virtual_overhead_end_to_end() {
    let latency = |instrument: bool| {
        let mut deployment = if instrument {
            let clock = SimClock::new();
            let telemetry = clock.telemetry();
            Deployment::instrumented(ExecutionMode::Hardware, clock, telemetry)
        } else {
            Deployment::new(ExecutionMode::Hardware)
        };
        deployment
            .publish_model("svc", "/m", &tiny_model())
            .expect("publish");
        let mut classifier = deployment
            .deploy_classifier("svc", "/m", RuntimeProfile::scone_lite())
            .expect("deploy");
        let input = Tensor::full(&[1, 8], 0.5);
        classifier.mean_latency_ns(&input, 3).expect("runs")
    };

    let instrumented = latency(true);
    let plain = latency(false);
    assert_eq!(
        instrumented, plain,
        "telemetry must never perturb virtual time"
    );
}

#[test]
fn crypto_data_plane_metrics_move_under_shield_activity() {
    use securetf_crypto::aead::Key;
    use securetf_shield::fs::{FsShield, UntrustedStore};
    use securetf_shield::net::{duplex, PipeEnd, Role, SecureChannel, Transport};
    use std::sync::Arc;

    struct Retry(PipeEnd);
    impl Transport for Retry {
        fn send(&self, message: Vec<u8>) {
            self.0.send(message);
        }
        fn recv(&self) -> Option<Vec<u8>> {
            for _ in 0..200_000 {
                if let Some(m) = self.0.recv() {
                    return Some(m);
                }
                std::thread::yield_now();
            }
            None
        }
    }

    let clock = SimClock::new();
    let telemetry = clock.telemetry();
    let platform = Platform::builder()
        .clock(clock.clone())
        .telemetry(telemetry.clone())
        .build();
    let enclave = |code: &[u8]| -> Arc<securetf_tee::Enclave> {
        platform
            .create_enclave(
                &EnclaveImage::builder().code(code).build(),
                ExecutionMode::Hardware,
            )
            .expect("enclave")
    };

    let bytes_sealed = telemetry.counter("crypto.bytes_sealed");
    let bytes_opened = telemetry.counter("crypto.bytes_opened");
    let seal_ns = telemetry.histogram("crypto.seal_ns");

    // fs shield: a protected write seals, a read opens.
    let store = UntrustedStore::new();
    let mut shield = FsShield::with_key(enclave(b"fs"), store, Key::from_bytes([5; 32]));
    let payload = vec![0xa5u8; 100_000];
    {
        let _span = telemetry.span("fs-shield");
        shield.write("/model", &payload).expect("write");
        assert_eq!(bytes_sealed.get(), payload.len() as u64);
        assert!(seal_ns.snapshot().count > 0, "seal latency never recorded");
        assert!(
            seal_ns.snapshot().sum_ns > 0,
            "seal latency histogram recorded zero cost"
        );
        assert_eq!(shield.read("/model").expect("read"), payload);
        assert_eq!(bytes_opened.get(), payload.len() as u64);
    }

    // net shield: every record sealed on send is opened on receive.
    let sealed_before = bytes_sealed.get();
    let opened_before = bytes_opened.get();
    let seal_count_before = seal_ns.snapshot().count;
    let (pa, pb) = duplex(None);
    let ea = enclave(b"net-a");
    let eb = enclave(b"net-b");
    let init = std::thread::spawn(move || {
        SecureChannel::handshake(Retry(pa), ea, Role::Initiator).expect("initiator")
    });
    let mut b = SecureChannel::handshake(Retry(pb), eb, Role::Responder).expect("responder");
    let mut a = init.join().expect("initiator thread");
    {
        let _span = telemetry.span("net-shield");
        a.send(b"four byte payloads").expect("send");
        assert_eq!(bytes_sealed.get() - sealed_before, 18);
        assert!(seal_ns.snapshot().count > seal_count_before);
        assert_eq!(b.recv().expect("recv"), b"four byte payloads");
        assert_eq!(bytes_opened.get() - opened_before, 18);
    }
}
