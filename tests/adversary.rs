//! Dolev-Yao adversary tests (threat model §2.3): the attacker controls
//! storage and network; every manipulation must be detected — and none
//! may ever corrupt results silently.

use securetf_shield::fs::{FsShield, PathPolicy, Policy, UntrustedStore};
use securetf_shield::net::{duplex, Adversary, Role, SecureChannel, Tamper, Transport};
use securetf_shield::ShieldError;
use securetf_tee::{EnclaveImage, ExecutionMode, Platform};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn enclave(code: &[u8]) -> Arc<securetf_tee::Enclave> {
    let platform = Platform::builder().build();
    platform
        .create_enclave(
            &EnclaveImage::builder().code(code).build(),
            ExecutionMode::Hardware,
        )
        .expect("enclave")
}

/// Spin-waiting transport for threaded handshakes.
struct Spin(securetf_shield::net::PipeEnd);

impl Transport for Spin {
    fn send(&self, m: Vec<u8>) {
        self.0.send(m);
    }

    fn recv(&self) -> Option<Vec<u8>> {
        for _ in 0..5_000_000 {
            if let Some(m) = self.0.recv() {
                return Some(m);
            }
            std::thread::yield_now();
        }
        None
    }
}

fn channel_pair(
    adversary: Option<Adversary>,
) -> (SecureChannel<Spin>, SecureChannel<Spin>) {
    let (a, b) = duplex(adversary);
    let eb = enclave(b"responder");
    let resp =
        std::thread::spawn(move || SecureChannel::handshake(Spin(b), eb, Role::Responder));
    let init = SecureChannel::handshake(Spin(a), enclave(b"initiator"), Role::Initiator)
        .expect("handshake");
    (init, resp.join().expect("join").expect("handshake"))
}

#[test]
fn every_record_bit_flip_is_detected() {
    // Flip a different byte of the first data record in each trial.
    for target_byte in [0usize, 1, 8, 15, 31] {
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        let adversary: Adversary = Arc::new(move |_| {
            // Messages 0 and 1 are the handshake keys.
            if c.fetch_add(1, Ordering::SeqCst) == 2 {
                Tamper::FlipBit(target_byte)
            } else {
                Tamper::Pass
            }
        });
        let (mut alice, mut bob) = channel_pair(Some(adversary));
        alice.send(b"model gradients batch 0").unwrap();
        assert!(
            matches!(bob.recv(), Err(ShieldError::ChannelTampered(_))),
            "flip at byte {target_byte} undetected"
        );
    }
}

#[test]
fn handshake_mitm_changes_transcripts() {
    // An adversary replacing a handshake key ends up with two channels
    // that cannot talk to each other (and mismatched transcripts, which
    // the attestation binding would expose).
    let counter = Arc::new(AtomicUsize::new(0));
    let c = counter.clone();
    let adversary: Adversary = Arc::new(move |_| {
        if c.fetch_add(1, Ordering::SeqCst) == 0 {
            Tamper::FlipBit(3) // corrupt the initiator's public key
        } else {
            Tamper::Pass
        }
    });
    let (mut alice, mut bob) = channel_pair(Some(adversary));
    assert_ne!(
        alice.transcript_hash(),
        bob.transcript_hash(),
        "transcripts must diverge under key substitution"
    );
    alice.send(b"secret").unwrap();
    assert!(bob.recv().is_err(), "keys must not match after MITM");
}

#[test]
fn storage_adversary_cannot_fool_the_shield() {
    let store = UntrustedStore::new();
    let mut shield = FsShield::new(enclave(b"storage victim"), store.clone());
    shield.add_policy(PathPolicy::new("/", Policy::EncryptAuth));
    shield.write("/data/a", b"alpha contents").expect("write");
    shield.write("/data/b", b"beta contents").expect("write");

    // Attack 1: byte corruption.
    store.corrupt("/data/a", 25);
    assert!(shield.read("/data/a").is_err());

    // Attack 2: whole-file substitution with another valid file.
    let b_raw = store.raw_contents("/data/b").expect("stored");
    store.raw_put("/data/a", b_raw);
    assert!(shield.read("/data/a").is_err());

    // Attack 3: deletion.
    store.raw_delete("/data/a");
    assert!(matches!(
        shield.read("/data/a"),
        Err(ShieldError::FileNotFound(_))
    ));

    // The untouched file still reads fine.
    assert_eq!(shield.read("/data/b").expect("read"), b"beta contents");
}

#[test]
fn whole_store_rollback_rejected_within_session() {
    // The adversary snapshots the entire store — every blob validly
    // encrypted, the manifest validly sealed — and restores it after the
    // enclave has moved on. In-session, per-file version metadata makes
    // the stale ciphertext fail authentication.
    let store = UntrustedStore::new();
    let mut shield = FsShield::new(enclave(b"rollback victim"), store.clone());
    shield.add_policy(PathPolicy::new("/", Policy::EncryptAuth));
    shield.write("/data/a", b"epoch 1").expect("write");
    let old_image = store.snapshot();
    shield.write("/data/a", b"epoch 2").expect("write");
    shield.write("/data/new", b"born later").expect("write");

    store.restore(&old_image);
    assert!(
        matches!(shield.read("/data/a"), Err(ShieldError::FileTampered(_))),
        "stale-but-valid ciphertext must not authenticate"
    );
    // The rollback also erased a file the enclave knows exists: surfaced
    // as tampering (the metadata says it must be there), not a 404.
    assert!(shield.read("/data/new").is_err());
}

#[test]
fn truncation_attack_rejected_at_any_length() {
    // Chopping a protected file — to one chunk boundary, mid-chunk, or
    // to nothing — must always be detected, never read back short.
    use securetf_shield::fs::CHUNK_SIZE;
    let payload: Vec<u8> = (0..2 * CHUNK_SIZE + 333).map(|i| (i % 191) as u8).collect();
    let raw_len = {
        let store = UntrustedStore::new();
        let mut shield = FsShield::new(enclave(b"truncation victim"), store.clone());
        shield.add_policy(PathPolicy::new("/", Policy::EncryptAuth));
        shield.write("/data/f", &payload).expect("write");
        store.raw_contents("/data/f").expect("stored").len()
    };
    for keep in [0, 1, 8, raw_len / 2, raw_len - 1] {
        let store = UntrustedStore::new();
        let mut shield = FsShield::new(enclave(b"truncation victim"), store.clone());
        shield.add_policy(PathPolicy::new("/", Policy::EncryptAuth));
        shield.write("/data/f", &payload).expect("write");
        assert!(
            store.truncate("/data/f", keep),
            "truncate to {keep} must apply"
        );
        assert!(
            shield.read("/data/f").is_err(),
            "read after truncation to {keep} bytes must fail"
        );
        assert!(
            shield.read_range("/data/f", 0, 10).is_err(),
            "range read after truncation to {keep} bytes must fail"
        );
    }
}

#[test]
fn quote_forgery_rejected_everywhere() {
    use securetf_cas::policy::ServicePolicy;
    use securetf_cas::service::CasService;
    use securetf_cas::CasError;

    let platform = Platform::builder().build();
    let image = EnclaveImage::builder().code(b"honest worker").build();
    let worker = platform
        .create_enclave(&image, ExecutionMode::Hardware)
        .expect("worker");
    let cas_enclave = platform
        .create_enclave(
            &EnclaveImage::builder().code(b"cas").build(),
            ExecutionMode::Hardware,
        )
        .expect("cas");
    let mut cas = CasService::new(cas_enclave, platform.fleet_verifier());
    cas.register_policy(
        ServicePolicy::new("svc")
            .allow_measurement(image.measurement())
            .with_secret("k", b"v"),
    )
    .expect("policy");

    let good = worker.quote(b"x").expect("quote");

    // Forge 1: flipped signature bit.
    let mut forged = good.clone();
    forged.signature[7] ^= 1;
    assert!(matches!(
        cas.attest_and_provision(&forged, "svc"),
        Err(CasError::QuoteRejected(_))
    ));

    // Forge 2: measurement swap (claim to be the allowed enclave).
    let rogue_image = EnclaveImage::builder().code(b"rogue worker").build();
    let rogue = platform
        .create_enclave(&rogue_image, ExecutionMode::Hardware)
        .expect("rogue");
    let mut laundered = rogue.quote(b"x").expect("quote");
    laundered.mrenclave = image.measurement();
    assert!(matches!(
        cas.attest_and_provision(&laundered, "svc"),
        Err(CasError::QuoteRejected(_))
    ));

    // Forge 3: report-data swap on a genuine quote.
    let mut replayed = good.clone();
    replayed.report_data[0] ^= 1;
    assert!(matches!(
        cas.attest_and_provision(&replayed, "svc"),
        Err(CasError::QuoteRejected(_))
    ));

    // The genuine quote still works.
    assert!(cas.attest_and_provision(&good, "svc").is_ok());
}

#[test]
fn dropped_and_reordered_gradients_never_corrupt_silently() {
    // Drop the 3rd data record: the receiver must error, not deliver the
    // 4th record as if it were the 3rd.
    let counter = Arc::new(AtomicUsize::new(0));
    let c = counter.clone();
    let adversary: Adversary = Arc::new(move |_| {
        if c.fetch_add(1, Ordering::SeqCst) == 4 {
            Tamper::Drop
        } else {
            Tamper::Pass
        }
    });
    let (mut alice, mut bob) = channel_pair(Some(adversary));
    alice.send(b"grad 0").unwrap();
    alice.send(b"grad 1").unwrap();
    alice.send(b"grad 2").unwrap();
    assert_eq!(bob.recv().expect("r0"), b"grad 0");
    assert_eq!(bob.recv().expect("r1"), b"grad 1");
    // "grad 2" was dropped; nothing else may be accepted in its place.
    assert!(bob.recv().is_err());
}
