//! Property tests of the serving wire codec (ISSUE 7 satellite): the
//! encode/decode pairs roundtrip exactly, every strict truncation is
//! rejected, garbage tags are rejected, trailing bytes are rejected,
//! and id salvage recovers the header id whenever the tag parses.

use proptest::prelude::*;
use securetf::serving::{
    decode_request, decode_response, encode_request, encode_response, is_goodbye,
    salvage_request_id, Request, Response,
};
use securetf_tensor::tensor::Tensor;

/// A well-formed request from seeded parts. Payload values come from a
/// finite grid so equality is exact (no NaN).
fn build_request(id: u64, deadline: Option<u64>, dims: &[usize], cells: &[u8]) -> Request {
    let count: usize = dims.iter().product();
    let data: Vec<f32> = (0..count)
        .map(|i| cells[i % cells.len()] as f32 * 0.125 - 16.0)
        .collect();
    let input = Tensor::from_vec(dims, data).unwrap();
    match deadline {
        Some(d) => Request::with_deadline(id, input, d),
        None => Request::new(id, input),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn request_roundtrips_exactly(
        id in any::<u64>(),
        has_deadline in any::<bool>(),
        deadline_val in any::<u64>(),
        rows in 1usize..4,
        cols in 1usize..9,
        cells in prop::collection::vec(any::<u8>(), 1..32),
    ) {
        let request = build_request(id, has_deadline.then_some(deadline_val), &[rows, cols], &cells);
        let decoded = decode_request(&encode_request(&request)).unwrap();
        prop_assert_eq!(decoded, request);
    }

    #[test]
    fn response_roundtrips_exactly(
        id in any::<u64>(),
        label in any::<u32>(),
        retry in any::<u64>(),
        message in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let message = String::from_utf8_lossy(&message).into_owned();
        for response in [
            Response::Label { id, label },
            Response::Error { id, message },
            Response::Unavailable { id, retry_after_ns: retry },
        ] {
            let decoded = decode_response(&encode_response(&response)).unwrap();
            prop_assert_eq!(decoded, response);
        }
    }

    #[test]
    fn truncated_requests_always_rejected(
        id in any::<u64>(),
        has_deadline in any::<bool>(),
        deadline_val in any::<u64>(),
        cols in 1usize..9,
        cells in prop::collection::vec(any::<u8>(), 1..32),
        cut in any::<prop::sample::Index>(),
    ) {
        let frame = encode_request(&build_request(id, has_deadline.then_some(deadline_val), &[1, cols], &cells));
        // Every strict prefix must fail: the dims fields pin the exact
        // frame length, so a shorter frame is always truncation.
        let keep = cut.index(frame.len());
        prop_assert!(decode_request(&frame[..keep]).is_err());
        // ...and the header id survives whenever the tag + id prefix does.
        if keep >= 9 {
            prop_assert_eq!(salvage_request_id(&frame[..keep]), Some(id));
        }
    }

    #[test]
    fn truncated_responses_always_rejected(
        id in any::<u64>(),
        label in any::<u32>(),
        retry in any::<u64>(),
        message in prop::collection::vec(any::<u8>(), 0..48),
        cut in any::<prop::sample::Index>(),
    ) {
        let message = String::from_utf8_lossy(&message).into_owned();
        for response in [
            Response::Label { id, label },
            Response::Error { id, message },
            Response::Unavailable { id, retry_after_ns: retry },
        ] {
            let frame = encode_response(&response);
            let keep = cut.index(frame.len());
            prop_assert!(decode_response(&frame[..keep]).is_err());
        }
    }

    #[test]
    fn garbage_prefix_rejected(
        tag in any::<u8>(),
        body in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        // Any frame whose tag byte is not a known kind must be
        // rejected outright, whatever follows.
        let mut frame = vec![tag];
        frame.extend_from_slice(&body);
        if tag != b'Q' && tag != b'D' {
            prop_assert!(decode_request(&frame).is_err());
            prop_assert_eq!(salvage_request_id(&frame), None);
        }
        if tag != b'R' && tag != b'E' && tag != b'U' {
            prop_assert!(decode_response(&frame).is_err());
        }
        if frame != [b'B'] {
            prop_assert!(!is_goodbye(&frame));
        }
    }

    #[test]
    fn trailing_bytes_rejected(
        id in any::<u64>(),
        has_deadline in any::<bool>(),
        deadline_val in any::<u64>(),
        cols in 1usize..9,
        cells in prop::collection::vec(any::<u8>(), 1..16),
        label in any::<u32>(),
        junk in any::<u8>(),
    ) {
        let mut frame = encode_request(&build_request(id, has_deadline.then_some(deadline_val), &[1, cols], &cells));
        frame.push(junk);
        prop_assert!(decode_request(&frame).is_err());
        let mut frame = encode_response(&Response::Label { id, label });
        frame.push(junk);
        prop_assert!(decode_response(&frame).is_err());
    }
}
