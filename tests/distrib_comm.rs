//! Comm-plane properties (ISSUE 8 satellites): the tagged wire frames
//! roundtrip (dense exactly, quantized within half a quantization
//! step), every strict truncation / unknown tag / trailing byte is
//! rejected, int8 + error feedback converges next to dense training,
//! and the wire schedule (overlap, shard count) never changes the
//! arithmetic.

use proptest::prelude::*;
use securetf_distrib::cluster::{Cluster, ClusterConfig};
use securetf_distrib::comm::{Codec, CommConfig};
use securetf_distrib::trainer::DistributedTrainer;
use securetf_distrib::wire;
use securetf_tee::ExecutionMode;
use securetf_tensor::layers;
use securetf_tensor::tensor::Tensor;

/// Seeded multi-variable entry list. Values come from a finite grid
/// (no NaN), so dense equality is exact.
fn build_entries(vars: usize, cols: usize, cells: &[u8]) -> Vec<(u32, Tensor)> {
    (0..vars)
        .map(|v| {
            let data: Vec<f32> = (0..cols)
                .map(|i| cells[(v * cols + i) % cells.len()] as f32 * 0.125 - 16.0)
                .collect();
            (v as u32 * 3, Tensor::from_vec(&[cols], data).unwrap())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dense_frames_roundtrip_exactly(
        vars in 1usize..5,
        cols in 1usize..17,
        cells in prop::collection::vec(any::<u8>(), 1..32),
    ) {
        let entries = build_entries(vars, cols, &cells);
        let frame = wire::encode_frame(&entries, Codec::Dense);
        let decoded = wire::decode_frame(&frame).unwrap();
        prop_assert_eq!(decoded, entries);
        prop_assert_eq!(frame.len() as u64, wire::dense_frame_len(&build_entries(vars, cols, &cells)));
    }

    #[test]
    fn quantized_frames_bounded_error(
        vars in 1usize..5,
        cols in 1usize..17,
        cells in prop::collection::vec(any::<u8>(), 1..32),
    ) {
        let entries = build_entries(vars, cols, &cells);
        let frame = wire::encode_frame(&entries, Codec::Quantized);
        let decoded = wire::decode_frame(&frame).unwrap();
        prop_assert_eq!(decoded.len(), entries.len());
        for ((id, original), (did, lossy)) in entries.iter().zip(&decoded) {
            prop_assert_eq!(id, did);
            prop_assert_eq!(original.shape(), lossy.shape());
            // Per-tensor scale: worst-case error is half a step.
            let max_abs = original.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let half_step = max_abs / 127.0 / 2.0 + 1e-6;
            for (a, b) in original.data().iter().zip(lossy.data()) {
                prop_assert!((a - b).abs() <= half_step, "{a} vs {b} (bound {half_step})");
            }
        }
        // Quantization is deterministic: same input, same bytes.
        prop_assert_eq!(frame, wire::encode_frame(&build_entries(vars, cols, &cells), Codec::Quantized));
    }

    #[test]
    fn truncated_frames_always_rejected(
        vars in 1usize..4,
        cols in 1usize..9,
        cells in prop::collection::vec(any::<u8>(), 1..32),
        quantized in any::<bool>(),
        cut in any::<prop::sample::Index>(),
    ) {
        let codec = if quantized { Codec::Quantized } else { Codec::Dense };
        let frame = wire::encode_frame(&build_entries(vars, cols, &cells), codec);
        // Every strict prefix must fail: the rank/count fields pin the
        // exact frame length, so a shorter frame is always truncation.
        let keep = cut.index(frame.len());
        prop_assert!(wire::decode_frame(&frame[..keep]).is_err());
        // A truncated chunk poisons a whole multi-chunk decode.
        let good = wire::encode_frame(&[(1000, Tensor::zeros(&[2]))], codec);
        prop_assert!(wire::decode_frames(&[good, frame[..keep].to_vec()]).is_err());
    }

    #[test]
    fn unknown_tags_and_trailing_bytes_rejected(
        tag in any::<u8>(),
        body in prop::collection::vec(any::<u8>(), 0..64),
        cols in 1usize..9,
        cells in prop::collection::vec(any::<u8>(), 1..16),
        quantized in any::<bool>(),
        junk in any::<u8>(),
    ) {
        if tag != wire::FRAME_DENSE && tag != wire::FRAME_QUANTIZED {
            let mut frame = vec![tag];
            frame.extend_from_slice(&body);
            prop_assert!(wire::decode_frame(&frame).is_err());
        }
        let codec = if quantized { Codec::Quantized } else { Codec::Dense };
        let mut frame = wire::encode_frame(&build_entries(1, cols, &cells), codec);
        frame.push(junk);
        prop_assert!(wire::decode_frame(&frame).is_err());
    }
}

fn final_loss_bits(workers: usize, ps: usize, comm: CommConfig) -> u32 {
    let cluster = Cluster::new(ClusterConfig {
        workers,
        parameter_servers: ps,
        mode: ExecutionMode::Simulation,
        network_shield: true,
        ..ClusterConfig::default()
    })
    .expect("cluster");
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
    let model = layers::mlp_classifier(784, &[24], 10, &mut rng).expect("model");
    let data = securetf_data::synthetic_mnist(200, 4);
    let mut trainer = DistributedTrainer::new(cluster, model, data, 50, 0.15).expect("trainer");
    trainer.set_comm_config(comm);
    let report = trainer.train_steps(8).expect("training");
    assert!(report.final_loss.is_finite());
    report.final_loss.to_bits()
}

#[test]
fn quantized_error_feedback_tracks_dense_training() {
    let dense = f32::from_bits(final_loss_bits(
        2,
        1,
        CommConfig { codec: Codec::Dense, overlap: true },
    ));
    let quant = f32::from_bits(final_loss_bits(
        2,
        1,
        CommConfig { codec: Codec::Quantized, overlap: true },
    ));
    let drift = (dense - quant).abs() / dense.abs().max(f32::EPSILON);
    assert!(
        drift <= 0.02,
        "quantized loss {quant} drifts {:.2}% from dense {dense} (cap 2%)",
        drift * 100.0
    );
}

#[test]
fn wire_schedule_never_changes_the_arithmetic() {
    // Overlap and PS sharding alter only the virtual-time schedule; the
    // applied update — and therefore the loss — must be bit-identical.
    for codec in [Codec::Dense, Codec::Quantized] {
        let reference = final_loss_bits(3, 1, CommConfig { codec, overlap: true });
        for (ps, overlap) in [(1, false), (2, true), (2, false)] {
            let bits = final_loss_bits(3, ps, CommConfig { codec, overlap });
            assert_eq!(
                bits, reference,
                "{codec:?} loss diverged at ps={ps} overlap={overlap}"
            );
        }
    }
}
