//! Crash-point enumeration for the fs shield's journaled writes.
//!
//! The acceptance criterion for crash consistency is exhaustive, not
//! probabilistic: for *every* host-op prefix of a journaled write —
//! crash after exactly `k` ops, for all `k` — remounting the shield via
//! [`FsShield::recover`] must yield exactly the pre-write or the
//! post-write committed state, never a hybrid. These tests first measure
//! the op count of a fault-free write, then replay the same write once
//! per possible crash point (clean and torn) and check the invariant at
//! each one.

use securetf_shield::fs::{FsShield, PathPolicy, Policy, UntrustedStore, CHUNK_SIZE};
use securetf_shield::ShieldError;
use securetf_tee::{Enclave, EnclaveImage, ExecutionMode, Platform};
use std::sync::Arc;

const PATH: &str = "/secure/f";

fn enclave_on(platform: &Platform) -> Arc<Enclave> {
    platform
        .create_enclave(
            &EnclaveImage::builder().code(b"crash sweep").build(),
            ExecutionMode::Hardware,
        )
        .expect("enclave boots")
}

fn shield_on(platform: &Platform, store: &UntrustedStore) -> FsShield {
    let mut shield = FsShield::new(enclave_on(platform), store.clone());
    shield.add_policy(PathPolicy::new("/secure/", Policy::EncryptAuth));
    shield
}

/// Host ops consumed by one fault-free journaled overwrite of `PATH`
/// from `pre` to `post`.
fn ops_per_write(pre: &[u8], post: &[u8]) -> u64 {
    let platform = Platform::builder().build();
    let store = UntrustedStore::new();
    let mut shield = shield_on(&platform, &store);
    shield.write(PATH, pre).expect("pre write");
    let before = store.op_count();
    shield.write(PATH, post).expect("post write");
    store.op_count() - before
}

/// Crashes the host after exactly `k` ops of the `pre`→`post` overwrite
/// (optionally leaving a torn prefix of the dying op), restarts it, and
/// returns the file contents a freshly recovered shield observes.
fn state_after_crash(pre: &[u8], post: &[u8], k: u64, torn: Option<usize>) -> Vec<u8> {
    let platform = Platform::builder().build();
    let store = UntrustedStore::new();
    let mut shield = shield_on(&platform, &store);
    shield.write(PATH, pre).expect("pre write");
    match torn {
        Some(bytes) => store.fail_after_ops_torn(k, bytes),
        None => store.fail_after_ops(k),
    }
    let died = shield.write(PATH, post);
    assert!(
        matches!(died, Err(ShieldError::HostCrashed(_))),
        "crash after {k} ops must surface HostCrashed, got {died:?}"
    );
    store.host_restart();
    let (recovered, _report) =
        FsShield::recover(enclave_on(&platform), store).expect("recovery after crash point");
    recovered.read(PATH).expect("file readable after recovery")
}

/// The tentpole invariant, swept over every crash point of one write:
/// `k` surviving ops leave the pre state for `k <= chunks` (nothing
/// committed yet) and the post state for `k >= chunks + 1` (the commit
/// record landed), and never anything else.
fn sweep(pre: Vec<u8>, post: Vec<u8>, torn: Option<usize>) {
    let chunks = post.len().div_ceil(CHUNK_SIZE) as u64;
    let total = ops_per_write(&pre, &post);
    assert_eq!(
        total,
        2 * chunks + 4,
        "journal shape changed: update this sweep"
    );
    for k in 0..total {
        let got = state_after_crash(&pre, &post, k, torn);
        let expect_post = k > chunks;
        if expect_post {
            assert_eq!(
                got, post,
                "crash after {k}/{total} ops (commit durable) must recover post state"
            );
        } else {
            assert_eq!(
                got, pre,
                "crash after {k}/{total} ops (commit not durable) must recover pre state"
            );
        }
    }
}

#[test]
fn every_crash_point_of_a_single_chunk_write_is_consistent() {
    let pre = b"the old committed contents".to_vec();
    let post: Vec<u8> = (0..CHUNK_SIZE / 2).map(|i| (i % 251) as u8).collect();
    sweep(pre, post, None);
}

#[test]
fn every_crash_point_of_a_multi_chunk_write_is_consistent() {
    let pre: Vec<u8> = (0..CHUNK_SIZE + 17).map(|i| (i % 13) as u8).collect();
    let post: Vec<u8> = (0..3 * CHUNK_SIZE + 5).map(|i| (i % 157) as u8).collect();
    sweep(pre, post, None);
}

#[test]
fn every_torn_crash_point_is_consistent() {
    // The dying op lands a prefix of its payload instead of nothing —
    // the torn bytes must never be mistaken for a committed write.
    let pre: Vec<u8> = (0..CHUNK_SIZE).map(|i| (i % 29) as u8).collect();
    let post: Vec<u8> = (0..2 * CHUNK_SIZE + 100).map(|i| (i % 101) as u8).collect();
    sweep(pre.clone(), post.clone(), Some(1));
    sweep(pre, post, Some(39));
}

#[test]
fn every_crash_point_of_a_fresh_file_write_is_consistent() {
    // No pre state: every crash point must recover to "file absent" or
    // the complete post state, never a partial file.
    let post: Vec<u8> = (0..2 * CHUNK_SIZE).map(|i| (i % 83) as u8).collect();
    let chunks = post.len().div_ceil(CHUNK_SIZE) as u64;
    let total = {
        let platform = Platform::builder().build();
        let store = UntrustedStore::new();
        let mut shield = shield_on(&platform, &store);
        let before = store.op_count();
        shield.write(PATH, &post).expect("write");
        store.op_count() - before
    };
    for k in 0..total {
        let platform = Platform::builder().build();
        let store = UntrustedStore::new();
        let mut shield = shield_on(&platform, &store);
        store.fail_after_ops(k);
        assert!(shield.write(PATH, &post).is_err());
        store.host_restart();
        let (recovered, _report) =
            FsShield::recover(enclave_on(&platform), store).expect("recovery");
        match recovered.read(PATH) {
            Ok(got) => {
                assert!(k > chunks, "crash after {k} ops: nothing was committed");
                assert_eq!(got, post, "crash after {k} ops left a hybrid file");
            }
            Err(ShieldError::FileNotFound(_)) => {
                assert!(k <= chunks, "crash after {k} ops: the commit was durable");
            }
            Err(e) => panic!("crash after {k} ops: unexpected error {e:?}"),
        }
    }
}

#[test]
fn repeated_crashes_across_restarts_converge() {
    // A hostile host that crashes during recovery's own cleanup, over
    // and over, must still converge: each remount sees a consistent
    // state and eventually the txn residue is reclaimed.
    let platform = Platform::builder().build();
    let store = UntrustedStore::new();
    let mut shield = shield_on(&platform, &store);
    let pre = b"generation zero".to_vec();
    let post: Vec<u8> = (0..2 * CHUNK_SIZE).map(|i| (i % 7) as u8).collect();
    shield.write(PATH, &pre).expect("pre write");
    // Die right after the commit record: recovery has roll-forward work.
    store.fail_after_ops(3);
    assert!(shield.write(PATH, &post).is_err());
    let mut contents = Vec::new();
    for crash_budget in 0..12 {
        store.host_restart();
        store.fail_after_ops(crash_budget);
        match FsShield::recover(enclave_on(&platform), store.clone()) {
            Ok((recovered, _)) => {
                contents = recovered.read(PATH).expect("readable");
                break;
            }
            Err(ShieldError::HostCrashed(_)) => continue,
            Err(e) => panic!("recovery failed for a non-crash reason: {e:?}"),
        }
    }
    assert_eq!(contents, post, "roll-forward survived repeated crashes");
    store.host_restart();
    let (recovered, report) =
        FsShield::recover(enclave_on(&platform), store.clone()).expect("final recovery");
    assert_eq!(recovered.read(PATH).expect("readable"), post);
    assert_eq!(report.rolled_forward, 0, "roll-forward already persisted");
    assert!(
        !store.paths().iter().any(|p| p.contains("/txn/")),
        "txn residue reclaimed"
    );
}
