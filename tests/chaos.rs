//! Chaos matrix: end-to-end training and serving under seeded fault
//! plans.
//!
//! For a matrix of seeds, a deterministic [`FaultPlan`] is generated and
//! a supervised training run executes under it. The assertions are the
//! robustness contract of the tentpole:
//!
//! * training *completes* with a finite loss under every survivable
//!   plan — worker crashes, PS stalls, network drops/tampering,
//!   checkpoint corruption and CAS outages included;
//! * the serving path never panics while its enclave is down — it
//!   returns a typed `Response::Unavailable` and recovers after respawn;
//! * an identical seed reproduces the identical fault schedule and the
//!   identical final loss, bit for bit.

use securetf::classifier::SecureClassifier;
use securetf::deployment::Deployment;
use securetf::profile::RuntimeProfile;
use securetf::serving::{decode_response, encode_request, serve, Request, Response};
use securetf_distrib::faults::{FaultEvent, FaultPlan};
use securetf_distrib::supervisor::{Supervisor, SupervisorConfig, SupervisorStats};
use securetf_distrib::trainer::DistributedTrainer;
use securetf_distrib::cluster::{Cluster, ClusterConfig};
use securetf_shield::fs::UntrustedStore;
use securetf_shield::net::{duplex, PipeEnd, Role, SecureChannel, Transport};
use securetf_tee::{EnclaveImage, ExecutionMode, Platform, SimClock, Telemetry};
use securetf_tensor::graph::Graph;
use securetf_tensor::layers::{self, Classifier};
use securetf_tensor::tensor::Tensor;
use securetf_tflite::model::LiteModel;

const SEEDS: [u64; 6] = [1, 7, 42, 1337, 0xDEAD_BEEF, 2026];
const STEPS: u64 = 10;
const WORKERS: usize = 3;

fn small_model() -> Classifier {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
    layers::mlp_classifier(784, &[32], 10, &mut rng).expect("valid model")
}

fn trainer_with_telemetry(telemetry: Telemetry) -> DistributedTrainer {
    let cluster = Cluster::new(ClusterConfig {
        workers: WORKERS,
        parameter_servers: 1,
        mode: ExecutionMode::Simulation,
        network_shield: true,
        runtime_bytes: 8 * 1024 * 1024,
        heap_bytes: 16 * 1024 * 1024,
        telemetry,
        ..ClusterConfig::default()
    })
    .expect("cluster boots");
    let data = securetf_data::synthetic_mnist(300, 5);
    DistributedTrainer::new(cluster, small_model(), data, 100, 0.2).expect("trainer")
}

fn trainer() -> DistributedTrainer {
    trainer_with_telemetry(Telemetry::disabled())
}

struct ChaosRun {
    digest: u64,
    loss_bits: u32,
    stats: SupervisorStats,
}

fn run_seed(seed: u64) -> ChaosRun {
    let plan = FaultPlan::generate(seed, STEPS, WORKERS);
    let digest = plan.schedule_digest();
    let mut supervisor = Supervisor::new(
        trainer(),
        plan,
        SupervisorConfig::default(),
        UntrustedStore::new(),
    )
    .expect("supervisor boots");
    let report = supervisor
        .train_steps(STEPS)
        .expect("survivable plan completes");
    assert!(
        report.final_loss.is_finite(),
        "seed {seed}: loss {} not finite",
        report.final_loss
    );
    assert_eq!(report.steps, STEPS, "seed {seed}: steps lost");
    assert_eq!(
        report.samples,
        STEPS * WORKERS as u64 * 100,
        "seed {seed}: every step must run with a healed, full worker set"
    );
    ChaosRun {
        digest,
        loss_bits: report.final_loss.to_bits(),
        stats: supervisor.stats(),
    }
}

#[test]
fn training_survives_every_seeded_fault_plan() {
    let mut total_faults = 0u64;
    let mut total_respawns = 0u64;
    for seed in SEEDS {
        let run = run_seed(seed);
        total_faults += run.stats.faults_injected;
        total_respawns += run.stats.respawns;
    }
    // The matrix must actually exercise the fault machinery, not pass
    // vacuously on empty schedules.
    assert!(total_faults >= 10, "only {total_faults} faults injected");
    assert!(total_respawns >= 1, "no respawn was ever exercised");
}

#[test]
fn identical_seed_reproduces_schedule_and_loss_bit_for_bit() {
    for seed in [SEEDS[0], SEEDS[2]] {
        let a = run_seed(seed);
        let b = run_seed(seed);
        assert_eq!(a.digest, b.digest, "seed {seed}: schedule diverged");
        assert_eq!(
            a.loss_bits, b.loss_bits,
            "seed {seed}: final loss diverged bit-wise"
        );
        assert_eq!(a.stats, b.stats, "seed {seed}: recovery path diverged");
    }
}

#[test]
fn identical_seed_reproduces_telemetry_digest_bit_for_bit() {
    // The telemetry contract extends the determinism contract: two runs
    // under the same fault plan must not only converge to the same loss,
    // every counter, gauge and histogram in the registry must agree —
    // asserted through the canonical metrics digest.
    let run = |seed: u64| {
        let telemetry = Telemetry::new(std::sync::Arc::new(SimClock::new()));
        let plan = FaultPlan::generate(seed, STEPS, WORKERS);
        let mut supervisor = Supervisor::new(
            trainer_with_telemetry(telemetry.clone()),
            plan,
            SupervisorConfig::default(),
            UntrustedStore::new(),
        )
        .expect("supervisor boots");
        supervisor
            .train_steps(STEPS)
            .expect("survivable plan completes");
        // Non-vacuous: the run must actually have recorded supervision
        // telemetry before we compare digests.
        assert!(
            telemetry.counter("supervisor.heartbeats").get() > 0,
            "seed {seed}: no heartbeats recorded"
        );
        telemetry.metrics_digest()
    };
    for seed in [SEEDS[1], SEEDS[4]] {
        assert_eq!(
            run(seed),
            run(seed),
            "seed {seed}: telemetry digest diverged between identical runs"
        );
    }
}

#[test]
fn comm_plane_telemetry_digest_is_config_deterministic() {
    // The rebuilt comm plane (ISSUE 8) must keep the determinism
    // contract across its whole configuration space: for every worker
    // count x codec x overlap cell, two same-seed runs agree bit-for-bit
    // on the final loss and on every comm counter/histogram in the
    // registry.
    use securetf_distrib::comm::{Codec, CommConfig};
    let run = |workers: usize, comm: CommConfig| {
        let telemetry = Telemetry::new(std::sync::Arc::new(SimClock::new()));
        let cluster = Cluster::new(ClusterConfig {
            workers,
            parameter_servers: 2,
            mode: ExecutionMode::Simulation,
            network_shield: true,
            runtime_bytes: 8 * 1024 * 1024,
            heap_bytes: 16 * 1024 * 1024,
            telemetry: telemetry.clone(),
            ..ClusterConfig::default()
        })
        .expect("cluster boots");
        let data = securetf_data::synthetic_mnist(300, 5);
        let mut trainer =
            DistributedTrainer::new(cluster, small_model(), data, 100, 0.2).expect("trainer");
        trainer.set_comm_config(comm);
        let report = trainer.train_steps(STEPS).expect("training");
        // Non-vacuous: the comm metrics must actually have recorded.
        assert!(
            telemetry.counter("distrib.comm.bytes_sent").get() > 0,
            "no comm bytes recorded"
        );
        if comm.codec == Codec::Quantized {
            assert!(
                telemetry.counter("distrib.comm.bytes_saved").get() > 0,
                "quantized run saved no bytes"
            );
        }
        (report.final_loss.to_bits(), telemetry.metrics_digest())
    };
    for workers in [2usize, 3] {
        for codec in [Codec::Dense, Codec::Quantized] {
            for overlap in [false, true] {
                let comm = CommConfig { codec, overlap };
                assert_eq!(
                    run(workers, comm),
                    run(workers, comm),
                    "workers={workers} {comm:?}: loss or telemetry digest diverged"
                );
            }
        }
    }
}

#[test]
fn compiler_pipeline_is_telemetry_neutral_when_node_counts_are_equal() {
    // DESIGN.md §16 determinism argument: the pass pipeline may only
    // perturb telemetry when it actually rewrites the graph. On a graph
    // with no dead nodes, no constant subgraphs, and no fusable chains,
    // node counts before and after compilation are equal — and the
    // same-seed metrics digest must be bit-identical with the pipeline
    // on and off.
    use securetf::secure_session::SecureSession;
    use securetf_tensor::optimizer::Sgd;

    // matmul (no bias, no relu) straight into the loss: every node is
    // live from the loss root and nothing folds or fuses. The inference
    // head aliases the logits so no dead softmax dangles off the graph.
    let neutral_model = || {
        let mut g = Graph::new();
        let input = g.placeholder("input", &[0, 16]);
        let labels = g.placeholder("labels", &[0, 4]);
        let w = g.variable(
            "w",
            Tensor::from_vec(&[16, 4], (0..64).map(|i| (i % 9) as f32 * 0.05 - 0.2).collect())
                .expect("sized"),
        );
        let logits = g.matmul(input, w).expect("valid");
        let loss = g.softmax_cross_entropy(logits, labels).expect("valid");
        Classifier {
            graph: g,
            input,
            labels,
            logits,
            probabilities: logits,
            loss,
        }
    };
    let x = Tensor::from_vec(&[8, 16], (0..128).map(|i| (i % 7) as f32 * 0.1 - 0.3).collect())
        .expect("sized");
    let y = {
        let mut data = vec![0.0f32; 32];
        for row in 0..8 {
            data[row * 4 + row % 4] = 1.0;
        }
        Tensor::from_vec(&[8, 4], data).expect("sized")
    };
    let run = |optimize: bool| {
        let telemetry = Telemetry::new(std::sync::Arc::new(SimClock::new()));
        let platform = Platform::builder().telemetry(telemetry.clone()).build();
        let enclave = platform
            .create_enclave(
                &EnclaveImage::builder().code(b"trainer").build(),
                ExecutionMode::Hardware,
            )
            .expect("enclave boots");
        let mut session = SecureSession::new(enclave, neutral_model());
        session.set_graph_optimize(optimize);
        let mut sgd = Sgd::new(0.1);
        let mut loss = 0.0f32;
        for _ in 0..4 {
            loss = session
                .train_step(x.clone(), y.clone(), &mut sgd)
                .expect("trains");
        }
        assert!(
            telemetry.counter("compiler.nodes_eliminated").get() == 0
                && telemetry.counter("compiler.nodes_fused").get() == 0,
            "pipeline recorded work on a graph it cannot rewrite"
        );
        (loss.to_bits(), telemetry.metrics_digest())
    };
    assert_eq!(
        run(true),
        run(false),
        "telemetry digest diverged between pipeline on and off on a no-rewrite graph"
    );

    // Non-vacuity: on a fusable graph (dense layers with bias + relu)
    // the same harness *does* record compiler work.
    let telemetry = Telemetry::new(std::sync::Arc::new(SimClock::new()));
    let platform = Platform::builder().telemetry(telemetry.clone()).build();
    let enclave = platform
        .create_enclave(
            &EnclaveImage::builder().code(b"trainer").build(),
            ExecutionMode::Hardware,
        )
        .expect("enclave boots");
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
    let fusable = layers::mlp_classifier(16, &[8], 4, &mut rng).expect("valid model");
    let mut session = SecureSession::new(enclave, fusable);
    let mut sgd = Sgd::new(0.1);
    session
        .train_step(x.clone(), y.clone(), &mut sgd)
        .expect("trains");
    assert!(
        telemetry.counter("compiler.nodes_fused").get() > 0,
        "fusable graph recorded no compiler work — neutrality test is vacuous"
    );
}

#[test]
fn telemetry_digest_deterministic_with_worker_pool_enabled() {
    // Parallel kernels must not erode the determinism contract: with the
    // in-enclave worker pool splitting every matmul across threads, two
    // same-seed chaos runs still agree on every telemetry counter, and
    // the training loss stays bit-identical to the serial run.
    use securetf_tensor::kernels::WorkerPool;
    let run = |seed: u64, workers: usize| {
        let telemetry = Telemetry::new(std::sync::Arc::new(SimClock::new()));
        let plan = FaultPlan::generate(seed, STEPS, WORKERS);
        let mut trainer = trainer_with_telemetry(telemetry.clone());
        trainer.set_worker_pool(WorkerPool::new(workers));
        let mut supervisor = Supervisor::new(
            trainer,
            plan,
            SupervisorConfig::default(),
            UntrustedStore::new(),
        )
        .expect("supervisor boots");
        let report = supervisor
            .train_steps(STEPS)
            .expect("survivable plan completes");
        (report.final_loss.to_bits(), telemetry.metrics_digest())
    };
    for seed in [SEEDS[0], SEEDS[3]] {
        let (loss_a, digest_a) = run(seed, 4);
        let (loss_b, digest_b) = run(seed, 4);
        assert_eq!(
            digest_a, digest_b,
            "seed {seed}: pooled telemetry digest diverged between identical runs"
        );
        assert_eq!(loss_a, loss_b, "seed {seed}: pooled loss diverged");
        // The pool changes scheduling, never arithmetic: the loss matches
        // the serial run bit-for-bit (the digest legitimately differs —
        // compute virtual time shrinks along the critical path).
        let (serial_loss, _) = run(seed, 1);
        assert_eq!(
            loss_a, serial_loss,
            "seed {seed}: pooled loss diverged from serial"
        );
    }
}

#[test]
fn distinct_seeds_produce_distinct_schedules() {
    let digests: Vec<u64> = SEEDS
        .iter()
        .map(|&s| FaultPlan::generate(s, STEPS, WORKERS).schedule_digest())
        .collect();
    for i in 0..digests.len() {
        for j in i + 1..digests.len() {
            assert_ne!(
                digests[i], digests[j],
                "seeds {} and {} collided",
                SEEDS[i], SEEDS[j]
            );
        }
    }
}

#[test]
fn hand_written_worst_case_plan_is_survived() {
    // Everything at once: all workers crash while the CAS is down, the
    // newest checkpoint is corrupted and the PS stalls.
    let mut plan = FaultPlan::none();
    for w in 0..WORKERS {
        plan = plan.with_event(2, FaultEvent::WorkerCrash { worker: w });
    }
    plan = plan
        .with_event(2, FaultEvent::CasOutage {
            duration_ns: 6_000_000,
        })
        .with_event(2, FaultEvent::ChunkCorruption { offset: 64 })
        .with_event(2, FaultEvent::PsStall {
            delay_ns: 10_000_000,
        });
    let mut supervisor = Supervisor::new(
        trainer(),
        plan,
        SupervisorConfig::default(),
        UntrustedStore::new(),
    )
    .expect("supervisor boots");
    let report = supervisor.train_steps(6).expect("worst case survived");
    assert!(report.final_loss.is_finite());
    assert_eq!(supervisor.stats().respawns, WORKERS as u64);
}

#[test]
fn hand_written_storage_crash_plan_is_survived() {
    // The storage host dies mid-checkpoint (once cleanly, once leaving a
    // torn record), and later rolls the whole store back to an older
    // image. Checkpoints flow through the journaled fs-shield path, so
    // every crash resolves to a committed generation and training
    // completes.
    let plan = FaultPlan::none()
        .with_event(4, FaultEvent::CrashDuringWrite { after_ops: 1 })
        .with_event(7, FaultEvent::TornWrite {
            after_ops: 2,
            torn_bytes: 11,
        })
        .with_event(8, FaultEvent::StorageRollback);
    let mut supervisor = Supervisor::new(
        trainer(),
        plan,
        SupervisorConfig::default(),
        UntrustedStore::new(),
    )
    .expect("supervisor boots");
    let report = supervisor
        .train_steps(STEPS)
        .expect("storage chaos survived");
    assert!(report.final_loss.is_finite());
    assert_eq!(report.samples, STEPS * WORKERS as u64 * 100);
    let stats = supervisor.stats();
    assert!(
        stats.storage_recoveries >= 1,
        "a crash during a checkpoint write must trigger remount recovery"
    );
    assert_eq!(stats.storage_rollbacks, 1);
}

#[test]
fn storage_crash_plans_reproduce_bit_for_bit() {
    // Same-seed determinism must hold on the storage-fault path too:
    // host restarts, re-attestation and shield remounts are all charged
    // to virtual time, never wall-clock.
    let run = |seed: u64| {
        let telemetry = Telemetry::new(std::sync::Arc::new(SimClock::new()));
        let plan = FaultPlan::none()
            .with_event(4, FaultEvent::CrashDuringWrite { after_ops: 0 })
            .with_event(9, FaultEvent::StorageRollback);
        let digest = plan.schedule_digest();
        let mut supervisor = Supervisor::new(
            trainer_with_telemetry(telemetry.clone()),
            plan,
            SupervisorConfig::default(),
            UntrustedStore::new(),
        )
        .expect("supervisor boots");
        let report = supervisor.train_steps(STEPS).expect("plan survived");
        assert!(
            supervisor.stats().storage_recoveries >= 1,
            "seed {seed}: recovery path not exercised"
        );
        (digest, report.final_loss.to_bits(), telemetry.metrics_digest())
    };
    assert_eq!(run(11), run(11), "storage-crash run diverged");
}

// ---------------------------------------------------------------------
// Serving under chaos.
// ---------------------------------------------------------------------

fn tiny_lite_model() -> LiteModel {
    let mut g = Graph::new();
    let x = g.placeholder("input", &[0, 6]);
    let w = g.constant(
        "w",
        Tensor::from_vec(&[6, 3], (0..18).map(|i| (i % 5) as f32 * 0.1).collect())
            .expect("weights"),
    );
    let y = g.matmul(x, w).expect("matmul");
    let name = g.nodes()[y.index()].name.clone();
    LiteModel::convert(&g, "input", &name).expect("convert")
}

struct Spin(PipeEnd);

impl Transport for Spin {
    fn send(&self, m: Vec<u8>) {
        self.0.send(m);
    }

    fn recv(&self) -> Option<Vec<u8>> {
        for _ in 0..200_000 {
            if let Some(m) = self.0.recv() {
                return Some(m);
            }
            std::thread::yield_now();
        }
        None
    }
}

fn side_enclave(tag: &[u8]) -> std::sync::Arc<securetf_tee::Enclave> {
    let platform = Platform::builder().build();
    platform
        .create_enclave(
            &EnclaveImage::builder().code(tag).build(),
            ExecutionMode::Simulation,
        )
        .expect("enclave")
}

fn serving_pair(classifier: &SecureClassifier) -> (SecureChannel<Spin>, SecureChannel<Spin>) {
    // The session terminates in a front-end enclave so it survives the
    // classifier enclave's crash (and keeps answering with typed
    // Unavailable frames while it is down).
    let _ = classifier;
    let (client_end, server_end) = duplex(None);
    let frontend = side_enclave(b"chaos frontend");
    let server = std::thread::spawn(move || {
        SecureChannel::handshake(Spin(server_end), frontend, Role::Responder).expect("handshake")
    });
    let client = SecureChannel::handshake(
        Spin(client_end),
        side_enclave(b"chaos client"),
        Role::Initiator,
    )
    .expect("handshake");
    (client, server.join().expect("join"))
}

#[test]
fn serving_returns_unavailable_during_outages_and_recovers() {
    let mut deployment = Deployment::new(ExecutionMode::Hardware);
    deployment
        .publish_model("svc", "/m", &tiny_lite_model())
        .expect("publish");
    let mut classifier = deployment
        .deploy_classifier("svc", "/m", RuntimeProfile::scone_lite())
        .expect("deploy");
    let (mut client, mut server) = serving_pair(&classifier);
    let input = Tensor::full(&[1, 6], 0.5);

    // Alternate outages and recoveries over several cycles; the serve
    // loop must never panic and must answer every request.
    let mut outage_answers = 0u64;
    let mut healthy_answers = 0u64;
    for cycle in 0..4u64 {
        let down = cycle % 2 == 1;
        if down {
            classifier.enclave().mark_failed();
        } else {
            classifier.enclave().revive();
        }
        for i in 0..3u64 {
            let id = cycle * 10 + i;
            client
                .send(&encode_request(&Request::new(id, input.clone())))
                .expect("client send");
        }
        let served = serve(&mut classifier, &mut server).expect("serve never panics");
        assert_eq!(served, 3, "cycle {cycle}");
        for i in 0..3u64 {
            let id = cycle * 10 + i;
            let frame = client.recv().expect("response");
            match decode_response(&frame).expect("frame") {
                Response::Unavailable { id: got, retry_after_ns } => {
                    assert!(down, "unavailable while healthy (id {got})");
                    assert_eq!(got, id);
                    assert!(retry_after_ns > 0);
                    outage_answers += 1;
                }
                Response::Label { id: got, label } => {
                    assert!(!down, "label during outage (id {got})");
                    assert_eq!(got, id);
                    assert!(label < 3);
                    healthy_answers += 1;
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
    }
    assert_eq!(outage_answers, 6);
    assert_eq!(healthy_answers, 6);

    // The request/response helper sees the typed degradation too.
    classifier.enclave().mark_failed();
    client
        .send(&encode_request(&Request::new(99, input.clone())))
        .expect("send");
    serve(&mut classifier, &mut server).expect("degraded serve");
    let frame = client.recv().expect("response");
    assert!(matches!(
        decode_response(&frame).expect("frame"),
        Response::Unavailable { id: 99, .. }
    ));

    // Full recovery via the helper path.
    classifier.enclave().revive();
    client
        .send(&encode_request(&Request::new(100, input.clone())))
        .expect("send");
    serve(&mut classifier, &mut server).expect("healthy serve");
    let frame = client.recv().expect("response");
    assert!(matches!(
        decode_response(&frame).expect("frame"),
        Response::Label { id: 100, .. }
    ));
}
