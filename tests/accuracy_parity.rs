//! Integration test for the paper's "accuracy" design goal (§3.1):
//! protection must never change results. Training and inference are
//! bit-identical across native, SIM and HW modes.

use rand::SeedableRng;
use securetf::secure_session::SecureSession;
use securetf_tee::{EnclaveImage, ExecutionMode, Platform};
use securetf_tensor::layers;
use securetf_tensor::optimizer::Sgd;

fn train_and_predict(mode: ExecutionMode) -> (Vec<usize>, f64) {
    let platform = Platform::builder().build();
    let enclave = platform
        .create_enclave(
            &EnclaveImage::builder().code(b"parity trainer").build(),
            mode,
        )
        .expect("enclave");
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let model = layers::mlp_classifier(784, &[48], 10, &mut rng).expect("model");
    let mut session = SecureSession::new(enclave, model);
    let data = securetf_data::synthetic_mnist(400, 5);
    let (train, test) = data.split(300);
    let mut sgd = Sgd::new(0.05);
    for _ in 0..8 {
        for start in (0..train.len()).step_by(100) {
            let (x, y) = train.batch(start, 100).expect("batch");
            session.train_step(x, y, &mut sgd).expect("step");
        }
    }
    let (x, _) = test.batch(0, test.len()).expect("batch");
    let preds = session.classify(x).expect("classify");
    let acc = session.accuracy(&test).expect("accuracy");
    (preds, acc)
}

#[test]
fn training_is_bit_identical_across_modes() {
    let (native_preds, native_acc) = train_and_predict(ExecutionMode::Native);
    let (sim_preds, sim_acc) = train_and_predict(ExecutionMode::Simulation);
    let (hw_preds, hw_acc) = train_and_predict(ExecutionMode::Hardware);
    assert_eq!(native_preds, sim_preds);
    assert_eq!(sim_preds, hw_preds);
    assert_eq!(native_acc, sim_acc);
    assert_eq!(sim_acc, hw_acc);
    // And the model actually learned something.
    assert!(native_acc > 0.8, "accuracy only {native_acc}");
}

#[test]
fn distributed_training_accuracy_is_mode_independent() {
    use securetf_distrib::cluster::{Cluster, ClusterConfig};
    use securetf_distrib::trainer::DistributedTrainer;

    let run = |mode| {
        let cluster = Cluster::new(ClusterConfig {
            workers: 2,
            parameter_servers: 1,
            mode,
            network_shield: true,
            runtime_bytes: 8 * 1024 * 1024,
            heap_bytes: 16 * 1024 * 1024,
            ..ClusterConfig::default()
        })
        .expect("cluster");
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let model = layers::mlp_classifier(784, &[32], 10, &mut rng).expect("model");
        let data = securetf_data::synthetic_mnist(400, 6);
        let mut trainer = DistributedTrainer::new(cluster, model, data, 100, 0.05)
            .expect("trainer");
        trainer.train_steps(20).expect("train");
        let test = securetf_data::synthetic_mnist(100, 42);
        trainer.evaluate(&test).expect("evaluate")
    };
    let native = run(ExecutionMode::Native);
    let hw = run(ExecutionMode::Hardware);
    assert_eq!(native, hw, "distributed accuracy differs across modes");
    assert!(native > 0.6, "accuracy only {native}");
}
