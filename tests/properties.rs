//! Property-based tests of cross-crate invariants (proptest).

use proptest::prelude::*;
use securetf_crypto::aead::{self, Key, Nonce};
use securetf_crypto::hkdf;
use securetf_crypto::x25519::{PublicKey, StaticSecret};
use securetf_shield::fs::{FsShield, PathPolicy, Policy, UntrustedStore};
use securetf_tee::sealing::SealPolicy;
use securetf_tee::{EnclaveImage, ExecutionMode, Platform};
use securetf_tensor::freeze;
use securetf_tensor::graph::Graph;
use securetf_tensor::tensor::Tensor;
use std::sync::Arc;

fn enclave(code: &[u8]) -> Arc<securetf_tee::Enclave> {
    let platform = Platform::builder().build();
    platform
        .create_enclave(
            &EnclaveImage::builder().code(code).build(),
            ExecutionMode::Hardware,
        )
        .expect("enclave")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn aead_roundtrip_any_payload(
        key in prop::array::uniform32(any::<u8>()),
        nonce in prop::array::uniform12(any::<u8>()),
        payload in prop::collection::vec(any::<u8>(), 0..2048),
        aad in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let key = Key::from_bytes(key);
        let nonce = Nonce::from_bytes(nonce);
        let sealed = aead::seal(&key, &nonce, &payload, &aad);
        prop_assert_eq!(aead::open(&key, &nonce, &sealed, &aad).unwrap(), payload);
    }

    #[test]
    fn aead_detects_any_single_corruption(
        payload in prop::collection::vec(any::<u8>(), 1..512),
        position in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let key = Key::from_bytes([9; 32]);
        let nonce = Nonce::from_bytes([3; 12]);
        let mut sealed = aead::seal(&key, &nonce, &payload, b"");
        let idx = position.index(sealed.len());
        sealed[idx] ^= 1 << bit;
        prop_assert!(aead::open(&key, &nonce, &sealed, b"").is_err());
    }

    #[test]
    fn x25519_agreement_for_any_keys(
        a in prop::array::uniform32(any::<u8>()),
        b in prop::array::uniform32(any::<u8>()),
    ) {
        let sa = StaticSecret::from_bytes(a);
        let sb = StaticSecret::from_bytes(b);
        prop_assert_eq!(
            sa.diffie_hellman(&PublicKey::from(&sb)),
            sb.diffie_hellman(&PublicKey::from(&sa))
        );
    }

    #[test]
    fn hkdf_output_deterministic_and_length_exact(
        salt in prop::collection::vec(any::<u8>(), 0..32),
        ikm in prop::collection::vec(any::<u8>(), 1..64),
        info in prop::collection::vec(any::<u8>(), 0..32),
        len in 1usize..256,
    ) {
        let a = hkdf::derive(&salt, &ikm, &info, len).unwrap();
        let b = hkdf::derive(&salt, &ikm, &info, len).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), len);
    }

    #[test]
    fn sealing_roundtrip_any_payload(
        payload in prop::collection::vec(any::<u8>(), 0..1024),
        aad in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        let e = enclave(b"prop sealing");
        let sealed = e.seal(SealPolicy::Measurement, &payload, &aad);
        prop_assert_eq!(e.unseal(SealPolicy::Measurement, &sealed, &aad).unwrap(), payload);
    }

    #[test]
    fn fs_shield_roundtrip_any_contents(
        contents in prop::collection::vec(any::<u8>(), 0..4096),
    ) {
        let store = UntrustedStore::new();
        let mut shield = FsShield::new(enclave(b"prop fs"), store);
        shield.add_policy(PathPolicy::new("/", Policy::EncryptAuth));
        shield.write("/f", &contents).unwrap();
        prop_assert_eq!(shield.read("/f").unwrap(), contents);
    }

    #[test]
    fn fs_shield_detects_any_corruption(
        contents in prop::collection::vec(any::<u8>(), 1..1024),
        position in any::<prop::sample::Index>(),
    ) {
        let store = UntrustedStore::new();
        let mut shield = FsShield::new(enclave(b"prop fs tamper"), store.clone());
        shield.add_policy(PathPolicy::new("/", Policy::EncryptAuth));
        shield.write("/f", &contents).unwrap();
        let stored_len = store.raw_contents("/f").unwrap().len();
        store.corrupt("/f", position.index(stored_len));
        prop_assert!(shield.read("/f").is_err());
    }

    #[test]
    fn graph_export_import_preserves_eval(
        weights in prop::collection::vec(-2.0f32..2.0, 6),
        input in prop::collection::vec(-2.0f32..2.0, 3),
    ) {
        let mut g = Graph::new();
        let x = g.placeholder("x", &[0, 3]);
        let w = g.constant("w", Tensor::from_vec(&[3, 2], weights).unwrap());
        let y = g.matmul(x, w).unwrap();
        let bytes = freeze::export_graph(&g);
        let g2 = freeze::import_graph(&bytes).unwrap();
        let feed = Tensor::from_vec(&[1, 3], input).unwrap();
        let mut s1 = securetf_tensor::session::Session::new(&g);
        let mut s2 = securetf_tensor::session::Session::new(&g2);
        let o1 = s1.run(&g, &[(x, feed.clone())], &[y]).unwrap();
        let o2 = s2.run(&g2, &[(x, feed)], &[y]).unwrap();
        prop_assert_eq!(o1[0].data(), o2[0].data());
    }

    #[test]
    fn epc_resident_never_exceeds_budget(
        sizes in prop::collection::vec(1u64..60, 1..12),
        touch_order in prop::collection::vec(any::<prop::sample::Index>(), 1..40),
    ) {
        use securetf_tee::epc::{EpcManager, PAGE_SIZE};
        use securetf_tee::{CostModel, SimClock};
        let model = CostModel {
            epc_bytes: 128 * PAGE_SIZE as u64,
            ..CostModel::default()
        };
        let budget = model.epc_pages();
        let mut epc = EpcManager::new(model, SimClock::new(), true);
        let regions: Vec<_> = sizes
            .iter()
            .map(|&pages| epc.alloc("r", pages * PAGE_SIZE as u64))
            .collect();
        for idx in touch_order {
            let region = regions[idx.index(regions.len())];
            epc.touch_all(region).unwrap();
            prop_assert!(epc.stats().resident_pages <= budget);
        }
    }

    #[test]
    fn paged_buffer_matches_flat_memory_model(
        ops in prop::collection::vec(
            (any::<bool>(), 0u64..8 * 4096, prop::collection::vec(any::<u8>(), 1..300)),
            1..40,
        ),
        resident_cap in 1usize..5,
    ) {
        use securetf_tee::backing::PagedBuffer;
        let len = 8 * 4096u64;
        let mut reference = vec![0u8; len as usize];
        let mut buf = PagedBuffer::new(enclave(b"prop paging"), 42, len, resident_cap);
        for (is_write, offset, data) in ops {
            let offset = offset.min(len - 1);
            let take = data.len().min((len - offset) as usize);
            if is_write {
                buf.write(offset, &data[..take]).unwrap();
                reference[offset as usize..offset as usize + take]
                    .copy_from_slice(&data[..take]);
            } else {
                let mut out = vec![0u8; take];
                buf.read(offset, &mut out).unwrap();
                prop_assert_eq!(&out, &reference[offset as usize..offset as usize + take]);
            }
        }
        // Final full scan agrees with the reference.
        let mut all = vec![0u8; len as usize];
        buf.read(0, &mut all).unwrap();
        prop_assert_eq!(all, reference);
    }

    #[test]
    fn arena_plan_never_aliases_live_buffers(
        widths in prop::collection::vec(1usize..40, 2..8),
        batch in 1usize..6,
    ) {
        use securetf_tflite::arena;
        use securetf_tflite::model::LiteModel;
        use securetf_tensor::graph::Graph;

        let mut g = Graph::new();
        let mut prev_width = widths[0];
        let x = g.placeholder("input", &[0, prev_width]);
        let mut cur = x;
        for (i, &w) in widths.iter().skip(1).enumerate() {
            let c = g.constant(&format!("w{i}"), Tensor::full(&[prev_width, w], 0.01));
            cur = g.matmul(cur, c).unwrap();
            if i % 2 == 0 {
                cur = g.relu(cur).unwrap();
            }
            prev_width = w;
        }
        let name = g.nodes()[cur.index()].name.clone();
        let model = LiteModel::convert(&g, "input", &name).unwrap();
        let plan = arena::plan_memory(&model, batch).unwrap();
        prop_assert!(plan.peak_bytes <= plan.unshared_bytes);
        let live: Vec<_> = plan.slots.iter().flatten().collect();
        for (i, a) in live.iter().enumerate() {
            for b in live.iter().skip(i + 1) {
                let lifetimes = a.live_from <= b.live_to && b.live_from <= a.live_to;
                let memory = a.offset < b.offset + b.bytes && b.offset < a.offset + a.bytes;
                prop_assert!(!(lifetimes && memory));
            }
        }
    }

    #[test]
    fn certificates_survive_serialization_and_detect_tamper(
        subject in "[a-z]{1,20}",
        key in prop::array::uniform32(any::<u8>()),
        flip in any::<prop::sample::Index>(),
    ) {
        use securetf_cas::ca::{Certificate, CertificateAuthority};
        let mut ca = CertificateAuthority::new(enclave(b"prop ca"));
        let cert = ca.issue(&subject, key, securetf_tee::MrEnclave([9; 32]));
        let bytes = cert.to_bytes();
        let restored = Certificate::from_bytes(&bytes).unwrap();
        prop_assert!(ca.verify(&restored).is_ok());
        // Any single bit flip is either a parse error or a signature error.
        let mut bad = bytes.clone();
        let idx = flip.index(bad.len());
        bad[idx] ^= 1;
        if let Ok(forged) = Certificate::from_bytes(&bad) {
            prop_assert!(ca.verify(&forged).is_err());
        }
    }

    #[test]
    fn dataset_serialization_roundtrip(count in 1usize..30, seed in any::<u64>()) {
        let d = securetf_data::synthetic_mnist(count, seed);
        let d2 = securetf_data::Dataset::from_bytes(&d.to_bytes()).unwrap();
        prop_assert_eq!(d2.len(), d.len());
        prop_assert_eq!(d2.dims(), d.dims());
        for i in 0..count {
            prop_assert_eq!(d2.label(i), d.label(i));
        }
    }

    #[test]
    fn federated_average_of_identical_parties_is_identity(
        values in prop::collection::vec(-10.0f32..10.0, 1..32),
        parties in 1usize..5,
    ) {
        use securetf_distrib::{federated, wire};
        let msg = wire::encode_frame(
            &[(0, Tensor::from_vec(&[values.len()], values.clone()).unwrap())],
            wire::Codec::Dense,
        );
        let avg = federated::federated_average(&vec![msg; parties]).unwrap();
        let decoded = wire::decode_frame(&avg).unwrap();
        for (got, want) in decoded[0].1.data().iter().zip(values.iter()) {
            prop_assert!((got - want).abs() < 1e-4);
        }
    }
}

/// Deterministic test-data fill: LCG-driven values in roughly [-1, 1]
/// with exact zeros sprinkled in, so the kernels' no-zero-skip contract
/// (0 × x must still execute) is exercised alongside ordinary values.
fn lcg_fill(seed: u64, len: usize) -> Vec<f32> {
    let mut s = seed | 1;
    (0..len)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if s.is_multiple_of(13) {
                0.0
            } else {
                ((s >> 33) as i32 % 2000) as f32 * 1e-3 - 1.0
            }
        })
        .collect()
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // DESIGN.md §11 cardinal rule: blocking and pooling change memory
    // order only, never arithmetic order — for ANY shape and ANY worker
    // count the blocked/parallel kernels are bit-for-bit identical to the
    // naive serial references.

    #[test]
    fn pooled_matmul_is_bit_identical_to_naive(
        m in 1usize..140,
        k in 1usize..48,
        n in 1usize..24,
        workers in 1usize..8,
        seed in any::<u64>(),
    ) {
        use securetf_tensor::kernels::{self, reference, WorkerPool};
        let a = lcg_fill(seed, m * k);
        let b = lcg_fill(seed ^ 0x9E3779B97F4A7C15, k * n);
        let naive = reference::naive_matmul(m, k, n, &a, &b);
        let ta = Tensor::from_vec(&[m, k], a).unwrap();
        let tb = Tensor::from_vec(&[k, n], b).unwrap();
        let (out, cost) = kernels::matmul(&WorkerPool::new(workers), &ta, &tb).unwrap();
        let naive_bits: Vec<u32> = naive.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(bits(&out), naive_bits);
        prop_assert_eq!(cost.flops, 2.0 * (m * k * n) as f64);
        prop_assert!(cost.critical_flops <= cost.flops);
        prop_assert!(cost.critical_flops > 0.0);
    }

    #[test]
    fn pooled_conv2d_forward_and_backward_are_bit_identical_to_naive(
        b in 1usize..3,
        h in 1usize..8,
        w in 1usize..8,
        cin in 1usize..4,
        cout in 1usize..4,
        kh in 1usize..4,
        kw in 1usize..4,
        same in any::<bool>(),
        workers in 1usize..8,
        seed in any::<u64>(),
    ) {
        use securetf_tensor::graph::Padding;
        use securetf_tensor::kernels::{self, reference, WorkerPool};
        // Valid padding requires the kernel to fit inside the input.
        let (padding, kh, kw) = if same {
            (Padding::Same, kh, kw)
        } else {
            (Padding::Valid, kh.min(h), kw.min(w))
        };
        let input = Tensor::from_vec(&[b, h, w, cin], lcg_fill(seed, b * h * w * cin)).unwrap();
        let filter =
            Tensor::from_vec(&[kh, kw, cin, cout], lcg_fill(seed ^ 0xABCD, kh * kw * cin * cout))
                .unwrap();
        let pool = WorkerPool::new(workers);

        let naive_out = reference::naive_conv2d(&input, &filter, padding).unwrap();
        let (out, cost) = kernels::conv2d(&pool, &input, &filter, padding).unwrap();
        prop_assert_eq!(out.shape(), naive_out.shape());
        prop_assert_eq!(bits(&out), bits(&naive_out));
        prop_assert!(cost.flops > 0.0);

        let grad =
            Tensor::from_vec(out.shape(), lcg_fill(seed ^ 0x5A5A, out.len())).unwrap();
        let (naive_gi, naive_gf) =
            reference::naive_conv2d_grad(&input, &filter, &grad, padding).unwrap();
        let (gi, gf, gcost) =
            kernels::conv2d_grad(&pool, &input, &filter, &grad, padding).unwrap();
        prop_assert_eq!(bits(&gi), bits(&naive_gi));
        prop_assert_eq!(bits(&gf), bits(&naive_gf));
        prop_assert!(gcost.critical_flops <= gcost.flops);
    }

    #[test]
    fn full_graph_training_is_pool_invariant(
        workers in 2usize..8,
        lr_millis in 1usize..500,
        seed in any::<u64>(),
    ) {
        use securetf_tensor::kernels::WorkerPool;
        use securetf_tensor::layers;
        use securetf_tensor::optimizer::Sgd;
        use securetf_tensor::session::Session;

        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let model = layers::mlp_classifier(784, &[9], 10, &mut rng).unwrap();
        let data = securetf_data::synthetic_mnist(40, seed);
        let lr = lr_millis as f32 * 1e-3;

        let run = |pool: WorkerPool| {
            let mut session = Session::new(&model.graph);
            session.set_worker_pool(pool);
            let mut sgd = Sgd::new(lr);
            let (x, y) = data.batch(0, 40).unwrap();
            let mut loss = 0.0f32;
            for _ in 0..3 {
                loss = session
                    .train_step(
                        &model.graph,
                        &[(model.input, x.clone()), (model.labels, y.clone())],
                        model.loss,
                        &mut sgd,
                    )
                    .unwrap();
            }
            let out = session.run(&model.graph, &[(model.input, x)], &[model.logits]).unwrap();
            (loss.to_bits(), bits(&out[0]))
        };
        let (serial_loss, serial_logits) = run(WorkerPool::serial());
        let (pooled_loss, pooled_logits) = run(WorkerPool::new(workers));
        prop_assert_eq!(serial_loss, pooled_loss);
        prop_assert_eq!(serial_logits, pooled_logits);
    }
}

fn one_hot_labels(batch: usize, classes: usize, seed: u64) -> Tensor {
    let mut data = vec![0.0f32; batch * classes];
    for row in 0..batch {
        let class = (seed as usize + row * 7) % classes;
        data[row * classes + class] = 1.0;
    }
    Tensor::from_vec(&[batch, classes], data).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // The unified memory planner (DESIGN.md §12): liveness-derived slots
    // must never alias while both are live, the runtime must never hold
    // more bytes than the planned peak, and planned execution must be
    // bit-for-bit identical to the legacy per-node-Vec executor for any
    // shape, batch size, and worker count.

    #[test]
    fn training_plan_never_aliases_overlapping_lifetimes(
        widths in prop::collection::vec(2usize..12, 1..3),
        inputs in 2usize..10,
        classes in 2usize..5,
        batch in 1usize..5,
        seed in any::<u64>(),
    ) {
        use securetf_tensor::layers;
        use securetf_tensor::memory;
        use securetf_tensor::session::Session;
        use std::collections::HashMap;

        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let model = layers::mlp_classifier(inputs, &widths, classes, &mut rng).unwrap();
        let session = Session::new(&model.graph);
        let vars: HashMap<_, _> = session
            .variables()
            .into_iter()
            .map(|(id, t)| (id, t.clone()))
            .collect();
        let mut feeds = HashMap::new();
        feeds.insert(model.input, Tensor::zeros(&[batch, inputs]));
        feeds.insert(model.labels, one_hot_labels(batch, classes, seed));
        let needed = vec![true; model.graph.len()];
        let shapes = memory::infer_shapes(&model.graph, &needed, &feeds, &vars).unwrap();
        let plan = memory::plan_training(&model.graph, shapes, &needed, model.loss).unwrap();

        prop_assert!(plan.peak_bytes <= plan.unshared_bytes);
        let mut slots = Vec::new();
        for index in 0..model.graph.len() {
            if let Some(s) = plan.value_slot(index) {
                slots.push(*s);
            }
            if let Some(s) = plan.grad_slot(index) {
                slots.push(*s);
            }
        }
        for slot in &slots {
            prop_assert!(slot.offset + slot.bytes <= plan.peak_bytes);
        }
        for (i, a) in slots.iter().enumerate() {
            for b in slots.iter().skip(i + 1) {
                let lifetimes = a.live_from <= b.live_to && b.live_from <= a.live_to;
                let memory = a.offset < b.offset + b.bytes && b.offset < a.offset + a.bytes;
                prop_assert!(
                    !(lifetimes && memory),
                    "aliasing slots {:?} and {:?}",
                    a,
                    b
                );
            }
        }
    }

    #[test]
    fn planned_training_is_bit_identical_and_bounded(
        hidden in 2usize..16,
        inputs in 2usize..12,
        classes in 2usize..5,
        batch in 1usize..6,
        workers in 1usize..5,
        steps in 1usize..4,
        seed in any::<u64>(),
    ) {
        use securetf_tensor::kernels::WorkerPool;
        use securetf_tensor::layers;
        use securetf_tensor::memory::MemoryMode;
        use securetf_tensor::optimizer::Sgd;
        use securetf_tensor::session::Session;

        let x = Tensor::from_vec(&[batch, inputs], lcg_fill(seed, batch * inputs)).unwrap();
        let y = one_hot_labels(batch, classes, seed);
        let run = |mode: MemoryMode, workers: usize| {
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
            let model = layers::mlp_classifier(inputs, &[hidden], classes, &mut rng).unwrap();
            let mut session = Session::new(&model.graph);
            session.set_memory_mode(mode);
            if workers > 1 {
                session.set_worker_pool(WorkerPool::new(workers));
            }
            let mut sgd = Sgd::new(0.05);
            let mut losses = Vec::new();
            let mut bounds = Vec::new();
            for _ in 0..steps {
                let loss = session
                    .train_step(
                        &model.graph,
                        &[(model.input, x.clone()), (model.labels, y.clone())],
                        model.loss,
                        &mut sgd,
                    )
                    .unwrap();
                losses.push(loss.to_bits());
                bounds.push(session.memory_stats());
            }
            let out = session
                .run(&model.graph, &[(model.input, x.clone())], &[model.logits])
                .unwrap();
            (losses, bits(&out[0]), bounds)
        };

        let (planned_losses, planned_logits, bounds) = run(MemoryMode::Planned, workers);
        let (unplanned_losses, unplanned_logits, _) = run(MemoryMode::Unplanned, 1);
        prop_assert_eq!(planned_losses, unplanned_losses);
        prop_assert_eq!(planned_logits, unplanned_logits);
        for stats in bounds {
            prop_assert!(stats.planned_peak_bytes > 0);
            prop_assert!(
                stats.peak_resident_bytes <= stats.planned_peak_bytes,
                "resident {} exceeds planned peak {}",
                stats.peak_resident_bytes,
                stats.planned_peak_bytes
            );
        }
    }

    #[test]
    fn planned_conv_training_matches_unplanned(
        batch in 1usize..4,
        filters in 1usize..5,
        classes in 2usize..5,
        workers in 1usize..5,
        seed in any::<u64>(),
    ) {
        use securetf_tensor::kernels::WorkerPool;
        use securetf_tensor::layers;
        use securetf_tensor::memory::MemoryMode;
        use securetf_tensor::optimizer::Sgd;
        use securetf_tensor::session::Session;

        let x = Tensor::from_vec(&[batch, 8, 8, 1], lcg_fill(seed, batch * 64)).unwrap();
        let y = one_hot_labels(batch, classes, seed);
        let run = |mode: MemoryMode, workers: usize| {
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
            let model = layers::conv_classifier(8, 8, 1, filters, classes, &mut rng).unwrap();
            let mut session = Session::new(&model.graph);
            session.set_memory_mode(mode);
            if workers > 1 {
                session.set_worker_pool(WorkerPool::new(workers));
            }
            let mut sgd = Sgd::new(0.05);
            let mut losses = Vec::new();
            for _ in 0..2 {
                let loss = session
                    .train_step(
                        &model.graph,
                        &[(model.input, x.clone()), (model.labels, y.clone())],
                        model.loss,
                        &mut sgd,
                    )
                    .unwrap();
                losses.push(loss.to_bits());
            }
            let out = session
                .run(&model.graph, &[(model.input, x.clone())], &[model.logits])
                .unwrap();
            (losses, bits(&out[0]))
        };

        let planned = run(MemoryMode::Planned, workers);
        let unplanned = run(MemoryMode::Unplanned, 1);
        prop_assert_eq!(planned, unplanned);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // The graph-compiler pass pipeline (DESIGN.md §16): optimizing a
    // graph (DCE, constant folding, fusion — plus CSE for inference)
    // must be invisible in the numbers. For any model shape, batch
    // size, worker count, and memory mode, the optimized execution is
    // bit-for-bit identical to the unoptimized one: same outputs, same
    // gradients, same loss trajectory.

    #[test]
    fn compiled_mlp_training_is_bit_identical_to_unoptimized(
        widths in prop::collection::vec(2usize..12, 1..3),
        inputs in 2usize..10,
        classes in 2usize..5,
        batch in 1usize..5,
        workers in 1usize..6,
        planned in any::<bool>(),
        seed in any::<u64>(),
    ) {
        use securetf_tensor::kernels::WorkerPool;
        use securetf_tensor::layers;
        use securetf_tensor::memory::MemoryMode;
        use securetf_tensor::optimizer::Sgd;
        use securetf_tensor::session::Session;

        let x = Tensor::from_vec(&[batch, inputs], lcg_fill(seed, batch * inputs)).unwrap();
        let y = one_hot_labels(batch, classes, seed);
        let mode = if planned { MemoryMode::Planned } else { MemoryMode::Unplanned };
        let run = |optimize: bool| {
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
            let model = layers::mlp_classifier(inputs, &widths, classes, &mut rng).unwrap();
            let mut session = Session::new(&model.graph);
            session.set_optimize(optimize);
            session.set_memory_mode(mode);
            if workers > 1 {
                session.set_worker_pool(WorkerPool::new(workers));
            }
            let feeds = [(model.input, x.clone()), (model.labels, y.clone())];
            let (first_loss, grads) = session
                .gradients(&model.graph, &feeds, model.loss)
                .unwrap();
            let mut grad_bits: Vec<(usize, Vec<u32>)> = grads
                .iter()
                .map(|(id, g)| (id.index(), bits(g)))
                .collect();
            grad_bits.sort_by_key(|(id, _)| *id);
            let mut sgd = Sgd::new(0.05);
            let mut losses = vec![first_loss.to_bits()];
            for _ in 0..3 {
                let loss = session
                    .train_step(&model.graph, &feeds, model.loss, &mut sgd)
                    .unwrap();
                losses.push(loss.to_bits());
            }
            let out = session
                .run(&model.graph, &[(model.input, x.clone())], &[model.logits])
                .unwrap();
            (losses, grad_bits, bits(&out[0]))
        };

        let optimized = run(true);
        let baseline = run(false);
        prop_assert_eq!(optimized, baseline);
    }

    #[test]
    fn compiled_conv_bias_relu_training_is_bit_identical_to_unoptimized(
        h in 4usize..8,
        w in 4usize..8,
        cin in 1usize..3,
        cout in 1usize..4,
        classes in 2usize..5,
        batch in 1usize..4,
        workers in 1usize..6,
        planned in any::<bool>(),
        seed in any::<u64>(),
    ) {
        use securetf_tensor::graph::{Graph, Padding};
        use securetf_tensor::kernels::WorkerPool;
        use securetf_tensor::memory::MemoryMode;
        use securetf_tensor::optimizer::Sgd;
        use securetf_tensor::session::Session;

        // A conv → bias → relu head the fusion pass rewrites into
        // FusedConv2d, followed by a dense layer it rewrites into
        // FusedMatMul; the unoptimized session runs the original ops.
        let build = || {
            let mut g = Graph::new();
            let input = g.placeholder("input", &[0, h, w, cin]);
            let labels = g.placeholder("labels", &[0, classes]);
            let f = g.variable(
                "conv/f",
                Tensor::from_vec(&[3, 3, cin, cout], lcg_fill(seed ^ 0xF1, 9 * cin * cout))
                    .unwrap(),
            );
            let cb = g.variable(
                "conv/b",
                Tensor::from_vec(&[cout], lcg_fill(seed ^ 0xB2, cout)).unwrap(),
            );
            let conv = g.conv2d(input, f, Padding::Same).unwrap();
            let biased = g.add_bias(conv, cb).unwrap();
            let act = g.relu(biased).unwrap();
            let flat = g.flatten(act).unwrap();
            let dim = h * w * cout;
            let wv = g.variable(
                "fc/w",
                Tensor::from_vec(&[dim, classes], lcg_fill(seed ^ 0xC3, dim * classes))
                    .unwrap(),
            );
            let bv = g.variable(
                "fc/b",
                Tensor::from_vec(&[classes], lcg_fill(seed ^ 0xD4, classes)).unwrap(),
            );
            let mm = g.matmul(flat, wv).unwrap();
            let logits = g.add_bias(mm, bv).unwrap();
            let loss = g.softmax_cross_entropy(logits, labels).unwrap();
            (g, input, labels, logits, loss)
        };
        let x = Tensor::from_vec(&[batch, h, w, cin], lcg_fill(seed, batch * h * w * cin))
            .unwrap();
        let y = one_hot_labels(batch, classes, seed);
        let mode = if planned { MemoryMode::Planned } else { MemoryMode::Unplanned };
        let run = |optimize: bool| {
            let (g, input, labels, logits, loss) = build();
            let mut session = Session::new(&g);
            session.set_optimize(optimize);
            session.set_memory_mode(mode);
            if workers > 1 {
                session.set_worker_pool(WorkerPool::new(workers));
            }
            let feeds = [(input, x.clone()), (labels, y.clone())];
            let (first_loss, grads) = session.gradients(&g, &feeds, loss).unwrap();
            let mut grad_bits: Vec<(usize, Vec<u32>)> = grads
                .iter()
                .map(|(id, t)| (id.index(), bits(t)))
                .collect();
            grad_bits.sort_by_key(|(id, _)| *id);
            let mut sgd = Sgd::new(0.02);
            let mut losses = vec![first_loss.to_bits()];
            for _ in 0..2 {
                let step = session.train_step(&g, &feeds, loss, &mut sgd).unwrap();
                losses.push(step.to_bits());
            }
            let out = session.run(&g, &[(input, x.clone())], &[logits]).unwrap();
            (losses, grad_bits, bits(&out[0]))
        };

        let optimized = run(true);
        let baseline = run(false);
        prop_assert_eq!(optimized, baseline);
    }

    #[test]
    fn compiled_lite_inference_is_bit_identical_to_unoptimized(
        widths in prop::collection::vec(2usize..10, 1..4),
        inputs in 2usize..8,
        classes in 2usize..5,
        rows in 1usize..6,
        workers in 1usize..6,
        seed in any::<u64>(),
    ) {
        use securetf_tensor::kernels::WorkerPool;
        use securetf_tflite::interpreter::Interpreter;
        use securetf_tflite::model::LiteModel;

        // A frozen dense classifier: matmul → bias → relu per hidden
        // layer, matmul → bias → softmax head. Every layer is a fusion
        // candidate for the inference pipeline.
        let mut g = Graph::new();
        let mut x = g.placeholder("input", &[0, inputs]);
        let mut dim = inputs;
        for (i, &width) in widths.iter().enumerate() {
            let w = g.constant(
                &format!("l{i}/w"),
                Tensor::from_vec(&[dim, width], lcg_fill(seed ^ i as u64, dim * width))
                    .unwrap(),
            );
            let b = g.constant(
                &format!("l{i}/b"),
                Tensor::from_vec(&[width], lcg_fill(seed ^ (0x77 + i as u64), width)).unwrap(),
            );
            x = g.matmul(x, w).unwrap();
            x = g.add_bias(x, b).unwrap();
            x = g.relu(x).unwrap();
            dim = width;
        }
        let w = g.constant(
            "head/w",
            Tensor::from_vec(&[dim, classes], lcg_fill(seed ^ 0xE5, dim * classes)).unwrap(),
        );
        let b = g.constant(
            "head/b",
            Tensor::from_vec(&[classes], lcg_fill(seed ^ 0xF6, classes)).unwrap(),
        );
        x = g.matmul(x, w).unwrap();
        x = g.add_bias(x, b).unwrap();
        let out = g.softmax(x).unwrap();
        let out_name = g.nodes()[out.index()].name.clone();
        let lite = LiteModel::convert(&g, "input", &out_name).unwrap();
        let x = Tensor::from_vec(&[rows, inputs], lcg_fill(seed, rows * inputs)).unwrap();

        let mut baseline = Interpreter::unoptimized(lite.clone());
        let expect = baseline.run(&x).unwrap();
        prop_assert!(baseline.pipeline_report().is_none());

        let mut optimized = Interpreter::with_pool(lite.clone(), WorkerPool::new(workers));
        let got = optimized.run(&x).unwrap();
        prop_assert_eq!(bits(&got), bits(&expect));
        // The pipeline ran and fused every dense layer's matmul chain.
        let report = optimized.pipeline_report().expect("pipeline ran");
        prop_assert!(report.nodes_fused() > widths.len() as u64);
        prop_assert!(optimized.model().graph().len() < lite.graph().len());
    }
}

// ---- parallel-sealing worker-count parity ---------------------------------

/// Test transport for cross-thread handshakes: retries empty receives (the
/// two handshake halves run on different threads) and logs every record it
/// sends so wire bytes can be compared across configurations.
struct LoggedPipe {
    inner: securetf_shield::net::PipeEnd,
    sent: Arc<std::sync::Mutex<Vec<Vec<u8>>>>,
}

impl securetf_shield::net::Transport for LoggedPipe {
    fn send(&self, message: Vec<u8>) {
        self.sent.lock().unwrap().push(message.clone());
        self.inner.send(message);
    }

    fn recv(&self) -> Option<Vec<u8>> {
        for _ in 0..200_000 {
            if let Some(m) = self.inner.recv() {
                return Some(m);
            }
            std::thread::yield_now();
        }
        None
    }
}

/// Builds an enclave on a platform with a *pinned* id so repeated runs
/// derive identical platform secrets — required for comparing sealed
/// bytes across configurations.
fn pinned_enclave(platform_id: u64, code: &[u8]) -> Arc<securetf_tee::Enclave> {
    let platform = Platform::builder().id(platform_id).build();
    platform
        .create_enclave(
            &EnclaveImage::builder().code(code).build(),
            ExecutionMode::Hardware,
        )
        .expect("enclave")
}

/// Writes `data` through a fresh fs shield sealing with `workers` threads
/// and returns the resulting host disk image plus the read-back bytes.
fn shielded_disk_image(workers: usize, data: &[u8]) -> (Vec<(String, Vec<u8>)>, Vec<u8>) {
    let store = UntrustedStore::new();
    let mut shield = FsShield::with_key(
        pinned_enclave(0x5f70_0001, b"fs-worker-parity"),
        store.clone(),
        Key::from_bytes([0x21; 32]),
    );
    shield.set_worker_pool(securetf_tensor::kernels::WorkerPool::new(workers));
    shield.write("/model/weights.bin", data).expect("write");
    let image = store
        .paths()
        .into_iter()
        .map(|p| {
            let contents = store.raw_contents(&p).expect("listed path exists");
            (p, contents)
        })
        .collect();
    let back = shield.read("/model/weights.bin").expect("read");
    (image, back)
}

/// Sends `chunks` over a fresh secure channel sealing with `workers`
/// threads and returns the initiator's wire records plus what the peer
/// decrypted.
fn vectored_wire(workers: usize, chunks: &[Vec<u8>]) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    use securetf_shield::net::{duplex, Role, SecureChannel};

    let (pa, pb) = duplex(None);
    let sent = Arc::new(std::sync::Mutex::new(Vec::new()));
    let la = LoggedPipe { inner: pa, sent: sent.clone() };
    let lb = LoggedPipe { inner: pb, sent: Arc::new(std::sync::Mutex::new(Vec::new())) };
    let ea = pinned_enclave(0x5f70_0002, b"net-worker-parity-a");
    let eb = pinned_enclave(0x5f70_0003, b"net-worker-parity-b");
    let init = std::thread::spawn(move || {
        SecureChannel::handshake(la, ea, Role::Initiator).expect("initiator handshake")
    });
    let mut b = SecureChannel::handshake(lb, eb, Role::Responder).expect("responder handshake");
    let mut a = init.join().expect("initiator thread");

    a.set_worker_pool(securetf_tensor::kernels::WorkerPool::new(workers));
    let refs: Vec<&[u8]> = chunks.iter().map(|c| c.as_slice()).collect();
    a.send_vectored(&refs).expect("send_vectored");
    let received: Vec<Vec<u8>> = chunks.iter().map(|_| b.recv().expect("recv")).collect();
    let wire = sent.lock().unwrap().clone();
    (wire, received)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Parallel chunked sealing in the fs shield is bit-identical to the
    // serial path: the *entire* host disk image (chunk records, blob
    // framing, sealed manifest) matches for every worker count, and every
    // image reads back to the original payload.
    #[test]
    fn fs_disk_image_identical_for_any_worker_count(
        len in 0usize..(3 * securetf_shield::fs::CHUNK_SIZE + 700),
        seed in any::<u8>(),
    ) {
        let data: Vec<u8> = (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect();
        let (serial_image, serial_back) = shielded_disk_image(1, &data);
        prop_assert_eq!(&serial_back, &data);
        for workers in [2usize, 4, 7] {
            let (image, back) = shielded_disk_image(workers, &data);
            prop_assert_eq!(&back, &data);
            prop_assert_eq!(&image, &serial_image, "disk image diverged at {} workers", workers);
        }
    }

    // Parallel vectored sends put byte-identical records on the wire for
    // every worker count, and the peer decrypts them in order.
    #[test]
    fn vectored_send_wire_bytes_identical_for_any_worker_count(
        sizes in prop::collection::vec(0usize..5000, 1..7),
        seed in any::<u8>(),
    ) {
        let chunks: Vec<Vec<u8>> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                (0..n).map(|j| (j as u8) ^ seed.wrapping_add(i as u8)).collect()
            })
            .collect();
        let (serial_wire, serial_recv) = vectored_wire(1, &chunks);
        prop_assert_eq!(&serial_recv, &chunks);
        for workers in [2usize, 5] {
            let (wire, received) = vectored_wire(workers, &chunks);
            prop_assert_eq!(&received, &chunks);
            prop_assert_eq!(&wire, &serial_wire, "wire bytes diverged at {} workers", workers);
        }
    }
}
