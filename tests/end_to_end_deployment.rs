//! End-to-end deployment flow across crates: train → freeze → publish →
//! attest → provision → classify, with failure paths.

use rand::SeedableRng;
use securetf::deployment::Deployment;
use securetf::profile::RuntimeProfile;
use securetf::secure_session::SecureSession;
use securetf::SecureTfError;
use securetf_tee::{EnclaveImage, ExecutionMode, Platform};
use securetf_tensor::layers;
use securetf_tensor::optimizer::Sgd;
use securetf_tflite::model::LiteModel;

fn trained_lite_model() -> LiteModel {
    let platform = Platform::builder().build();
    let enclave = platform
        .create_enclave(
            &EnclaveImage::builder().code(b"e2e trainer").build(),
            ExecutionMode::Simulation,
        )
        .expect("enclave");
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    let model = layers::mlp_classifier(784, &[32], 10, &mut rng).expect("model");
    let mut session = SecureSession::new(enclave, model);
    let data = securetf_data::synthetic_mnist(300, 8);
    let mut sgd = Sgd::new(0.05);
    for _ in 0..8 {
        for start in (0..300).step_by(100) {
            let (x, y) = data.batch(start, 100).expect("batch");
            session.train_step(x, y, &mut sgd).expect("step");
        }
    }
    session.export_lite().expect("export")
}

#[test]
fn full_pipeline_train_publish_attest_classify() {
    let lite = trained_lite_model();
    let mut deployment = Deployment::new(ExecutionMode::Hardware);
    deployment
        .publish_model("digits", "/m/digits", &lite)
        .expect("publish");
    let mut classifier = deployment
        .deploy_classifier("digits", "/m/digits", RuntimeProfile::scone_lite())
        .expect("deploy");

    let test = securetf_data::synthetic_mnist(50, 91);
    let mut correct = 0;
    for i in 0..test.len() {
        let (x, _) = test.batch(i, 1).expect("batch");
        let (label, latency) = classifier.classify(&x).expect("classify");
        assert!(latency > 0);
        if Some(label) == test.label(i) {
            correct += 1;
        }
    }
    assert!(correct >= 40, "only {correct}/50 correct through the service");
}

#[test]
fn all_profiles_serve_identical_predictions() {
    let lite = trained_lite_model();
    let test = securetf_data::synthetic_mnist(20, 13);
    let mut results = Vec::new();
    for profile in [
        RuntimeProfile::scone_lite(),
        RuntimeProfile::scone_full_tf(),
        RuntimeProfile::graphene(),
    ] {
        let mut deployment = Deployment::new(ExecutionMode::Hardware);
        deployment
            .publish_model("svc", "/m", &lite)
            .expect("publish");
        let mut classifier = deployment
            .deploy_classifier("svc", "/m", profile)
            .expect("deploy");
        let preds: Vec<usize> = (0..test.len())
            .map(|i| {
                let (x, _) = test.batch(i, 1).expect("batch");
                classifier.classify(&x).expect("classify").0
            })
            .collect();
        results.push(preds);
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
}

#[test]
fn model_substitution_attack_detected() {
    // The attacker replaces the published model with a different
    // (validly formatted) model encrypted under a key they control.
    let lite = trained_lite_model();
    let mut deployment = Deployment::new(ExecutionMode::Hardware);
    deployment
        .publish_model("svc", "/m", &lite)
        .expect("publish");
    // Substitute random bytes of plausible length.
    let original = deployment.store().raw_contents("/m").expect("stored");
    let fake = vec![0xEEu8; original.len()];
    deployment.store().raw_put("/m", fake);
    assert!(matches!(
        deployment.deploy_classifier("svc", "/m", RuntimeProfile::scone_lite()),
        Err(SecureTfError::ModelIntegrity(_))
    ));
}

#[test]
fn unknown_service_cannot_deploy() {
    let lite = trained_lite_model();
    let mut deployment = Deployment::new(ExecutionMode::Hardware);
    deployment
        .publish_model("svc", "/m", &lite)
        .expect("publish");
    assert!(matches!(
        deployment.deploy_classifier("other", "/m", RuntimeProfile::scone_lite()),
        Err(SecureTfError::Cas(_))
    ));
}

#[test]
fn sim_and_hw_deployments_agree_with_native() {
    let lite = trained_lite_model();
    let (x, _) = securetf_data::synthetic_mnist(5, 3)
        .batch(0, 5)
        .expect("batch");
    let mut labels = Vec::new();
    for mode in [
        ExecutionMode::Native,
        ExecutionMode::Simulation,
        ExecutionMode::Hardware,
    ] {
        let mut deployment = Deployment::new(mode);
        deployment
            .publish_model("svc", "/m", &lite)
            .expect("publish");
        let mut classifier = deployment
            .deploy_classifier("svc", "/m", RuntimeProfile::scone_lite())
            .expect("deploy");
        labels.push(classifier.classify(&x).expect("classify").0);
    }
    assert_eq!(labels[0], labels[1]);
    assert_eq!(labels[1], labels[2]);
}
