//! The Configuration and Remote Attestation Service (CAS) of secureTF
//! (paper §3.3.2 and §4.3).
//!
//! CAS replaces per-container round trips to the Intel Attestation Service
//! with a *local* attestation and configuration service that itself runs
//! inside an enclave. It holds service policies (which enclave
//! measurements may receive which secrets) in an encrypted embedded
//! database, verifies quotes locally, and provisions keys, certificates
//! and configuration over secure channels. An auditing service tracks
//! file versions to defeat rollback attacks (challenge ❺).
//!
//! * [`kvstore`] — the encrypted, rollback-protected embedded database
//!   (the paper uses an encrypted SQLite; this is a log-structured KV
//!   store sealed to the CAS enclave).
//! * [`policy`] — service policies: allowed measurements, minimum TCB
//!   version, named secrets.
//! * [`service`] — the CAS itself: quote verification + secret
//!   provisioning, with a per-phase latency breakdown (Figure 4).
//! * [`ias`] — a latency-faithful simulator of the Intel Attestation
//!   Service, the baseline CAS is compared against.
//! * [`audit`] — the freshness/auditing service for rollback protection.
//!
//! # Examples
//!
//! ```
//! use securetf_cas::policy::ServicePolicy;
//! use securetf_cas::service::CasService;
//! use securetf_tee::{Platform, EnclaveImage, ExecutionMode};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let platform = Platform::builder().build();
//! // The CAS runs in its own enclave.
//! let cas_enclave = platform.create_enclave(
//!     &EnclaveImage::builder().code(b"cas").name("cas").build(),
//!     ExecutionMode::Hardware,
//! )?;
//! let mut cas = CasService::new(cas_enclave, platform.fleet_verifier());
//!
//! // A worker enclave the user trusts.
//! let worker_image = EnclaveImage::builder().code(b"worker").build();
//! cas.register_policy(
//!     ServicePolicy::new("training")
//!         .allow_measurement(worker_image.measurement())
//!         .with_secret("model-key", b"super secret key material"),
//! )?;
//!
//! // The worker attests and receives the secret.
//! let worker = platform.create_enclave(&worker_image, ExecutionMode::Hardware)?;
//! let quote = worker.quote(b"channel binding")?;
//! let provision = cas.attest_and_provision(&quote, "training")?;
//! assert_eq!(provision.secret("model-key").unwrap(), b"super secret key material");
//! # Ok(())
//! # }
//! ```

pub mod audit;
pub mod ca;
pub mod ias;
pub mod kvstore;
pub mod policy;
pub mod service;

use std::error::Error;
use std::fmt;

/// Errors produced by the CAS.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CasError {
    /// The quote's signature did not verify.
    QuoteRejected(&'static str),
    /// The quoted measurement is not in the service policy.
    MeasurementNotAllowed,
    /// The platform's TCB version is below the policy minimum.
    TcbOutdated {
        /// SVN reported in the quote.
        got: u32,
        /// Minimum SVN the policy requires.
        required: u32,
    },
    /// No such service policy.
    UnknownService(String),
    /// A policy with this name already exists.
    DuplicateService(String),
    /// The database detected tampering or rollback.
    StoreCorrupted(&'static str),
    /// A requested key is absent.
    NotFound(String),
    /// The auditing service detected a stale (rolled-back) object.
    RollbackDetected(String),
    /// An underlying TEE failure.
    Tee(securetf_tee::TeeError),
    /// The CAS is transiently unreachable (crash, partition, restart).
    /// Unlike every other variant, this one is worth retrying.
    Unavailable {
        /// Virtual nanoseconds until the service expects to be back.
        retry_after_ns: u64,
    },
}

impl CasError {
    /// Whether the failure is transient (retry may succeed) as opposed
    /// to an integrity or policy violation (must fail closed).
    pub fn is_transient(&self) -> bool {
        matches!(self, CasError::Unavailable { .. })
    }
}

impl fmt::Display for CasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CasError::QuoteRejected(why) => write!(f, "quote rejected: {why}"),
            CasError::MeasurementNotAllowed => write!(f, "measurement not in policy"),
            CasError::TcbOutdated { got, required } => {
                write!(f, "tcb svn {got} below required {required}")
            }
            CasError::UnknownService(s) => write!(f, "unknown service: {s}"),
            CasError::DuplicateService(s) => write!(f, "service already registered: {s}"),
            CasError::StoreCorrupted(why) => write!(f, "secret store corrupted: {why}"),
            CasError::NotFound(k) => write!(f, "not found: {k}"),
            CasError::RollbackDetected(path) => write!(f, "rollback detected on {path}"),
            CasError::Tee(e) => write!(f, "tee error: {e}"),
            CasError::Unavailable { retry_after_ns } => {
                write!(f, "cas unavailable, retry after {retry_after_ns} ns")
            }
        }
    }
}

impl Error for CasError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CasError::Tee(e) => Some(e),
            _ => None,
        }
    }
}

impl From<securetf_tee::TeeError> for CasError {
    fn from(e: securetf_tee::TeeError) -> Self {
        CasError::Tee(e)
    }
}
