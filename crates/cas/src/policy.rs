//! Service policies: who may receive which secrets.
//!
//! A policy names a service (e.g. "training-workers"), lists the enclave
//! measurements allowed to attest as that service, sets a minimum TCB
//! security version, and carries the named secrets (keys, certificates,
//! configuration) to inject after successful attestation. This mirrors
//! the session descriptions of the paper's CAS.

use securetf_tee::MrEnclave;
use std::collections::BTreeMap;

/// A named secret to provision into attested enclaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Secret {
    /// Name the application uses to look the secret up.
    pub name: String,
    /// The secret bytes (key material, certificate, config value).
    pub value: Vec<u8>,
}

/// Policy describing one service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServicePolicy {
    name: String,
    allowed: Vec<MrEnclave>,
    min_tcb_svn: u32,
    secrets: BTreeMap<String, Vec<u8>>,
}

impl ServicePolicy {
    /// Creates an empty policy for `name`.
    pub fn new(name: &str) -> Self {
        ServicePolicy {
            name: name.to_string(),
            allowed: Vec::new(),
            min_tcb_svn: 0,
            secrets: BTreeMap::new(),
        }
    }

    /// Allows enclaves with this measurement to attest as the service.
    pub fn allow_measurement(mut self, m: MrEnclave) -> Self {
        if !self.allowed.contains(&m) {
            self.allowed.push(m);
        }
        self
    }

    /// Requires at least this TCB security version.
    pub fn min_tcb_svn(mut self, svn: u32) -> Self {
        self.min_tcb_svn = svn;
        self
    }

    /// Attaches a named secret.
    pub fn with_secret(mut self, name: &str, value: &[u8]) -> Self {
        self.secrets.insert(name.to_string(), value.to_vec());
        self
    }

    /// The service name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether `m` is an allowed measurement.
    pub fn allows(&self, m: &MrEnclave) -> bool {
        self.allowed.contains(m)
    }

    /// The minimum acceptable TCB SVN.
    pub fn required_tcb_svn(&self) -> u32 {
        self.min_tcb_svn
    }

    /// Iterates the policy's secrets.
    pub fn secrets(&self) -> impl Iterator<Item = Secret> + '_ {
        self.secrets.iter().map(|(k, v)| Secret {
            name: k.clone(),
            value: v.clone(),
        })
    }

    /// Total size of the secrets payload in bytes (used for transfer-cost
    /// accounting).
    pub fn secrets_len(&self) -> u64 {
        self.secrets
            .iter()
            .map(|(k, v)| (k.len() + v.len()) as u64)
            .sum()
    }

    /// Serializes the policy for the encrypted store.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let put_bytes = |out: &mut Vec<u8>, b: &[u8]| {
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        };
        put_bytes(&mut out, self.name.as_bytes());
        out.extend_from_slice(&self.min_tcb_svn.to_le_bytes());
        out.extend_from_slice(&(self.allowed.len() as u32).to_le_bytes());
        for m in &self.allowed {
            out.extend_from_slice(m.as_bytes());
        }
        out.extend_from_slice(&(self.secrets.len() as u32).to_le_bytes());
        for (k, v) in &self.secrets {
            put_bytes(&mut out, k.as_bytes());
            put_bytes(&mut out, v);
        }
        out
    }

    /// Deserializes a policy written by [`ServicePolicy::encode`].
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut cursor = 0usize;
        let take = |cursor: &mut usize, n: usize| -> Option<&[u8]> {
            if *cursor + n > bytes.len() {
                return None;
            }
            let s = &bytes[*cursor..*cursor + n];
            *cursor += n;
            Some(s)
        };
        let take_bytes = |cursor: &mut usize| -> Option<Vec<u8>> {
            let len = u32::from_le_bytes(take(cursor, 4)?.try_into().ok()?) as usize;
            Some(take(cursor, len)?.to_vec())
        };
        let name = String::from_utf8(take_bytes(&mut cursor)?).ok()?;
        let min_tcb_svn = u32::from_le_bytes(take(&mut cursor, 4)?.try_into().ok()?);
        let n_allowed = u32::from_le_bytes(take(&mut cursor, 4)?.try_into().ok()?);
        let mut allowed = Vec::new();
        for _ in 0..n_allowed {
            let m: [u8; 32] = take(&mut cursor, 32)?.try_into().ok()?;
            allowed.push(MrEnclave(m));
        }
        let n_secrets = u32::from_le_bytes(take(&mut cursor, 4)?.try_into().ok()?);
        let mut secrets = BTreeMap::new();
        for _ in 0..n_secrets {
            let k = String::from_utf8(take_bytes(&mut cursor)?).ok()?;
            let v = take_bytes(&mut cursor)?;
            secrets.insert(k, v);
        }
        if cursor != bytes.len() {
            return None;
        }
        Some(ServicePolicy {
            name,
            allowed,
            min_tcb_svn,
            secrets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mr(b: u8) -> MrEnclave {
        MrEnclave([b; 32])
    }

    #[test]
    fn builder_accumulates() {
        let p = ServicePolicy::new("svc")
            .allow_measurement(mr(1))
            .allow_measurement(mr(2))
            .min_tcb_svn(3)
            .with_secret("k", b"v");
        assert!(p.allows(&mr(1)));
        assert!(p.allows(&mr(2)));
        assert!(!p.allows(&mr(3)));
        assert_eq!(p.required_tcb_svn(), 3);
        assert_eq!(p.secrets().count(), 1);
    }

    #[test]
    fn duplicate_measurement_deduped() {
        let p = ServicePolicy::new("svc")
            .allow_measurement(mr(1))
            .allow_measurement(mr(1));
        assert_eq!(p.encode(), p.clone().allow_measurement(mr(1)).encode());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = ServicePolicy::new("training")
            .allow_measurement(mr(7))
            .min_tcb_svn(2)
            .with_secret("model-key", &[1, 2, 3])
            .with_secret("tls-cert", b"PEM");
        let decoded = ServicePolicy::decode(&p.encode()).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn decode_rejects_garbage_and_truncation() {
        let p = ServicePolicy::new("x").with_secret("a", b"b");
        let enc = p.encode();
        assert!(ServicePolicy::decode(&enc[..enc.len() - 1]).is_none());
        let mut extended = enc.clone();
        extended.push(0);
        assert!(ServicePolicy::decode(&extended).is_none());
        assert!(ServicePolicy::decode(&[1, 2, 3]).is_none());
    }

    #[test]
    fn secrets_len_counts_names_and_values() {
        let p = ServicePolicy::new("x").with_secret("ab", &[0u8; 10]);
        assert_eq!(p.secrets_len(), 12);
    }
}
