//! The auditing (freshness) service of CAS (paper §3.3.2).
//!
//! The file-system shield detects *tampering* on its own, and detects
//! rollback while the enclave is alive (the version lives in enclave
//! memory). Across enclave restarts, however, the in-enclave metadata is
//! gone — an attacker could restore both an old file *and* let a fresh
//! enclave accept it. The auditing service closes that hole: enclaves
//! report each protected object's `(path, version, digest)` to CAS after
//! every update, and re-validate against CAS when they (re)open state.
//!
//! # Examples
//!
//! ```
//! use securetf_cas::audit::AuditService;
//!
//! let mut audit = AuditService::new();
//! audit.record_update("w1", "/secure/ckpt", 1, [0xaa; 32]);
//! audit.record_update("w1", "/secure/ckpt", 2, [0xbb; 32]);
//! // Presenting the stale version-1 digest is detected:
//! assert!(audit.verify("/secure/ckpt", 1, [0xaa; 32]).is_err());
//! assert!(audit.verify("/secure/ckpt", 2, [0xbb; 32]).is_ok());
//! ```

use crate::CasError;
use std::collections::HashMap;

/// Record of the latest accepted state of one protected object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    /// Which enclave/container reported the update.
    pub reporter: String,
    /// Object version at the time of the update.
    pub version: u64,
    /// Digest binding path, version and content structure.
    pub digest: [u8; 32],
}

/// Tracks the freshest known state of every audited object.
#[derive(Debug, Default)]
pub struct AuditService {
    records: HashMap<String, AuditRecord>,
    violations: u64,
}

impl AuditService {
    /// Creates an empty auditing service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `reporter` wrote `path` at `version` with `digest`.
    /// Updates must be monotone; an out-of-order report is ignored (the
    /// network may reorder, but state never goes backwards).
    pub fn record_update(&mut self, reporter: &str, path: &str, version: u64, digest: [u8; 32]) {
        let entry = self.records.get(path);
        if entry.map(|r| version > r.version).unwrap_or(true) {
            self.records.insert(
                path.to_string(),
                AuditRecord {
                    reporter: reporter.to_string(),
                    version,
                    digest,
                },
            );
        }
    }

    /// Verifies that `(version, digest)` is the freshest known state of
    /// `path`.
    ///
    /// # Errors
    ///
    /// * [`CasError::NotFound`] — the object was never audited.
    /// * [`CasError::RollbackDetected`] — the presented state is stale or
    ///   its digest does not match the freshest record.
    pub fn verify(&mut self, path: &str, version: u64, digest: [u8; 32]) -> Result<(), CasError> {
        let record = self
            .records
            .get(path)
            .ok_or_else(|| CasError::NotFound(path.to_string()))?;
        if record.version != version || record.digest != digest {
            self.violations += 1;
            return Err(CasError::RollbackDetected(path.to_string()));
        }
        Ok(())
    }

    /// The freshest record of `path`, if audited.
    pub fn latest(&self, path: &str) -> Option<&AuditRecord> {
        self.records.get(path)
    }

    /// Number of detected violations so far.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Number of audited objects.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether any objects are audited.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_verifies() {
        let mut a = AuditService::new();
        a.record_update("w", "/f", 1, [1; 32]);
        assert!(a.verify("/f", 1, [1; 32]).is_ok());
    }

    #[test]
    fn stale_version_rejected() {
        let mut a = AuditService::new();
        a.record_update("w", "/f", 1, [1; 32]);
        a.record_update("w", "/f", 2, [2; 32]);
        assert!(matches!(
            a.verify("/f", 1, [1; 32]),
            Err(CasError::RollbackDetected(_))
        ));
        assert_eq!(a.violations(), 1);
    }

    #[test]
    fn wrong_digest_rejected_even_at_right_version() {
        let mut a = AuditService::new();
        a.record_update("w", "/f", 1, [1; 32]);
        assert!(matches!(
            a.verify("/f", 1, [9; 32]),
            Err(CasError::RollbackDetected(_))
        ));
    }

    #[test]
    fn unknown_object_is_not_found() {
        let mut a = AuditService::new();
        assert!(matches!(
            a.verify("/nope", 1, [0; 32]),
            Err(CasError::NotFound(_))
        ));
    }

    #[test]
    fn out_of_order_reports_ignored() {
        let mut a = AuditService::new();
        a.record_update("w", "/f", 5, [5; 32]);
        a.record_update("w", "/f", 3, [3; 32]); // late/replayed report
        assert_eq!(a.latest("/f").unwrap().version, 5);
        assert!(a.verify("/f", 5, [5; 32]).is_ok());
    }

    #[test]
    fn objects_tracked_independently() {
        let mut a = AuditService::new();
        a.record_update("w1", "/a", 1, [1; 32]);
        a.record_update("w2", "/b", 7, [7; 32]);
        assert_eq!(a.len(), 2);
        assert_eq!(a.latest("/a").unwrap().reporter, "w1");
        assert_eq!(a.latest("/b").unwrap().version, 7);
    }
}
