//! A latency-faithful simulator of the Intel Attestation Service (IAS).
//!
//! IAS is Intel's hosted EPID quote-verification endpoint. Every
//! verification is a WAN round trip to Intel plus a substantial service
//! time (~280 ms measured in the paper). The paper's Figure 4 compares
//! the traditional "every container attests via IAS" flow against CAS;
//! this module implements that baseline with the same message flow and
//! the WAN cost model.

use crate::policy::ServicePolicy;
use crate::service::{AttestationBreakdown, Provision};
use crate::CasError;
use securetf_tee::platform::FleetVerifier;
use securetf_tee::{CostModel, Quote, SimClock};
use std::collections::HashMap;

/// Approximate serialized size of an EPID quote (larger than a local
/// report: it carries the EPID signature and certificate chain).
const EPID_QUOTE_WIRE_BYTES: u64 = 1116;

/// The IAS-based attestation flow: the verifying party (the user, or a
/// bootstrap service they run) submits quotes to IAS over the WAN and
/// provisions secrets itself afterwards.
#[derive(Debug)]
pub struct IasAttestor {
    verifier: FleetVerifier,
    model: CostModel,
    clock: SimClock,
    policies: HashMap<String, ServicePolicy>,
}

impl IasAttestor {
    /// Creates the baseline attestor. `clock` should be the cluster clock
    /// so latencies are comparable with CAS.
    pub fn new(verifier: FleetVerifier, model: CostModel, clock: SimClock) -> Self {
        IasAttestor {
            verifier,
            model,
            clock,
            policies: HashMap::new(),
        }
    }

    /// Registers the policy the user checks measurements against after
    /// IAS confirms the quote is genuine.
    pub fn register_policy(&mut self, policy: ServicePolicy) {
        self.policies.insert(policy.name().to_string(), policy);
    }

    /// Runs the traditional IAS attestation + manual key provisioning
    /// flow for `quote`.
    ///
    /// # Errors
    ///
    /// Same classes as [`crate::service::CasService::attest_and_provision`].
    pub fn attest_and_provision(
        &mut self,
        quote: &Quote,
        service: &str,
    ) -> Result<Provision, CasError> {
        let quote_generation_ns = self.model.quote_gen_ns;

        // Quote travels to the IAS endpoint over the WAN.
        let quote_transfer_ns = self.model.ias_wan_one_way_ns
            + (EPID_QUOTE_WIRE_BYTES as f64 / self.model.lan_bytes_per_sec * 1e9) as u64;
        self.clock.advance(quote_transfer_ns);

        // IAS service time + the response WAN leg.
        let verify_start = self.clock.now_ns();
        self.clock.advance(self.model.ias_service_ns);
        self.clock.advance(self.model.ias_wan_one_way_ns);
        let policy = self
            .policies
            .get(service)
            .ok_or_else(|| CasError::UnknownService(service.to_string()))?;
        self.verifier
            .verify(quote)
            .map_err(|_| CasError::QuoteRejected("signature"))?;
        if !policy.allows(&quote.mrenclave) {
            return Err(CasError::MeasurementNotAllowed);
        }
        if quote.tcb_svn < policy.required_tcb_svn() {
            return Err(CasError::TcbOutdated {
                got: quote.tcb_svn,
                required: policy.required_tcb_svn(),
            });
        }
        let verification_ns = self.clock.now_ns() - verify_start;

        // The user then provisions keys themselves, over the LAN.
        let payload = policy.secrets_len() + 64;
        let key_transfer_ns = self.model.lan_transfer_ns(payload)
            + self.model.shield_crypto_ns(payload);
        self.clock.advance(key_transfer_ns);

        let secrets = policy
            .secrets()
            .map(|s| (s.name, s.value))
            .collect::<HashMap<_, _>>();
        Ok(ProvisionBuilder {
            secrets,
            breakdown: AttestationBreakdown {
                quote_generation_ns,
                quote_transfer_ns,
                verification_ns,
                key_transfer_ns,
            },
        }
        .build())
    }
}

/// Internal helper to construct a [`Provision`] from the IAS path.
struct ProvisionBuilder {
    secrets: HashMap<String, Vec<u8>>,
    breakdown: AttestationBreakdown,
}

impl ProvisionBuilder {
    fn build(self) -> Provision {
        Provision::from_parts(self.secrets, self.breakdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::CasService;
    use securetf_tee::{EnclaveImage, ExecutionMode, Platform};

    #[test]
    fn ias_total_latency_matches_paper_magnitude() {
        let platform = Platform::builder().build();
        let image = EnclaveImage::builder().code(b"w").build();
        let worker = platform.create_enclave(&image, ExecutionMode::Hardware).unwrap();
        let mut ias = IasAttestor::new(
            platform.fleet_verifier(),
            platform.cost_model().clone(),
            platform.clock().clone(),
        );
        ias.register_policy(
            ServicePolicy::new("svc")
                .allow_measurement(image.measurement())
                .with_secret("k", b"v"),
        );
        let quote = worker.quote(b"b").unwrap();
        let p = ias.attest_and_provision(&quote, "svc").unwrap();
        let total_ms = p.breakdown().total_ns() as f64 / 1e6;
        // Paper: ~325 ms end to end, verification ~280 ms.
        assert!((250.0..450.0).contains(&total_ms), "total {total_ms} ms");
        let verify_ms = p.breakdown().verification_ns as f64 / 1e6;
        assert!((250.0..360.0).contains(&verify_ms), "verify {verify_ms} ms");
    }

    #[test]
    fn cas_is_an_order_of_magnitude_faster_than_ias() {
        let platform = Platform::builder().build();
        let image = EnclaveImage::builder().code(b"w").build();
        let worker = platform.create_enclave(&image, ExecutionMode::Hardware).unwrap();
        let policy = ServicePolicy::new("svc")
            .allow_measurement(image.measurement())
            .with_secret("k", b"v");

        let cas_enclave = platform
            .create_enclave(
                &EnclaveImage::builder().code(b"cas").build(),
                ExecutionMode::Hardware,
            )
            .unwrap();
        let mut cas = CasService::new(cas_enclave, platform.fleet_verifier());
        cas.register_policy(policy.clone()).unwrap();
        let mut ias = IasAttestor::new(
            platform.fleet_verifier(),
            platform.cost_model().clone(),
            platform.clock().clone(),
        );
        ias.register_policy(policy);

        let q1 = worker.quote(b"x").unwrap();
        let cas_total = cas.attest_and_provision(&q1, "svc").unwrap().breakdown().total_ns();
        let q2 = worker.quote(b"y").unwrap();
        let ias_total = ias.attest_and_provision(&q2, "svc").unwrap().breakdown().total_ns();
        let speedup = ias_total as f64 / cas_total as f64;
        // Paper: roughly 19x.
        assert!(speedup > 10.0, "speedup only {speedup:.1}x");
    }

    #[test]
    fn ias_rejects_bad_measurement_after_paying_wan_cost() {
        let platform = Platform::builder().build();
        let image = EnclaveImage::builder().code(b"w").build();
        let rogue = EnclaveImage::builder().code(b"r").build();
        let worker = platform.create_enclave(&rogue, ExecutionMode::Hardware).unwrap();
        let mut ias = IasAttestor::new(
            platform.fleet_verifier(),
            platform.cost_model().clone(),
            platform.clock().clone(),
        );
        ias.register_policy(ServicePolicy::new("svc").allow_measurement(image.measurement()));
        let quote = worker.quote(b"b").unwrap();
        assert_eq!(
            ias.attest_and_provision(&quote, "svc").unwrap_err(),
            CasError::MeasurementNotAllowed
        );
    }
}
