//! Certificates generated inside the CAS enclave (paper §7.3).
//!
//! "In secureTF, the TLS certificates are generated inside the SGX
//! enclave running CAS, and thus they cannot be seen by any human."
//! This module provides that issuance flow: the CA signing secret is
//! derived from the CAS enclave identity (it never exists outside
//! enclave memory), certificates bind a subject name, an X25519 channel
//! key and the subject enclave's measurement, and attested services
//! receive the verification secret through normal CAS provisioning.
//!
//! Substitution note: the offline crate set has no asymmetric signature
//! primitive, so certificates are authenticated with HMAC under a
//! fleet-internal secret (symmetric PKI). The trust structure is the
//! paper's — only attested enclaves can verify — while a production
//! build would swap in Ed25519.

use crate::CasError;
use securetf_crypto::hmac::hmac_sha256;
use securetf_tee::{Enclave, MrEnclave};
use std::sync::Arc;

/// A certificate binding (subject, channel public key, enclave identity).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Subject name (e.g. `"training-worker-3"`).
    pub subject: String,
    /// The subject's X25519 public key for channel establishment.
    pub public_key: [u8; 32],
    /// Measurement of the enclave the key was issued to.
    pub measurement: MrEnclave,
    /// Issuance sequence number (monotone per CA).
    pub serial: u64,
    /// HMAC over all of the above under the CA secret.
    pub signature: [u8; 32],
}

impl Certificate {
    fn signed_bytes(
        subject: &str,
        public_key: &[u8; 32],
        measurement: &MrEnclave,
        serial: u64,
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(subject.len() + 32 + 32 + 8 + 4);
        out.extend_from_slice(&(subject.len() as u32).to_le_bytes());
        out.extend_from_slice(subject.as_bytes());
        out.extend_from_slice(public_key);
        out.extend_from_slice(measurement.as_bytes());
        out.extend_from_slice(&serial.to_le_bytes());
        out
    }

    /// Serializes the certificate for transport.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out =
            Self::signed_bytes(&self.subject, &self.public_key, &self.measurement, self.serial);
        out.extend_from_slice(&self.signature);
        out
    }

    /// Deserializes a certificate.
    ///
    /// # Errors
    ///
    /// Returns [`CasError::StoreCorrupted`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Certificate, CasError> {
        if bytes.len() < 4 {
            return Err(CasError::StoreCorrupted("certificate truncated"));
        }
        let subject_len = u32::from_le_bytes(bytes[..4].try_into().expect("4")) as usize;
        let expect = 4 + subject_len + 32 + 32 + 8 + 32;
        if bytes.len() != expect {
            return Err(CasError::StoreCorrupted("certificate length mismatch"));
        }
        let subject = String::from_utf8(bytes[4..4 + subject_len].to_vec())
            .map_err(|_| CasError::StoreCorrupted("certificate subject not utf-8"))?;
        let mut cursor = 4 + subject_len;
        let public_key: [u8; 32] = bytes[cursor..cursor + 32].try_into().expect("32");
        cursor += 32;
        let measurement = MrEnclave(bytes[cursor..cursor + 32].try_into().expect("32"));
        cursor += 32;
        let serial = u64::from_le_bytes(bytes[cursor..cursor + 8].try_into().expect("8"));
        cursor += 8;
        let signature: [u8; 32] = bytes[cursor..cursor + 32].try_into().expect("32");
        Ok(Certificate {
            subject,
            public_key,
            measurement,
            serial,
            signature,
        })
    }
}

/// The in-enclave certificate authority.
pub struct CertificateAuthority {
    enclave: Arc<Enclave>,
    secret: [u8; 32],
    next_serial: u64,
}

impl std::fmt::Debug for CertificateAuthority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CertificateAuthority")
            .field("next_serial", &self.next_serial)
            .finish_non_exhaustive()
    }
}

impl CertificateAuthority {
    /// Creates a CA whose signing secret derives from (and never leaves)
    /// the CAS enclave.
    pub fn new(cas_enclave: Arc<Enclave>) -> Self {
        let secret = *cas_enclave.derived_key(b"cas-certificate-authority-v1").as_bytes();
        CertificateAuthority {
            enclave: cas_enclave,
            secret,
            next_serial: 1,
        }
    }

    /// Issues a certificate binding `subject` and `public_key` to the
    /// enclave identity in `measurement`.
    pub fn issue(
        &mut self,
        subject: &str,
        public_key: [u8; 32],
        measurement: MrEnclave,
    ) -> Certificate {
        let serial = self.next_serial;
        self.next_serial += 1;
        self.enclave.charge_compute(1.0e5);
        let body = Certificate::signed_bytes(subject, &public_key, &measurement, serial);
        Certificate {
            subject: subject.to_string(),
            public_key,
            measurement,
            serial,
            signature: hmac_sha256(&self.secret, &body),
        }
    }

    /// Issues a certificate from an attestation quote: the subject's
    /// channel public key is taken from the quote's report data (the
    /// enclave bound it there before attesting), and the measurement from
    /// the quote body. Call only after the quote has been verified by the
    /// CAS service.
    ///
    /// # Errors
    ///
    /// Currently infallible; returns `Result` for parity with real
    /// issuance flows (revocation checks, rate limits).
    pub fn issue_after_attestation(
        &self,
        subject: &str,
        quote: &securetf_tee::Quote,
    ) -> Result<Certificate, CasError> {
        let mut public_key = [0u8; 32];
        public_key.copy_from_slice(&quote.report_data[..32]);
        // Interior mutability is deliberately avoided; derive the serial
        // from the quote so issuance stays deterministic and `&self`.
        let serial = u64::from_le_bytes(
            securetf_crypto::sha256::digest(&quote.signature)[..8]
                .try_into()
                .expect("8 bytes"),
        );
        self.enclave.charge_compute(1.0e5);
        let body =
            Certificate::signed_bytes(subject, &public_key, &quote.mrenclave, serial);
        Ok(Certificate {
            subject: subject.to_string(),
            public_key,
            measurement: quote.mrenclave,
            serial,
            signature: hmac_sha256(&self.secret, &body),
        })
    }

    /// Exports the verification secret, to be handed to attested enclaves
    /// through a CAS policy (never to anything unattested).
    pub fn verification_secret(&self) -> [u8; 32] {
        self.secret
    }

    /// Verifies a certificate with the CA's own secret.
    ///
    /// # Errors
    ///
    /// Returns [`CasError::QuoteRejected`] if the signature is invalid.
    pub fn verify(&self, cert: &Certificate) -> Result<(), CasError> {
        verify_with_secret(&self.secret, cert)
    }
}

/// Verifies a certificate against a provisioned verification secret.
///
/// # Errors
///
/// Returns [`CasError::QuoteRejected`] if the signature is invalid.
pub fn verify_with_secret(secret: &[u8; 32], cert: &Certificate) -> Result<(), CasError> {
    let body = Certificate::signed_bytes(
        &cert.subject,
        &cert.public_key,
        &cert.measurement,
        cert.serial,
    );
    let expect = hmac_sha256(secret, &body);
    if securetf_crypto::ct::eq(&expect, &cert.signature) {
        Ok(())
    } else {
        Err(CasError::QuoteRejected("certificate signature"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use securetf_crypto::x25519::{PublicKey, StaticSecret};
    use securetf_tee::{EnclaveImage, ExecutionMode, Platform};

    fn ca() -> CertificateAuthority {
        let platform = Platform::builder().build();
        let enclave = platform
            .create_enclave(
                &EnclaveImage::builder().code(b"cas-with-ca").build(),
                ExecutionMode::Hardware,
            )
            .expect("enclave");
        CertificateAuthority::new(enclave)
    }

    fn mr(b: u8) -> MrEnclave {
        MrEnclave([b; 32])
    }

    #[test]
    fn issue_and_verify() {
        let mut ca = ca();
        let key = PublicKey::from(&StaticSecret::from_bytes([5; 32]));
        let cert = ca.issue("worker-1", key.0, mr(1));
        assert!(ca.verify(&cert).is_ok());
        assert!(verify_with_secret(&ca.verification_secret(), &cert).is_ok());
    }

    #[test]
    fn serials_are_monotone() {
        let mut ca = ca();
        let a = ca.issue("a", [1; 32], mr(1));
        let b = ca.issue("b", [2; 32], mr(2));
        assert!(b.serial > a.serial);
    }

    #[test]
    fn any_field_tamper_detected() {
        let mut ca = ca();
        let base = ca.issue("worker", [7; 32], mr(3));
        let mut c = base.clone();
        c.subject = "w0rker".to_string();
        assert!(ca.verify(&c).is_err());
        let mut c = base.clone();
        c.public_key[0] ^= 1;
        assert!(ca.verify(&c).is_err());
        let mut c = base.clone();
        c.measurement = mr(4);
        assert!(ca.verify(&c).is_err());
        let mut c = base.clone();
        c.serial += 1;
        assert!(ca.verify(&c).is_err());
        let mut c = base;
        c.signature[0] ^= 1;
        assert!(ca.verify(&c).is_err());
    }

    #[test]
    fn foreign_ca_rejected() {
        let mut ours = ca();
        let theirs = ca();
        let cert = ours.issue("worker", [7; 32], mr(1));
        // Different CAS enclave (different platform secret) => different
        // CA secret.
        assert!(theirs.verify(&cert).is_err());
    }

    #[test]
    fn serialization_roundtrip_and_corruption() {
        let mut ca = ca();
        let cert = ca.issue("edge-device-17", [9; 32], mr(8));
        let bytes = cert.to_bytes();
        let restored = Certificate::from_bytes(&bytes).unwrap();
        assert_eq!(restored, cert);
        assert!(ca.verify(&restored).is_ok());
        assert!(Certificate::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(Certificate::from_bytes(&[1, 2, 3]).is_err());
        // Subject-length confusion is caught.
        let mut bad = bytes;
        bad[0] ^= 1;
        assert!(Certificate::from_bytes(&bad).is_err());
    }

    #[test]
    fn subject_boundary_is_unambiguous() {
        let mut ca = ca();
        // ("ab", key starting with 'c'...) must not verify as ("abc", …).
        let cert1 = ca.issue("ab", [b'c'; 32], mr(1));
        let mut forged = cert1.clone();
        forged.subject = "abc".to_string();
        assert!(ca.verify(&forged).is_err());
    }
}
