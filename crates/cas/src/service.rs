//! The CAS service proper: local quote verification and transparent
//! secret provisioning (paper §3.3.2, Figure 4).
//!
//! The CAS runs inside its own enclave on the cluster. When a secure
//! machine-learning container starts, it generates a quote binding its
//! secure-channel transcript, sends it to CAS, and — if the quote's
//! measurement matches a registered policy — receives the service's
//! secrets over the channel. Because verification happens locally
//! (an HMAC check plus a database lookup instead of a WAN round trip to
//! IAS), attestation completes ~19× faster, which is what enables the
//! paper's elastic scaling (challenge ❹).

use crate::kvstore::KvStore;
use crate::policy::{Secret, ServicePolicy};
use crate::CasError;
use securetf_tee::platform::FleetVerifier;
use securetf_tee::{Enclave, Quote, RetryPolicy};
use std::collections::HashMap;
use std::sync::Arc;

/// Key prefix under which policies live in the encrypted store.
const POLICY_PREFIX: &[u8] = b"policy/";

/// Per-phase latency breakdown of one attestation, in nanoseconds.
/// The rows of the paper's Figure 4.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AttestationBreakdown {
    /// Producing the quote inside the attesting enclave.
    pub quote_generation_ns: u64,
    /// Transferring the quote to the verifier (LAN for CAS, WAN for IAS).
    pub quote_transfer_ns: u64,
    /// Verifying the quote (local HMAC+policy vs the IAS service).
    pub verification_ns: u64,
    /// Transferring secrets/keys back to the enclave.
    pub key_transfer_ns: u64,
}

impl AttestationBreakdown {
    /// Total end-to-end latency.
    pub fn total_ns(&self) -> u64 {
        self.quote_generation_ns
            + self.quote_transfer_ns
            + self.verification_ns
            + self.key_transfer_ns
    }
}

/// Secrets handed to a successfully attested enclave.
#[derive(Debug, Clone, Default)]
pub struct Provision {
    secrets: HashMap<String, Vec<u8>>,
    breakdown: AttestationBreakdown,
}

impl Provision {
    pub(crate) fn from_parts(
        secrets: HashMap<String, Vec<u8>>,
        breakdown: AttestationBreakdown,
    ) -> Self {
        Provision { secrets, breakdown }
    }

    /// Looks up a secret by name.
    pub fn secret(&self, name: &str) -> Option<&[u8]> {
        self.secrets.get(name).map(Vec::as_slice)
    }

    /// Names of all provisioned secrets.
    pub fn secret_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.secrets.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// The latency breakdown of the attestation that produced this.
    pub fn breakdown(&self) -> AttestationBreakdown {
        self.breakdown
    }
}

/// Approximate serialized size of a quote on the wire.
const QUOTE_WIRE_BYTES: u64 = 8 + 32 + 64 + 4 + 32;

/// The Configuration and Attestation Service.
#[derive(Debug)]
pub struct CasService {
    enclave: Arc<Enclave>,
    verifier: FleetVerifier,
    policies: HashMap<String, ServicePolicy>,
    store: Option<KvStore>,
    attestations_served: u64,
    outage_until_ns: u64,
}

impl CasService {
    /// Creates a CAS inside `enclave`, able to verify quotes of `verifier`'s
    /// fleet. Policies live in enclave memory only (lost on restart);
    /// production deployments use [`CasService::with_store`].
    pub fn new(enclave: Arc<Enclave>, verifier: FleetVerifier) -> Self {
        CasService {
            enclave,
            verifier,
            policies: HashMap::new(),
            store: None,
            attestations_served: 0,
            outage_until_ns: 0,
        }
    }

    /// Creates a CAS whose policies persist in the encrypted,
    /// rollback-protected [`KvStore`] (the paper's encrypted SQLite).
    /// Policies already in the store are loaded.
    ///
    /// # Errors
    ///
    /// Returns [`CasError::StoreCorrupted`] if a stored policy fails to
    /// decode (tampering at a layer the store's sealing should prevent).
    pub fn with_store(
        enclave: Arc<Enclave>,
        verifier: FleetVerifier,
        store: KvStore,
    ) -> Result<Self, CasError> {
        let mut policies = HashMap::new();
        for key in store.keys_with_prefix(POLICY_PREFIX) {
            let bytes = store.get(&key).expect("listed key exists");
            let policy = ServicePolicy::decode(&bytes)
                .ok_or(CasError::StoreCorrupted("undecodable policy record"))?;
            policies.insert(policy.name().to_string(), policy);
        }
        Ok(CasService {
            enclave,
            verifier,
            policies,
            store: Some(store),
            attestations_served: 0,
            outage_until_ns: 0,
        })
    }

    fn persist(&mut self, policy: &ServicePolicy) -> Result<(), CasError> {
        if let Some(store) = &mut self.store {
            let mut key = POLICY_PREFIX.to_vec();
            key.extend_from_slice(policy.name().as_bytes());
            store.put(&key, &policy.encode())?;
        }
        Ok(())
    }

    /// Registers a service policy.
    ///
    /// # Errors
    ///
    /// Returns [`CasError::DuplicateService`] if the name is taken.
    pub fn register_policy(&mut self, policy: ServicePolicy) -> Result<(), CasError> {
        if self.policies.contains_key(policy.name()) {
            return Err(CasError::DuplicateService(policy.name().to_string()));
        }
        self.persist(&policy)?;
        self.policies.insert(policy.name().to_string(), policy);
        Ok(())
    }

    /// Replaces (or inserts) a service policy — used when the data owner
    /// updates secrets.
    pub fn upsert_policy(&mut self, policy: ServicePolicy) {
        let _ = self.persist(&policy);
        self.policies.insert(policy.name().to_string(), policy);
    }

    /// Removes a service policy. Returns whether it existed.
    pub fn remove_policy(&mut self, name: &str) -> bool {
        if let Some(store) = &mut self.store {
            let mut key = POLICY_PREFIX.to_vec();
            key.extend_from_slice(name.as_bytes());
            let _ = store.delete(&key);
        }
        self.policies.remove(name).is_some()
    }

    /// Takes the CAS offline until `duration_ns` of virtual time passes.
    /// Models a crash/partition of the attestation service; provisioning
    /// attempts during the window fail with [`CasError::Unavailable`]
    /// and succeed again once the shared clock moves past the deadline.
    pub fn inject_outage(&mut self, duration_ns: u64) {
        let now = self.enclave.clock().now_ns();
        self.outage_until_ns = self.outage_until_ns.max(now + duration_ns);
    }

    /// Whether the CAS is inside an injected outage window.
    pub fn is_unavailable(&self) -> bool {
        self.enclave.clock().now_ns() < self.outage_until_ns
    }

    /// Verifies `quote` against the `service` policy, retrying transient
    /// [`CasError::Unavailable`] failures per `policy`. Each backoff is
    /// charged to the CAS clock, so bounded outages expire during the
    /// wait; integrity and policy violations fail closed on the first
    /// attempt.
    ///
    /// # Errors
    ///
    /// The terminal error of [`CasService::attest_and_provision`]: the
    /// fatal error immediately, or the last [`CasError::Unavailable`]
    /// once attempts are exhausted.
    pub fn attest_and_provision_with_retry(
        &mut self,
        quote: &Quote,
        service: &str,
        policy: &RetryPolicy,
    ) -> Result<Provision, CasError> {
        let clock = self.enclave.clock().clone();
        policy
            .run(
                &clock,
                |_| self.attest_and_provision(quote, service),
                CasError::is_transient,
            )
            .map_err(securetf_tee::retry::RetryError::into_inner)
    }

    /// Verifies `quote` against the `service` policy and, on success,
    /// returns the service secrets together with the latency breakdown.
    ///
    /// # Errors
    ///
    /// * [`CasError::UnknownService`] — no such policy.
    /// * [`CasError::QuoteRejected`] — bad quote signature.
    /// * [`CasError::MeasurementNotAllowed`] — measurement not in policy.
    /// * [`CasError::TcbOutdated`] — platform TCB below policy minimum.
    /// * [`CasError::Unavailable`] — inside an injected outage window.
    pub fn attest_and_provision(
        &mut self,
        quote: &Quote,
        service: &str,
    ) -> Result<Provision, CasError> {
        let clock = self.enclave.clock();
        if clock.now_ns() < self.outage_until_ns {
            // The caller's connection attempt still costs a LAN timeout.
            let model = self.enclave.cost_model();
            clock.advance(model.lan_rtt_ns);
            return Err(CasError::Unavailable {
                retry_after_ns: self.outage_until_ns.saturating_sub(clock.now_ns()),
            });
        }
        let model = self.enclave.cost_model();

        // The quote was generated by the attesting enclave (already charged
        // to the shared clock by `Enclave::quote`); account it in the
        // breakdown for reporting.
        let quote_generation_ns = model.quote_gen_ns;

        // Quote travels over the local cluster network.
        let quote_transfer_ns = model.lan_transfer_ns(QUOTE_WIRE_BYTES);
        clock.advance(quote_transfer_ns);

        // Local verification: HMAC check + policy lookup. Sub-millisecond
        // (the paper: "less than 1 ms").
        let verify_start = clock.now_ns();
        self.enclave.charge_compute(2.0e6);
        self.enclave.charge_syscall();
        let policy = self
            .policies
            .get(service)
            .ok_or_else(|| CasError::UnknownService(service.to_string()))?;
        self.verifier
            .verify(quote)
            .map_err(|_| CasError::QuoteRejected("signature"))?;
        if !policy.allows(&quote.mrenclave) {
            return Err(CasError::MeasurementNotAllowed);
        }
        if quote.tcb_svn < policy.required_tcb_svn() {
            return Err(CasError::TcbOutdated {
                got: quote.tcb_svn,
                required: policy.required_tcb_svn(),
            });
        }
        let verification_ns = clock.now_ns() - verify_start;

        // Secrets travel back over the (shielded) local network.
        let payload = policy.secrets_len() + 64;
        let key_transfer_ns =
            model.lan_transfer_ns(payload) + model.shield_crypto_ns(payload);
        clock.advance(key_transfer_ns);

        let secrets: HashMap<String, Vec<u8>> = policy
            .secrets()
            .map(|Secret { name, value }| (name, value))
            .collect();
        self.attestations_served += 1;
        Ok(Provision {
            secrets,
            breakdown: AttestationBreakdown {
                quote_generation_ns,
                quote_transfer_ns,
                verification_ns,
                key_transfer_ns,
            },
        })
    }

    /// Number of successful attestations served.
    pub fn attestations_served(&self) -> u64 {
        self.attestations_served
    }

    /// Names of registered services.
    pub fn services(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.policies.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// The enclave hosting this CAS.
    pub fn enclave(&self) -> &Arc<Enclave> {
        &self.enclave
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use securetf_tee::{EnclaveImage, ExecutionMode, Platform};

    struct Setup {
        platform: Platform,
        cas: CasService,
        worker_image: EnclaveImage,
    }

    fn setup() -> Setup {
        let platform = Platform::builder().build();
        let cas_enclave = platform
            .create_enclave(
                &EnclaveImage::builder().code(b"cas code").name("cas").build(),
                ExecutionMode::Hardware,
            )
            .unwrap();
        let mut cas = CasService::new(cas_enclave, platform.fleet_verifier());
        let worker_image = EnclaveImage::builder().code(b"worker code").build();
        cas.register_policy(
            ServicePolicy::new("svc")
                .allow_measurement(worker_image.measurement())
                .min_tcb_svn(1)
                .with_secret("fs-key", &[9u8; 32])
                .with_secret("tls-cert", b"CERT"),
        )
        .unwrap();
        Setup {
            platform,
            cas,
            worker_image,
        }
    }

    #[test]
    fn happy_path_provisions_secrets() {
        let mut s = setup();
        let worker = s
            .platform
            .create_enclave(&s.worker_image, ExecutionMode::Hardware)
            .unwrap();
        let quote = worker.quote(b"binding").unwrap();
        let p = s.cas.attest_and_provision(&quote, "svc").unwrap();
        assert_eq!(p.secret("fs-key"), Some(&[9u8; 32][..]));
        assert_eq!(p.secret("tls-cert"), Some(&b"CERT"[..]));
        assert_eq!(p.secret_names(), vec!["fs-key", "tls-cert"]);
        assert_eq!(s.cas.attestations_served(), 1);
    }

    #[test]
    fn unknown_measurement_rejected() {
        let mut s = setup();
        let rogue_image = EnclaveImage::builder().code(b"rogue code").build();
        let rogue = s
            .platform
            .create_enclave(&rogue_image, ExecutionMode::Hardware)
            .unwrap();
        let quote = rogue.quote(b"binding").unwrap();
        assert_eq!(
            s.cas.attest_and_provision(&quote, "svc").unwrap_err(),
            CasError::MeasurementNotAllowed
        );
        assert_eq!(s.cas.attestations_served(), 0);
    }

    #[test]
    fn forged_quote_rejected() {
        let mut s = setup();
        let worker = s
            .platform
            .create_enclave(&s.worker_image, ExecutionMode::Hardware)
            .unwrap();
        let mut quote = worker.quote(b"binding").unwrap();
        quote.signature[3] ^= 1;
        assert!(matches!(
            s.cas.attest_and_provision(&quote, "svc"),
            Err(CasError::QuoteRejected(_))
        ));
    }

    #[test]
    fn outdated_tcb_rejected() {
        let mut s = setup();
        // A platform with an old TCB (svn 0 < required 1) but valid fleet key.
        let old_platform = Platform::builder().tcb_svn(0).build();
        let worker = old_platform
            .create_enclave(&s.worker_image, ExecutionMode::Hardware)
            .unwrap();
        let quote = worker.quote(b"binding").unwrap();
        assert_eq!(
            s.cas.attest_and_provision(&quote, "svc").unwrap_err(),
            CasError::TcbOutdated {
                got: 0,
                required: 1
            }
        );
    }

    #[test]
    fn unknown_service_rejected() {
        let mut s = setup();
        let worker = s
            .platform
            .create_enclave(&s.worker_image, ExecutionMode::Hardware)
            .unwrap();
        let quote = worker.quote(b"binding").unwrap();
        assert!(matches!(
            s.cas.attest_and_provision(&quote, "nope"),
            Err(CasError::UnknownService(_))
        ));
    }

    #[test]
    fn duplicate_policy_rejected_but_upsert_allowed() {
        let mut s = setup();
        assert!(matches!(
            s.cas.register_policy(ServicePolicy::new("svc")),
            Err(CasError::DuplicateService(_))
        ));
        s.cas
            .upsert_policy(ServicePolicy::new("svc").with_secret("new", b"n"));
        assert_eq!(s.cas.services(), vec!["svc"]);
        assert!(s.cas.remove_policy("svc"));
        assert!(!s.cas.remove_policy("svc"));
    }

    #[test]
    fn breakdown_matches_paper_shape() {
        let mut s = setup();
        let worker = s
            .platform
            .create_enclave(&s.worker_image, ExecutionMode::Hardware)
            .unwrap();
        let quote = worker.quote(b"binding").unwrap();
        let p = s.cas.attest_and_provision(&quote, "svc").unwrap();
        let b = p.breakdown();
        // Verification is sub-millisecond (paper: "less than 1 ms").
        assert!(b.verification_ns < 1_000_000, "{:?}", b);
        // Total attestation is tens of milliseconds, not hundreds (CAS,
        // not IAS): the paper reports ~17 ms.
        let total_ms = b.total_ns() as f64 / 1e6;
        assert!((5.0..60.0).contains(&total_ms), "total {total_ms} ms");
    }

    #[test]
    fn policies_persist_across_cas_restarts() {
        use securetf_shield::fs::UntrustedStore;

        let platform = Platform::builder().build();
        let cas_image = EnclaveImage::builder().code(b"persistent cas").build();
        let disk = UntrustedStore::new();
        let path = "/cas/persist-test-db";
        let worker_image = EnclaveImage::builder().code(b"pw").build();

        // First CAS lifetime: register a policy.
        {
            let enclave = platform
                .create_enclave(&cas_image, ExecutionMode::Hardware)
                .unwrap();
            let store = KvStore::create(enclave.clone(), disk.clone(), path).unwrap();
            let mut cas =
                CasService::with_store(enclave, platform.fleet_verifier(), store).unwrap();
            cas.register_policy(
                ServicePolicy::new("persist-svc")
                    .allow_measurement(worker_image.measurement())
                    .with_secret("k", b"v"),
            )
            .unwrap();
        }

        // CAS restarts (same enclave identity): policy is still there and
        // still provisions.
        let enclave = platform
            .create_enclave(&cas_image, ExecutionMode::Hardware)
            .unwrap();
        let store = KvStore::open(enclave.clone(), disk, path).unwrap();
        let mut cas = CasService::with_store(enclave, platform.fleet_verifier(), store).unwrap();
        assert_eq!(cas.services(), vec!["persist-svc"]);
        let worker = platform
            .create_enclave(&worker_image, ExecutionMode::Hardware)
            .unwrap();
        let quote = worker.quote(b"x").unwrap();
        let p = cas.attest_and_provision(&quote, "persist-svc").unwrap();
        assert_eq!(p.secret("k"), Some(&b"v"[..]));
    }

    #[test]
    fn removed_policies_stay_removed_after_restart() {
        use securetf_shield::fs::UntrustedStore;

        let platform = Platform::builder().build();
        let cas_image = EnclaveImage::builder().code(b"removal cas").build();
        let disk = UntrustedStore::new();
        let path = "/cas/removal-test-db";
        {
            let enclave = platform
                .create_enclave(&cas_image, ExecutionMode::Hardware)
                .unwrap();
            let store = KvStore::create(enclave.clone(), disk.clone(), path).unwrap();
            let mut cas =
                CasService::with_store(enclave, platform.fleet_verifier(), store).unwrap();
            cas.register_policy(ServicePolicy::new("gone")).unwrap();
            cas.register_policy(ServicePolicy::new("kept")).unwrap();
            assert!(cas.remove_policy("gone"));
        }
        let enclave = platform
            .create_enclave(&cas_image, ExecutionMode::Hardware)
            .unwrap();
        let store = KvStore::open(enclave.clone(), disk, path).unwrap();
        let cas = CasService::with_store(enclave, platform.fleet_verifier(), store).unwrap();
        assert_eq!(cas.services(), vec!["kept"]);
    }

    #[test]
    fn outage_returns_unavailable_then_recovers() {
        let mut s = setup();
        let worker = s
            .platform
            .create_enclave(&s.worker_image, ExecutionMode::Hardware)
            .unwrap();
        let quote = worker.quote(b"binding").unwrap();
        s.cas.inject_outage(5_000_000);
        assert!(s.cas.is_unavailable());
        assert!(matches!(
            s.cas.attest_and_provision(&quote, "svc"),
            Err(CasError::Unavailable { .. })
        ));
        assert_eq!(s.cas.attestations_served(), 0);
        // Virtual time passes; the CAS comes back on its own.
        s.cas.enclave().clock().advance(5_000_000);
        assert!(!s.cas.is_unavailable());
        assert!(s.cas.attest_and_provision(&quote, "svc").is_ok());
    }

    #[test]
    fn retry_rides_out_bounded_outage() {
        let mut s = setup();
        let worker = s
            .platform
            .create_enclave(&s.worker_image, ExecutionMode::Hardware)
            .unwrap();
        let quote = worker.quote(b"binding").unwrap();
        s.cas.inject_outage(3_000_000);
        let policy = RetryPolicy {
            max_attempts: 8,
            base_delay_ns: 1_000_000,
            max_delay_ns: 10_000_000,
            jitter_from_seed: 7,
        };
        let p = s
            .cas
            .attest_and_provision_with_retry(&quote, "svc", &policy)
            .expect("backoff outlives the outage");
        assert!(p.secret("fs-key").is_some());
    }

    #[test]
    fn retry_fails_closed_on_integrity_violation() {
        let mut s = setup();
        let worker = s
            .platform
            .create_enclave(&s.worker_image, ExecutionMode::Hardware)
            .unwrap();
        let mut quote = worker.quote(b"binding").unwrap();
        quote.signature[0] ^= 1;
        let clock = s.cas.enclave().clock().clone();
        let before = clock.now_ns();
        let policy = RetryPolicy::with_seed(8, 7);
        assert!(matches!(
            s.cas.attest_and_provision_with_retry(&quote, "svc", &policy),
            Err(CasError::QuoteRejected(_))
        ));
        // No backoff was charged: a forged quote is not retried.
        let single_attempt_budget = 10_000_000;
        assert!(clock.now_ns() - before < single_attempt_budget);
    }

    #[test]
    fn retry_exhausts_against_long_outage() {
        let mut s = setup();
        let worker = s
            .platform
            .create_enclave(&s.worker_image, ExecutionMode::Hardware)
            .unwrap();
        let quote = worker.quote(b"binding").unwrap();
        s.cas.inject_outage(3_600_000_000_000); // one virtual hour
        let policy = RetryPolicy::with_seed(3, 7);
        assert!(matches!(
            s.cas.attest_and_provision_with_retry(&quote, "svc", &policy),
            Err(CasError::Unavailable { .. })
        ));
    }

    #[test]
    fn elastic_scaling_many_attestations_cheap() {
        // Spawning 50 new containers attests 50 times; with CAS this costs
        // ~1 s total, where IAS would cost ~16 s.
        let mut s = setup();
        let clock = s.cas.enclave().clock().clone();
        let t0 = clock.now_ns();
        for _ in 0..50 {
            let worker = s
                .platform
                .create_enclave(&s.worker_image, ExecutionMode::Hardware)
                .unwrap();
            let quote = worker.quote(b"binding").unwrap();
            s.cas.attest_and_provision(&quote, "svc").unwrap();
        }
        let elapsed_ms = (clock.now_ns() - t0) as f64 / 1e6;
        assert!(elapsed_ms < 3_000.0, "{elapsed_ms} ms for 50 attestations");
    }
}
