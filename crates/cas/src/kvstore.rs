//! The encrypted embedded database of CAS (paper §4.3).
//!
//! The paper embeds an encrypted SQLite inside the CAS enclave; secrets,
//! certificates and policies never exist in plaintext outside enclave
//! memory. This module provides the equivalent: a log-structured key-value
//! store whose log records are sealed to the CAS enclave identity and
//! whose manifest carries a version checked against a monotonic counter —
//! restoring an older database file is detected as a rollback.
//!
//! # Examples
//!
//! ```
//! use securetf_cas::kvstore::KvStore;
//! use securetf_shield::fs::UntrustedStore;
//! use securetf_tee::{Platform, EnclaveImage, ExecutionMode};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let platform = Platform::builder().build();
//! let enclave = platform.create_enclave(
//!     &EnclaveImage::builder().code(b"cas").build(),
//!     ExecutionMode::Hardware,
//! )?;
//! let disk = UntrustedStore::new();
//! let mut db = KvStore::create(enclave.clone(), disk.clone(), "/cas/db")?;
//! db.put(b"api-key", b"secret")?;
//! drop(db);
//!
//! let db2 = KvStore::open(enclave, disk, "/cas/db")?;
//! assert_eq!(db2.get(b"api-key"), Some(b"secret".to_vec()));
//! # Ok(())
//! # }
//! ```

use crate::CasError;
use parking_lot::Mutex;
use securetf_shield::fs::UntrustedStore;
use securetf_tee::counter::{CounterId, CounterStore};
use securetf_tee::sealing::SealPolicy;
use securetf_tee::Enclave;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Global store of hardware monotonic counters, shared across "restarts"
/// of the CAS enclave on the same simulated machine.
static HW_COUNTERS: Mutex<Option<CounterStore>> = Mutex::new(None);

fn with_hw_counters<T>(f: impl FnOnce(&mut CounterStore) -> T) -> T {
    let mut guard = HW_COUNTERS.lock();
    let store = guard.get_or_insert_with(CounterStore::new);
    f(store)
}

/// The in-enclave plaintext view of the store's entries.
type Entries = BTreeMap<Vec<u8>, Vec<u8>>;

/// An encrypted, rollback-protected key-value store.
#[derive(Debug)]
pub struct KvStore {
    enclave: Arc<Enclave>,
    disk: UntrustedStore,
    path: String,
    /// Plaintext view, inside enclave memory only.
    map: BTreeMap<Vec<u8>, Vec<u8>>,
    version: u64,
    counter: CounterId,
}

impl KvStore {
    /// Creates a fresh store persisted at `path` on the untrusted disk.
    ///
    /// # Errors
    ///
    /// Returns [`CasError::StoreCorrupted`] if a store already exists at
    /// `path` (refusing to silently overwrite state).
    pub fn create(
        enclave: Arc<Enclave>,
        disk: UntrustedStore,
        path: &str,
    ) -> Result<Self, CasError> {
        if disk.raw_contents(path).is_some() {
            return Err(CasError::StoreCorrupted("store already exists at path"));
        }
        let counter = with_hw_counters(|c| c.find_or_create_at(path, 0));
        let mut store = KvStore {
            enclave,
            disk,
            path: path.to_string(),
            map: BTreeMap::new(),
            version: 0,
            counter,
        };
        store.persist()?;
        Ok(store)
    }

    /// Opens an existing store, verifying integrity and freshness.
    ///
    /// # Errors
    ///
    /// * [`CasError::NotFound`] if nothing exists at `path`.
    /// * [`CasError::StoreCorrupted`] if unsealing fails (tampering, or a
    ///   different enclave identity) or the version does not match the
    ///   hardware counter (rollback).
    pub fn open(
        enclave: Arc<Enclave>,
        disk: UntrustedStore,
        path: &str,
    ) -> Result<Self, CasError> {
        let blob = disk
            .raw_contents(path)
            .ok_or_else(|| CasError::NotFound(path.to_string()))?;
        let plain = enclave
            .unseal(SealPolicy::Measurement, &blob, path.as_bytes())
            .map_err(|_| CasError::StoreCorrupted("unseal failed"))?;
        let (version, map) =
            Self::decode(&plain).ok_or(CasError::StoreCorrupted("malformed image"))?;
        // Freshness: the sealed image must carry the counter's value.
        let counter = with_hw_counters(|c| {
            // Re-associate with the existing counter for this path if the
            // same process created it; otherwise create one at the stored
            // version (models counter continuity on one machine).
            c.find_or_create_at(path, version)
        });
        with_hw_counters(|c| c.verify_exact(counter, version))
            .map_err(|_| CasError::StoreCorrupted("version rollback detected"))?;
        Ok(KvStore {
            enclave,
            disk,
            path: path.to_string(),
            map,
            version,
            counter,
        })
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&(self.map.len() as u64).to_le_bytes());
        for (k, v) in &self.map {
            out.extend_from_slice(&(k.len() as u32).to_le_bytes());
            out.extend_from_slice(k);
            out.extend_from_slice(&(v.len() as u32).to_le_bytes());
            out.extend_from_slice(v);
        }
        out
    }

    fn decode(bytes: &[u8]) -> Option<(u64, Entries)> {
        let mut cursor = 0usize;
        let take = |cursor: &mut usize, n: usize| -> Option<&[u8]> {
            if *cursor + n > bytes.len() {
                return None;
            }
            let s = &bytes[*cursor..*cursor + n];
            *cursor += n;
            Some(s)
        };
        let version = u64::from_le_bytes(take(&mut cursor, 8)?.try_into().ok()?);
        let entries = u64::from_le_bytes(take(&mut cursor, 8)?.try_into().ok()?);
        let mut map = BTreeMap::new();
        for _ in 0..entries {
            let klen = u32::from_le_bytes(take(&mut cursor, 4)?.try_into().ok()?) as usize;
            let k = take(&mut cursor, klen)?.to_vec();
            let vlen = u32::from_le_bytes(take(&mut cursor, 4)?.try_into().ok()?) as usize;
            let v = take(&mut cursor, vlen)?.to_vec();
            map.insert(k, v);
        }
        if cursor != bytes.len() {
            return None;
        }
        Some((version, map))
    }

    fn persist(&mut self) -> Result<(), CasError> {
        self.version += 1;
        with_hw_counters(|c| {
            let v = c.increment(self.counter)?;
            if v != self.version {
                // The counter moved independently (another instance wrote):
                // adopt its value to stay monotone.
                self.version = v;
            }
            Ok::<_, securetf_tee::TeeError>(())
        })?;
        let image = self.encode();
        let sealed = self
            .enclave
            .seal(SealPolicy::Measurement, &image, self.path.as_bytes());
        self.enclave.charge_syscall();
        self.disk.raw_put(&self.path, sealed);
        Ok(())
    }

    /// Inserts or replaces a value, persisting the store.
    ///
    /// # Errors
    ///
    /// Returns [`CasError::Tee`] on counter failures.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), CasError> {
        self.map.insert(key.to_vec(), value.to_vec());
        self.persist()
    }

    /// Reads a value.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.map.get(key).cloned()
    }

    /// Deletes a key, persisting the store. Returns whether it existed.
    ///
    /// # Errors
    ///
    /// Returns [`CasError::Tee`] on counter failures.
    pub fn delete(&mut self, key: &[u8]) -> Result<bool, CasError> {
        let had = self.map.remove(key).is_some();
        if had {
            self.persist()?;
        }
        Ok(had)
    }

    /// Iterates keys with a prefix.
    pub fn keys_with_prefix(&self, prefix: &[u8]) -> Vec<Vec<u8>> {
        self.map
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Current persisted version.
    pub fn version(&self) -> u64 {
        self.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use securetf_tee::{EnclaveImage, ExecutionMode, Platform};

    fn enclave_named(platform: &Platform, code: &[u8]) -> Arc<Enclave> {
        platform
            .create_enclave(
                &EnclaveImage::builder().code(code).build(),
                ExecutionMode::Hardware,
            )
            .unwrap()
    }

    fn unique_path(tag: &str) -> String {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        format!("/cas/{tag}-{}", N.fetch_add(1, Ordering::Relaxed))
    }

    #[test]
    fn put_get_roundtrip() {
        let platform = Platform::builder().build();
        let e = enclave_named(&platform, b"cas");
        let disk = UntrustedStore::new();
        let path = unique_path("db");
        let mut db = KvStore::create(e, disk, &path).unwrap();
        db.put(b"k1", b"v1").unwrap();
        db.put(b"k2", b"v2").unwrap();
        assert_eq!(db.get(b"k1"), Some(b"v1".to_vec()));
        assert_eq!(db.get(b"missing"), None);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn reopen_preserves_data() {
        let platform = Platform::builder().build();
        let e = enclave_named(&platform, b"cas");
        let disk = UntrustedStore::new();
        let path = unique_path("db");
        {
            let mut db = KvStore::create(e.clone(), disk.clone(), &path).unwrap();
            db.put(b"persisted", b"yes").unwrap();
        }
        let db = KvStore::open(e, disk, &path).unwrap();
        assert_eq!(db.get(b"persisted"), Some(b"yes".to_vec()));
    }

    #[test]
    fn disk_holds_only_ciphertext() {
        let platform = Platform::builder().build();
        let e = enclave_named(&platform, b"cas");
        let disk = UntrustedStore::new();
        let path = unique_path("db");
        let mut db = KvStore::create(e, disk.clone(), &path).unwrap();
        db.put(b"key-name", b"super-secret-value").unwrap();
        let raw = disk.raw_contents(&path).unwrap();
        assert!(!raw.windows(18).any(|w| w == b"super-secret-value"));
        assert!(!raw.windows(8).any(|w| w == b"key-name"));
    }

    #[test]
    fn tampered_disk_detected_on_open() {
        let platform = Platform::builder().build();
        let e = enclave_named(&platform, b"cas");
        let disk = UntrustedStore::new();
        let path = unique_path("db");
        {
            let mut db = KvStore::create(e.clone(), disk.clone(), &path).unwrap();
            db.put(b"a", b"b").unwrap();
        }
        disk.corrupt(&path, 20);
        assert!(matches!(
            KvStore::open(e, disk, &path),
            Err(CasError::StoreCorrupted(_))
        ));
    }

    #[test]
    fn rollback_of_database_file_detected() {
        let platform = Platform::builder().build();
        let e = enclave_named(&platform, b"cas");
        let disk = UntrustedStore::new();
        let path = unique_path("db");
        let mut db = KvStore::create(e.clone(), disk.clone(), &path).unwrap();
        db.put(b"key", b"old").unwrap();
        let old_image = disk.raw_contents(&path).unwrap();
        db.put(b"key", b"new").unwrap();
        drop(db);
        // Attacker restores the older (validly sealed) database file.
        disk.raw_put(&path, old_image);
        assert!(matches!(
            KvStore::open(e, disk, &path),
            Err(CasError::StoreCorrupted("version rollback detected"))
        ));
    }

    #[test]
    fn different_enclave_cannot_open() {
        let platform = Platform::builder().build();
        let cas = enclave_named(&platform, b"cas v1");
        let other = enclave_named(&platform, b"evil cas");
        let disk = UntrustedStore::new();
        let path = unique_path("db");
        {
            let mut db = KvStore::create(cas, disk.clone(), &path).unwrap();
            db.put(b"a", b"b").unwrap();
        }
        assert!(matches!(
            KvStore::open(other, disk, &path),
            Err(CasError::StoreCorrupted(_))
        ));
    }

    #[test]
    fn delete_and_prefix_scan() {
        let platform = Platform::builder().build();
        let e = enclave_named(&platform, b"cas");
        let disk = UntrustedStore::new();
        let path = unique_path("db");
        let mut db = KvStore::create(e, disk, &path).unwrap();
        db.put(b"secret/a", b"1").unwrap();
        db.put(b"secret/b", b"2").unwrap();
        db.put(b"policy/x", b"3").unwrap();
        assert_eq!(db.keys_with_prefix(b"secret/").len(), 2);
        assert!(db.delete(b"secret/a").unwrap());
        assert!(!db.delete(b"secret/a").unwrap());
        assert_eq!(db.keys_with_prefix(b"secret/").len(), 1);
    }

    #[test]
    fn create_refuses_to_overwrite() {
        let platform = Platform::builder().build();
        let e = enclave_named(&platform, b"cas");
        let disk = UntrustedStore::new();
        let path = unique_path("db");
        let _db = KvStore::create(e.clone(), disk.clone(), &path).unwrap();
        assert!(matches!(
            KvStore::create(e, disk, &path),
            Err(CasError::StoreCorrupted(_))
        ));
    }

    #[test]
    fn open_missing_is_not_found() {
        let platform = Platform::builder().build();
        let e = enclave_named(&platform, b"cas");
        assert!(matches!(
            KvStore::open(e, UntrustedStore::new(), "/cas/never-created"),
            Err(CasError::NotFound(_))
        ));
    }
}
