//! Self-healing supervision of distributed training.
//!
//! The paper's deployment assumes machines crash, networks drop and
//! tamper with records, storage bit-rots and the CAS occasionally
//! restarts. [`Supervisor`] wraps a [`DistributedTrainer`] so that
//! training *completes* under any survivable [`FaultPlan`] instead of
//! surfacing [`DistribError::NoWorkers`]:
//!
//! * **Failure detection** — before every step the supervisor heartbeats
//!   each worker over a real network-shield [`SecureChannel`]; probe
//!   round-trips and retry backoff are charged against the virtual-time
//!   cost model, so supervision overhead shows up in the report.
//! * **Recovery** — dead workers are respawned through CAS
//!   re-attestation with bounded exponential backoff
//!   ([`securetf_tee::RetryPolicy`]); a heartbeat that fails
//!   *authentication* (tampering) is treated as a compromised node and
//!   the worker is replaced immediately — tampering is never retried.
//! * **Rollback** — the supervisor checkpoints the global model to
//!   untrusted storage on a fixed cadence (two alternating generations,
//!   each AEAD-sealed under the CAS-provisioned `fs-key`); if a step
//!   fails mid-flight it rolls back to the newest checkpoint that still
//!   authenticates and retries the step.
//! * **Crash consistency** — checkpoints are written through the
//!   [`FsShield`]'s journaled two-phase commit path, so a host crash at
//!   any point during a checkpoint leaves either the old or the new
//!   generation — never a torn hybrid. When the storage host dies
//!   mid-operation ([`securetf_shield::ShieldError::HostCrashed`]) the
//!   supervisor restarts it, re-attests the parameter server to CAS and
//!   remounts the shield via [`FsShield::recover`]; a whole
//!   supervisor-process restart resumes from the newest committed
//!   generation through [`Supervisor::remount`].

use crate::cluster::TRAINING_SERVICE;
use crate::faults::{FaultEvent, FaultPlan};
use crate::trainer::{DistributedTrainer, TrainReport};
use crate::DistribError;
use parking_lot::Mutex;
use securetf_shield::fs::{FsShield, PathPolicy, Policy, StoreSnapshot, UntrustedStore};
use securetf_shield::net::{duplex, Adversary, PipeEnd, Role, SecureChannel, Tamper, Transport};
use securetf_shield::ShieldError;
use securetf_tee::telemetry::Counter;
use securetf_tee::{CostCategory, CostModel, Enclave, RetryPolicy, Telemetry};
use std::collections::VecDeque;
use std::sync::Arc;

/// Tuning knobs for the supervisor.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Backoff policy shared by heartbeat re-probes, CAS re-attestation
    /// and channel retries.
    pub retry: RetryPolicy,
    /// Checkpoint the global model every this many completed steps.
    pub checkpoint_every: u64,
    /// Path prefix for checkpoint generations in untrusted storage.
    pub checkpoint_path: String,
    /// How many times a single step may be rolled back and retried
    /// before its error is surfaced.
    pub max_step_recoveries: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            retry: RetryPolicy::default(),
            checkpoint_every: 5,
            checkpoint_path: "/ckpt/supervised".to_string(),
            max_step_recoveries: 3,
        }
    }
}

/// Counters describing what supervision did during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisorStats {
    /// Heartbeat probes sent (including retries).
    pub heartbeats: u64,
    /// Probes that timed out (dropped records or dead workers).
    pub missed_heartbeats: u64,
    /// Probes that failed authentication (tampering; fail closed).
    pub tampered_heartbeats: u64,
    /// Workers replaced through CAS re-attestation.
    pub respawns: u64,
    /// Mid-flight step failures rolled back to a checkpoint.
    pub rollbacks: u64,
    /// Checkpoint generations written.
    pub checkpoints: u64,
    /// Restores that had to fall back past a corrupted generation.
    pub checkpoint_fallbacks: u64,
    /// Fault events injected from the plan.
    pub faults_injected: u64,
    /// Host-storage crashes healed: host restart, parameter-server
    /// re-attestation and a shield remount via [`FsShield::recover`].
    pub storage_recoveries: u64,
    /// Whole-store rollback attacks injected from the plan.
    pub storage_rollbacks: u64,
    /// Virtual time spent on supervision (probes, backoff, stalls), in
    /// nanoseconds; added to the report's elapsed time.
    pub supervision_ns: u64,
}

/// Shared queue of adversary actions for one heartbeat link.
type TamperQueue = Arc<Mutex<VecDeque<Tamper>>>;

/// Non-blocking pipe transport. Heartbeats are driven end-to-end by the
/// supervisor thread, so a record is either already queued or lost for
/// good; the short spin only matters during the threaded handshake.
struct HeartbeatPipe {
    inner: PipeEnd,
    spin: u32,
}

impl Transport for HeartbeatPipe {
    fn send(&self, message: Vec<u8>) {
        self.inner.send(message);
    }

    fn recv(&self) -> Option<Vec<u8>> {
        for _ in 0..self.spin {
            if let Some(m) = self.inner.recv() {
                return Some(m);
            }
            std::thread::yield_now();
        }
        None
    }
}

/// Both ends of one worker's heartbeat link. The supervisor drives the
/// worker side too — it simulates the worker's heartbeat responder
/// thread, gated on the worker enclave's health.
struct Heartbeat {
    ps_side: SecureChannel<HeartbeatPipe>,
    worker_side: SecureChannel<HeartbeatPipe>,
    tamper: TamperQueue,
    seq: u64,
}

/// How many lost records a heartbeat channel resynchronizes over.
const HEARTBEAT_LOSS_WINDOW: u64 = 32;

fn heartbeat_link(
    ps_enclave: Arc<Enclave>,
    worker_enclave: Arc<Enclave>,
) -> Result<Heartbeat, DistribError> {
    let tamper: TamperQueue = Arc::new(Mutex::new(VecDeque::new()));
    let queue = tamper.clone();
    let adversary: Adversary =
        Arc::new(move |_msg| queue.lock().pop_front().unwrap_or(Tamper::Pass));
    let (ps_end, worker_end) = duplex(Some(adversary));
    // The handshake interleaves send/recv, so the initiator runs on a
    // helper thread; data-path receives use a short spin because both
    // halves are driven by the supervisor thread afterwards.
    let initiator = std::thread::spawn(move || {
        SecureChannel::handshake(
            HeartbeatPipe {
                inner: ps_end,
                spin: 100_000,
            },
            ps_enclave,
            Role::Initiator,
        )
    });
    let worker_side = SecureChannel::handshake(
        HeartbeatPipe {
            inner: worker_end,
            spin: 100_000,
        },
        worker_enclave,
        Role::Responder,
    )
    .map_err(|_| DistribError::BadMessage("heartbeat handshake failed"))?;
    let ps_side = initiator
        .join()
        .map_err(|_| DistribError::BadMessage("heartbeat handshake panicked"))?
        .map_err(|_| DistribError::BadMessage("heartbeat handshake failed"))?;
    let mut hb = Heartbeat {
        ps_side,
        worker_side,
        tamper,
        seq: 0,
    };
    hb.ps_side.set_loss_window(HEARTBEAT_LOSS_WINDOW);
    hb.worker_side.set_loss_window(HEARTBEAT_LOSS_WINDOW);
    // Drop the spin once the handshake is done: a missing record will
    // never appear later.
    hb.ps_side.transport_mut().spin = 1;
    hb.worker_side.transport_mut().spin = 1;
    Ok(hb)
}

/// Outcome of probing one worker.
enum Probe {
    Alive,
    /// No authenticated response within the retry budget.
    Dead,
    /// A record failed authentication: fail closed, replace the node.
    Compromised,
}

/// Telemetry mirror of [`SupervisorStats`], resolved once from the
/// cluster's telemetry registry (no-op handles when disabled). The
/// `SupervisorStats` struct stays the programmatic API; these counters
/// put the same events into metrics digests and attested exports.
#[derive(Debug, Clone)]
struct SupervisorMetrics {
    heartbeats: Counter,
    missed_heartbeats: Counter,
    tampered_heartbeats: Counter,
    respawns: Counter,
    rollbacks: Counter,
    checkpoints: Counter,
    checkpoint_fallbacks: Counter,
    faults_injected: Counter,
    storage_recoveries: Counter,
    storage_rollbacks: Counter,
}

impl SupervisorMetrics {
    fn for_telemetry(t: &Telemetry) -> Self {
        SupervisorMetrics {
            heartbeats: t.counter("supervisor.heartbeats"),
            missed_heartbeats: t.counter("supervisor.missed_heartbeats"),
            tampered_heartbeats: t.counter("supervisor.tampered_heartbeats"),
            respawns: t.counter("supervisor.respawns"),
            rollbacks: t.counter("supervisor.rollbacks"),
            checkpoints: t.counter("supervisor.checkpoints"),
            checkpoint_fallbacks: t.counter("supervisor.checkpoint_fallbacks"),
            faults_injected: t.counter("supervisor.faults_injected"),
            storage_recoveries: t.counter("supervisor.storage_recoveries"),
            storage_rollbacks: t.counter("supervisor.storage_rollbacks"),
        }
    }
}

/// A self-healing wrapper around [`DistributedTrainer`].
pub struct Supervisor {
    trainer: DistributedTrainer,
    config: SupervisorConfig,
    plan: FaultPlan,
    store: UntrustedStore,
    shield: FsShield,
    /// Store image at the last committed checkpoint; what a
    /// [`FaultEvent::StorageRollback`] rewinds the host to.
    snapshot: Option<StoreSnapshot>,
    heartbeats: Vec<Heartbeat>,
    stats: SupervisorStats,
    metrics: SupervisorMetrics,
    telemetry: Telemetry,
    step: u64,
    latest_generation: Option<u64>,
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("step", &self.step)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Supervisor {
    /// Wraps `trainer`, establishing a heartbeat channel to every worker
    /// and writing an initial checkpoint so rollback always has a
    /// target. Checkpoints go to `store` (untrusted storage).
    ///
    /// # Errors
    ///
    /// Returns handshake or checkpoint errors from the initial setup.
    pub fn new(
        trainer: DistributedTrainer,
        plan: FaultPlan,
        config: SupervisorConfig,
        store: UntrustedStore,
    ) -> Result<Self, DistribError> {
        let mut shield = FsShield::new(trainer.cluster().ps.enclave.clone(), store.clone());
        shield.add_policy(PathPolicy::new(&config.checkpoint_path, Policy::EncryptAuth));
        let mut supervisor = Self::build(trainer, plan, config, store, shield)?;
        supervisor.save_generation()?;
        Ok(supervisor)
    }

    /// Rebuilds a supervisor after a whole supervisor-process restart:
    /// restarts the crashed storage host, re-attests the parameter
    /// server, remounts the fs shield ([`FsShield::recover`]) and resumes
    /// the trainer from the newest committed checkpoint generation. If no
    /// generation survives (or the host destroyed the manifest), the
    /// still-intact in-enclave model is re-sealed as a fresh generation.
    ///
    /// The trainer must be backed by the same platforms as before the
    /// restart — sealing keys and the manifest's monotonic counter live
    /// in the machine, not the process.
    ///
    /// # Errors
    ///
    /// Returns handshake, attestation or checkpoint errors from setup.
    pub fn remount(
        trainer: DistributedTrainer,
        plan: FaultPlan,
        config: SupervisorConfig,
        store: UntrustedStore,
    ) -> Result<Self, DistribError> {
        let mut shield = FsShield::new(trainer.cluster().ps.enclave.clone(), store.clone());
        shield.add_policy(PathPolicy::new(&config.checkpoint_path, Policy::EncryptAuth));
        let mut supervisor = Self::build(trainer, plan, config, store, shield)?;
        supervisor.recover_storage()?;
        if !supervisor.restore_newest_generation() {
            supervisor.save_generation()?;
        }
        Ok(supervisor)
    }

    fn build(
        trainer: DistributedTrainer,
        plan: FaultPlan,
        config: SupervisorConfig,
        store: UntrustedStore,
        shield: FsShield,
    ) -> Result<Self, DistribError> {
        let telemetry = trainer.cluster().config().telemetry.clone();
        let metrics = SupervisorMetrics::for_telemetry(&telemetry);
        let mut supervisor = Supervisor {
            trainer,
            config,
            plan,
            store,
            shield,
            snapshot: None,
            heartbeats: Vec::new(),
            stats: SupervisorStats::default(),
            metrics,
            telemetry,
            step: 0,
            latest_generation: None,
        };
        for w in 0..supervisor.trainer.cluster().workers.len() {
            let hb = heartbeat_link(
                supervisor.trainer.cluster().ps.enclave.clone(),
                supervisor.trainer.cluster().workers[w].enclave.clone(),
            )?;
            supervisor.heartbeats.push(hb);
        }
        Ok(supervisor)
    }

    /// Runs `n` supervised steps: inject scheduled faults, heal the
    /// cluster, execute the step (rolling back to the last authenticated
    /// checkpoint on mid-flight failure), checkpoint on cadence.
    ///
    /// # Errors
    ///
    /// Surfaces an error only when the plan is not survivable: a fatal
    /// attestation failure, or a step that keeps failing after
    /// [`SupervisorConfig::max_step_recoveries`] rollbacks.
    pub fn train_steps(&mut self, n: u64) -> Result<TrainReport, DistribError> {
        let mut last = f32::NAN;
        for _ in 0..n {
            last = self.supervised_step()?;
        }
        Ok(TrainReport {
            steps: self.trainer.steps(),
            final_loss: last,
            elapsed_ns: self.trainer.elapsed_ns() + self.stats.supervision_ns,
            samples: self.trainer.samples(),
        })
    }

    fn supervised_step(&mut self) -> Result<f32, DistribError> {
        self.inject(self.step)?;
        self.heal()?;
        let mut recoveries = 0u32;
        let loss = loop {
            match self.trainer.step() {
                Ok(loss) => break loss,
                Err(e) if recoveries < self.config.max_step_recoveries && recoverable(&e) => {
                    recoveries += 1;
                    self.stats.rollbacks += 1;
                    self.metrics.rollbacks.inc();
                    self.heal()?;
                    self.restore_latest()?;
                }
                Err(e) => return Err(e),
            }
        };
        self.step += 1;
        if self.step.is_multiple_of(self.config.checkpoint_every) {
            self.save_generation()?;
        }
        Ok(loss)
    }

    /// Applies the plan's events for `step` to the live system.
    fn inject(&mut self, step: u64) -> Result<(), DistribError> {
        let events: Vec<FaultEvent> = self.plan.events_at(step).to_vec();
        let worker_count = self.trainer.cluster().workers.len().max(1);
        for event in events {
            self.stats.faults_injected += 1;
            self.metrics.faults_injected.inc();
            match event {
                FaultEvent::WorkerCrash { worker } => {
                    self.trainer.cluster_mut().fail_worker(worker % worker_count)?;
                }
                FaultEvent::PsStall { delay_ns } => {
                    self.trainer.cluster().ps.clock().advance(delay_ns);
                    self.stats.supervision_ns += delay_ns;
                    self.telemetry.charge(CostCategory::Other, delay_ns);
                }
                FaultEvent::NetDrop { worker, records } => {
                    let queue = &self.heartbeats[worker % worker_count].tamper;
                    let mut q = queue.lock();
                    for _ in 0..records {
                        q.push_back(Tamper::Drop);
                    }
                }
                FaultEvent::NetTamper { worker } => {
                    self.heartbeats[worker % worker_count]
                        .tamper
                        .lock()
                        .push_back(Tamper::FlipBit(9));
                }
                FaultEvent::ChunkCorruption { offset } => {
                    if let Some(generation) = self.latest_generation {
                        self.store.corrupt(&self.generation_path(generation), offset);
                    }
                }
                FaultEvent::CasOutage { duration_ns } => {
                    self.trainer.cluster_mut().cas_mut().inject_outage(duration_ns);
                }
                FaultEvent::CrashDuringWrite { after_ops } => {
                    self.store.fail_after_ops(after_ops);
                }
                FaultEvent::TornWrite {
                    after_ops,
                    torn_bytes,
                } => {
                    self.store.fail_after_ops_torn(after_ops, torn_bytes);
                }
                FaultEvent::StorageRollback => {
                    self.stats.storage_rollbacks += 1;
                    self.metrics.storage_rollbacks.inc();
                    if let Some(snapshot) = &self.snapshot {
                        self.store.restore(snapshot);
                    }
                }
                // Serving-side events target the inference gateway's
                // clients, not the training cluster; a training
                // supervisor ignores them.
                FaultEvent::RequestBurst { .. }
                | FaultEvent::SlowClient { .. }
                | FaultEvent::ClientDisconnect { .. } => {}
            }
        }
        Ok(())
    }

    /// Probes every worker and respawns the ones that fail.
    fn heal(&mut self) -> Result<(), DistribError> {
        let model = self.trainer.cluster().ps.platform.cost_model().clone();
        for w in 0..self.trainer.cluster().workers.len() {
            match self.probe(w, &model) {
                Probe::Alive => {}
                Probe::Dead => self.respawn(w)?,
                Probe::Compromised => {
                    self.stats.tampered_heartbeats += 1;
                    self.metrics.tampered_heartbeats.inc();
                    self.respawn(w)?;
                }
            }
        }
        Ok(())
    }

    /// Ping/echo/ack over the worker's heartbeat channel, with bounded
    /// retries for *lost* records. Authentication failures fail closed
    /// immediately.
    fn probe(&mut self, w: usize, model: &CostModel) -> Probe {
        let policy = self.config.retry.clone();
        for attempt in 0..policy.max_attempts.max(1) {
            if attempt > 0 {
                let backoff = policy.delay_ns(attempt - 1);
                self.trainer.cluster().ps.clock().advance(backoff);
                self.stats.supervision_ns += backoff;
                self.telemetry.charge(CostCategory::Other, backoff);
            }
            self.stats.heartbeats += 1;
            self.metrics.heartbeats.inc();
            self.trainer.cluster().ps.clock().advance(model.lan_rtt_ns);
            self.stats.supervision_ns += model.lan_rtt_ns;
            self.telemetry.charge(CostCategory::Network, model.lan_rtt_ns);
            let hb = &mut self.heartbeats[w];
            let ping = hb.seq.to_le_bytes();
            hb.seq += 1;
            if hb.ps_side.send(&ping).is_err() {
                // The supervisor's own enclave cannot speak; nothing a
                // respawn of the *worker* would fix.
                return Probe::Alive;
            }
            match hb.worker_side.recv() {
                Ok(echo) => {
                    if hb.worker_side.send(&echo).is_err() {
                        return Probe::Dead;
                    }
                    match hb.ps_side.recv() {
                        Ok(_) => return Probe::Alive,
                        Err(ShieldError::ChannelClosed) => {
                            self.stats.missed_heartbeats += 1;
                            self.metrics.missed_heartbeats.inc();
                        }
                        Err(_) => return Probe::Compromised,
                    }
                }
                Err(ShieldError::ChannelClosed) => {
                    self.stats.missed_heartbeats += 1;
                    self.metrics.missed_heartbeats.inc();
                }
                Err(_) => return Probe::Compromised,
            }
        }
        Probe::Dead
    }

    /// Replaces worker `w` with a freshly attested node (riding out CAS
    /// outages per the retry policy) and re-establishes its heartbeat
    /// channel.
    fn respawn(&mut self, w: usize) -> Result<(), DistribError> {
        self.stats.respawns += 1;
        self.metrics.respawns.inc();
        self.trainer
            .cluster_mut()
            .respawn_worker_with_retry(w, &self.config.retry)?;
        let hb = heartbeat_link(
            self.trainer.cluster().ps.enclave.clone(),
            self.trainer.cluster().workers[w].enclave.clone(),
        )?;
        self.heartbeats[w] = hb;
        Ok(())
    }

    fn generation_path(&self, generation: u64) -> String {
        // Two alternating slots: a corrupted newest generation can fall
        // back to the previous one.
        format!("{}/gen-{}", self.config.checkpoint_path, generation % 2)
    }

    /// Seals the model as the next checkpoint generation and commits it
    /// through the shield's journaled write path. The generation number
    /// is prefixed to the sealed payload so a remount can tell which of
    /// the two slots is newest. A host crash during the write is healed
    /// once ([`Supervisor::recover_storage`]) and the write retried.
    fn save_generation(&mut self) -> Result<(), DistribError> {
        for attempt in 0..2 {
            let generation = self.latest_generation.map(|g| g + 1).unwrap_or(0);
            let path = self.generation_path(generation);
            let mut payload = generation.to_le_bytes().to_vec();
            payload.extend_from_slice(&self.trainer.checkpoint_bytes(&path)?);
            match self.shield.write(&path, &payload) {
                Ok(()) => {
                    self.latest_generation = Some(generation);
                    self.stats.checkpoints += 1;
                    self.metrics.checkpoints.inc();
                    self.snapshot = Some(self.store.snapshot());
                    return Ok(());
                }
                Err(ShieldError::HostCrashed(_)) if attempt == 0 => self.recover_storage()?,
                Err(_) => return Err(DistribError::BadMessage("checkpoint write failed")),
            }
        }
        Err(DistribError::BadMessage("checkpoint write failed after recovery"))
    }

    /// Restores the newest checkpoint generation that still
    /// authenticates. If every generation has been corrupted, the
    /// in-enclave model is still intact — re-seal it as a fresh
    /// generation and continue from it.
    fn restore_latest(&mut self) -> Result<(), DistribError> {
        let Some(latest) = self.latest_generation else {
            return self.save_generation();
        };
        let candidates = [latest, latest.saturating_sub(1)];
        for (i, &generation) in candidates.iter().enumerate() {
            let path = self.generation_path(generation);
            let mut recovered = false;
            let restored = loop {
                match self.shield.read(&path) {
                    Ok(payload) if payload.len() >= 8 => {
                        break self
                            .trainer
                            .restore_checkpoint_bytes(&payload[8..], &path)
                            .is_ok();
                    }
                    Ok(_) => break false,
                    Err(ShieldError::HostCrashed(_)) if !recovered => {
                        recovered = true;
                        self.recover_storage()?;
                    }
                    Err(_) => break false,
                }
            };
            if restored {
                if i > 0 {
                    self.stats.checkpoint_fallbacks += 1;
                    self.metrics.checkpoint_fallbacks.inc();
                }
                return Ok(());
            }
        }
        self.stats.checkpoint_fallbacks += 1;
        self.metrics.checkpoint_fallbacks.inc();
        self.save_generation()
    }

    /// Heals a crashed storage host: restart it, re-attest the parameter
    /// server to CAS (riding out outages per the retry policy, exactly as
    /// a freshly booted node would) and remount the fs shield from its
    /// sealed manifest. If the host lost or rolled back the manifest the
    /// shield fails closed on its contents — the supervisor remounts
    /// fresh and re-seals from the intact in-enclave model.
    fn recover_storage(&mut self) -> Result<(), DistribError> {
        self.stats.storage_recoveries += 1;
        self.metrics.storage_recoveries.inc();
        self.store.host_restart();
        let enclave = self.trainer.cluster().ps.enclave.clone();
        let quote = enclave.quote(b"fs-shield remount")?;
        self.trainer
            .cluster_mut()
            .cas_mut()
            .attest_and_provision_with_retry(&quote, TRAINING_SERVICE, &self.config.retry)
            .map_err(DistribError::Attestation)?;
        match FsShield::recover(enclave.clone(), self.store.clone()) {
            Ok((mut shield, _report)) => {
                shield.add_policy(PathPolicy::new(
                    &self.config.checkpoint_path,
                    Policy::EncryptAuth,
                ));
                self.shield = shield;
            }
            Err(_) => {
                let mut shield = FsShield::new(enclave, self.store.clone());
                shield.add_policy(PathPolicy::new(
                    &self.config.checkpoint_path,
                    Policy::EncryptAuth,
                ));
                self.shield = shield;
                self.latest_generation = None;
            }
        }
        Ok(())
    }

    /// Reads both generation slots through the remounted shield and
    /// restores the trainer from the newest payload that authenticates.
    /// Returns whether any generation was restored.
    fn restore_newest_generation(&mut self) -> bool {
        let mut candidates: Vec<(u64, String, Vec<u8>)> = Vec::new();
        for slot in 0..2u64 {
            let path = format!("{}/gen-{}", self.config.checkpoint_path, slot);
            if let Ok(payload) = self.shield.read(&path) {
                if payload.len() >= 8 {
                    let generation = u64::from_le_bytes(payload[..8].try_into().unwrap());
                    candidates.push((generation, path, payload));
                }
            }
        }
        candidates.sort_by_key(|c| std::cmp::Reverse(c.0));
        for (generation, path, payload) in candidates {
            if self
                .trainer
                .restore_checkpoint_bytes(&payload[8..], &path)
                .is_ok()
            {
                self.latest_generation = Some(generation);
                self.snapshot = Some(self.store.snapshot());
                return true;
            }
        }
        false
    }

    /// Counters describing what supervision did so far.
    pub fn stats(&self) -> SupervisorStats {
        self.stats
    }

    /// The fault plan driving this run.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The wrapped trainer.
    pub fn trainer(&self) -> &DistributedTrainer {
        &self.trainer
    }

    /// The wrapped trainer, mutable.
    pub fn trainer_mut(&mut self) -> &mut DistributedTrainer {
        &mut self.trainer
    }

    /// The untrusted checkpoint store.
    pub fn store(&self) -> &UntrustedStore {
        &self.store
    }

    /// Unwraps the supervisor, returning the trainer.
    pub fn into_trainer(self) -> DistributedTrainer {
        self.trainer
    }
}

/// Which step failures rollback-and-retry can plausibly fix. Integrity
/// violations inside the step (bad messages between *our own* nodes
/// would indicate a bug, but a tampered checkpoint restore surfaces the
/// same way) and worker exhaustion are recoverable; fatal attestation
/// errors are not.
fn recoverable(e: &DistribError) -> bool {
    match e {
        DistribError::NoWorkers | DistribError::BadMessage(_) | DistribError::Tee(_) => true,
        DistribError::Attestation(e) => e.is_transient(),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterConfig};
    use rand::SeedableRng;
    use securetf_tee::ExecutionMode;
    use securetf_tensor::layers::{self, Classifier};

    fn small_model() -> Classifier {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        layers::mlp_classifier(784, &[32], 10, &mut rng).unwrap()
    }

    fn trainer(workers: usize) -> DistributedTrainer {
        let cluster = Cluster::new(ClusterConfig {
            workers,
            parameter_servers: 1,
            mode: ExecutionMode::Simulation,
            network_shield: true,
            runtime_bytes: 8 * 1024 * 1024,
            heap_bytes: 16 * 1024 * 1024,
            ..ClusterConfig::default()
        })
        .unwrap();
        let data = securetf_data::synthetic_mnist(300, 5);
        DistributedTrainer::new(cluster, small_model(), data, 100, 0.2).unwrap()
    }

    fn supervisor(workers: usize, plan: FaultPlan) -> Supervisor {
        Supervisor::new(
            trainer(workers),
            plan,
            SupervisorConfig::default(),
            UntrustedStore::new(),
        )
        .unwrap()
    }

    #[test]
    fn fault_free_plan_trains_normally() {
        let mut s = supervisor(2, FaultPlan::none());
        let report = s.train_steps(8).unwrap();
        assert_eq!(report.steps, 8);
        assert!(report.final_loss.is_finite());
        assert_eq!(s.stats().respawns, 0);
        assert_eq!(s.stats().rollbacks, 0);
        assert!(s.stats().heartbeats >= 16, "one probe per worker per step");
        assert!(s.stats().supervision_ns > 0);
    }

    #[test]
    fn crashed_workers_are_respawned_not_fatal() {
        let plan = FaultPlan::none()
            .with_event(1, FaultEvent::WorkerCrash { worker: 0 })
            .with_event(1, FaultEvent::WorkerCrash { worker: 1 })
            .with_event(3, FaultEvent::WorkerCrash { worker: 0 });
        let mut s = supervisor(2, plan);
        let report = s.train_steps(6).unwrap();
        assert!(report.final_loss.is_finite());
        assert_eq!(s.stats().respawns, 3);
        // Every step ran with a full worker set.
        assert_eq!(report.samples, 6 * 2 * 100);
    }

    #[test]
    fn all_workers_crashing_every_step_still_completes() {
        let mut plan = FaultPlan::none();
        for step in 0..4 {
            plan = plan
                .with_event(step, FaultEvent::WorkerCrash { worker: 0 })
                .with_event(step, FaultEvent::WorkerCrash { worker: 1 });
        }
        let mut s = supervisor(2, plan);
        let report = s.train_steps(4).unwrap();
        assert!(report.final_loss.is_finite());
        assert_eq!(s.stats().respawns, 8);
    }

    #[test]
    fn cas_outage_during_respawn_is_ridden_out() {
        let plan = FaultPlan::none()
            .with_event(2, FaultEvent::CasOutage {
                duration_ns: 4_000_000,
            })
            .with_event(2, FaultEvent::WorkerCrash { worker: 1 });
        let mut s = supervisor(2, plan);
        let report = s.train_steps(5).unwrap();
        assert!(report.final_loss.is_finite());
        assert_eq!(s.stats().respawns, 1);
    }

    #[test]
    fn dropped_heartbeats_are_retried_not_respawned() {
        let plan = FaultPlan::none().with_event(1, FaultEvent::NetDrop {
            worker: 0,
            records: 2,
        });
        let mut s = supervisor(2, plan);
        s.train_steps(3).unwrap();
        assert!(s.stats().missed_heartbeats >= 1);
        assert_eq!(s.stats().respawns, 0, "drops are transient");
    }

    #[test]
    fn tampered_heartbeat_fails_closed_and_replaces_worker() {
        let plan = FaultPlan::none().with_event(1, FaultEvent::NetTamper { worker: 1 });
        let mut s = supervisor(2, plan);
        s.train_steps(3).unwrap();
        assert_eq!(s.stats().tampered_heartbeats, 1);
        assert_eq!(s.stats().respawns, 1, "tampering is never retried");
    }

    #[test]
    fn corrupted_checkpoint_falls_back_to_older_generation() {
        let config = SupervisorConfig {
            checkpoint_every: 1,
            ..Default::default()
        };
        let mut s = Supervisor::new(
            trainer(1),
            FaultPlan::none(),
            config,
            UntrustedStore::new(),
        )
        .unwrap();
        s.train_steps(3).unwrap();
        // Corrupt the newest generation, then force a rollback.
        let latest = s.latest_generation.unwrap();
        let path = s.generation_path(latest);
        assert!(s.store.corrupt(&path, 40));
        s.restore_latest().unwrap();
        assert_eq!(s.stats().checkpoint_fallbacks, 1);
    }

    #[test]
    fn ps_stall_charges_supervision_time() {
        let plan = FaultPlan::none().with_event(0, FaultEvent::PsStall {
            delay_ns: 7_000_000,
        });
        let mut s = supervisor(1, plan);
        let faulted = s.train_steps(2).unwrap();
        let clean = supervisor(1, FaultPlan::none()).train_steps(2).unwrap();
        assert!(faulted.elapsed_ns > clean.elapsed_ns + 7_000_000 - 1);
    }

    #[test]
    fn supervision_events_mirror_into_telemetry() {
        let telemetry = Telemetry::new(Arc::new(securetf_tee::SimClock::new()));
        let cluster = Cluster::new(ClusterConfig {
            workers: 2,
            parameter_servers: 1,
            mode: ExecutionMode::Simulation,
            network_shield: true,
            runtime_bytes: 8 * 1024 * 1024,
            heap_bytes: 16 * 1024 * 1024,
            telemetry: telemetry.clone(),
            ..ClusterConfig::default()
        })
        .unwrap();
        let data = securetf_data::synthetic_mnist(300, 5);
        let trainer = DistributedTrainer::new(cluster, small_model(), data, 100, 0.2).unwrap();
        let plan = FaultPlan::none()
            .with_event(1, FaultEvent::WorkerCrash { worker: 0 })
            .with_event(2, FaultEvent::NetTamper { worker: 1 });
        let mut s = Supervisor::new(
            trainer,
            plan,
            SupervisorConfig::default(),
            UntrustedStore::new(),
        )
        .unwrap();
        s.train_steps(4).unwrap();
        let stats = s.stats();
        assert_eq!(
            telemetry.counter("supervisor.heartbeats").get(),
            stats.heartbeats
        );
        assert_eq!(
            telemetry.counter("supervisor.respawns").get(),
            stats.respawns
        );
        assert_eq!(
            telemetry.counter("supervisor.tampered_heartbeats").get(),
            stats.tampered_heartbeats
        );
        assert_eq!(
            telemetry.counter("supervisor.checkpoints").get(),
            stats.checkpoints
        );
        assert_eq!(
            telemetry.counter("supervisor.faults_injected").get(),
            stats.faults_injected
        );
        assert!(stats.respawns >= 2, "crash + tamper both replace workers");
        // Probe RTTs were attributed to the network cost category.
        assert!(telemetry.counter("cost.network.ns").get() > 0);
    }

    /// Bit-level image of every model variable, for state comparison.
    fn var_bits(t: &DistributedTrainer) -> Vec<u32> {
        t.ps_session()
            .variables()
            .iter()
            .flat_map(|(_, v)| v.data().iter().map(|x| x.to_bits()))
            .collect()
    }

    #[test]
    fn crash_during_checkpoint_write_is_recovered() {
        let config = SupervisorConfig {
            checkpoint_every: 2,
            ..Default::default()
        };
        // Arm the host to die two ops into the next journaled write: the
        // checkpoint after step 2 crashes mid-staging.
        let plan = FaultPlan::none().with_event(1, FaultEvent::CrashDuringWrite { after_ops: 2 });
        let mut s =
            Supervisor::new(trainer(1), plan, config, UntrustedStore::new()).unwrap();
        let report = s.train_steps(4).unwrap();
        assert!(report.final_loss.is_finite());
        assert_eq!(s.stats().storage_recoveries, 1);
        // Initial checkpoint + two cadence checkpoints all committed.
        assert_eq!(s.stats().checkpoints, 3);
        assert!(s.restore_latest().is_ok(), "newest generation restores");
    }

    #[test]
    fn torn_checkpoint_write_is_recovered() {
        let config = SupervisorConfig {
            checkpoint_every: 2,
            ..Default::default()
        };
        let plan = FaultPlan::none().with_event(1, FaultEvent::TornWrite {
            after_ops: 3,
            torn_bytes: 9,
        });
        let mut s =
            Supervisor::new(trainer(1), plan, config, UntrustedStore::new()).unwrap();
        let report = s.train_steps(4).unwrap();
        assert!(report.final_loss.is_finite());
        assert_eq!(s.stats().storage_recoveries, 1);
        assert!(s.restore_latest().is_ok(), "torn bytes never restore");
    }

    #[test]
    fn storage_rollback_is_survived() {
        let config = SupervisorConfig {
            checkpoint_every: 2,
            ..Default::default()
        };
        let plan = FaultPlan::none().with_event(3, FaultEvent::StorageRollback);
        let mut s =
            Supervisor::new(trainer(1), plan, config, UntrustedStore::new()).unwrap();
        let report = s.train_steps(6).unwrap();
        assert!(report.final_loss.is_finite());
        assert_eq!(s.stats().storage_rollbacks, 1);
    }

    #[test]
    fn remount_resumes_from_newest_committed_generation() {
        let config = SupervisorConfig {
            checkpoint_every: 5,
            ..Default::default()
        };
        let store = UntrustedStore::new();
        let mut s = Supervisor::new(
            trainer(2),
            FaultPlan::none(),
            config.clone(),
            store.clone(),
        )
        .unwrap();
        s.train_steps(5).unwrap();
        // The cadence checkpoint just sealed this exact state.
        let at_checkpoint = var_bits(s.trainer());
        s.train_steps(2).unwrap();
        assert_ne!(var_bits(s.trainer()), at_checkpoint, "training moved on");
        // Kill the supervisor process and the storage host; the machines
        // (platforms, counters, sealing keys) survive.
        store.fail_after_ops(0);
        let trainer = s.into_trainer();
        let s2 = Supervisor::remount(trainer, FaultPlan::none(), config, store).unwrap();
        assert_eq!(
            var_bits(s2.trainer()),
            at_checkpoint,
            "remount restores the newest committed generation"
        );
        assert_eq!(s2.latest_generation, Some(1), "init gen 0 + cadence gen 1");
        assert_eq!(s2.stats().storage_recoveries, 1);
        // And training continues from there.
        let mut s2 = s2;
        let report = s2.train_steps(3).unwrap();
        assert!(report.final_loss.is_finite());
    }

    #[test]
    fn remount_with_destroyed_manifest_fails_closed_then_reseals() {
        let store = UntrustedStore::new();
        let mut s = Supervisor::new(
            trainer(1),
            FaultPlan::none(),
            SupervisorConfig::default(),
            store.clone(),
        )
        .unwrap();
        s.train_steps(6).unwrap();
        let live = var_bits(s.trainer());
        // The host wipes everything it stored (manifest included).
        for path in store.paths() {
            store.raw_delete(&path);
        }
        let trainer = s.into_trainer();
        let s2 = Supervisor::remount(
            trainer,
            FaultPlan::none(),
            SupervisorConfig::default(),
            store.clone(),
        )
        .unwrap();
        // No stored generation survives; the in-enclave model is re-sealed
        // as a fresh generation instead of trusting the empty host.
        assert_eq!(s2.latest_generation, Some(0));
        assert_eq!(var_bits(s2.trainer()), live, "in-enclave state kept");
        assert!(!store.paths().is_empty(), "fresh checkpoint re-sealed");
    }

    #[test]
    fn identical_seeds_reproduce_identical_loss() {
        let run = |seed: u64| {
            let plan = FaultPlan::generate(seed, 8, 2);
            let digest = plan.schedule_digest();
            let mut s = supervisor(2, plan);
            let report = s.train_steps(8).unwrap();
            (digest, report.final_loss.to_bits())
        };
        let (d1, l1) = run(99);
        let (d2, l2) = run(99);
        assert_eq!(d1, d2, "schedule must be reproducible");
        assert_eq!(l1, l2, "final loss must match bit for bit");
        let (d3, l3) = run(100);
        assert!(d3 != d1 || l3 != l1, "different seed, different run");
    }
}
