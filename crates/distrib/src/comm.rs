//! Communication plane for distributed training (§5.4).
//!
//! The trainer's per-step exchange is built from three pieces that live
//! here:
//!
//! * **Shard ownership** — variables are range-partitioned across the
//!   parameter-server nodes by cumulative byte size
//!   ([`partition_by_bytes`]); each worker pushes a gradient chunk only
//!   to the owning shard, and the shards' NICs drain in parallel.
//! * **Layer-wise overlap** — the backward pass emits per-variable
//!   gradient chunks as each segment completes (last layer first), so
//!   chunk sealing and transfer overlap the remaining compute on the
//!   worker's virtual clock. [`schedule`] resolves the resulting
//!   pipeline deterministically: a per-worker seal queue feeds
//!   per-shard NIC queues, processed in a fixed global order.
//! * **Codec choice** — [`CommConfig`] selects the wire codec
//!   ([`Codec::Dense`] exact f32, or [`Codec::Quantized`] int8 with
//!   worker-side error feedback) and whether overlap is enabled.
//!
//! Everything is pure virtual-time arithmetic: no RNG, no wall clock,
//! so same-seed runs produce bit-identical schedules and telemetry.

pub use crate::wire::Codec;
use securetf_tee::telemetry::{Counter, Gauge, Histogram};
use securetf_tee::Telemetry;

/// How the trainer moves bytes between workers and parameter servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommConfig {
    /// Wire codec for gradient pushes (and federated updates). The
    /// weight broadcast always stays dense: workers must hold the exact
    /// global model so sharded installs stay bit-identical.
    pub codec: Codec,
    /// Pipeline per-variable chunks into the PS as backward segments
    /// complete, instead of one barrier after the full backward pass.
    /// Overlap changes only the virtual-time schedule — the applied
    /// update is bit-identical either way.
    pub overlap: bool,
}

impl Default for CommConfig {
    fn default() -> Self {
        CommConfig {
            codec: Codec::Dense,
            overlap: true,
        }
    }
}

/// Cumulative communication accounting across a trainer's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Bytes put on the wire (broadcast + gradient pushes).
    pub bytes_sent: u64,
    /// Bytes the quantized codec avoided sending vs dense frames.
    pub bytes_saved: u64,
    /// Exposed (non-hidden) communication time, nanoseconds.
    pub comm_ns: u64,
    /// Communication time kept off the step's critical path —
    /// overlapped under compute or drained by parallel shard NICs.
    pub overlap_hidden_ns: u64,
}

/// Assigns each entry of `sizes` (byte size per variable, in id order)
/// to one of `shards` contiguous ranges, balancing cumulative bytes:
/// entry `i` lands on the shard its byte midpoint falls in. The result
/// is non-decreasing (contiguous ranges) and identical across steps for
/// a fixed model, so shard ownership is stable.
pub fn partition_by_bytes(sizes: &[u64], shards: usize) -> Vec<usize> {
    let shards = shards.max(1);
    let total: u128 = sizes.iter().map(|&s| u128::from(s)).sum();
    if total == 0 {
        return vec![0; sizes.len()];
    }
    let mut out = Vec::with_capacity(sizes.len());
    let mut cum: u128 = 0;
    for &s in sizes {
        let mid = cum + u128::from(s) / 2;
        out.push(((mid * shards as u128) / total) as usize);
        cum += u128::from(s);
    }
    out
}

/// One gradient chunk awaiting transmission, with its virtual-time
/// costs. All offsets are relative to the exchange start (the moment
/// every worker begins its step).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// Owning parameter-server shard (NIC queue index).
    pub shard: usize,
    /// When the backward segment producing this chunk completes on the
    /// worker's timeline.
    pub ready_ns: u64,
    /// Worker-side shield record sealing cost.
    pub seal_ns: u64,
    /// LAN transfer time at the shard's NIC.
    pub transfer_ns: u64,
    /// PS-side shield record processing at the shard.
    pub ps_shield_ns: u64,
}

/// Outcome of resolving an overlapped exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExchangeOutcome {
    /// When the last chunk lands at its shard, relative to exchange
    /// start.
    pub done_ns: u64,
    /// Total serialized cost of every chunk (seal + transfer + PS
    /// shield) — what a barrier exchange would pay end-to-end.
    pub serial_comm_ns: u64,
}

/// Resolves the overlapped exchange: per worker, chunks seal in order
/// on the worker's CPU (a chunk cannot seal before its gradient is
/// ready or before the previous chunk finished sealing); sealed chunks
/// then queue at the owning shard's NIC, which serializes transfer +
/// PS-side record processing. NIC arbitration is deterministic: sealed
/// chunks drain in `(seal_end, worker, chunk)` order.
pub fn schedule(per_worker: &[Vec<Chunk>], shards: usize) -> ExchangeOutcome {
    let mut sealed: Vec<(u64, usize, usize)> = Vec::new();
    let mut serial_comm_ns = 0u64;
    for (w, chunks) in per_worker.iter().enumerate() {
        let mut seal_end = 0u64;
        for (i, chunk) in chunks.iter().enumerate() {
            seal_end = seal_end.max(chunk.ready_ns) + chunk.seal_ns;
            sealed.push((seal_end, w, i));
            serial_comm_ns += chunk.seal_ns + chunk.transfer_ns + chunk.ps_shield_ns;
        }
    }
    sealed.sort_unstable();
    let mut nic_free = vec![0u64; shards.max(1)];
    let mut done_ns = 0u64;
    for (seal_end, w, i) in sealed {
        let chunk = &per_worker[w][i];
        let nic = &mut nic_free[chunk.shard];
        let arrive = seal_end.max(*nic) + chunk.transfer_ns + chunk.ps_shield_ns;
        *nic = arrive;
        done_ns = done_ns.max(arrive);
    }
    ExchangeOutcome {
        done_ns,
        serial_comm_ns,
    }
}

/// Registry handles for the trainer's communication metrics, cached so
/// the hot loop never re-resolves names.
#[derive(Debug)]
pub struct CommMetrics {
    /// `distrib.comm.bytes_sent` — bytes put on the wire.
    pub bytes_sent: Counter,
    /// `distrib.comm.bytes_saved` — bytes the codec avoided sending.
    pub bytes_saved: Counter,
    /// `distrib.comm.compression_ratio` — dense-equivalent over actual
    /// push bytes, in thousandths (1000 = dense).
    pub compression_ratio: Gauge,
    /// `distrib.comm.comm_ns` — exposed communication time per step.
    pub comm_ns: Histogram,
    /// `distrib.comm.overlap_hidden_ns` — comm hidden under compute per
    /// step.
    pub overlap_hidden_ns: Histogram,
}

impl CommMetrics {
    /// Resolves the handles against `telemetry`'s registry (zero-cost
    /// no-ops when telemetry is disabled).
    pub fn new(telemetry: &Telemetry) -> Self {
        CommMetrics {
            bytes_sent: telemetry.counter("distrib.comm.bytes_sent"),
            bytes_saved: telemetry.counter("distrib.comm.bytes_saved"),
            compression_ratio: telemetry.gauge("distrib.comm.compression_ratio"),
            comm_ns: telemetry.histogram("distrib.comm.comm_ns"),
            overlap_hidden_ns: telemetry.histogram("distrib.comm.overlap_hidden_ns"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_contiguous_and_covers_all_shards() {
        let sizes = vec![100, 100, 100, 100, 100, 100, 100, 100];
        let parts = partition_by_bytes(&sizes, 4);
        assert_eq!(parts.len(), sizes.len());
        for pair in parts.windows(2) {
            assert!(pair[0] <= pair[1], "ranges must be contiguous");
        }
        assert_eq!(parts.first(), Some(&0));
        assert_eq!(parts.last(), Some(&3));
        // Equal sizes split evenly.
        assert_eq!(parts, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn partition_handles_degenerate_inputs() {
        assert_eq!(partition_by_bytes(&[], 3), Vec::<usize>::new());
        assert_eq!(partition_by_bytes(&[0, 0], 2), vec![0, 0]);
        assert_eq!(partition_by_bytes(&[10], 1), vec![0]);
        // One giant variable cannot be split; everything else balances
        // around it.
        let parts = partition_by_bytes(&[1_000_000, 10, 10], 2);
        assert_eq!(parts[0], 0);
        assert!(parts[1] >= parts[0] && parts[2] >= parts[1]);
    }

    #[test]
    fn single_worker_serial_chunks_sum() {
        // One worker, chunks all ready at t=0: the pipeline degenerates
        // to seal-serialize then NIC-serialize; done = seal(first) +
        // everything queued behind one NIC.
        let chunks = vec![
            Chunk {
                shard: 0,
                ready_ns: 0,
                seal_ns: 10,
                transfer_ns: 100,
                ps_shield_ns: 5,
            },
            Chunk {
                shard: 0,
                ready_ns: 0,
                seal_ns: 10,
                transfer_ns: 100,
                ps_shield_ns: 5,
            },
        ];
        let out = schedule(&[chunks], 1);
        // Seal ends at 10 and 20; NIC: 10+105=115, then max(20,115)+105=220.
        assert_eq!(out.done_ns, 220);
        assert_eq!(out.serial_comm_ns, 230);
    }

    #[test]
    fn overlap_hides_comm_under_compute() {
        // A chunk ready early overlaps the long tail of compute: the
        // exchange finishes when the last-ready chunk lands, not at
        // compute end + all comm.
        let chunks = vec![
            Chunk {
                shard: 0,
                ready_ns: 100,
                seal_ns: 10,
                transfer_ns: 50,
                ps_shield_ns: 0,
            },
            Chunk {
                shard: 0,
                ready_ns: 1000,
                seal_ns: 10,
                transfer_ns: 50,
                ps_shield_ns: 0,
            },
        ];
        let out = schedule(&[chunks], 1);
        // First chunk fully hidden (lands at 160 < 1000); second costs
        // 60 after its ready point.
        assert_eq!(out.done_ns, 1060);
        assert_eq!(out.serial_comm_ns, 120);
    }

    #[test]
    fn more_shards_drain_nic_queues_in_parallel() {
        let worker = |shard0: usize, shard1: usize| {
            vec![
                Chunk {
                    shard: shard0,
                    ready_ns: 0,
                    seal_ns: 0,
                    transfer_ns: 100,
                    ps_shield_ns: 0,
                },
                Chunk {
                    shard: shard1,
                    ready_ns: 0,
                    seal_ns: 0,
                    transfer_ns: 100,
                    ps_shield_ns: 0,
                },
            ]
        };
        let one = schedule(&[worker(0, 0), worker(0, 0)], 1);
        let two = schedule(&[worker(0, 1), worker(0, 1)], 2);
        assert!(two.done_ns < one.done_ns, "{} !< {}", two.done_ns, one.done_ns);
        assert_eq!(one.done_ns, 400);
        assert_eq!(two.done_ns, 200);
    }

    #[test]
    fn schedule_is_deterministic() {
        let chunks: Vec<Vec<Chunk>> = (0..4)
            .map(|w| {
                (0..6)
                    .map(|i| Chunk {
                        shard: (w + i) % 2,
                        ready_ns: (i as u64) * 37 + (w as u64) * 11,
                        seal_ns: 5,
                        transfer_ns: 40 + (i as u64) * 3,
                        ps_shield_ns: 7,
                    })
                    .collect()
            })
            .collect();
        let a = schedule(&chunks, 2);
        let b = schedule(&chunks, 2);
        assert_eq!(a, b);
    }
}
