//! Wire format for weights and gradients.
//!
//! Messages between workers and the parameter server carry lists of
//! `(variable index, tensor)` pairs. The encoding is length-prefixed and
//! strict: any truncation, trailing bytes or shape inconsistency is
//! rejected (the network is untrusted; see §2.3).

use crate::DistribError;
use securetf_tensor::tensor::Tensor;

/// Encodes `(variable index, tensor)` pairs.
pub fn encode(entries: &[(u32, Tensor)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (id, tensor) in entries {
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&(tensor.shape().len() as u32).to_le_bytes());
        for &d in tensor.shape() {
            out.extend_from_slice(&(d as u32).to_le_bytes());
        }
        out.extend_from_slice(&(tensor.data().len() as u32).to_le_bytes());
        for v in tensor.data() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Decodes a message produced by [`encode`].
///
/// The decoder treats the input as hostile: truncation, trailing bytes,
/// oversized counts, duplicate variable ids, shape/element mismatches
/// and length-prefix products that would overflow `usize` are all
/// rejected with a typed error — nothing panics.
///
/// # Errors
///
/// Returns [`DistribError::BadMessage`] on any structural violation.
pub fn decode(bytes: &[u8]) -> Result<Vec<(u32, Tensor)>, DistribError> {
    let mut cursor = 0usize;
    let take = |cursor: &mut usize, n: usize| -> Result<&[u8], DistribError> {
        // `cursor <= bytes.len()` always holds, so the subtraction cannot
        // wrap — and `cursor + n` is never computed before the check, so
        // a hostile length prefix cannot overflow the bound test.
        if n > bytes.len() - *cursor {
            return Err(DistribError::BadMessage("truncated"));
        }
        let s = &bytes[*cursor..*cursor + n];
        *cursor += n;
        Ok(s)
    };
    let u32_field = |cursor: &mut usize| -> Result<u32, DistribError> {
        let raw: [u8; 4] = take(cursor, 4)?
            .try_into()
            .map_err(|_| DistribError::BadMessage("truncated"))?;
        Ok(u32::from_le_bytes(raw))
    };
    let count = u32_field(&mut cursor)? as usize;
    if count > 100_000 {
        return Err(DistribError::BadMessage("entry count too large"));
    }
    let mut entries = Vec::with_capacity(count);
    let mut seen = std::collections::HashSet::with_capacity(count);
    for _ in 0..count {
        let id = u32_field(&mut cursor)?;
        if !seen.insert(id) {
            return Err(DistribError::BadMessage("duplicate variable id"));
        }
        let rank = u32_field(&mut cursor)? as usize;
        if rank > 8 {
            return Err(DistribError::BadMessage("rank too large"));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(u32_field(&mut cursor)? as usize);
        }
        let elements = shape
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .ok_or(DistribError::BadMessage("shape product overflows"))?;
        let n = u32_field(&mut cursor)? as usize;
        if n != elements {
            return Err(DistribError::BadMessage("element count mismatch"));
        }
        let byte_len = n
            .checked_mul(4)
            .ok_or(DistribError::BadMessage("length prefix overflows"))?;
        let raw = take(&mut cursor, byte_len)?;
        let data: Vec<f32> = raw
            .chunks_exact(4)
            .filter_map(|c| Some(f32::from_le_bytes(c.try_into().ok()?)))
            .collect();
        let tensor =
            Tensor::from_vec(&shape, data).map_err(|_| DistribError::BadMessage("bad tensor"))?;
        entries.push((id, tensor));
    }
    if cursor != bytes.len() {
        return Err(DistribError::BadMessage("trailing bytes"));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let entries = vec![
            (0u32, Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]).unwrap()),
            (7u32, Tensor::from_vec(&[3], vec![-1., 0., 1.]).unwrap()),
        ];
        let bytes = encode(&entries);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].0, 0);
        assert_eq!(decoded[0].1.data(), entries[0].1.data());
        assert_eq!(decoded[1].0, 7);
        assert_eq!(decoded[1].1.shape(), &[3]);
    }

    #[test]
    fn empty_roundtrip() {
        let bytes = encode(&[]);
        assert!(decode(&bytes).unwrap().is_empty());
    }

    #[test]
    fn truncation_rejected() {
        let bytes = encode(&[(1, Tensor::zeros(&[4]))]);
        for cut in [0, 3, 10, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode(&[(1, Tensor::zeros(&[2]))]);
        bytes.push(0);
        assert!(matches!(
            decode(&bytes),
            Err(DistribError::BadMessage("trailing bytes"))
        ));
    }

    #[test]
    fn hostile_count_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn zero_length_entries_roundtrip() {
        // A rank-1 tensor with zero elements is structurally valid.
        let entries = vec![(3u32, Tensor::zeros(&[0]))];
        let bytes = encode(&entries);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0].1.len(), 0);
    }

    #[test]
    fn duplicate_variable_ids_rejected() {
        let entries = vec![
            (4u32, Tensor::zeros(&[2])),
            (4u32, Tensor::zeros(&[2])),
        ];
        assert!(matches!(
            decode(&encode(&entries)),
            Err(DistribError::BadMessage("duplicate variable id"))
        ));
    }

    #[test]
    fn length_prefix_overflow_rejected() {
        // Shape whose element product overflows any plausible usize:
        // rank 8 of u32::MAX-sized dims.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&1u32.to_le_bytes()); // one entry
        bytes.extend_from_slice(&0u32.to_le_bytes()); // id
        bytes.extend_from_slice(&8u32.to_le_bytes()); // rank 8
        for _ in 0..8 {
            bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        }
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // element count
        let err = decode(&bytes);
        assert!(err.is_err(), "hostile shape product must not panic");
    }

    #[test]
    fn every_truncation_point_errors_not_panics() {
        let entries = vec![
            (0u32, Tensor::from_vec(&[2, 3], vec![1.; 6]).unwrap()),
            (1u32, Tensor::zeros(&[4])),
        ];
        let bytes = encode(&entries);
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn element_count_mismatch_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&9u32.to_le_bytes()); // id
        bytes.extend_from_slice(&1u32.to_le_bytes()); // rank 1
        bytes.extend_from_slice(&3u32.to_le_bytes()); // shape [3]
        bytes.extend_from_slice(&2u32.to_le_bytes()); // but 2 elements
        bytes.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            decode(&bytes),
            Err(DistribError::BadMessage("element count mismatch"))
        ));
    }
}
