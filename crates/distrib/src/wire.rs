//! Wire format for weights and gradients.
//!
//! Messages between workers and the parameter server carry lists of
//! `(variable index, tensor)` pairs. The encoding is length-prefixed and
//! strict: any truncation, trailing bytes or shape inconsistency is
//! rejected (the network is untrusted; see §2.3).

use crate::DistribError;
use securetf_tensor::tensor::Tensor;

/// Encodes `(variable index, tensor)` pairs.
pub fn encode(entries: &[(u32, Tensor)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (id, tensor) in entries {
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&(tensor.shape().len() as u32).to_le_bytes());
        for &d in tensor.shape() {
            out.extend_from_slice(&(d as u32).to_le_bytes());
        }
        out.extend_from_slice(&(tensor.data().len() as u32).to_le_bytes());
        for v in tensor.data() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Decodes a message produced by [`encode`].
///
/// # Errors
///
/// Returns [`DistribError::BadMessage`] on any structural violation.
pub fn decode(bytes: &[u8]) -> Result<Vec<(u32, Tensor)>, DistribError> {
    let mut cursor = 0usize;
    let take = |cursor: &mut usize, n: usize| -> Result<&[u8], DistribError> {
        if *cursor + n > bytes.len() {
            return Err(DistribError::BadMessage("truncated"));
        }
        let s = &bytes[*cursor..*cursor + n];
        *cursor += n;
        Ok(s)
    };
    let u32_field = |cursor: &mut usize| -> Result<u32, DistribError> {
        Ok(u32::from_le_bytes(take(cursor, 4)?.try_into().expect("4")))
    };
    let count = u32_field(&mut cursor)? as usize;
    if count > 100_000 {
        return Err(DistribError::BadMessage("entry count too large"));
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let id = u32_field(&mut cursor)?;
        let rank = u32_field(&mut cursor)? as usize;
        if rank > 8 {
            return Err(DistribError::BadMessage("rank too large"));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(u32_field(&mut cursor)? as usize);
        }
        let n = u32_field(&mut cursor)? as usize;
        if n != shape.iter().product::<usize>() {
            return Err(DistribError::BadMessage("element count mismatch"));
        }
        let raw = take(&mut cursor, n * 4)?;
        let data: Vec<f32> = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4")))
            .collect();
        let tensor =
            Tensor::from_vec(&shape, data).map_err(|_| DistribError::BadMessage("bad tensor"))?;
        entries.push((id, tensor));
    }
    if cursor != bytes.len() {
        return Err(DistribError::BadMessage("trailing bytes"));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let entries = vec![
            (0u32, Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]).unwrap()),
            (7u32, Tensor::from_vec(&[3], vec![-1., 0., 1.]).unwrap()),
        ];
        let bytes = encode(&entries);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].0, 0);
        assert_eq!(decoded[0].1.data(), entries[0].1.data());
        assert_eq!(decoded[1].0, 7);
        assert_eq!(decoded[1].1.shape(), &[3]);
    }

    #[test]
    fn empty_roundtrip() {
        let bytes = encode(&[]);
        assert!(decode(&bytes).unwrap().is_empty());
    }

    #[test]
    fn truncation_rejected() {
        let bytes = encode(&[(1, Tensor::zeros(&[4]))]);
        for cut in [0, 3, 10, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode(&[(1, Tensor::zeros(&[2]))]);
        bytes.push(0);
        assert!(matches!(
            decode(&bytes),
            Err(DistribError::BadMessage("trailing bytes"))
        ));
    }

    #[test]
    fn hostile_count_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode(&bytes).is_err());
    }
}
