//! Wire format for weights and gradients.
//!
//! Messages between workers and the parameter server carry lists of
//! `(variable index, tensor)` pairs. The encoding is length-prefixed and
//! strict: any truncation, trailing bytes or shape inconsistency is
//! rejected (the network is untrusted; see §2.3).
//!
//! Two layers:
//!
//! * the legacy *tagless* dense encoding ([`encode`]/[`decode`]) — kept
//!   for sealed checkpoints, whose byte layout is pinned by AAD-bound
//!   ciphertexts;
//! * tagged *frames* ([`encode_frame`]/[`decode_frame`]) used on every
//!   live link: a `'D'` dense frame (the fallback) or a `'Q'` frame
//!   carrying deterministic int8 linear quantization with one f32 scale
//!   per tensor. Quantization uses no RNG — same input bytes always
//!   produce the same frame — so same-seed runs stay digest-identical.

use crate::DistribError;
use securetf_tensor::tensor::Tensor;

/// Frame tag of the dense (exact f32) encoding.
pub const FRAME_DENSE: u8 = b'D';
/// Frame tag of the int8-quantized encoding.
pub const FRAME_QUANTIZED: u8 = b'Q';

/// Which on-the-wire representation a message uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Codec {
    /// Exact f32 payloads (4 bytes per element).
    #[default]
    Dense,
    /// Deterministic int8 linear quantization with a per-tensor scale
    /// (~4x smaller on the wire; pair with error feedback at the sender).
    Quantized,
}

impl Codec {
    /// Stable lowercase name (used in bench reports and docs).
    pub fn name(self) -> &'static str {
        match self {
            Codec::Dense => "dense",
            Codec::Quantized => "quantized",
        }
    }
}

/// An int8-quantized view of a tensor's data: `value ≈ q * scale`.
#[derive(Debug, Clone, PartialEq)]
pub struct Quantized {
    /// Dequantization scale (`max_abs / 127`; `0.0` for all-zero input).
    pub scale: f32,
    /// Quantized values, clamped to `[-127, 127]`.
    pub values: Vec<i8>,
}

impl Quantized {
    /// The exact f32 values the receiver reconstructs.
    pub fn dequantize(&self) -> Vec<f32> {
        self.values.iter().map(|&q| q as f32 * self.scale).collect()
    }
}

/// Deterministically quantizes `data` to int8 with a per-tensor scale.
/// Non-finite inputs saturate through the clamp; no randomness is used
/// (no stochastic rounding), so the result is a pure function of the
/// input bits.
pub fn quantize(data: &[f32]) -> Quantized {
    let max_abs = data
        .iter()
        .filter(|v| v.is_finite())
        .fold(0.0f32, |m, &v| m.max(v.abs()));
    if max_abs == 0.0 {
        return Quantized {
            scale: 0.0,
            values: vec![0; data.len()],
        };
    }
    let scale = max_abs / 127.0;
    let values = data
        .iter()
        .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8)
        .collect();
    Quantized { scale, values }
}

/// Encodes `(variable index, tensor)` pairs.
pub fn encode(entries: &[(u32, Tensor)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (id, tensor) in entries {
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&(tensor.shape().len() as u32).to_le_bytes());
        for &d in tensor.shape() {
            out.extend_from_slice(&(d as u32).to_le_bytes());
        }
        out.extend_from_slice(&(tensor.data().len() as u32).to_le_bytes());
        for v in tensor.data() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Decodes a message produced by [`encode`].
///
/// The decoder treats the input as hostile: truncation, trailing bytes,
/// oversized counts, duplicate variable ids, shape/element mismatches
/// and length-prefix products that would overflow `usize` are all
/// rejected with a typed error — nothing panics.
///
/// # Errors
///
/// Returns [`DistribError::BadMessage`] on any structural violation.
pub fn decode(bytes: &[u8]) -> Result<Vec<(u32, Tensor)>, DistribError> {
    let mut cursor = 0usize;
    let take = |cursor: &mut usize, n: usize| -> Result<&[u8], DistribError> {
        // `cursor <= bytes.len()` always holds, so the subtraction cannot
        // wrap — and `cursor + n` is never computed before the check, so
        // a hostile length prefix cannot overflow the bound test.
        if n > bytes.len() - *cursor {
            return Err(DistribError::BadMessage("truncated"));
        }
        let s = &bytes[*cursor..*cursor + n];
        *cursor += n;
        Ok(s)
    };
    let u32_field = |cursor: &mut usize| -> Result<u32, DistribError> {
        let raw: [u8; 4] = take(cursor, 4)?
            .try_into()
            .map_err(|_| DistribError::BadMessage("truncated"))?;
        Ok(u32::from_le_bytes(raw))
    };
    let count = u32_field(&mut cursor)? as usize;
    if count > 100_000 {
        return Err(DistribError::BadMessage("entry count too large"));
    }
    let mut entries = Vec::with_capacity(count);
    let mut seen = std::collections::HashSet::with_capacity(count);
    for _ in 0..count {
        let id = u32_field(&mut cursor)?;
        if !seen.insert(id) {
            return Err(DistribError::BadMessage("duplicate variable id"));
        }
        let rank = u32_field(&mut cursor)? as usize;
        if rank > 8 {
            return Err(DistribError::BadMessage("rank too large"));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(u32_field(&mut cursor)? as usize);
        }
        let elements = shape
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .ok_or(DistribError::BadMessage("shape product overflows"))?;
        let n = u32_field(&mut cursor)? as usize;
        if n != elements {
            return Err(DistribError::BadMessage("element count mismatch"));
        }
        let byte_len = n
            .checked_mul(4)
            .ok_or(DistribError::BadMessage("length prefix overflows"))?;
        let raw = take(&mut cursor, byte_len)?;
        let data: Vec<f32> = raw
            .chunks_exact(4)
            .filter_map(|c| Some(f32::from_le_bytes(c.try_into().ok()?)))
            .collect();
        let tensor =
            Tensor::from_vec(&shape, data).map_err(|_| DistribError::BadMessage("bad tensor"))?;
        entries.push((id, tensor));
    }
    if cursor != bytes.len() {
        return Err(DistribError::BadMessage("trailing bytes"));
    }
    Ok(entries)
}

/// Encodes one dense entry body — the legacy per-entry layout
/// `(id, rank, dims…, n, f32 data…)` without any frame header.
///
/// The broadcast path caches these bodies per variable so unchanged
/// variables are never re-encoded; [`assemble_dense_frame`] stitches
/// cached bodies into a full tagged frame.
pub fn encode_dense_entry(id: u32, tensor: &Tensor) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + 4 * tensor.shape().len() + 4 * tensor.len());
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&(tensor.shape().len() as u32).to_le_bytes());
    for &d in tensor.shape() {
        out.extend_from_slice(&(d as u32).to_le_bytes());
    }
    out.extend_from_slice(&(tensor.len() as u32).to_le_bytes());
    for v in tensor.data() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Stitches pre-encoded dense entry bodies (from [`encode_dense_entry`])
/// into a tagged dense frame decodable by [`decode_frame`].
pub fn assemble_dense_frame(bodies: &[&[u8]]) -> Vec<u8> {
    let total: usize = bodies.iter().map(|b| b.len()).sum();
    let mut out = Vec::with_capacity(5 + total);
    out.push(FRAME_DENSE);
    out.extend_from_slice(&(bodies.len() as u32).to_le_bytes());
    for body in bodies {
        out.extend_from_slice(body);
    }
    out
}

/// Encodes entries as a tagged frame with the chosen codec.
pub fn encode_frame(entries: &[(u32, Tensor)], codec: Codec) -> Vec<u8> {
    match codec {
        Codec::Dense => {
            let mut out = Vec::with_capacity(1 + 4);
            out.push(FRAME_DENSE);
            out.extend_from_slice(&encode(entries));
            out
        }
        Codec::Quantized => {
            let mut out = Vec::new();
            out.push(FRAME_QUANTIZED);
            out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for (id, tensor) in entries {
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&(tensor.shape().len() as u32).to_le_bytes());
                for &d in tensor.shape() {
                    out.extend_from_slice(&(d as u32).to_le_bytes());
                }
                out.extend_from_slice(&(tensor.len() as u32).to_le_bytes());
                let q = quantize(tensor.data());
                out.extend_from_slice(&q.scale.to_le_bytes());
                out.extend(q.values.iter().map(|&v| v as u8));
            }
            out
        }
    }
}

/// Wire length a *dense* frame of these entries would occupy.
///
/// Used to account `bytes_saved` by the quantized codec without
/// materializing the dense bytes.
pub fn dense_frame_len(entries: &[(u32, Tensor)]) -> u64 {
    5 + entries
        .iter()
        .map(|(_, t)| 12 + 4 * t.shape().len() as u64 + 4 * t.len() as u64)
        .sum::<u64>()
}

/// Decodes a tagged frame produced by [`encode_frame`] or
/// [`assemble_dense_frame`]. The receiver reconstructs exact f32 values
/// — for quantized frames those are `q * scale`, which is also what the
/// sender's error-feedback residual subtracts, so sender and receiver
/// agree bit-for-bit on what was transmitted.
///
/// # Errors
///
/// Returns [`DistribError::BadMessage`] on an unknown tag byte or any
/// structural violation (truncation, trailing bytes, duplicate ids,
/// hostile length prefixes, non-finite or negative scales).
pub fn decode_frame(bytes: &[u8]) -> Result<Vec<(u32, Tensor)>, DistribError> {
    match bytes.first() {
        Some(&FRAME_DENSE) => decode(&bytes[1..]),
        Some(&FRAME_QUANTIZED) => decode_quantized_body(&bytes[1..]),
        Some(_) => Err(DistribError::BadMessage("unknown frame tag")),
        None => Err(DistribError::BadMessage("empty frame")),
    }
}

/// Decodes a sequence of chunk frames (one or more entries each) into a
/// single entry list, enforcing globally unique variable ids across the
/// whole sequence — a chunked push must not smuggle the same variable
/// twice.
///
/// # Errors
///
/// Returns [`DistribError::BadMessage`] if any chunk is malformed or a
/// variable id repeats across chunks.
pub fn decode_frames(frames: &[Vec<u8>]) -> Result<Vec<(u32, Tensor)>, DistribError> {
    let mut entries = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for frame in frames {
        for (id, tensor) in decode_frame(frame)? {
            if !seen.insert(id) {
                return Err(DistribError::BadMessage("duplicate variable id"));
            }
            entries.push((id, tensor));
        }
    }
    Ok(entries)
}

fn decode_quantized_body(bytes: &[u8]) -> Result<Vec<(u32, Tensor)>, DistribError> {
    let mut cursor = 0usize;
    let take = |cursor: &mut usize, n: usize| -> Result<&[u8], DistribError> {
        if n > bytes.len() - *cursor {
            return Err(DistribError::BadMessage("truncated"));
        }
        let s = &bytes[*cursor..*cursor + n];
        *cursor += n;
        Ok(s)
    };
    let u32_field = |cursor: &mut usize| -> Result<u32, DistribError> {
        let raw: [u8; 4] = take(cursor, 4)?
            .try_into()
            .map_err(|_| DistribError::BadMessage("truncated"))?;
        Ok(u32::from_le_bytes(raw))
    };
    let count = u32_field(&mut cursor)? as usize;
    if count > 100_000 {
        return Err(DistribError::BadMessage("entry count too large"));
    }
    let mut entries = Vec::with_capacity(count);
    let mut seen = std::collections::HashSet::with_capacity(count);
    for _ in 0..count {
        let id = u32_field(&mut cursor)?;
        if !seen.insert(id) {
            return Err(DistribError::BadMessage("duplicate variable id"));
        }
        let rank = u32_field(&mut cursor)? as usize;
        if rank > 8 {
            return Err(DistribError::BadMessage("rank too large"));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(u32_field(&mut cursor)? as usize);
        }
        let elements = shape
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .ok_or(DistribError::BadMessage("shape product overflows"))?;
        let n = u32_field(&mut cursor)? as usize;
        if n != elements {
            return Err(DistribError::BadMessage("element count mismatch"));
        }
        let scale = f32::from_le_bytes(
            take(&mut cursor, 4)?
                .try_into()
                .map_err(|_| DistribError::BadMessage("truncated"))?,
        );
        if !scale.is_finite() || scale < 0.0 {
            return Err(DistribError::BadMessage("bad quantization scale"));
        }
        let raw = take(&mut cursor, n)?;
        let data: Vec<f32> = raw.iter().map(|&b| (b as i8) as f32 * scale).collect();
        let tensor =
            Tensor::from_vec(&shape, data).map_err(|_| DistribError::BadMessage("bad tensor"))?;
        entries.push((id, tensor));
    }
    if cursor != bytes.len() {
        return Err(DistribError::BadMessage("trailing bytes"));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let entries = vec![
            (0u32, Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]).unwrap()),
            (7u32, Tensor::from_vec(&[3], vec![-1., 0., 1.]).unwrap()),
        ];
        let bytes = encode(&entries);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].0, 0);
        assert_eq!(decoded[0].1.data(), entries[0].1.data());
        assert_eq!(decoded[1].0, 7);
        assert_eq!(decoded[1].1.shape(), &[3]);
    }

    #[test]
    fn empty_roundtrip() {
        let bytes = encode(&[]);
        assert!(decode(&bytes).unwrap().is_empty());
    }

    #[test]
    fn truncation_rejected() {
        let bytes = encode(&[(1, Tensor::zeros(&[4]))]);
        for cut in [0, 3, 10, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode(&[(1, Tensor::zeros(&[2]))]);
        bytes.push(0);
        assert!(matches!(
            decode(&bytes),
            Err(DistribError::BadMessage("trailing bytes"))
        ));
    }

    #[test]
    fn hostile_count_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn zero_length_entries_roundtrip() {
        // A rank-1 tensor with zero elements is structurally valid.
        let entries = vec![(3u32, Tensor::zeros(&[0]))];
        let bytes = encode(&entries);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0].1.len(), 0);
    }

    #[test]
    fn duplicate_variable_ids_rejected() {
        let entries = vec![
            (4u32, Tensor::zeros(&[2])),
            (4u32, Tensor::zeros(&[2])),
        ];
        assert!(matches!(
            decode(&encode(&entries)),
            Err(DistribError::BadMessage("duplicate variable id"))
        ));
    }

    #[test]
    fn length_prefix_overflow_rejected() {
        // Shape whose element product overflows any plausible usize:
        // rank 8 of u32::MAX-sized dims.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&1u32.to_le_bytes()); // one entry
        bytes.extend_from_slice(&0u32.to_le_bytes()); // id
        bytes.extend_from_slice(&8u32.to_le_bytes()); // rank 8
        for _ in 0..8 {
            bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        }
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // element count
        let err = decode(&bytes);
        assert!(err.is_err(), "hostile shape product must not panic");
    }

    #[test]
    fn every_truncation_point_errors_not_panics() {
        let entries = vec![
            (0u32, Tensor::from_vec(&[2, 3], vec![1.; 6]).unwrap()),
            (1u32, Tensor::zeros(&[4])),
        ];
        let bytes = encode(&entries);
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn dense_frame_roundtrips_exactly() {
        let entries = vec![
            (0u32, Tensor::from_vec(&[2, 2], vec![1., -2., 3.5, 4.]).unwrap()),
            (7u32, Tensor::from_vec(&[3], vec![-1., 0., 1.]).unwrap()),
        ];
        let frame = encode_frame(&entries, Codec::Dense);
        assert_eq!(frame[0], FRAME_DENSE);
        assert_eq!(frame.len() as u64, dense_frame_len(&entries));
        let decoded = decode_frame(&frame).unwrap();
        assert_eq!(decoded, entries);
    }

    #[test]
    fn assembled_frame_matches_encode_frame() {
        let entries = vec![
            (2u32, Tensor::from_vec(&[2], vec![0.5, -0.5]).unwrap()),
            (9u32, Tensor::zeros(&[3])),
        ];
        let bodies: Vec<Vec<u8>> = entries
            .iter()
            .map(|(id, t)| encode_dense_entry(*id, t))
            .collect();
        let body_refs: Vec<&[u8]> = bodies.iter().map(|b| b.as_slice()).collect();
        assert_eq!(
            assemble_dense_frame(&body_refs),
            encode_frame(&entries, Codec::Dense)
        );
    }

    #[test]
    fn quantized_frame_is_smaller_and_close() {
        let data: Vec<f32> = (0..256).map(|i| (i as f32 - 128.0) * 0.01).collect();
        let entries = vec![(0u32, Tensor::from_vec(&[256], data.clone()).unwrap())];
        let frame = encode_frame(&entries, Codec::Quantized);
        assert_eq!(frame[0], FRAME_QUANTIZED);
        assert!((frame.len() as u64) < dense_frame_len(&entries) / 3);
        let decoded = decode_frame(&frame).unwrap();
        let max_abs = 1.28f32;
        let half_step = max_abs / 127.0 / 2.0;
        for (orig, got) in data.iter().zip(decoded[0].1.data()) {
            assert!((orig - got).abs() <= half_step + 1e-6, "{orig} vs {got}");
        }
    }

    #[test]
    fn quantization_is_deterministic_and_exact_at_extremes() {
        let data = vec![-3.0f32, 0.0, 3.0, 1.5];
        let q1 = quantize(&data);
        let q2 = quantize(&data);
        assert_eq!(q1, q2);
        assert_eq!(q1.values[0], -127);
        assert_eq!(q1.values[2], 127);
        assert_eq!(q1.dequantize()[0], -3.0);
        assert_eq!(q1.dequantize()[2], 3.0);
    }

    #[test]
    fn all_zero_tensor_quantizes_to_zero_scale() {
        let entries = vec![(1u32, Tensor::zeros(&[8]))];
        let decoded = decode_frame(&encode_frame(&entries, Codec::Quantized)).unwrap();
        assert_eq!(decoded[0].1.data(), &[0.0f32; 8]);
    }

    #[test]
    fn quantized_frame_hostile_inputs_rejected() {
        let entries = vec![(0u32, Tensor::from_vec(&[4], vec![1., 2., 3., 4.]).unwrap())];
        let frame = encode_frame(&entries, Codec::Quantized);
        for cut in 0..frame.len() {
            assert!(decode_frame(&frame[..cut]).is_err(), "cut at {cut}");
        }
        let mut trailing = frame.clone();
        trailing.push(0);
        assert!(decode_frame(&trailing).is_err());
        // Non-finite scale planted at the scale offset (header 5 + id 4 +
        // rank 4 + dim 4 + n 4 = 21).
        let mut bad_scale = frame.clone();
        bad_scale[21..25].copy_from_slice(&f32::NAN.to_le_bytes());
        assert!(matches!(
            decode_frame(&bad_scale),
            Err(DistribError::BadMessage("bad quantization scale"))
        ));
    }

    #[test]
    fn unknown_frame_tag_rejected() {
        assert!(matches!(
            decode_frame(&[b'Z', 0, 0, 0, 0]),
            Err(DistribError::BadMessage("unknown frame tag"))
        ));
        assert!(matches!(
            decode_frame(&[]),
            Err(DistribError::BadMessage("empty frame"))
        ));
    }

    #[test]
    fn duplicate_ids_across_chunks_rejected() {
        let a = encode_frame(&[(3u32, Tensor::zeros(&[2]))], Codec::Dense);
        let b = encode_frame(&[(3u32, Tensor::zeros(&[2]))], Codec::Quantized);
        assert!(matches!(
            decode_frames(&[a.clone(), b]),
            Err(DistribError::BadMessage("duplicate variable id"))
        ));
        let c = encode_frame(&[(4u32, Tensor::zeros(&[2]))], Codec::Dense);
        assert_eq!(decode_frames(&[a, c]).unwrap().len(), 2);
    }

    #[test]
    fn element_count_mismatch_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&9u32.to_le_bytes()); // id
        bytes.extend_from_slice(&1u32.to_le_bytes()); // rank 1
        bytes.extend_from_slice(&3u32.to_le_bytes()); // shape [3]
        bytes.extend_from_slice(&2u32.to_le_bytes()); // but 2 elements
        bytes.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            decode(&bytes),
            Err(DistribError::BadMessage("element count mismatch"))
        ));
    }
}
