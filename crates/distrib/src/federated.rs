//! Federated learning support (paper §6.2).
//!
//! In the paper's medical use-case, hospitals train locally on private
//! data and share only model parameters with a *global aggregation
//! enclave*, which averages them (FedAvg) after attesting each party.
//! This module provides the aggregation; the full flow (local training,
//! attestation, secure upload) lives in the `federated_learning` example.

use crate::wire;
use crate::DistribError;
use securetf_tensor::tensor::Tensor;
use std::collections::BTreeMap;

/// Averages parameter sets from multiple parties (FedAvg with equal
/// weights).
///
/// Input: each party's encoded `(variable, tensor)` message (as produced
/// by [`crate::wire::encode`]). Output: the averaged parameter message.
///
/// # Errors
///
/// * [`DistribError::NoWorkers`] if `parties` is empty.
/// * [`DistribError::BadMessage`] if parties disagree on variables or
///   shapes (a malicious or corrupted update).
pub fn federated_average(parties: &[Vec<u8>]) -> Result<Vec<u8>, DistribError> {
    if parties.is_empty() {
        return Err(DistribError::NoWorkers);
    }
    let mut sums: BTreeMap<u32, Tensor> = BTreeMap::new();
    let mut expected_vars: Option<Vec<u32>> = None;
    for message in parties {
        let entries = wire::decode(message)?;
        let vars: Vec<u32> = entries.iter().map(|(id, _)| *id).collect();
        match &expected_vars {
            None => expected_vars = Some(vars),
            Some(e) if *e != vars => {
                return Err(DistribError::BadMessage("parties disagree on variables"));
            }
            _ => {}
        }
        for (id, tensor) in entries {
            match sums.get_mut(&id) {
                Some(sum) => {
                    *sum = sum
                        .zip(&tensor, |a, b| a + b)
                        .map_err(|_| DistribError::BadMessage("shape disagreement"))?;
                }
                None => {
                    sums.insert(id, tensor);
                }
            }
        }
    }
    let n = parties.len() as f32;
    let averaged: Vec<(u32, Tensor)> = sums
        .into_iter()
        .map(|(id, sum)| (id, sum.map(|v| v / n)))
        .collect();
    Ok(wire::encode(&averaged))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn message(values: &[f32]) -> Vec<u8> {
        wire::encode(&[(0, Tensor::from_vec(&[values.len()], values.to_vec()).unwrap())])
    }

    #[test]
    fn average_of_two_parties() {
        let avg = federated_average(&[message(&[1.0, 2.0]), message(&[3.0, 6.0])]).unwrap();
        let decoded = wire::decode(&avg).unwrap();
        assert_eq!(decoded[0].1.data(), &[2.0, 4.0]);
    }

    #[test]
    fn single_party_is_identity() {
        let avg = federated_average(&[message(&[5.0])]).unwrap();
        assert_eq!(wire::decode(&avg).unwrap()[0].1.data(), &[5.0]);
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(
            federated_average(&[]),
            Err(DistribError::NoWorkers)
        ));
    }

    #[test]
    fn disagreeing_variables_rejected() {
        let a = wire::encode(&[(0, Tensor::zeros(&[2]))]);
        let b = wire::encode(&[(1, Tensor::zeros(&[2]))]);
        assert!(matches!(
            federated_average(&[a, b]),
            Err(DistribError::BadMessage(_))
        ));
    }

    #[test]
    fn disagreeing_shapes_rejected() {
        let a = wire::encode(&[(0, Tensor::zeros(&[2]))]);
        let b = wire::encode(&[(0, Tensor::zeros(&[3]))]);
        assert!(matches!(
            federated_average(&[a, b]),
            Err(DistribError::BadMessage(_))
        ));
    }

    #[test]
    fn corrupted_message_rejected() {
        let mut a = message(&[1.0]);
        a.truncate(a.len() - 2);
        assert!(federated_average(&[a]).is_err());
    }

    #[test]
    fn average_of_many_parties() {
        let msgs: Vec<Vec<u8>> = (0..10).map(|i| message(&[i as f32])).collect();
        let avg = federated_average(&msgs).unwrap();
        assert_eq!(wire::decode(&avg).unwrap()[0].1.data(), &[4.5]);
    }
}
