//! Federated learning support (paper §6.2).
//!
//! In the paper's medical use-case, hospitals train locally on private
//! data and share only model parameters with a *global aggregation
//! enclave*, which averages them (FedAvg) after attesting each party.
//! This module provides the aggregation; the full flow (local training,
//! attestation, secure upload) lives in the `federated_learning` example.
//!
//! Party uploads are tagged wire frames ([`crate::wire::decode_frame`]),
//! so parties may send either exact dense parameters or int8-quantized
//! ones — the same codec the distributed trainer uses for gradient
//! pushes. The aggregator's shield cost is charged on the *compressed*
//! length of each upload, so quantized parties pay proportionally less
//! enclave time.

use crate::wire::{self, Codec};
use crate::DistribError;
use securetf_tee::{CostCategory, Enclave};
use securetf_tensor::tensor::Tensor;
use std::collections::BTreeMap;

/// Averages parameter sets from multiple parties (FedAvg with equal
/// weights).
///
/// Input: each party's tagged parameter frame (as produced by
/// [`crate::wire::encode_frame`] — dense or quantized). Output: the
/// averaged parameters as a dense frame, so the result is exact given
/// the received (possibly quantized) inputs.
///
/// # Errors
///
/// * [`DistribError::NoWorkers`] if `parties` is empty.
/// * [`DistribError::BadMessage`] if a frame is malformed or parties
///   disagree on variables or shapes (a malicious or corrupted update).
pub fn federated_average(parties: &[Vec<u8>]) -> Result<Vec<u8>, DistribError> {
    let decoded = parties
        .iter()
        .map(|message| wire::decode_frame(message))
        .collect::<Result<Vec<_>, _>>()?;
    let averaged = average_entries(decoded)?;
    Ok(wire::encode_frame(&averaged, Codec::Dense))
}

/// FedAvg over already-decoded party parameter lists. Every party must
/// present the same variables, in the same order, with the same shapes.
fn average_entries(
    parties: Vec<Vec<(u32, Tensor)>>,
) -> Result<Vec<(u32, Tensor)>, DistribError> {
    if parties.is_empty() {
        return Err(DistribError::NoWorkers);
    }
    let n = parties.len() as f32;
    let mut sums: BTreeMap<u32, Tensor> = BTreeMap::new();
    let mut expected_vars: Option<Vec<u32>> = None;
    for entries in parties {
        let vars: Vec<u32> = entries.iter().map(|(id, _)| *id).collect();
        match &expected_vars {
            None => expected_vars = Some(vars),
            Some(e) if *e != vars => {
                return Err(DistribError::BadMessage("parties disagree on variables"));
            }
            _ => {}
        }
        for (id, tensor) in entries {
            match sums.get_mut(&id) {
                Some(sum) => {
                    *sum = sum
                        .zip(&tensor, |a, b| a + b)
                        .map_err(|_| DistribError::BadMessage("shape disagreement"))?;
                }
                None => {
                    sums.insert(id, tensor);
                }
            }
        }
    }
    Ok(sums
        .into_iter()
        .map(|(id, sum)| (id, sum.map(|v| v / n)))
        .collect())
}

/// [`federated_average`] running inside the aggregation enclave: the
/// shield's record-processing cost is charged to `aggregator`'s virtual
/// clock for every party upload and for the averaged result — on the
/// bytes actually received, so quantized uploads cost roughly a quarter
/// of dense ones.
///
/// # Errors
///
/// Same as [`federated_average`].
pub fn federated_average_shielded(
    parties: &[Vec<u8>],
    aggregator: &Enclave,
) -> Result<Vec<u8>, DistribError> {
    for message in parties {
        aggregator.charge_syscall();
        aggregator.charge_shield_crypto_as(message.len() as u64, CostCategory::Network);
    }
    let averaged = federated_average(parties)?;
    aggregator.charge_shield_crypto_as(averaged.len() as u64, CostCategory::Network);
    Ok(averaged)
}

/// [`federated_average_shielded`] for parties that upload their
/// parameters layer-wise: each party's update arrives as a sequence of
/// single-variable wire frames — one sealed record per frame, exactly
/// what [`securetf_shield::net::SecureChannel::send_vectored`] produces
/// on the hospital side. The shield cost is charged per received chunk
/// on its compressed length, plus one syscall per party batch.
///
/// Parties must chunk their variables in the same order.
///
/// # Errors
///
/// Same as [`federated_average`]; additionally rejects a variable id
/// repeated across one party's chunks.
pub fn federated_average_chunked(
    parties: &[Vec<Vec<u8>>],
    aggregator: &Enclave,
) -> Result<Vec<u8>, DistribError> {
    for chunks in parties {
        aggregator.charge_syscall();
        for chunk in chunks {
            aggregator.charge_shield_crypto_as(chunk.len() as u64, CostCategory::Network);
        }
    }
    let decoded = parties
        .iter()
        .map(|chunks| wire::decode_frames(chunks))
        .collect::<Result<Vec<_>, _>>()?;
    let averaged = average_entries(decoded)?;
    let out = wire::encode_frame(&averaged, Codec::Dense);
    aggregator.charge_shield_crypto_as(out.len() as u64, CostCategory::Network);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use securetf_tee::{EnclaveImage, ExecutionMode, Platform};

    fn message(values: &[f32]) -> Vec<u8> {
        wire::encode_frame(
            &[(0, Tensor::from_vec(&[values.len()], values.to_vec()).unwrap())],
            Codec::Dense,
        )
    }

    #[test]
    fn average_of_two_parties() {
        let avg = federated_average(&[message(&[1.0, 2.0]), message(&[3.0, 6.0])]).unwrap();
        let decoded = wire::decode_frame(&avg).unwrap();
        assert_eq!(decoded[0].1.data(), &[2.0, 4.0]);
    }

    #[test]
    fn single_party_is_identity() {
        let avg = federated_average(&[message(&[5.0])]).unwrap();
        assert_eq!(wire::decode_frame(&avg).unwrap()[0].1.data(), &[5.0]);
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(
            federated_average(&[]),
            Err(DistribError::NoWorkers)
        ));
    }

    #[test]
    fn disagreeing_variables_rejected() {
        let a = wire::encode_frame(&[(0, Tensor::zeros(&[2]))], Codec::Dense);
        let b = wire::encode_frame(&[(1, Tensor::zeros(&[2]))], Codec::Dense);
        assert!(matches!(
            federated_average(&[a, b]),
            Err(DistribError::BadMessage(_))
        ));
    }

    #[test]
    fn disagreeing_shapes_rejected() {
        let a = wire::encode_frame(&[(0, Tensor::zeros(&[2]))], Codec::Dense);
        let b = wire::encode_frame(&[(0, Tensor::zeros(&[3]))], Codec::Dense);
        assert!(matches!(
            federated_average(&[a, b]),
            Err(DistribError::BadMessage(_))
        ));
    }

    #[test]
    fn corrupted_message_rejected() {
        let mut a = message(&[1.0]);
        a.truncate(a.len() - 2);
        assert!(federated_average(&[a]).is_err());
    }

    #[test]
    fn legacy_tagless_message_rejected() {
        // Pre-frame messages start with a raw entry count, not a tag
        // byte; the aggregator must not guess.
        let legacy = wire::encode(&[(0, Tensor::zeros(&[2]))]);
        assert!(federated_average(&[legacy]).is_err());
    }

    #[test]
    fn average_of_many_parties() {
        let msgs: Vec<Vec<u8>> = (0..10).map(|i| message(&[i as f32])).collect();
        let avg = federated_average(&msgs).unwrap();
        assert_eq!(wire::decode_frame(&avg).unwrap()[0].1.data(), &[4.5]);
    }

    #[test]
    fn quantized_uploads_average_close_to_dense() {
        let t = |vals: &[f32]| Tensor::from_vec(&[vals.len()], vals.to_vec()).unwrap();
        let a = vec![(0u32, t(&[1.0, -2.0, 0.5, 127.0]))];
        let b = vec![(0u32, t(&[3.0, 2.0, -0.5, -127.0]))];
        let dense = federated_average(&[
            wire::encode_frame(&a, Codec::Dense),
            wire::encode_frame(&b, Codec::Dense),
        ])
        .unwrap();
        let quant = federated_average(&[
            wire::encode_frame(&a, Codec::Quantized),
            wire::encode_frame(&b, Codec::Quantized),
        ])
        .unwrap();
        let d = wire::decode_frame(&dense).unwrap();
        let q = wire::decode_frame(&quant).unwrap();
        for (dv, qv) in d[0].1.data().iter().zip(q[0].1.data()) {
            // Each party's quantization error is at most half a step
            // (scale/2); the average of two parties inherits that bound.
            assert!((dv - qv).abs() <= 127.0 / 127.0, "{dv} vs {qv}");
        }
        // Mixed dense + quantized parties are fine too: frames are
        // self-describing.
        let mixed = federated_average(&[
            wire::encode_frame(&a, Codec::Dense),
            wire::encode_frame(&b, Codec::Quantized),
        ])
        .unwrap();
        assert_eq!(wire::decode_frame(&mixed).unwrap()[0].1.shape(), &[4]);
    }

    #[test]
    fn chunked_parties_match_whole_frame_aggregation() {
        let enclave = Platform::builder()
            .build()
            .create_enclave(
                &EnclaveImage::builder().code(b"agg").build(),
                ExecutionMode::Simulation,
            )
            .unwrap();
        let t = |vals: &[f32]| Tensor::from_vec(&[vals.len()], vals.to_vec()).unwrap();
        let party = |base: f32| {
            vec![
                (0u32, t(&[base, base + 1.0])),
                (1u32, t(&[base * 2.0])),
            ]
        };
        let whole = federated_average(&[
            wire::encode_frame(&party(1.0), Codec::Dense),
            wire::encode_frame(&party(3.0), Codec::Dense),
        ])
        .unwrap();
        let chunk = |entries: &[(u32, Tensor)]| {
            entries
                .iter()
                .map(|e| wire::encode_frame(std::slice::from_ref(e), Codec::Dense))
                .collect::<Vec<_>>()
        };
        let chunked = federated_average_chunked(
            &[chunk(&party(1.0)), chunk(&party(3.0))],
            &enclave,
        )
        .unwrap();
        assert_eq!(whole, chunked);
        assert!(enclave.clock().now_ns() > 0, "shield cost must be charged");

        // A variable repeated across one party's chunks is rejected.
        let mut dup = chunk(&party(1.0));
        dup.push(dup[0].clone());
        assert!(federated_average_chunked(&[dup], &enclave).is_err());
    }

    #[test]
    fn shielded_aggregation_charges_on_compressed_length() {
        let enclave_for = || {
            Platform::builder()
                .build()
                .create_enclave(
                    &EnclaveImage::builder().code(b"agg").build(),
                    ExecutionMode::Simulation,
                )
                .unwrap()
        };
        let big = Tensor::from_vec(&[256], (0..256).map(|i| i as f32).collect()).unwrap();
        let parties_of = |codec| {
            vec![
                wire::encode_frame(&[(0, big.clone())], codec),
                wire::encode_frame(&[(0, big.clone())], codec),
            ]
        };

        let dense_enclave = enclave_for();
        federated_average_shielded(&parties_of(Codec::Dense), &dense_enclave).unwrap();
        let dense_ns = dense_enclave.clock().now_ns();

        let quant_enclave = enclave_for();
        federated_average_shielded(&parties_of(Codec::Quantized), &quant_enclave).unwrap();
        let quant_ns = quant_enclave.clock().now_ns();

        // Uploads shrink ~4x; the dense result frame is charged in both
        // runs, so quantized lands in between but strictly cheaper.
        assert!(
            quant_ns < dense_ns,
            "quantized uploads must cost less enclave time: {quant_ns} !< {dense_ns}"
        );
    }
}
