//! Simulated secure clusters.
//!
//! A [`Cluster`] models the paper's deployment (Figure 2): one parameter
//! server and N workers, each an enclave on its own machine with its own
//! virtual clock, plus a CAS that attests every enclave before it may
//! join. Elastic scaling — the ability to add attested workers quickly —
//! is what CAS's fast local attestation buys (challenge ❹).

use crate::DistribError;
use securetf_cas::ca::{Certificate, CertificateAuthority};
use securetf_cas::policy::ServicePolicy;
use securetf_cas::service::{CasService, Provision};
use securetf_crypto::x25519::{PublicKey, StaticSecret};
use securetf_tee::{Enclave, EnclaveImage, ExecutionMode, Platform, SimClock, Telemetry};
use std::sync::Arc;

/// Name of the CAS policy protecting the training service.
pub const TRAINING_SERVICE: &str = "training";

/// Configuration of a simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of worker nodes (each on its own machine).
    pub workers: usize,
    /// Number of parameter-server nodes the model is sharded across
    /// (Figure 2 shows several; 1 is the common case).
    pub parameter_servers: usize,
    /// Execution mode of all enclaves.
    pub mode: ExecutionMode,
    /// Whether worker↔PS links go through the network shield.
    pub network_shield: bool,
    /// In-enclave runtime footprint of each node (the full-TF binary for
    /// training, per §5.3 #4).
    pub runtime_bytes: u64,
    /// Heap each enclave requests.
    pub heap_bytes: u64,
    /// Cost-model override for every node (default: the standard model).
    pub cost_model: Option<securetf_tee::CostModel>,
    /// Telemetry every node's enclave charges costs to (default:
    /// disabled, zero overhead). Node clocks stay independent; the
    /// registry and cost counters are cluster-global.
    pub telemetry: Telemetry,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            workers: 1,
            parameter_servers: 1,
            mode: ExecutionMode::Hardware,
            network_shield: true,
            // The full-TensorFlow runtime binary (87.4 MB, paper §5.3 #4):
            // training cannot use the slim Lite runtime.
            runtime_bytes: 87_400_000,
            heap_bytes: 64 * 1024 * 1024,
            cost_model: None,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// One machine of the cluster.
#[derive(Debug)]
pub struct ClusterNode {
    /// The machine.
    pub platform: Platform,
    /// The (sole) enclave running the training process.
    pub enclave: Arc<Enclave>,
    /// Secrets provisioned by CAS after attestation.
    pub provision: Provision,
    /// Channel certificate issued by the CAS certificate authority
    /// (§7.3: generated inside the enclave, never seen by a human).
    pub certificate: Option<Certificate>,
    /// Whether the node is alive (fault injection marks it dead).
    pub alive: bool,
}

impl ClusterNode {
    /// The node's local virtual clock.
    pub fn clock(&self) -> &SimClock {
        self.platform.clock()
    }
}

/// A simulated secure cluster: CAS + parameter server + workers.
#[derive(Debug)]
pub struct Cluster {
    config: ClusterConfig,
    cas: CasService,
    ca: CertificateAuthority,
    worker_image: EnclaveImage,
    /// The primary parameter-server node.
    pub ps: ClusterNode,
    /// Additional parameter-server nodes (model sharding).
    pub extra_ps: Vec<ClusterNode>,
    /// Worker nodes.
    pub workers: Vec<ClusterNode>,
    attest_ns_total: u64,
}

impl Cluster {
    /// Builds the cluster: starts CAS, registers the training policy, then
    /// boots and attests the PS and every worker.
    ///
    /// # Errors
    ///
    /// Returns [`DistribError::Attestation`] or [`DistribError::Tee`] on
    /// bootstrap failures.
    pub fn new(config: ClusterConfig) -> Result<Cluster, DistribError> {
        let cas_platform = Platform::builder()
            .telemetry(config.telemetry.clone())
            .build();
        let cas_enclave = cas_platform.create_enclave(
            &EnclaveImage::builder().code(b"securetf-cas").name("cas").build(),
            // CAS always runs protected, even when the workload is
            // evaluated natively.
            if config.mode == ExecutionMode::Native {
                ExecutionMode::Simulation
            } else {
                config.mode
            },
        )?;
        let ca = CertificateAuthority::new(cas_enclave.clone());
        let mut cas = CasService::new(cas_enclave, cas_platform.fleet_verifier());

        let worker_image = EnclaveImage::builder()
            .code(b"securetf-training-worker-v1")
            .name("worker")
            .runtime_bytes(config.runtime_bytes)
            .heap_bytes(config.heap_bytes)
            .build();
        cas.register_policy(
            ServicePolicy::new(TRAINING_SERVICE)
                .allow_measurement(worker_image.measurement())
                .with_secret("fs-key", &[0x51; 32])
                .with_secret("tls-cert", b"-----TRAINING CERT-----"),
        )
        .map_err(DistribError::Attestation)?;

        let mut attest_ns_total = 0u64;
        let ps = boot_node(&mut cas, &ca, "ps-0", &worker_image, &config, &mut attest_ns_total)?;
        let mut extra_ps = Vec::new();
        for i in 1..config.parameter_servers.max(1) {
            extra_ps.push(boot_node(
                &mut cas,
                &ca,
                &format!("ps-{i}"),
                &worker_image,
                &config,
                &mut attest_ns_total,
            )?);
        }
        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            workers.push(boot_node(
                &mut cas,
                &ca,
                &format!("worker-{i}"),
                &worker_image,
                &config,
                &mut attest_ns_total,
            )?);
        }
        Ok(Cluster {
            config,
            cas,
            ca,
            worker_image,
            ps,
            extra_ps,
            workers,
            attest_ns_total,
        })
    }

    fn boot_node(&mut self) -> Result<ClusterNode, DistribError> {
        boot_node(
            &mut self.cas,
            &self.ca,
            &format!("worker-{}", self.workers.len()),
            &self.worker_image,
            &self.config,
            &mut self.attest_ns_total,
        )
    }

    /// Verifies a node certificate against the cluster's CA.
    ///
    /// # Errors
    ///
    /// Returns [`DistribError::Attestation`] on an invalid certificate.
    pub fn verify_certificate(&self, cert: &Certificate) -> Result<(), DistribError> {
        self.ca.verify(cert).map_err(DistribError::Attestation)
    }

    /// Elastically adds (and attests) one more worker, returning its index.
    ///
    /// # Errors
    ///
    /// Returns [`DistribError::Attestation`] if the new enclave fails
    /// attestation.
    pub fn add_worker(&mut self) -> Result<usize, DistribError> {
        let node = self.boot_node()?;
        self.workers.push(node);
        Ok(self.workers.len() - 1)
    }

    /// Marks a worker as failed (machine crash / migration). The node's
    /// enclave is marked failed too: a crashed endpoint can no longer
    /// produce authenticated shield records, so any secure channel
    /// terminating in it starts returning
    /// [`securetf_shield::ShieldError::ChannelClosed`].
    ///
    /// # Errors
    ///
    /// Returns [`DistribError::UnknownWorker`] for bad indices.
    pub fn fail_worker(&mut self, index: usize) -> Result<(), DistribError> {
        let node = self
            .workers
            .get_mut(index)
            .ok_or(DistribError::UnknownWorker(index))?;
        node.alive = false;
        node.enclave.mark_failed();
        Ok(())
    }

    /// Replaces a failed worker with a freshly attested one.
    ///
    /// # Errors
    ///
    /// Returns [`DistribError::UnknownWorker`] or attestation errors.
    pub fn respawn_worker(&mut self, index: usize) -> Result<(), DistribError> {
        if index >= self.workers.len() {
            return Err(DistribError::UnknownWorker(index));
        }
        let node = self.boot_node()?;
        self.workers[index] = node;
        Ok(())
    }

    /// Like [`Cluster::respawn_worker`], but rides out transient CAS
    /// unavailability with bounded exponential backoff per `policy`
    /// (backoff advances the CAS's virtual clock, so a bounded outage
    /// expires during the waits). Integrity and policy violations —
    /// forged quotes, disallowed measurements, outdated TCBs — are *not*
    /// retried: they fail closed on the first attempt.
    ///
    /// # Errors
    ///
    /// Returns [`DistribError::UnknownWorker`], a fatal attestation
    /// error immediately, or the last transient error once `policy` is
    /// exhausted.
    pub fn respawn_worker_with_retry(
        &mut self,
        index: usize,
        policy: &securetf_tee::RetryPolicy,
    ) -> Result<(), DistribError> {
        if index >= self.workers.len() {
            return Err(DistribError::UnknownWorker(index));
        }
        let clock = self.cas.enclave().clock().clone();
        let node = policy
            .run(&clock, |_| self.boot_node(), DistribError::is_transient)
            .map_err(securetf_tee::retry::RetryError::into_inner)?;
        self.workers[index] = node;
        Ok(())
    }

    /// The cluster's CAS, mutable — for fault injection
    /// ([`CasService::inject_outage`]) and policy administration.
    pub fn cas_mut(&mut self) -> &mut CasService {
        &mut self.cas
    }

    /// Live workers, with their indices.
    pub fn live_workers(&self) -> Vec<usize> {
        self.workers
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, _)| i)
            .collect()
    }

    /// Total parameter-server count (primary + extras).
    pub fn parameter_server_count(&self) -> usize {
        1 + self.extra_ps.len()
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Total virtual time spent attesting joins so far.
    pub fn attestation_ns(&self) -> u64 {
        self.attest_ns_total
    }

    /// Number of attestations CAS has served.
    pub fn attestations_served(&self) -> u64 {
        self.cas.attestations_served()
    }
}

fn boot_node(
    cas: &mut CasService,
    ca: &CertificateAuthority,
    name: &str,
    image: &EnclaveImage,
    config: &ClusterConfig,
    attest_ns_total: &mut u64,
) -> Result<ClusterNode, DistribError> {
    let mut builder = Platform::builder().telemetry(config.telemetry.clone());
    if let Some(model) = &config.cost_model {
        builder = builder.cost_model(model.clone());
    }
    let platform = builder.build();
    let enclave = platform.create_enclave(image, config.mode)?;
    let (provision, certificate) = if config.mode.has_runtime() {
        let t0 = cas.enclave().clock().now_ns();
        // The node's channel key is generated inside its enclave; the
        // quote binds it, and the CA certifies it after attestation.
        let mut seed = [0u8; 32];
        enclave.random_bytes(&mut seed);
        let channel_key = PublicKey::from(&StaticSecret::from_bytes(seed));
        let quote = enclave.quote(channel_key.as_bytes())?;
        let provision = cas
            .attest_and_provision(&quote, TRAINING_SERVICE)
            .map_err(DistribError::Attestation)?;
        let certificate = ca
            .issue_after_attestation(name, &quote)
            .map_err(DistribError::Attestation)?;
        *attest_ns_total += cas.enclave().clock().now_ns() - t0;
        (provision, Some(certificate))
    } else {
        (Provision::default(), None)
    };
    Ok(ClusterNode {
        platform,
        enclave,
        provision,
        certificate,
        alive: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(mode: ExecutionMode) -> ClusterConfig {
        ClusterConfig {
            workers: 2,
            parameter_servers: 1,
            mode,
            network_shield: true,
            runtime_bytes: 4 * 1024 * 1024,
            heap_bytes: 16 * 1024 * 1024,
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn boots_and_attests_all_nodes() {
        let cluster = Cluster::new(small_config(ExecutionMode::Hardware)).unwrap();
        assert_eq!(cluster.workers.len(), 2);
        // PS + 2 workers attested.
        assert_eq!(cluster.attestations_served(), 3);
        assert!(cluster
            .workers
            .iter()
            .all(|w| w.provision.secret("fs-key").is_some()));
    }

    #[test]
    fn native_mode_skips_attestation() {
        let cluster = Cluster::new(small_config(ExecutionMode::Native)).unwrap();
        assert_eq!(cluster.attestations_served(), 0);
    }

    #[test]
    fn elastic_add_worker_attests() {
        let mut cluster = Cluster::new(small_config(ExecutionMode::Hardware)).unwrap();
        let before = cluster.attestations_served();
        let idx = cluster.add_worker().unwrap();
        assert_eq!(idx, 2);
        assert_eq!(cluster.attestations_served(), before + 1);
        assert_eq!(cluster.live_workers(), vec![0, 1, 2]);
    }

    #[test]
    fn fault_injection_and_respawn() {
        let mut cluster = Cluster::new(small_config(ExecutionMode::Hardware)).unwrap();
        cluster.fail_worker(1).unwrap();
        assert_eq!(cluster.live_workers(), vec![0]);
        cluster.respawn_worker(1).unwrap();
        assert_eq!(cluster.live_workers(), vec![0, 1]);
        assert!(matches!(
            cluster.fail_worker(9),
            Err(DistribError::UnknownWorker(9))
        ));
    }

    #[test]
    fn multiple_parameter_servers_attest() {
        let mut config = small_config(ExecutionMode::Hardware);
        config.parameter_servers = 3;
        let cluster = Cluster::new(config).unwrap();
        assert_eq!(cluster.parameter_server_count(), 3);
        // 3 PS + 2 workers.
        assert_eq!(cluster.attestations_served(), 5);
    }

    #[test]
    fn every_attested_node_holds_a_valid_certificate() {
        let cluster = Cluster::new(small_config(ExecutionMode::Hardware)).unwrap();
        let ps_cert = cluster.ps.certificate.as_ref().expect("ps certified");
        assert!(cluster.verify_certificate(ps_cert).is_ok());
        assert_eq!(ps_cert.subject, "ps-0");
        for (i, node) in cluster.workers.iter().enumerate() {
            let cert = node.certificate.as_ref().expect("worker certified");
            assert!(cluster.verify_certificate(cert).is_ok());
            assert_eq!(cert.subject, format!("worker-{i}"));
            assert_eq!(cert.measurement, node.enclave.measurement());
        }
        // A tampered certificate fails.
        let mut forged = ps_cert.clone();
        forged.public_key[0] ^= 1;
        assert!(cluster.verify_certificate(&forged).is_err());
    }

    #[test]
    fn native_nodes_have_no_certificates() {
        let cluster = Cluster::new(small_config(ExecutionMode::Native)).unwrap();
        assert!(cluster.ps.certificate.is_none());
    }

    #[test]
    fn nodes_have_independent_clocks() {
        let cluster = Cluster::new(small_config(ExecutionMode::Hardware)).unwrap();
        let w0 = &cluster.workers[0];
        let w1 = &cluster.workers[1];
        let t1_before = w1.clock().now_ns();
        w0.clock().advance(1000);
        assert_eq!(w1.clock().now_ns(), t1_before);
    }
}
