//! Synchronous data-parallel training with a parameter server (§5.4).
//!
//! Each step: every live worker pulls the current weights, computes
//! gradients on its own batch, and pushes them to the parameter server,
//! which averages and applies the update. The latency model follows the
//! deployment:
//!
//! * worker gradient computation runs **in parallel** across nodes (the
//!   step takes the slowest worker, including that node's own EPC paging),
//! * variables are range-partitioned across the PS shards; each shard's
//!   NIC serializes its own transfers, and the shards drain in parallel,
//! * with overlap enabled (the default), gradient chunks are pushed as
//!   each backward segment completes, hiding transfer time under the
//!   remaining compute ([`crate::comm::schedule`]),
//! * the network shield adds record-processing cost at both endpoints,
//!   charged on the (possibly compressed) wire length,
//! * under the shielded runtime, multi-threaded training compute pays the
//!   scheduler slowdown the paper reports (§5.4).
//!
//! Neither overlap nor sharding changes the training math: gradients are
//! applied per variable in worker-index order whatever the arrival
//! order, so the applied update is bit-identical across comm settings.

use crate::cluster::Cluster;
use crate::comm::{self, Chunk, CommConfig, CommMetrics, CommStats};
use crate::wire::{self, Codec};
use crate::DistribError;
use std::collections::HashMap;
use securetf_data::Dataset;
use securetf_tensor::graph::NodeId;
use securetf_tensor::layers::Classifier;
use securetf_tensor::session::Session;
use securetf_tensor::tensor::Tensor;
use securetf_tee::{ExecutionMode, RegionId};

/// Outcome of a training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainReport {
    /// Steps executed.
    pub steps: u64,
    /// Loss after the final step (averaged over workers).
    pub final_loss: f32,
    /// End-to-end virtual time of the run, nanoseconds.
    pub elapsed_ns: u64,
    /// Samples processed across all workers.
    pub samples: u64,
}

impl TrainReport {
    /// Training throughput in samples per virtual second.
    pub fn samples_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.samples as f64 / (self.elapsed_ns as f64 / 1e9)
    }
}

struct WorkerState {
    session: Session,
    cursor: usize,
    /// The enclave these regions belong to; a respawned node gets a fresh
    /// enclave, which invalidates the old state.
    enclave: std::sync::Arc<securetf_tee::Enclave>,
    params_region: RegionId,
    activations_region: RegionId,
    /// Error-feedback residuals left by quantized pushes, per variable.
    /// A respawned worker starts with empty residuals (state rebuilt).
    residuals: HashMap<u32, Tensor>,
}

/// One worker's encoded gradient push for a step: the wire frames, plus
/// chunk timings when the exchange is overlapped (one chunk per frame,
/// same order).
struct Push {
    frames: Vec<Vec<u8>>,
    chunks: Vec<Chunk>,
}

/// Drives synchronous data-parallel training over a [`Cluster`].
pub struct DistributedTrainer {
    cluster: Cluster,
    model: Classifier,
    data: Dataset,
    batch: usize,
    lr: f32,
    ps_session: Session,
    ps_params_region: RegionId,
    workers: Vec<WorkerState>,
    pool: securetf_tensor::kernels::WorkerPool,
    comm: CommConfig,
    comm_stats: CommStats,
    comm_metrics: CommMetrics,
    /// Encoded dense entry body per variable, dropped when the PS apply
    /// changes the variable — unchanged variables are never re-encoded.
    weight_cache: HashMap<u32, Vec<u8>>,
    global_ns: u64,
    steps: u64,
    samples: u64,
}

impl std::fmt::Debug for DistributedTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistributedTrainer")
            .field("workers", &self.workers.len())
            .field("steps", &self.steps)
            .finish_non_exhaustive()
    }
}

impl DistributedTrainer {
    /// Creates a trainer for `model` over `cluster`, sharding `data`
    /// among workers.
    ///
    /// # Errors
    ///
    /// Returns TEE errors from region allocation.
    pub fn new(
        cluster: Cluster,
        model: Classifier,
        data: Dataset,
        batch: usize,
        lr: f32,
    ) -> Result<Self, DistribError> {
        let ps_session = Session::new(&model.graph);
        let param_bytes = ps_session.param_bytes();
        let ps_params_region = cluster.ps.enclave.alloc("ps-params", param_bytes);
        let workers = cluster
            .workers
            .iter()
            .map(|node| WorkerState {
                session: Session::new(&model.graph),
                cursor: 0,
                enclave: node.enclave.clone(),
                params_region: node.enclave.alloc("params", param_bytes),
                activations_region: node.enclave.alloc("activations", 1),
                residuals: HashMap::new(),
            })
            .collect();
        let comm_metrics = CommMetrics::new(&cluster.config().telemetry);
        Ok(DistributedTrainer {
            cluster,
            model,
            data,
            batch,
            lr,
            ps_session,
            ps_params_region,
            workers,
            pool: securetf_tensor::kernels::WorkerPool::serial(),
            comm: CommConfig::default(),
            comm_stats: CommStats::default(),
            comm_metrics,
            weight_cache: HashMap::new(),
            global_ns: 0,
            steps: 0,
            samples: 0,
        })
    }

    /// Selects the wire codec and overlap behavior for subsequent steps.
    /// Changing the codec resets workers' error-feedback residuals.
    pub fn set_comm_config(&mut self, comm: CommConfig) {
        if comm.codec != self.comm.codec {
            for state in &mut self.workers {
                state.residuals.clear();
            }
        }
        self.comm = comm;
    }

    /// The active communication configuration.
    pub fn comm_config(&self) -> CommConfig {
        self.comm
    }

    /// Cumulative communication accounting (bytes on the wire, bytes
    /// saved by the codec, exposed vs hidden comm time).
    pub fn comm_stats(&self) -> CommStats {
        self.comm_stats
    }

    /// Sets the in-enclave worker pool every session's kernels run on —
    /// the parameter server, current workers, and any worker respawned or
    /// joined later. Training results are bit-identical for any pool; only
    /// the per-step virtual compute time shrinks.
    pub fn set_worker_pool(&mut self, pool: securetf_tensor::kernels::WorkerPool) {
        self.pool = pool;
        self.ps_session.set_worker_pool(pool);
        for state in &mut self.workers {
            state.session.set_worker_pool(pool);
        }
    }

    fn sync_worker_states(&mut self) -> Result<(), DistribError> {
        let param_bytes = self.ps_session.param_bytes();
        // New workers may have joined the cluster (elastic scaling).
        while self.workers.len() < self.cluster.workers.len() {
            let node = &self.cluster.workers[self.workers.len()];
            let mut session = Session::new(&self.model.graph);
            session.set_worker_pool(self.pool);
            self.workers.push(WorkerState {
                session,
                cursor: 0,
                enclave: node.enclave.clone(),
                params_region: node.enclave.alloc("params", param_bytes),
                activations_region: node.enclave.alloc("activations", 1),
                residuals: HashMap::new(),
            });
        }
        // Respawned workers run in fresh enclaves; rebuild their state.
        for (state, node) in self.workers.iter_mut().zip(self.cluster.workers.iter()) {
            if !std::sync::Arc::ptr_eq(&state.enclave, &node.enclave) {
                let mut session = Session::new(&self.model.graph);
                session.set_worker_pool(self.pool);
                *state = WorkerState {
                    session,
                    cursor: 0,
                    enclave: node.enclave.clone(),
                    params_region: node.enclave.alloc("params", param_bytes),
                    activations_region: node.enclave.alloc("activations", 1),
                    residuals: HashMap::new(),
                };
            }
        }
        Ok(())
    }

    /// Runs one synchronous training step across all live workers.
    /// Returns the mean worker loss.
    ///
    /// # Errors
    ///
    /// * [`DistribError::NoWorkers`] if every worker has failed.
    /// * Execution/TEE errors otherwise.
    pub fn step(&mut self) -> Result<f32, DistribError> {
        self.sync_worker_states()?;
        let live = self.cluster.live_workers();
        if live.is_empty() {
            return Err(DistribError::NoWorkers);
        }
        let mode = self.cluster.config().mode;
        let shield = self.cluster.config().network_shield && mode.has_runtime();
        let model = self.cluster.ps.platform.cost_model().clone();
        let sched_slowdown = if mode.has_runtime() {
            model.runtime_sched_slowdown
        } else {
            1.0
        };
        let telemetry = self.cluster.config().telemetry.clone();
        let _step_span = telemetry.span("distrib.step");

        let ps_count = self.cluster.parameter_server_count();
        let live_count = live.len() as u64;
        let overlap = self.comm.overlap;
        let codec = self.comm.codec;

        // Shard ownership: contiguous byte-balanced ranges over the
        // variables in id order — stable across steps for a fixed model.
        let var_meta: Vec<(u32, u64)> = self
            .ps_session
            .variables()
            .iter()
            .map(|(id, t)| (id.index() as u32, t.byte_len()))
            .collect();
        let sizes: Vec<u64> = var_meta.iter().map(|&(_, b)| b).collect();
        let shard_index = comm::partition_by_bytes(&sizes, ps_count);
        let shard_of: HashMap<u32, usize> = var_meta
            .iter()
            .map(|&(raw, _)| raw)
            .zip(shard_index.iter().copied())
            .collect();
        let mut shard_counts = vec![0usize; ps_count];
        for &s in &shard_index {
            shard_counts[s] += 1;
        }

        // 1. Broadcast current weights: one dense frame per shard,
        //    assembled from cached entry bodies (only variables the last
        //    apply actually changed are re-encoded). The broadcast stays
        //    dense — workers must hold the exact global model.
        let broadcast_span = telemetry.span("distrib.broadcast");
        for (id, t) in self.ps_session.variables() {
            let raw = id.index() as u32;
            self.weight_cache
                .entry(raw)
                .or_insert_with(|| wire::encode_dense_entry(raw, t));
        }
        let mut shard_frames: Vec<Vec<u8>> = Vec::with_capacity(ps_count);
        for s in 0..ps_count {
            let bodies: Vec<&[u8]> = var_meta
                .iter()
                .zip(&shard_index)
                .filter(|(_, &si)| si == s)
                .map(|((raw, _), _)| self.weight_cache[raw].as_slice())
                .collect();
            shard_frames.push(wire::assemble_dense_frame(&bodies));
        }
        // Each shard's NIC serializes the LAN send of its frame to every
        // live worker; the per-link record sealing runs on the shield's
        // async crypto threads (one per link), so a single record-
        // processing term sits on the critical path before the first
        // send. Shards transmit in parallel, so the broadcast takes the
        // slowest shard. Workers decrypt their own copy on their own
        // clock (charged in the compute phase below).
        let mut broadcast_ns = 0u64;
        let mut weight_bytes_total = 0u64;
        for (s, frame) in shard_frames.iter().enumerate() {
            if shard_counts[s] == 0 {
                continue;
            }
            weight_bytes_total += frame.len() as u64;
            let mut nic = live_count * model.lan_transfer_ns(frame.len() as u64);
            if shield {
                nic += model.shield_net_ns(frame.len() as u64);
            }
            broadcast_ns = broadcast_ns.max(nic);
        }
        // Decode each shard frame ONCE; install into every worker by
        // cloning the decoded tensors (not by re-decoding the bytes).
        let mut decoded_weights: Vec<(NodeId, Tensor)> = Vec::with_capacity(var_meta.len());
        for (s, frame) in shard_frames.iter().enumerate() {
            if shard_counts[s] == 0 {
                continue;
            }
            for (raw_id, tensor) in wire::decode_frame(frame)? {
                let id = self
                    .model
                    .graph
                    .node_id(raw_id as usize)
                    .ok_or(DistribError::BadMessage("unknown variable"))?;
                decoded_weights.push((id, tensor));
            }
        }
        for &w in &live {
            let state = &mut self.workers[w];
            for (id, tensor) in &decoded_weights {
                state.session.set_variable(*id, tensor.clone())?;
            }
        }
        drop(broadcast_span);

        // 2. Parallel gradient computation; the step takes the slowest
        //    worker (each on its own clock, so paging is node-local).
        //    With overlap, each variable's gradient is encoded into its
        //    own chunk the moment its backward segment completes.
        let compute_span = telemetry.span("distrib.compute");
        let mut max_worker_ns = 0u64;
        let mut pushes: Vec<Push> = Vec::with_capacity(live.len());
        let mut loss_sum = 0.0f32;
        let mut push_bytes = 0u64;
        let mut push_dense_bytes = 0u64;
        for &w in &live {
            let node = &self.cluster.workers[w];
            let state = &mut self.workers[w];
            let clock = node.clock().clone();
            let t0 = clock.now_ns();
            if shield {
                // Worker-side record processing of the weight broadcast.
                clock.advance(model.shield_net_ns(weight_bytes_total));
            }

            // Fetch this worker's batch (wraps around its shard).
            if state.cursor + self.batch > self.data.len() {
                state.cursor = 0;
            }
            let cursor = state.cursor;
            state.cursor += self.batch;
            let (x, y) = self.batch_for_model(cursor, self.batch)?;
            let state = &mut self.workers[w];
            node.enclave.charge_syscall(); // input read
            let pre_ns = clock.now_ns() - t0;

            state.session.reset_stats();
            let (loss, grads) = state.session.gradients(
                &self.model.graph,
                &[(self.model.input, x), (self.model.labels, y)],
                self.model.loss,
            )?;
            loss_sum += loss;
            let stats = state.session.stats();
            // Virtual time advances by the pool's critical path (equal to
            // total flops when the session runs serial kernels).
            node.enclave.charge_parallel_compute(
                stats.flops * sched_slowdown,
                stats.critical_flops * sched_slowdown,
            );

            // Memory traffic: parameters + activations, through the EPC.
            node.enclave.touch_all(state.params_region)?;
            let act_bytes = stats.activation_bytes.max(1);
            node.enclave.free(state.activations_region)?;
            state.activations_region = node.enclave.alloc("activations", act_bytes);
            node.enclave.touch_all(state.activations_region)?;
            let compute_end = clock.now_ns() - t0;

            // The backward pass produces the last layer's gradients
            // first: descending variable id. This fixed order also pins
            // the PS apply order, so results are bit-identical whatever
            // the wire schedule.
            let mut message: Vec<(u32, Tensor)> = grads
                .into_iter()
                .map(|(id, g)| (id.index() as u32, g))
                .collect();
            message.sort_by_key(|e| std::cmp::Reverse(e.0));

            // Error feedback: fold the residual the quantizer dropped
            // last step into this step's gradient, then keep the new
            // drop. The residual is derived from the decoder's exact
            // arithmetic (q * scale), so worker and PS agree bit-for-bit
            // on what was transmitted.
            let mut entries: Vec<(u32, Tensor)> = Vec::with_capacity(message.len());
            for (raw, grad) in message {
                let adjusted = if codec == Codec::Quantized {
                    match state.residuals.get(&raw) {
                        Some(r) => grad.zip(r, |g, r| g + r)?,
                        None => grad,
                    }
                } else {
                    grad
                };
                if codec == Codec::Quantized {
                    let q = wire::quantize(adjusted.data());
                    let sent = q.dequantize();
                    let residual: Vec<f32> = adjusted
                        .data()
                        .iter()
                        .zip(&sent)
                        .map(|(a, s)| a - s)
                        .collect();
                    state
                        .residuals
                        .insert(raw, Tensor::from_vec(adjusted.shape(), residual)?);
                }
                entries.push((raw, adjusted));
            }

            let mut frames: Vec<Vec<u8>> = Vec::new();
            let mut chunks: Vec<Chunk> = Vec::new();
            if overlap {
                // Chunk i becomes ready after a byte-proportional share
                // of the backward compute; sealing runs on the shield's
                // async syscall threads, so it overlaps the remaining
                // compute (the schedule below serializes it per worker).
                let total_bytes: u64 = entries
                    .iter()
                    .map(|(_, t)| t.byte_len().max(1))
                    .sum::<u64>()
                    .max(1);
                let compute_ns = compute_end - pre_ns;
                let mut cum = 0u64;
                for entry in &entries {
                    cum += entry.1.byte_len().max(1);
                    let ready = pre_ns
                        + ((u128::from(compute_ns) * u128::from(cum))
                            / u128::from(total_bytes)) as u64;
                    let frame = wire::encode_frame(std::slice::from_ref(entry), codec);
                    let len = frame.len() as u64;
                    chunks.push(Chunk {
                        shard: shard_of[&entry.0],
                        ready_ns: ready,
                        seal_ns: if shield { model.shield_net_ns(len) } else { 0 },
                        transfer_ns: model.lan_transfer_ns(len),
                        ps_shield_ns: if shield { model.shield_net_ns(len) } else { 0 },
                    });
                    push_dense_bytes += wire::dense_frame_len(std::slice::from_ref(entry));
                    frames.push(frame);
                }
            } else {
                // Barrier: the worker pushes only after its full
                // backward pass — one joined frame per owning shard,
                // sealed on the same async shield threads. Only chunk
                // granularity and readiness differ from the overlapped
                // path; the NIC physics are identical.
                for s in 0..ps_count {
                    let shard_entries: Vec<(u32, Tensor)> = entries
                        .iter()
                        .filter(|(raw, _)| shard_of[raw] == s)
                        .cloned()
                        .collect();
                    if shard_entries.is_empty() {
                        continue;
                    }
                    let frame = wire::encode_frame(&shard_entries, codec);
                    let len = frame.len() as u64;
                    chunks.push(Chunk {
                        shard: s,
                        ready_ns: compute_end,
                        seal_ns: if shield { model.shield_net_ns(len) } else { 0 },
                        transfer_ns: model.lan_transfer_ns(len),
                        ps_shield_ns: if shield { model.shield_net_ns(len) } else { 0 },
                    });
                    push_dense_bytes += wire::dense_frame_len(&shard_entries);
                    frames.push(frame);
                }
            }
            push_bytes += frames.iter().map(|f| f.len() as u64).sum::<u64>();
            pushes.push(Push { frames, chunks });
            max_worker_ns = max_worker_ns.max(clock.now_ns() - t0);
        }
        drop(compute_span);

        // 3. Gradient exchange: per-worker seal pipelines feed per-shard
        //    NIC queues, resolved deterministically. Overlapped chunks
        //    whose backward segment finished early land while the rest
        //    of the backward pass is still running; barrier frames all
        //    queue at compute end. `hidden` is the comm cost kept off
        //    the step's critical path — overlapped under compute or
        //    drained by parallel shard NICs.
        let exchange_span = telemetry.span("distrib.exchange");
        let per_worker: Vec<Vec<Chunk>> = pushes.iter().map(|p| p.chunks.clone()).collect();
        let outcome = comm::schedule(&per_worker, ps_count);
        let exchange_ns = outcome.done_ns.max(max_worker_ns);
        let exposed_comm_ns = exchange_ns.saturating_sub(max_worker_ns);
        let hidden_ns = outcome.serial_comm_ns.saturating_sub(exposed_comm_ns);
        drop(exchange_span);

        // 4. PS averages and applies (on the PS node's clock). Messages
        //    are consumed in worker-index order regardless of arrival
        //    order, and entries within a message in their fixed
        //    descending-id order — the applied update is bit-identical
        //    across overlap/shard settings.
        let apply_span = telemetry.span("distrib.apply");
        let ps_clock = self.cluster.ps.clock().clone();
        let t0 = ps_clock.now_ns();
        let scale = self.lr / live.len() as f32;
        let mut param_flops = 0.0f64;
        for push in &pushes {
            for (raw_id, grad) in wire::decode_frames(&push.frames)? {
                let id = self
                    .model
                    .graph
                    .node_id(raw_id as usize)
                    .ok_or(DistribError::BadMessage("unknown variable"))?;
                let current = self
                    .ps_session
                    .variable(id)
                    .ok_or(DistribError::BadMessage("gradient for non-variable"))?;
                let updated = current.zip(&grad, |v, g| v - scale * g)?;
                param_flops += 2.0 * updated.len() as f64;
                if updated.data() == current.data() {
                    // Update is a bit-level no-op (e.g. zero gradient):
                    // keep the cached broadcast encoding.
                    continue;
                }
                self.ps_session.set_variable(id, updated)?;
                self.weight_cache.remove(&raw_id);
            }
        }
        // Shard application parallelizes across the PS nodes.
        self.cluster
            .ps
            .enclave
            .charge_compute(param_flops / ps_count as f64);
        self.cluster.ps.enclave.touch_all(self.ps_params_region)?;
        let ps_ns = ps_clock.now_ns() - t0;
        drop(apply_span);

        let comm_ns = broadcast_ns + exposed_comm_ns;
        self.global_ns += broadcast_ns + exchange_ns + ps_ns;
        self.steps += 1;
        self.samples += (self.batch * live.len()) as u64;

        telemetry.charge(securetf_tee::CostCategory::Network, comm_ns);
        let bytes_sent = weight_bytes_total * live_count + push_bytes;
        let bytes_saved = push_dense_bytes.saturating_sub(push_bytes);
        self.comm_metrics.bytes_sent.add(bytes_sent);
        self.comm_metrics.bytes_saved.add(bytes_saved);
        if let Some(ratio) = (push_dense_bytes * 1000).checked_div(push_bytes) {
            self.comm_metrics.compression_ratio.set(ratio as i64);
        }
        self.comm_metrics.comm_ns.record(comm_ns);
        self.comm_metrics.overlap_hidden_ns.record(hidden_ns);
        self.comm_stats.bytes_sent += bytes_sent;
        self.comm_stats.bytes_saved += bytes_saved;
        self.comm_stats.comm_ns += comm_ns;
        self.comm_stats.overlap_hidden_ns += hidden_ns;
        Ok(loss_sum / live.len() as f32)
    }

    /// Runs `n` steps, returning the final report.
    ///
    /// # Errors
    ///
    /// Propagates [`DistributedTrainer::step`] errors.
    pub fn train_steps(&mut self, n: u64) -> Result<TrainReport, DistribError> {
        let mut last = f32::NAN;
        for _ in 0..n {
            last = self.step()?;
        }
        Ok(self.report(last))
    }

    fn report(&self, final_loss: f32) -> TrainReport {
        TrainReport {
            steps: self.steps,
            final_loss,
            elapsed_ns: self.global_ns,
            samples: self.samples,
        }
    }

    /// Fetches a batch shaped for the model's input placeholder (flat for
    /// MLPs, NHWC for convolutional models).
    fn batch_for_model(
        &self,
        start: usize,
        n: usize,
    ) -> Result<(securetf_tensor::tensor::Tensor, securetf_tensor::tensor::Tensor), DistribError>
    {
        if self.model_wants_nhwc() {
            Ok(self.data.batch_nhwc(start, n)?)
        } else {
            Ok(self.data.batch(start, n)?)
        }
    }

    fn model_wants_nhwc(&self) -> bool {
        matches!(
            &self.model.graph.nodes()[self.model.input.index()].op,
            securetf_tensor::graph::Op::Placeholder { shape } if shape.len() == 4
        )
    }

    /// Evaluates classification accuracy of the parameter-server model.
    ///
    /// # Errors
    ///
    /// Propagates execution errors.
    pub fn evaluate(&mut self, data: &Dataset) -> Result<f64, DistribError> {
        let (x, _) = if self.model_wants_nhwc() {
            data.batch_nhwc(0, data.len())?
        } else {
            data.batch(0, data.len())?
        };
        let out = self.ps_session.run(
            &self.model.graph,
            &[(self.model.input, x)],
            &[self.model.logits],
        )?;
        let preds = out[0].argmax_rows()?;
        let correct = preds
            .iter()
            .enumerate()
            .filter(|(i, &p)| data.label(*i) == Some(p))
            .count();
        Ok(correct as f64 / data.len() as f64)
    }

    /// Saves the global model to untrusted storage, encrypted under the
    /// CAS-provisioned `fs-key` — so a *new* cluster (fresh machines, same
    /// attested service) can restore it.
    ///
    /// # Errors
    ///
    /// Returns [`DistribError::BadMessage`] if the PS was provisioned
    /// without an `fs-key` secret.
    pub fn save_checkpoint(
        &self,
        store: &securetf_shield::fs::UntrustedStore,
        path: &str,
    ) -> Result<(), DistribError> {
        let sealed = self.checkpoint_bytes(path)?;
        self.cluster.ps.enclave.charge_syscall();
        store.raw_put(path, sealed);
        Ok(())
    }

    /// Serializes and encrypts the global model under the CAS-provisioned
    /// `fs-key`, bound to `aad` (normally the destination path), without
    /// writing it anywhere — so callers can route the blob through a
    /// crash-consistent channel like the fs shield's journaled writes.
    ///
    /// # Errors
    ///
    /// Returns [`DistribError::BadMessage`] if the PS was provisioned
    /// without an `fs-key` secret.
    pub fn checkpoint_bytes(&self, aad: &str) -> Result<Vec<u8>, DistribError> {
        let key = self.checkpoint_key()?;
        let entries: Vec<(u32, Tensor)> = self
            .ps_session
            .variables()
            .iter()
            .map(|(id, t)| (id.index() as u32, (*t).clone()))
            .collect();
        let plaintext = wire::encode(&entries);
        let nonce = securetf_crypto::aead::Nonce::from_counter(0xC4EC, self.steps);
        // Single exactly-sized buffer: nonce || payload encrypted in
        // place || detached tag — no intermediate ciphertext copy.
        let mut sealed = Vec::with_capacity(
            securetf_crypto::aead::NONCE_LEN + plaintext.len() + securetf_crypto::aead::TAG_LEN,
        );
        sealed.extend_from_slice(nonce.as_bytes());
        sealed.extend_from_slice(&plaintext);
        let tag = securetf_crypto::aead::seal_in_place_detached(
            &key,
            &nonce,
            &mut sealed[securetf_crypto::aead::NONCE_LEN..],
            aad.as_bytes(),
        );
        sealed.extend_from_slice(&tag);
        self.cluster
            .ps
            .enclave
            .charge_shield_crypto(plaintext.len() as u64);
        Ok(sealed)
    }

    /// Restores a checkpoint written by [`DistributedTrainer::save_checkpoint`]
    /// (possibly by a previous cluster).
    ///
    /// # Errors
    ///
    /// * [`DistribError::BadMessage`] if the file is missing, tampered
    ///   with, or the PS lacks the `fs-key` secret.
    pub fn restore_checkpoint(
        &mut self,
        store: &securetf_shield::fs::UntrustedStore,
        path: &str,
    ) -> Result<(), DistribError> {
        self.cluster.ps.enclave.charge_syscall();
        let sealed = store
            .raw_contents(path)
            .ok_or(DistribError::BadMessage("checkpoint missing"))?;
        self.restore_checkpoint_bytes(&sealed, path)
    }

    /// Decrypts and applies a checkpoint blob produced by
    /// [`DistributedTrainer::checkpoint_bytes`] with the same `aad`.
    ///
    /// # Errors
    ///
    /// * [`DistribError::BadMessage`] if the blob is truncated, tampered
    ///   with, or the PS lacks the `fs-key` secret.
    pub fn restore_checkpoint_bytes(
        &mut self,
        sealed: &[u8],
        aad: &str,
    ) -> Result<(), DistribError> {
        let key = self.checkpoint_key()?;
        if sealed.len() < securetf_crypto::aead::NONCE_LEN {
            return Err(DistribError::BadMessage("checkpoint truncated"));
        }
        let (nonce_bytes, ciphertext) = sealed.split_at(securetf_crypto::aead::NONCE_LEN);
        let nonce_bytes: [u8; securetf_crypto::aead::NONCE_LEN] = nonce_bytes
            .try_into()
            .map_err(|_| DistribError::BadMessage("checkpoint nonce malformed"))?;
        let nonce = securetf_crypto::aead::Nonce::from_bytes(nonce_bytes);
        if ciphertext.len() < securetf_crypto::aead::TAG_LEN {
            return Err(DistribError::BadMessage("checkpoint truncated"));
        }
        let (body, tag) = ciphertext.split_at(ciphertext.len() - securetf_crypto::aead::TAG_LEN);
        // Verify-then-decrypt in place on the single plaintext buffer.
        let mut plaintext = body.to_vec();
        securetf_crypto::aead::open_in_place_detached(
            &key,
            &nonce,
            &mut plaintext,
            tag,
            aad.as_bytes(),
        )
        .map_err(|_| DistribError::BadMessage("checkpoint failed authentication"))?;
        self.cluster
            .ps
            .enclave
            .charge_shield_crypto(plaintext.len() as u64);
        for (raw, tensor) in wire::decode(&plaintext)? {
            let id = self
                .model
                .graph
                .node_id(raw as usize)
                .ok_or(DistribError::BadMessage("unknown variable in checkpoint"))?;
            self.ps_session.set_variable(id, tensor)?;
        }
        // The restored weights invalidate every cached broadcast body.
        self.weight_cache.clear();
        Ok(())
    }

    fn checkpoint_key(&self) -> Result<securetf_crypto::aead::Key, DistribError> {
        let secret = self
            .cluster
            .ps
            .provision
            .secret("fs-key")
            .ok_or(DistribError::BadMessage("no fs-key provisioned"))?;
        let bytes: [u8; 32] = secret
            .try_into()
            .map_err(|_| DistribError::BadMessage("fs-key has wrong length"))?;
        Ok(securetf_crypto::aead::Key::from_bytes(bytes))
    }

    /// The underlying cluster (for fault injection / elastic scaling).
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The parameter-server session (current global model).
    pub fn ps_session(&self) -> &Session {
        &self.ps_session
    }

    /// The model under training.
    pub fn model(&self) -> &Classifier {
        &self.model
    }

    /// Total virtual time spent so far.
    pub fn elapsed_ns(&self) -> u64 {
        self.global_ns
    }

    /// Steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Samples processed across all workers so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The execution mode of the cluster.
    pub fn mode(&self) -> ExecutionMode {
        self.cluster.config().mode
    }

    /// Convenience: variable node id from a raw index.
    pub fn variable_id(&self, raw: usize) -> Option<NodeId> {
        self.model.graph.node_id(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use rand::SeedableRng;
    use securetf_tensor::layers;

    fn small_model() -> Classifier {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        layers::mlp_classifier(784, &[32], 10, &mut rng).unwrap()
    }

    fn config(workers: usize, mode: ExecutionMode, shield: bool) -> ClusterConfig {
        ClusterConfig {
            workers,
            parameter_servers: 1,
            mode,
            network_shield: shield,
            runtime_bytes: 8 * 1024 * 1024,
            heap_bytes: 16 * 1024 * 1024,
            ..ClusterConfig::default()
        }
    }

    fn trainer(workers: usize, mode: ExecutionMode, shield: bool) -> DistributedTrainer {
        let cluster = Cluster::new(config(workers, mode, shield)).unwrap();
        let data = securetf_data::synthetic_mnist(300, 5);
        DistributedTrainer::new(cluster, small_model(), data, 100, 0.2).unwrap()
    }

    #[test]
    fn training_reduces_loss() {
        let mut t = trainer(2, ExecutionMode::Simulation, true);
        let first = t.step().unwrap();
        let mut last = first;
        for _ in 0..15 {
            last = t.step().unwrap();
        }
        assert!(last < first, "{last} >= {first}");
    }

    #[test]
    fn accuracy_improves_over_training() {
        let mut t = trainer(2, ExecutionMode::Simulation, true);
        let test = securetf_data::synthetic_mnist(100, 99);
        let before = t.evaluate(&test).unwrap();
        t.train_steps(25).unwrap();
        let after = t.evaluate(&test).unwrap();
        assert!(after > before, "accuracy {before} -> {after}");
        assert!(after > 0.5, "accuracy only {after}");
    }

    #[test]
    fn more_workers_increase_throughput() {
        let r1 = trainer(1, ExecutionMode::Simulation, true)
            .train_steps(5)
            .unwrap();
        let r3 = trainer(3, ExecutionMode::Simulation, true)
            .train_steps(5)
            .unwrap();
        assert!(
            r3.samples_per_sec() > 1.4 * r1.samples_per_sec(),
            "1w {} vs 3w {}",
            r1.samples_per_sec(),
            r3.samples_per_sec()
        );
    }

    #[test]
    fn native_is_fastest_hw_slowest() {
        let native = trainer(1, ExecutionMode::Native, false)
            .train_steps(3)
            .unwrap();
        let sim = trainer(1, ExecutionMode::Simulation, true)
            .train_steps(3)
            .unwrap();
        let hw = trainer(1, ExecutionMode::Hardware, true)
            .train_steps(3)
            .unwrap();
        assert!(native.elapsed_ns < sim.elapsed_ns);
        assert!(sim.elapsed_ns < hw.elapsed_ns);
    }

    #[test]
    fn network_shield_costs_time() {
        let with = trainer(2, ExecutionMode::Simulation, true)
            .train_steps(3)
            .unwrap();
        let without = trainer(2, ExecutionMode::Simulation, false)
            .train_steps(3)
            .unwrap();
        assert!(with.elapsed_ns > without.elapsed_ns);
    }

    #[test]
    fn worker_failure_is_survived() {
        let mut t = trainer(3, ExecutionMode::Simulation, true);
        t.step().unwrap();
        t.cluster_mut().fail_worker(1).unwrap();
        let loss = t.step().unwrap();
        assert!(loss.is_finite());
        // All workers dead -> error.
        t.cluster_mut().fail_worker(0).unwrap();
        t.cluster_mut().fail_worker(2).unwrap();
        assert!(matches!(t.step(), Err(DistribError::NoWorkers)));
        // Respawn one and continue.
        t.cluster_mut().respawn_worker(0).unwrap();
        assert!(t.step().unwrap().is_finite());
    }

    #[test]
    fn elastic_worker_joins_mid_training() {
        let mut t = trainer(1, ExecutionMode::Simulation, true);
        t.step().unwrap();
        t.cluster_mut().add_worker().unwrap();
        let samples_before = t.samples;
        t.step().unwrap();
        assert_eq!(t.samples - samples_before, 200, "two workers × batch 100");
    }

    #[test]
    fn checkpoint_survives_full_cluster_replacement() {
        let store = securetf_shield::fs::UntrustedStore::new();
        // Cluster A trains and checkpoints.
        let mut a = trainer(2, ExecutionMode::Hardware, true);
        let first = a.step().unwrap();
        for _ in 0..10 {
            a.step().unwrap();
        }
        let trained_loss = a.step().unwrap();
        assert!(trained_loss < first);
        a.save_checkpoint(&store, "/ckpt/global").unwrap();
        let saved_vars: Vec<Vec<f32>> = a
            .ps_session()
            .variables()
            .iter()
            .map(|(_, t)| t.data().to_vec())
            .collect();
        drop(a);

        // Cluster B: entirely new machines, same attested service.
        let mut b = trainer(2, ExecutionMode::Hardware, true);
        b.restore_checkpoint(&store, "/ckpt/global").unwrap();
        let restored_vars: Vec<Vec<f32>> = b
            .ps_session()
            .variables()
            .iter()
            .map(|(_, t)| t.data().to_vec())
            .collect();
        assert_eq!(saved_vars, restored_vars);
        // Training continues from the restored state.
        let resumed = b.step().unwrap();
        assert!(resumed < first, "resumed {resumed} vs cold start {first}");
    }

    #[test]
    fn tampered_checkpoint_rejected() {
        let store = securetf_shield::fs::UntrustedStore::new();
        let mut t = trainer(1, ExecutionMode::Hardware, true);
        t.step().unwrap();
        t.save_checkpoint(&store, "/ckpt/m").unwrap();
        store.corrupt("/ckpt/m", 50);
        assert!(matches!(
            t.restore_checkpoint(&store, "/ckpt/m"),
            Err(DistribError::BadMessage(_))
        ));
        assert!(matches!(
            t.restore_checkpoint(&store, "/ckpt/missing"),
            Err(DistribError::BadMessage(_))
        ));
    }

    #[test]
    fn checkpoint_is_ciphertext_at_rest() {
        let store = securetf_shield::fs::UntrustedStore::new();
        let mut t = trainer(1, ExecutionMode::Hardware, true);
        t.step().unwrap();
        t.save_checkpoint(&store, "/ckpt/m").unwrap();
        let raw = store.raw_contents("/ckpt/m").unwrap();
        // The plaintext wire encoding of the variables must not appear.
        let entries: Vec<(u32, Tensor)> = t
            .ps_session()
            .variables()
            .iter()
            .map(|(id, v)| (id.index() as u32, (*v).clone()))
            .collect();
        let plain = crate::wire::encode(&entries);
        assert!(!raw
            .windows(64.min(plain.len()))
            .any(|w| plain.windows(64.min(plain.len())).next() == Some(w)));
    }

    #[test]
    fn sharding_across_parameter_servers_cuts_comm_time() {
        let run = |ps: usize| {
            let cluster = Cluster::new(ClusterConfig {
                workers: 2,
                parameter_servers: ps,
                mode: ExecutionMode::Simulation,
                network_shield: true,
                runtime_bytes: 8 * 1024 * 1024,
                heap_bytes: 16 * 1024 * 1024,
                ..ClusterConfig::default()
            })
            .unwrap();
            let mut rng = rand::SeedableRng::seed_from_u64(3);
            let model = securetf_tensor::layers::mlp_classifier(
                784,
                &[256],
                10,
                &mut rng as &mut rand::rngs::StdRng,
            )
            .unwrap();
            let data = securetf_data::synthetic_mnist(200, 5);
            let mut t = DistributedTrainer::new(cluster, model, data, 50, 0.05).unwrap();
            t.train_steps(3).unwrap()
        };
        let one = run(1);
        let two = run(2);
        assert!(
            two.elapsed_ns < one.elapsed_ns,
            "2 PS {} >= 1 PS {}",
            two.elapsed_ns,
            one.elapsed_ns
        );
        // Training math is unaffected by sharding.
        assert_eq!(one.final_loss, two.final_loss);
    }

    #[test]
    fn workers_converge_to_same_model() {
        let mut t = trainer(2, ExecutionMode::Simulation, true);
        t.step().unwrap();
        t.step().unwrap();
        // After a step, worker sessions hold the weights broadcast at the
        // start of the step; they match each other exactly.
        let w0: Vec<f32> = t.workers[0]
            .session
            .variables()
            .iter()
            .flat_map(|(_, v)| v.data().to_vec())
            .collect();
        let w1: Vec<f32> = t.workers[1]
            .session
            .variables()
            .iter()
            .flat_map(|(_, v)| v.data().to_vec())
            .collect();
        assert_eq!(w0, w1);
    }
}
