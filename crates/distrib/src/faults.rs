//! Deterministic fault-injection plans.
//!
//! A [`FaultPlan`] is a reproducible schedule of failures for a training
//! run: worker crashes, parameter-server stalls, network-shield record
//! drops and tampering, checkpoint corruption in untrusted storage, and
//! transient CAS unavailability. The schedule is derived entirely from a
//! [`rand::rngs::StdRng`] seed (optionally mixed with the current virtual
//! time of a [`securetf_tee::SimClock`]) — no wall-clock time and no real
//! randomness are involved, so the same seed always produces the same
//! schedule, bit for bit. That is what makes chaos runs debuggable: a
//! failing seed can be replayed forever.
//!
//! The plan is consumed by [`crate::supervisor::Supervisor`], which
//! injects each step's events before running the step and then recovers
//! from whatever they broke.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use securetf_tee::SimClock;
use std::collections::BTreeMap;

/// One scheduled failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultEvent {
    /// The machine hosting a worker crashes: the node is marked dead and
    /// its enclave stops producing authenticated records.
    WorkerCrash {
        /// Worker index (taken modulo the live cluster size on injection).
        worker: usize,
    },
    /// The parameter server stalls (GC pause, noisy neighbour, EPC
    /// thrashing burst) for a fixed stretch of virtual time.
    PsStall {
        /// Stall length in virtual nanoseconds.
        delay_ns: u64,
    },
    /// The network adversary drops heartbeat records to one worker.
    NetDrop {
        /// Worker whose link is lossy.
        worker: usize,
        /// How many consecutive records are dropped.
        records: u64,
    },
    /// The network adversary flips a bit in a heartbeat record to one
    /// worker. Tampering must fail closed: the supervisor treats the
    /// worker as compromised and replaces it.
    NetTamper {
        /// Worker whose link is tampered with.
        worker: usize,
    },
    /// Untrusted storage corrupts a chunk of the most recent checkpoint.
    /// Recovery must notice (AEAD authentication) and fall back to an
    /// older generation.
    ChunkCorruption {
        /// Byte offset of the flipped chunk (modulo file length).
        offset: usize,
    },
    /// The CAS becomes unreachable: attestation (and hence respawn)
    /// requests fail with a transient error until the outage expires.
    CasOutage {
        /// Outage length in virtual nanoseconds.
        duration_ns: u64,
    },
    /// The host process dies mid-write: storage serves `after_ops` more
    /// shield operations, then every I/O fails until the supervisor
    /// restarts the host and remounts the fs shield.
    CrashDuringWrite {
        /// Shield mutating operations served before the host dies.
        after_ops: u64,
    },
    /// Like [`FaultEvent::CrashDuringWrite`], but the dying operation
    /// lands a torn prefix on disk — the classic partial sector write.
    TornWrite {
        /// Shield mutating operations served before the host dies.
        after_ops: u64,
        /// Bytes of the dying put that land.
        torn_bytes: usize,
    },
    /// Untrusted storage is rolled back wholesale to an earlier disk
    /// image (validly encrypted, validly MAC'd — just stale). The
    /// monotonic counter and per-file versions must catch it.
    StorageRollback,
    /// A serving client fires a burst of back-to-back requests, stressing
    /// admission control and micro-batch formation in the gateway.
    RequestBurst {
        /// Client index (taken modulo the connected client count).
        client: usize,
        /// Number of requests in the burst.
        requests: u64,
    },
    /// A serving client goes quiet for a stretch of virtual time before
    /// its next request, forcing batch timeouts to fire under-full.
    SlowClient {
        /// Client index (taken modulo the connected client count).
        client: usize,
        /// Virtual nanoseconds of client-side delay.
        delay_ns: u64,
    },
    /// A serving client disconnects (sends its goodbye frame) and issues
    /// no further requests.
    ClientDisconnect {
        /// Client index (taken modulo the connected client count).
        client: usize,
    },
}

/// A deterministic, step-indexed schedule of [`FaultEvent`]s.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    events: BTreeMap<u64, Vec<FaultEvent>>,
}

impl FaultPlan {
    /// A plan with no faults at all.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Generates a plan for `steps` training steps over `workers`
    /// workers, entirely determined by `seed`.
    ///
    /// Event probabilities are tuned so that a multi-step run sees a
    /// realistic mix of crashes, stalls, network faults, storage
    /// corruption and CAS outages, while every schedule remains
    /// *survivable* for a supervisor with the default
    /// [`securetf_tee::RetryPolicy`] (CAS outages are bounded well below
    /// the policy's total backoff budget).
    pub fn generate(seed: u64, steps: u64, workers: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let workers = workers.max(1);
        let mut events: BTreeMap<u64, Vec<FaultEvent>> = BTreeMap::new();
        for step in 0..steps {
            let mut at_step = Vec::new();
            if rng.gen::<f64>() < 0.20 {
                at_step.push(FaultEvent::WorkerCrash {
                    worker: rng.gen_range(0..workers),
                });
            }
            if rng.gen::<f64>() < 0.10 {
                at_step.push(FaultEvent::PsStall {
                    delay_ns: rng.gen_range(500_000u64..20_000_000),
                });
            }
            if rng.gen::<f64>() < 0.15 {
                at_step.push(FaultEvent::NetDrop {
                    worker: rng.gen_range(0..workers),
                    records: rng.gen_range(1u64..3),
                });
            }
            if rng.gen::<f64>() < 0.08 {
                at_step.push(FaultEvent::NetTamper {
                    worker: rng.gen_range(0..workers),
                });
            }
            if rng.gen::<f64>() < 0.10 {
                at_step.push(FaultEvent::ChunkCorruption {
                    offset: rng.gen_range(0usize..4096),
                });
            }
            if rng.gen::<f64>() < 0.10 {
                // Bounded well below the default retry budget (~15 ms of
                // cumulative backoff), so respawns ride outages out.
                at_step.push(FaultEvent::CasOutage {
                    duration_ns: rng.gen_range(1_000_000u64..8_000_000),
                });
            }
            if rng.gen::<f64>() < 0.06 {
                at_step.push(FaultEvent::CrashDuringWrite {
                    after_ops: rng.gen_range(0u64..12),
                });
            }
            if rng.gen::<f64>() < 0.05 {
                at_step.push(FaultEvent::TornWrite {
                    after_ops: rng.gen_range(0u64..12),
                    torn_bytes: rng.gen_range(1usize..256),
                });
            }
            if rng.gen::<f64>() < 0.04 {
                at_step.push(FaultEvent::StorageRollback);
            }
            if !at_step.is_empty() {
                events.insert(step, at_step);
            }
        }
        FaultPlan { seed, events }
    }

    /// Generates a serving-side plan for `steps` gateway pump rounds over
    /// `clients` connected clients, entirely determined by `seed`.
    ///
    /// Serving plans draw from a distinct rng stream (the seed is mixed
    /// with a fixed tag), so a chaos harness can run a training plan and
    /// a serving plan from the same user seed without the two schedules
    /// being correlated. Only client-facing events are scheduled:
    /// [`FaultEvent::RequestBurst`], [`FaultEvent::SlowClient`] and
    /// [`FaultEvent::ClientDisconnect`].
    pub fn generate_serving(seed: u64, steps: u64, clients: usize) -> Self {
        // "SERV" — keeps serving schedules decorrelated from training
        // schedules generated from the same user-facing seed.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5345_5256);
        let clients = clients.max(1);
        let mut events: BTreeMap<u64, Vec<FaultEvent>> = BTreeMap::new();
        for step in 0..steps {
            let mut at_step = Vec::new();
            if rng.gen::<f64>() < 0.25 {
                at_step.push(FaultEvent::RequestBurst {
                    client: rng.gen_range(0..clients),
                    requests: rng.gen_range(2u64..9),
                });
            }
            if rng.gen::<f64>() < 0.15 {
                at_step.push(FaultEvent::SlowClient {
                    client: rng.gen_range(0..clients),
                    delay_ns: rng.gen_range(500_000u64..10_000_000),
                });
            }
            if rng.gen::<f64>() < 0.08 {
                at_step.push(FaultEvent::ClientDisconnect {
                    client: rng.gen_range(0..clients),
                });
            }
            if !at_step.is_empty() {
                events.insert(step, at_step);
            }
        }
        FaultPlan { seed, events }
    }

    /// Like [`FaultPlan::generate`], but mixes the current virtual time
    /// of `clock` into the seed. Virtual time is itself deterministic,
    /// so two runs that reach the same virtual instant with the same
    /// seed still get identical plans — but plans generated at different
    /// points of a simulation differ.
    pub fn generate_at(clock: &SimClock, seed: u64, steps: u64, workers: usize) -> Self {
        let mixed = seed ^ clock.now_ns().rotate_left(32);
        let mut plan = Self::generate(mixed, steps, workers);
        plan.seed = seed;
        plan
    }

    /// Adds one event at `step` (builder-style, for hand-written plans).
    #[must_use]
    pub fn with_event(mut self, step: u64, event: FaultEvent) -> Self {
        self.events.entry(step).or_default().push(event);
        self
    }

    /// The seed this plan was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Events scheduled for `step` (empty for fault-free steps).
    pub fn events_at(&self, step: u64) -> &[FaultEvent] {
        self.events.get(&step).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.values().map(Vec::len).sum()
    }

    /// Whether the plan schedules no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// An FNV-1a digest of the full schedule, for asserting bit-for-bit
    /// reproducibility across runs.
    pub fn schedule_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for (step, events) in &self.events {
            mix(&step.to_le_bytes());
            for event in events {
                match *event {
                    FaultEvent::WorkerCrash { worker } => {
                        mix(&[1]);
                        mix(&(worker as u64).to_le_bytes());
                    }
                    FaultEvent::PsStall { delay_ns } => {
                        mix(&[2]);
                        mix(&delay_ns.to_le_bytes());
                    }
                    FaultEvent::NetDrop { worker, records } => {
                        mix(&[3]);
                        mix(&(worker as u64).to_le_bytes());
                        mix(&records.to_le_bytes());
                    }
                    FaultEvent::NetTamper { worker } => {
                        mix(&[4]);
                        mix(&(worker as u64).to_le_bytes());
                    }
                    FaultEvent::ChunkCorruption { offset } => {
                        mix(&[5]);
                        mix(&(offset as u64).to_le_bytes());
                    }
                    FaultEvent::CasOutage { duration_ns } => {
                        mix(&[6]);
                        mix(&duration_ns.to_le_bytes());
                    }
                    FaultEvent::CrashDuringWrite { after_ops } => {
                        mix(&[7]);
                        mix(&after_ops.to_le_bytes());
                    }
                    FaultEvent::TornWrite {
                        after_ops,
                        torn_bytes,
                    } => {
                        mix(&[8]);
                        mix(&after_ops.to_le_bytes());
                        mix(&(torn_bytes as u64).to_le_bytes());
                    }
                    FaultEvent::StorageRollback => {
                        mix(&[9]);
                    }
                    FaultEvent::RequestBurst { client, requests } => {
                        mix(&[10]);
                        mix(&(client as u64).to_le_bytes());
                        mix(&requests.to_le_bytes());
                    }
                    FaultEvent::SlowClient { client, delay_ns } => {
                        mix(&[11]);
                        mix(&(client as u64).to_le_bytes());
                        mix(&delay_ns.to_le_bytes());
                    }
                    FaultEvent::ClientDisconnect { client } => {
                        mix(&[12]);
                        mix(&(client as u64).to_le_bytes());
                    }
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::generate(42, 50, 4);
        let b = FaultPlan::generate(42, 50, 4);
        assert_eq!(a.schedule_digest(), b.schedule_digest());
        assert_eq!(a.len(), b.len());
        for step in 0..50 {
            assert_eq!(a.events_at(step), b.events_at(step));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::generate(1, 100, 4);
        let b = FaultPlan::generate(2, 100, 4);
        assert_ne!(a.schedule_digest(), b.schedule_digest());
    }

    #[test]
    fn generation_covers_every_fault_kind() {
        // Over enough steps, every event kind must appear.
        let plan = FaultPlan::generate(7, 500, 3);
        let mut kinds = [false; 9];
        for step in 0..500 {
            for e in plan.events_at(step) {
                let k = match e {
                    FaultEvent::WorkerCrash { .. } => 0,
                    FaultEvent::PsStall { .. } => 1,
                    FaultEvent::NetDrop { .. } => 2,
                    FaultEvent::NetTamper { .. } => 3,
                    FaultEvent::ChunkCorruption { .. } => 4,
                    FaultEvent::CasOutage { .. } => 5,
                    FaultEvent::CrashDuringWrite { .. } => 6,
                    FaultEvent::TornWrite { .. } => 7,
                    FaultEvent::StorageRollback => 8,
                    FaultEvent::RequestBurst { .. }
                    | FaultEvent::SlowClient { .. }
                    | FaultEvent::ClientDisconnect { .. } => {
                        panic!("training plans must not schedule serving events: {e:?}")
                    }
                };
                kinds[k] = true;
            }
        }
        assert_eq!(kinds, [true; 9], "missing fault kinds: {kinds:?}");
    }

    #[test]
    fn serving_generation_covers_every_serving_kind() {
        let plan = FaultPlan::generate_serving(7, 300, 4);
        let mut kinds = [false; 3];
        for step in 0..300 {
            for e in plan.events_at(step) {
                let k = match e {
                    FaultEvent::RequestBurst { .. } => 0,
                    FaultEvent::SlowClient { .. } => 1,
                    FaultEvent::ClientDisconnect { .. } => 2,
                    other => panic!("serving plans must only schedule serving events: {other:?}"),
                };
                kinds[k] = true;
            }
        }
        assert_eq!(kinds, [true; 3], "missing serving fault kinds: {kinds:?}");
    }

    #[test]
    fn serving_plan_is_deterministic_and_decorrelated() {
        let a = FaultPlan::generate_serving(42, 80, 4);
        let b = FaultPlan::generate_serving(42, 80, 4);
        assert_eq!(a.schedule_digest(), b.schedule_digest());
        // Same user seed, but the serving stream must not mirror the
        // training stream.
        let training = FaultPlan::generate(42, 80, 4);
        assert_ne!(a.schedule_digest(), training.schedule_digest());
    }

    #[test]
    fn clock_mixing_is_deterministic_in_virtual_time() {
        let c1 = SimClock::new();
        let c2 = SimClock::new();
        c1.advance(12_345);
        c2.advance(12_345);
        let a = FaultPlan::generate_at(&c1, 9, 30, 2);
        let b = FaultPlan::generate_at(&c2, 9, 30, 2);
        assert_eq!(a.schedule_digest(), b.schedule_digest());
        c2.advance(1);
        let c = FaultPlan::generate_at(&c2, 9, 30, 2);
        assert_ne!(a.schedule_digest(), c.schedule_digest());
    }

    #[test]
    fn builder_plan_and_empty_plan() {
        assert!(FaultPlan::none().is_empty());
        let plan = FaultPlan::none()
            .with_event(3, FaultEvent::WorkerCrash { worker: 0 })
            .with_event(3, FaultEvent::CasOutage { duration_ns: 5 })
            .with_event(7, FaultEvent::PsStall { delay_ns: 100 });
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.events_at(3).len(), 2);
        assert!(plan.events_at(4).is_empty());
    }
}
