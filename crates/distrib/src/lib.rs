//! Distributed secure training (paper §3.3, Figure 2, and §5.4).
//!
//! secureTF preserves TensorFlow's distributed architecture — parameter
//! servers plus workers — but runs every process inside an enclave,
//! bootstraps trust through CAS, and wraps all links in the network
//! shield. This crate simulates that cluster:
//!
//! * [`wire`] — the byte format for weights and gradients on the wire:
//!   exact dense frames plus a deterministic int8-quantized codec.
//! * [`comm`] — the communication plane: PS shard ownership, the
//!   layer-wise overlapped chunk scheduler, and codec configuration.
//! * [`cluster`] — simulated nodes: a platform + enclave per machine,
//!   CAS attestation on join, per-node virtual clocks.
//! * [`trainer`] — synchronous data-parallel SGD over the cluster with a
//!   faithful latency model (parallel compute, per-shard NIC queues,
//!   shield costs, gradient pushes overlapped with backward compute),
//!   elastic worker addition (challenge ❹) and worker-failure handling.
//! * [`federated`] — federated averaging for the paper's medical use-case
//!   (§6.2).
//! * [`faults`] — deterministic, seed-derived fault-injection plans
//!   (crashes, stalls, network tampering, storage corruption, CAS
//!   outages).
//! * [`supervisor`] — a self-healing wrapper around the trainer:
//!   heartbeat-based failure detection, respawn through CAS
//!   re-attestation with bounded backoff, and rollback to the last
//!   authenticated checkpoint.
//!
//! # Examples
//!
//! ```
//! use securetf_distrib::cluster::{Cluster, ClusterConfig};
//! use securetf_distrib::trainer::DistributedTrainer;
//! use securetf_tee::ExecutionMode;
//! use securetf_tensor::layers;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), securetf_distrib::DistribError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let model = layers::mlp_classifier(784, &[64], 10, &mut rng)
//!     .expect("valid model");
//! let data = securetf_data::synthetic_mnist(200, 1);
//! let cluster = Cluster::new(ClusterConfig {
//!     workers: 2,
//!     mode: ExecutionMode::Simulation,
//!     network_shield: true,
//!     ..ClusterConfig::default()
//! })?;
//! let mut trainer = DistributedTrainer::new(cluster, model, data, 50, 0.1)?;
//! let report = trainer.train_steps(4)?;
//! assert!(report.final_loss.is_finite());
//! # Ok(())
//! # }
//! ```

pub mod cluster;
pub mod comm;
pub mod faults;
pub mod federated;
pub mod supervisor;
pub mod trainer;
pub mod wire;

use std::error::Error;
use std::fmt;

/// Errors produced by the distributed runtime.
#[derive(Debug)]
#[non_exhaustive]
pub enum DistribError {
    /// Joining node failed attestation.
    Attestation(securetf_cas::CasError),
    /// A TEE-level failure.
    Tee(securetf_tee::TeeError),
    /// A model-execution failure.
    Tensor(securetf_tensor::TensorError),
    /// Malformed wire message.
    BadMessage(&'static str),
    /// No live workers remain.
    NoWorkers,
    /// Referenced worker does not exist.
    UnknownWorker(usize),
}

impl DistribError {
    /// Whether the failure is transient — retrying may succeed — as
    /// opposed to an integrity, policy or programming error that must
    /// fail closed. Today only CAS unavailability qualifies.
    pub fn is_transient(&self) -> bool {
        matches!(self, DistribError::Attestation(e) if e.is_transient())
    }
}

impl fmt::Display for DistribError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistribError::Attestation(e) => write!(f, "attestation failed: {e}"),
            DistribError::Tee(e) => write!(f, "tee error: {e}"),
            DistribError::Tensor(e) => write!(f, "tensor error: {e}"),
            DistribError::BadMessage(why) => write!(f, "bad message: {why}"),
            DistribError::NoWorkers => write!(f, "no live workers"),
            DistribError::UnknownWorker(i) => write!(f, "unknown worker {i}"),
        }
    }
}

impl Error for DistribError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DistribError::Attestation(e) => Some(e),
            DistribError::Tee(e) => Some(e),
            DistribError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<securetf_cas::CasError> for DistribError {
    fn from(e: securetf_cas::CasError) -> Self {
        DistribError::Attestation(e)
    }
}

impl From<securetf_tee::TeeError> for DistribError {
    fn from(e: securetf_tee::TeeError) -> Self {
        DistribError::Tee(e)
    }
}

impl From<securetf_tensor::TensorError> for DistribError {
    fn from(e: securetf_tensor::TensorError) -> Self {
        DistribError::Tensor(e)
    }
}
