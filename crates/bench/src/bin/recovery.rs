//! Crash-recovery cost of the fs shield's journaled write path.
//!
//! For each checkpoint size the harness enumerates *every* host-op
//! crash point of one journaled overwrite, remounts the shield with
//! [`FsShield::recover`] at each point and validates the crash-
//! consistency invariant (the recovered file is exactly the pre- or the
//! post-write state, with the boundary at the commit record). Any
//! violation fails the run — CI uses this binary as a smoke gate. The
//! report records recovery virtual time per checkpoint size, split by
//! whether the crash point required a journal roll-forward.

use securetf_bench::report::{BenchReport, JsonValue};
use securetf_bench::{fmt_ns, header};
use securetf_shield::fs::{FsShield, PathPolicy, Policy, UntrustedStore, CHUNK_SIZE};
use securetf_shield::ShieldError;
use securetf_tee::{Enclave, EnclaveImage, ExecutionMode, Platform};
use std::sync::Arc;

const PATH: &str = "/ckpt/model";

fn enclave_on(platform: &Platform) -> Arc<Enclave> {
    platform
        .create_enclave(
            &EnclaveImage::builder().code(b"recovery bench").build(),
            ExecutionMode::Hardware,
        )
        .expect("enclave boots")
}

fn shield_on(platform: &Platform, store: &UntrustedStore) -> FsShield {
    let mut shield = FsShield::new(enclave_on(platform), store.clone());
    shield.add_policy(PathPolicy::new("/ckpt/", Policy::EncryptAuth));
    shield
}

fn payload(len: usize, salt: u8) -> Vec<u8> {
    (0..len).map(|i| (i as u8).wrapping_mul(31) ^ salt).collect()
}

struct SizeResult {
    crash_points: u64,
    rolled_forward: u64,
    total_recovery_ns: u64,
    max_recovery_ns: u64,
}

/// Enumerates every crash point of one `size`-byte overwrite, checking
/// the invariant at each and accumulating recovery cost. Exits non-zero
/// on any consistency violation.
fn sweep_size(size: usize) -> SizeResult {
    let pre = payload(size, 0x5a);
    let post = payload(size, 0xa5);
    let chunks = size.div_ceil(CHUNK_SIZE) as u64;
    // Journal shape: m staging puts, commit, blob, manifest, commit
    // delete, m staged deletes.
    let total_ops = 2 * chunks + 4;
    let mut result = SizeResult {
        crash_points: total_ops,
        rolled_forward: 0,
        total_recovery_ns: 0,
        max_recovery_ns: 0,
    };
    for k in 0..total_ops {
        let platform = Platform::builder().build();
        let store = UntrustedStore::new();
        let mut shield = shield_on(&platform, &store);
        shield.write(PATH, &pre).expect("pre write");
        store.fail_after_ops(k);
        match shield.write(PATH, &post) {
            Err(ShieldError::HostCrashed(_)) => {}
            other => {
                eprintln!("crash point {k}/{total_ops}: write did not crash ({other:?})");
                std::process::exit(1);
            }
        }
        store.host_restart();
        let (recovered, report) = match FsShield::recover(enclave_on(&platform), store) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("crash point {k}/{total_ops}: recovery failed: {e}");
                std::process::exit(1);
            }
        };
        let got = match recovered.read(PATH) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("crash point {k}/{total_ops}: file unreadable after recovery: {e}");
                std::process::exit(1);
            }
        };
        let expect_post = k > chunks;
        let expected: &[u8] = if expect_post { &post } else { &pre };
        if got != expected {
            eprintln!(
                "crash point {k}/{total_ops}: INVARIANT VIOLATION — recovered \
                 neither pre nor the expected {} state",
                if expect_post { "post" } else { "pre" }
            );
            std::process::exit(1);
        }
        result.rolled_forward += report.rolled_forward as u64;
        result.total_recovery_ns += report.recovery_ns;
        result.max_recovery_ns = result.max_recovery_ns.max(report.recovery_ns);
    }
    result
}

fn main() {
    header(
        "Recovery: crash-point sweep of journaled checkpoint writes",
        &["checkpoint", "crash pts", "rolled fwd", "mean recovery", "max recovery"],
    );
    let sizes: [(usize, &str); 3] = [
        (64 * 1024, "64 KiB"),
        (256 * 1024, "256 KiB"),
        (1024 * 1024, "1 MiB"),
    ];
    let mut report = BenchReport::new("recovery")
        .mode("hw")
        .paper_target("every crash point recovers to exactly pre or post state");
    for (size, name) in sizes {
        let r = sweep_size(size);
        let mean = r.total_recovery_ns / r.crash_points;
        println!(
            "{:>10} | {:>9} | {:>10} | {:>13} | {:>12}",
            name,
            r.crash_points,
            r.rolled_forward,
            fmt_ns(mean),
            fmt_ns(r.max_recovery_ns),
        );
        report = report.value(
            &format!("ckpt_{}kib", size / 1024),
            JsonValue::Object(vec![
                ("crash_points".to_string(), JsonValue::U64(r.crash_points)),
                ("rolled_forward".to_string(), JsonValue::U64(r.rolled_forward)),
                ("mean_recovery_ns".to_string(), JsonValue::U64(mean)),
                ("max_recovery_ns".to_string(), JsonValue::U64(r.max_recovery_ns)),
            ]),
        );
    }
    println!("\nall crash points consistent: recovery yields pre xor post, never a hybrid");
    report.emit();
}
