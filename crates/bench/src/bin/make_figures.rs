//! Runs every figure and ablation harness in sequence — the one-shot
//! "regenerate the paper's evaluation" entry point.
//!
//! ```console
//! cargo run --release -p securetf-bench --bin make_figures
//! ```
//!
//! Each harness is an independent binary too; this runner simply invokes
//! them in paper order via the already-built artifacts next to itself.

use std::path::PathBuf;
use std::process::{Command, ExitCode};

const HARNESSES: [&str; 10] = [
    "fig4_attestation",
    "fig5_model_sizes",
    "fig6_fs_shield",
    "fig7_scalability",
    "fig8_training",
    "tf_vs_lite",
    "ablation_epc_size",
    "ablation_threading",
    "ablation_optimize",
    "ablation_outsource",
];

fn main() -> ExitCode {
    let own = std::env::current_exe().expect("own path");
    let dir: PathBuf = own.parent().expect("target dir").to_path_buf();
    for harness in HARNESSES {
        let path = dir.join(harness);
        if !path.exists() {
            eprintln!(
                "{harness}: not built ({}) — run `cargo build --release -p securetf-bench --bins` first",
                path.display()
            );
            return ExitCode::FAILURE;
        }
        println!("\n################ {harness} ################");
        let status = Command::new(&path).status().expect("spawn harness");
        if !status.success() {
            eprintln!("{harness} failed with {status}");
            return ExitCode::FAILURE;
        }
    }
    println!("\nall figures regenerated — compare against EXPERIMENTS.md");
    ExitCode::SUCCESS
}
