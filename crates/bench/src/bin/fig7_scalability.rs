//! Figure 7: scalability — classifying 800 CIFAR-10 images.
//!
//! Scale-up: 1 → 8 CPU cores on one node. SIM mode scales through 8
//! cores; HW mode scales to 4 and then *degrades*, because eight
//! concurrent per-core working sets no longer fit the ~94 MiB EPC and
//! classification starts paging (paper §5.3 #3).
//!
//! Scale-out: 1 → 3 nodes at 4 cores each; both modes scale nearly
//! linearly (paper: 1180 s → 403 s in HW mode).

use securetf_bench::{fmt_ns, fmt_ratio, header};
use securetf_shield::sched::{Scheduler, Task, ThreadingModel};
use securetf_tee::{EnclaveImage, ExecutionMode, Platform};
use securetf_tflite::models::DENSENET;

const IMAGES: usize = 800;
/// Per-core interpreter workspace (activations, scratch): ~12.8 MB, so
/// 4 cores fit beside the 42 MiB model but 8 cores exceed the EPC (and
/// the cores' arenas then evict each other between images).
const PER_CORE_WS: u64 = 12_800_000;
/// Per-image FLOPs: the Densenet backbone on 32×32 CIFAR-10 inputs
/// (far fewer spatial positions than ImageNet-sized inputs).
const PER_IMAGE_FLOPS: f64 = 2.0e9;

fn run_node(mode: ExecutionMode, cores: usize, images: usize) -> u64 {
    let platform = Platform::builder().build();
    let enclave = platform
        .create_enclave(
            &EnclaveImage::builder()
                .code(b"fig7 classifier")
                .runtime_bytes(securetf_tflite::LITE_RUNTIME_BYTES)
                .build(),
            mode,
        )
        .expect("enclave");
    let model_region = enclave.alloc("model", DENSENET.bytes);
    let ws: Vec<_> = (0..cores)
        .map(|_| enclave.alloc("workspace", PER_CORE_WS))
        .collect();
    let tasks: Vec<Task> = (0..images)
        .map(|i| {
            Task::compute(PER_IMAGE_FLOPS)
                .with_syscalls(40)
                .touching(model_region, DENSENET.bytes)
                .touching(ws[i % cores], PER_CORE_WS)
        })
        .collect();
    Scheduler::new(enclave, cores, ThreadingModel::UserLevel)
        .run_batch(&tasks)
        .expect("batch")
}

fn main() {
    header(
        "Figure 7a: scale-up (1 node, 800 CIFAR-10 images, Densenet)",
        &["cores", "securetf-sim", "securetf-hw"],
    );
    let mut hw_by_cores = Vec::new();
    for cores in [1usize, 2, 4, 8] {
        let sim = run_node(ExecutionMode::Simulation, cores, IMAGES);
        let hw = run_node(ExecutionMode::Hardware, cores, IMAGES);
        hw_by_cores.push((cores, hw));
        println!("{cores:>5} | {:>12} | {:>12}", fmt_ns(sim), fmt_ns(hw));
    }
    let hw4 = hw_by_cores.iter().find(|(c, _)| *c == 4).expect("ran 4").1;
    let hw8 = hw_by_cores.iter().find(|(c, _)| *c == 8).expect("ran 8").1;
    println!(
        "\nHW 8-core vs 4-core: {} (paper: HW does NOT scale from 4 to 8 cores — EPC paging)",
        fmt_ratio(hw8, hw4)
    );

    header(
        "Figure 7b: scale-out (4 cores per node)",
        &["nodes", "securetf-sim", "securetf-hw"],
    );
    let mut hw1 = 0;
    let mut hw3 = 0;
    for nodes in [1usize, 2, 3] {
        let per_node = IMAGES / nodes;
        // Nodes run in parallel; total time = slowest node.
        let sim = run_node(ExecutionMode::Simulation, 4, per_node);
        let hw = run_node(ExecutionMode::Hardware, 4, per_node);
        if nodes == 1 {
            hw1 = hw;
        }
        if nodes == 3 {
            hw3 = hw;
        }
        println!("{nodes:>5} | {:>12} | {:>12}", fmt_ns(sim), fmt_ns(hw));
    }
    println!(
        "\nHW 1-node/3-node speedup: {} (paper: 1180 s / 403 s = 2.93x)",
        fmt_ratio(hw1, hw3)
    );
}
