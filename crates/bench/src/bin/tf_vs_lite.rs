//! §5.3 #4: full TensorFlow vs TensorFlow Lite for inference in HW mode.
//!
//! Same model (Inception-v3, 91 MB), same input image, both inside SGX
//! hardware enclaves. The full framework's 87.4 MB binary plus the model
//! far exceed the EPC, so every inference thrashes; the Lite runtime's
//! 1.9 MB leaves room for the whole model. The paper measures 49.782 s
//! vs 0.697 s — a ~71× gap.

use securetf::deployment::Deployment;
use securetf::profile::RuntimeProfile;
use securetf_bench::report::BenchReport;
use securetf_bench::{fmt_ns, fmt_ratio, header};
use securetf_tee::ExecutionMode;
use securetf_tflite::models::{self, INCEPTION_V3};

fn measure(profile: RuntimeProfile) -> u64 {
    let model = models::build(INCEPTION_V3);
    let mut deployment = Deployment::new(ExecutionMode::Hardware);
    deployment
        .publish_model("classify", "/models/m", &model)
        .expect("publish");
    drop(model);
    let mut classifier = deployment
        .deploy_classifier("classify", "/models/m", profile)
        .expect("deploy");
    let input = models::input_for(4);
    classifier.classify(&input).expect("warmup");
    classifier.mean_latency_ns(&input, 2).expect("runs")
}

fn main() {
    header(
        "§5.3 #4: TensorFlow vs TensorFlow Lite (Inception-v3, HW mode)",
        &["runtime         ", "binary size", "latency    "],
    );
    let lite = measure(RuntimeProfile::scone_lite());
    let full = measure(RuntimeProfile::scone_full_tf());
    println!(
        "securetf-lite    | {:>9.1} MB | {:>10}",
        securetf_tflite::LITE_RUNTIME_BYTES as f64 / 1e6,
        fmt_ns(lite)
    );
    println!(
        "securetf-full-tf | {:>9.1} MB | {:>10}",
        securetf_tflite::FULL_TF_RUNTIME_BYTES as f64 / 1e6,
        fmt_ns(full)
    );
    println!(
        "\nfull-TF / lite: {} (paper: 49.782 s / 0.697 s = ~71x)",
        fmt_ratio(full, lite)
    );

    BenchReport::new("tf_vs_lite")
        .mode("hw")
        .paper_target("49.782 s full-TF vs 0.697 s lite (~71x)")
        .latency_ns("lite_ns", lite)
        .latency_ns("full_tf_ns", full)
        .ratio("full_over_lite", full as f64 / lite.max(1) as f64)
        .emit();
}
