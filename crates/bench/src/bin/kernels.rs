//! Kernel-layer microbenchmark: naive vs blocked vs pooled (DESIGN.md §11).
//!
//! Unlike the `fig*` binaries this one measures **wall-clock** time — the
//! kernels are real compute, not cost-model charges — so the numbers vary
//! run to run. The *relationships* are the deliverable, and two of them
//! are asserted hard (the process exits non-zero on violation, making CI
//! the regression gate):
//!
//! 1. blocked matmul beats the naive triple loop on 256×256×256 (release
//!    builds only; debug builds skip the speed assertions), and
//! 2. pooled outputs are bit-identical to serial ones.

use securetf_bench::report::{BenchReport, JsonValue};
use securetf_bench::{fmt_ns, fmt_ratio, header};
use securetf_tensor::graph::Padding;
use securetf_tensor::kernels::{self, reference, WorkerPool};
use securetf_tensor::tensor::Tensor;
use std::time::Instant;

/// Deterministic pseudo-random fill in roughly [-1, 1].
fn fill(seed: u64, len: usize) -> Vec<f32> {
    let mut s = seed | 1;
    (0..len)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as i32 % 2000) as f32 * 1e-3 - 1.0
        })
        .collect()
}

/// Best-of-`reps` wall-clock nanoseconds of `f`.
fn time_ns<R>(reps: usize, mut f: impl FnMut() -> R) -> (u64, R) {
    let t0 = Instant::now();
    let mut last = f();
    let mut best = t0.elapsed().as_nanos() as u64;
    for _ in 1..reps.max(1) {
        let t0 = Instant::now();
        last = f();
        best = best.min(t0.elapsed().as_nanos() as u64);
    }
    (best, last)
}

fn bits(data: &[f32]) -> Vec<u32> {
    data.iter().map(|v| v.to_bits()).collect()
}

struct MatmulRow {
    label: String,
    naive_ns: u64,
    blocked_ns: u64,
    pooled_ns: u64,
    identical: bool,
}

fn bench_matmul(m: usize, k: usize, n: usize, workers: usize, reps: usize) -> MatmulRow {
    let a = fill(m as u64 * 7 + 1, m * k);
    let b = fill(n as u64 * 11 + 3, k * n);
    let ta = Tensor::from_vec(&[m, k], a.clone()).expect("lhs");
    let tb = Tensor::from_vec(&[k, n], b.clone()).expect("rhs");
    let (naive_ns, naive) = time_ns(reps, || reference::naive_matmul(m, k, n, &a, &b));
    let serial = WorkerPool::serial();
    let (blocked_ns, blocked) = time_ns(reps, || kernels::matmul(&serial, &ta, &tb).expect("matmul"));
    let pool = WorkerPool::new(workers);
    let (pooled_ns, pooled) = time_ns(reps, || kernels::matmul(&pool, &ta, &tb).expect("matmul"));
    let identical = bits(&naive) == bits(blocked.0.data()) && bits(&naive) == bits(pooled.0.data());
    MatmulRow {
        label: format!("matmul {m}x{k}x{n}"),
        naive_ns,
        blocked_ns,
        pooled_ns,
        identical,
    }
}

fn bench_conv(
    shape: (usize, usize, usize, usize),
    filter_shape: (usize, usize, usize),
    workers: usize,
    reps: usize,
) -> MatmulRow {
    let (b, h, w, cin) = shape;
    let (kh, kw, cout) = filter_shape;
    let input = Tensor::from_vec(&[b, h, w, cin], fill(17, b * h * w * cin)).expect("input");
    let filter =
        Tensor::from_vec(&[kh, kw, cin, cout], fill(23, kh * kw * cin * cout)).expect("filter");
    let (naive_ns, naive) =
        time_ns(reps, || reference::naive_conv2d(&input, &filter, Padding::Same).expect("conv"));
    let serial = WorkerPool::serial();
    let (blocked_ns, blocked) = time_ns(reps, || {
        kernels::conv2d(&serial, &input, &filter, Padding::Same).expect("conv")
    });
    let pool = WorkerPool::new(workers);
    let (pooled_ns, pooled) = time_ns(reps, || {
        kernels::conv2d(&pool, &input, &filter, Padding::Same).expect("conv")
    });
    let identical =
        bits(naive.data()) == bits(blocked.0.data()) && bits(naive.data()) == bits(pooled.0.data());
    MatmulRow {
        label: format!("conv2d {b}x{h}x{w}x{cin} k{kh}x{kw}->{cout}"),
        naive_ns,
        blocked_ns,
        pooled_ns,
        identical,
    }
}

fn main() {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get().min(4))
        .unwrap_or(2);
    let reps = 3;

    header(
        "Kernel layer: naive vs blocked vs pooled (wall clock)",
        &["kernel                      ", "naive     ", "blocked   ", "pooled    ", "blk speedup", "bit-identical"],
    );

    let rows = vec![
        bench_matmul(256, 256, 256, workers, reps),
        bench_matmul(128, 512, 64, workers, reps),
        bench_conv((2, 64, 64, 8), (3, 3, 16), workers, reps),
    ];

    let mut report = BenchReport::new("kernels")
        .unit("wall_ns")
        .mode(&format!("wall_clock/{workers}w"))
        .paper_target("TensorSCONE/Privado: enclave DNN time dominated by these hot loops");
    let mut all_identical = true;
    for row in &rows {
        println!(
            "{:<28} | {:>10} | {:>10} | {:>10} | {:>11} | {}",
            row.label,
            fmt_ns(row.naive_ns),
            fmt_ns(row.blocked_ns),
            fmt_ns(row.pooled_ns),
            fmt_ratio(row.naive_ns, row.blocked_ns),
            row.identical
        );
        all_identical &= row.identical;
        let key = row.label.replace([' ', '-', '>'], "_");
        report = report
            .latency_ns(&format!("{key}.naive_ns"), row.naive_ns)
            .latency_ns(&format!("{key}.blocked_ns"), row.blocked_ns)
            .latency_ns(&format!("{key}.pooled_ns"), row.pooled_ns)
            .ratio(
                &format!("{key}.blocked_speedup"),
                row.naive_ns as f64 / row.blocked_ns.max(1) as f64,
            )
            .ratio(
                &format!("{key}.pooled_speedup"),
                row.naive_ns as f64 / row.pooled_ns.max(1) as f64,
            );
    }
    report = report.value("parallel_bit_identical", JsonValue::Bool(all_identical));

    assert!(
        all_identical,
        "pooled/blocked kernel output diverged bit-wise from the naive reference"
    );
    // Wall-clock smoke gate, meaningful only with optimizations on.
    if cfg!(debug_assertions) {
        println!("\n(debug build: skipping speed assertions)");
    } else {
        let m256 = &rows[0];
        assert!(
            m256.blocked_ns < m256.naive_ns,
            "blocked matmul ({}) is not faster than naive ({}) on 256x256x256",
            fmt_ns(m256.blocked_ns),
            fmt_ns(m256.naive_ns),
        );
    }
    report.emit();
}
