//! Ablation (§3.3.3): user-level threading vs conventional OS threads.
//!
//! SCONE's exit-less asynchronous syscalls are one of the design choices
//! DESIGN.md calls out: every syscall under conventional threading costs
//! a full enclave transition (~2 µs) versus an in-enclave queue operation
//! (~0.4 µs). This sweep runs a syscall-heavy classification service
//! (many small reads per request) under both models.

use securetf_bench::{fmt_ns, fmt_ratio, header};
use securetf_shield::sched::{Scheduler, Task, ThreadingModel};
use securetf_tee::{EnclaveImage, ExecutionMode, Platform};

fn run(model: ThreadingModel, syscalls_per_request: u64) -> u64 {
    let platform = Platform::builder().build();
    let enclave = platform
        .create_enclave(
            &EnclaveImage::builder().code(b"threading ablation").build(),
            ExecutionMode::Hardware,
        )
        .expect("enclave");
    let tasks: Vec<Task> = (0..200)
        .map(|_| Task::compute(5.0e6).with_syscalls(syscalls_per_request))
        .collect();
    Scheduler::new(enclave, 4, model)
        .run_batch(&tasks)
        .expect("batch")
}

fn main() {
    header(
        "Ablation: user-level threading vs OS threads (200 requests, 4 cores)",
        &["syscalls/req", "user-level ", "os-threads ", "overhead"],
    );
    for syscalls in [10u64, 100, 1000, 10_000] {
        let user = run(ThreadingModel::UserLevel, syscalls);
        let os = run(ThreadingModel::OsThreads, syscalls);
        println!(
            "{syscalls:>12} | {:>10} | {:>10} | {:>8}",
            fmt_ns(user),
            fmt_ns(os),
            fmt_ratio(os, user),
        );
    }
    println!(
        "\nexit-less asynchronous syscalls keep I/O-heavy workloads from being\n\
         dominated by enclave transitions (paper §3.3.3)."
    );
}
