//! Ablation (§7.4): outsourcing linear layers to an untrusted GPU.
//!
//! The paper discusses GPU support as an open problem; Slalom-style
//! blinding + Freivalds verification lets the enclave use an untrusted
//! accelerator for matrix products without extending trust to it. This
//! ablation sweeps layer widths and batch sizes: outsourcing wins when
//! O(m·k·n)/gpu_speed + O(k·n) verification beats in-enclave O(m·k·n).

use securetf::outsource::{OutsourcedMatMul, UntrustedGpu};
use securetf_bench::{fmt_ns, fmt_ratio, header};
use securetf_tee::{EnclaveImage, ExecutionMode, Platform};
use securetf_tensor::tensor::Tensor;
use std::sync::Arc;

fn enclave() -> Arc<securetf_tee::Enclave> {
    let platform = Platform::builder().build();
    platform
        .create_enclave(
            &EnclaveImage::builder().code(b"outsource ablation").build(),
            ExecutionMode::Hardware,
        )
        .expect("enclave")
}

fn weights(k: usize, n: usize) -> Tensor {
    Tensor::from_vec(
        &[k, n],
        (0..k * n).map(|i| ((i % 13) as f32 - 6.0) * 0.02).collect(),
    )
    .expect("sized")
}

fn main() {
    header(
        "Ablation: GPU outsourcing of x·W (10x GPU, 2 Freivalds rounds)",
        &["batch m", "width k=n", "in-enclave ", "outsourced ", "speedup"],
    );
    for &(m, k) in &[(1usize, 256usize), (8, 256), (64, 256), (64, 1024), (256, 1024)] {
        let e = enclave();
        let clock = e.clock().clone();
        let x = Tensor::full(&[m, k], 0.5);
        let mut layer = OutsourcedMatMul::new(e, weights(k, k), UntrustedGpu::honest(10.0), 2);

        let t0 = clock.now_ns();
        layer.forward_local(&x).expect("local");
        let local = clock.now_ns() - t0;

        let t0 = clock.now_ns();
        layer.forward(&x).expect("outsourced");
        let outsourced = clock.now_ns() - t0;

        println!(
            "{m:>7} | {k:>9} | {:>11} | {:>11} | {:>7}",
            fmt_ns(local),
            fmt_ns(outsourced),
            fmt_ratio(local, outsourced),
        );
    }

    // Security half: a cheating GPU is caught.
    let e = enclave();
    let mut layer = OutsourcedMatMul::new(
        e,
        weights(256, 256),
        UntrustedGpu::cheating(10.0, 1, 0.5),
        2,
    );
    let caught = layer.forward(&Tensor::full(&[8, 256], 0.5)).is_err();
    println!(
        "\ncheating accelerator (corrupts one element per call): {}",
        if caught { "detected ✓" } else { "MISSED ✗" }
    );
    println!(
        "verified {} / rejected {} forward passes",
        layer.verified(),
        layer.rejected()
    );
}
