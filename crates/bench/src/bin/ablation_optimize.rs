//! Ablation (§7.2): model optimization — pruning and 8-bit quantization.
//!
//! The paper's planned extension shrinks models before deploying them to
//! enclaves (and edge devices). This ablation measures what the passes
//! buy on an Inception-v3-scale model: artifact size, encrypted
//! provisioning time (crypto + transfer are linear in bytes) and output
//! drift.

use securetf_bench::{fmt_ns, header};
use securetf_tee::CostModel;
use securetf_tflite::interpreter::Interpreter;
use securetf_tflite::models::{self, ModelSpec};
use securetf_tflite::optimize;

// A scaled-down Inception-v3 stand-in keeps the ablation quick while
// preserving the ratios (they are size-linear).
const MODEL: ModelSpec = ModelSpec {
    name: "inception_v3_scaled",
    bytes: 16 * 1024 * 1024,
    flops: 11.5e9,
};

fn provisioning_ns(bytes: u64) -> u64 {
    let m = CostModel::default();
    // Encrypt at the owner, transfer over the LAN, decrypt in the enclave.
    2 * m.shield_crypto_ns(bytes) + m.lan_transfer_ns(bytes)
}

fn max_drift(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

fn main() {
    let base = models::build(MODEL);
    let input = models::input_for(2);
    let reference = Interpreter::new(base.clone()).run(&input).expect("run");

    header(
        "Ablation: model optimization (Inception-v3-scaled, 16 MB)",
        &["variant        ", "artifact bytes", "provisioning", "max output drift"],
    );

    let base_bytes = base.to_bytes().len() as u64;
    println!(
        "{:<15} | {:>14} | {:>12} | {:>16}",
        "baseline f32",
        base_bytes,
        fmt_ns(provisioning_ns(base_bytes)),
        "0",
    );

    for fraction in [0.5f32, 0.8] {
        let (pruned, report) = optimize::prune_magnitude(&base, fraction);
        let out = Interpreter::new(pruned.clone()).run(&input).expect("run");
        let bytes = pruned.to_bytes().len() as u64;
        println!(
            "{:<15} | {:>14} | {:>12} | {:>16.4}   (sparsity {:.0}%)",
            format!("pruned {:.0}%", fraction * 100.0),
            bytes,
            fmt_ns(provisioning_ns(bytes)),
            max_drift(reference.data(), out.data()),
            report.sparsity() * 100.0,
        );
    }

    let quantized = optimize::quantize(&base);
    let q_bytes = quantized.byte_len() as u64;
    let restored = quantized.dequantize().expect("dequantize");
    let out = Interpreter::new(restored).run(&input).expect("run");
    println!(
        "{:<15} | {:>14} | {:>12} | {:>16.4}",
        "quantized int8",
        q_bytes,
        fmt_ns(provisioning_ns(q_bytes)),
        max_drift(reference.data(), out.data()),
    );

    println!(
        "\nquantization shrinks the artifact ~{:.1}x; inside an enclave that is\n\
         less EPC pressure and {} less provisioning time per deploy.",
        base_bytes as f64 / q_bytes as f64,
        fmt_ns(provisioning_ns(base_bytes) - provisioning_ns(q_bytes)),
    );
}
