//! Figure 4: attestation + key-transfer latency, CAS vs IAS.
//!
//! The paper reports the per-phase breakdown of one attestation: quote
//! generation, quote transfer, quote verification and key transfer.
//! CAS totals ~17 ms with sub-millisecond verification; the traditional
//! IAS flow totals ~325 ms with ~280 ms verification (a ~19× gap).

use securetf_bench::report::BenchReport;
use securetf_bench::{fmt_ns, fmt_ratio, header};
use securetf_cas::ias::IasAttestor;
use securetf_cas::policy::ServicePolicy;
use securetf_cas::service::{AttestationBreakdown, CasService};
use securetf_tee::{EnclaveImage, ExecutionMode, Platform};

fn print_breakdown(system: &str, b: AttestationBreakdown) {
    println!(
        "{system:<14} | {:>10} | {:>10} | {:>10} | {:>10} | {:>10}",
        fmt_ns(b.quote_generation_ns),
        fmt_ns(b.quote_transfer_ns),
        fmt_ns(b.verification_ns),
        fmt_ns(b.key_transfer_ns),
        fmt_ns(b.total_ns()),
    );
}

fn main() {
    let platform = Platform::builder().build();
    let worker_image = EnclaveImage::builder().code(b"fig4 worker").build();
    let policy = ServicePolicy::new("svc")
        .allow_measurement(worker_image.measurement())
        .with_secret("fs-key", &[7u8; 32])
        .with_secret("tls-cert", &[9u8; 512]);

    // CAS path.
    let cas_enclave = platform
        .create_enclave(
            &EnclaveImage::builder().code(b"cas").name("cas").build(),
            ExecutionMode::Hardware,
        )
        .expect("cas enclave");
    let mut cas = CasService::new(cas_enclave, platform.fleet_verifier());
    cas.register_policy(policy.clone()).expect("fresh policy");

    // IAS path.
    let mut ias = IasAttestor::new(
        platform.fleet_verifier(),
        platform.cost_model().clone(),
        platform.clock().clone(),
    );
    ias.register_policy(policy);

    let worker = platform
        .create_enclave(&worker_image, ExecutionMode::Hardware)
        .expect("worker enclave");

    const RUNS: u32 = 20;
    let mut cas_total = AttestationBreakdown::default();
    let mut ias_total = AttestationBreakdown::default();
    for i in 0..RUNS {
        let quote = worker.quote(&[i as u8]).expect("quote");
        let c = cas
            .attest_and_provision(&quote, "svc")
            .expect("cas attest")
            .breakdown();
        let quote = worker.quote(&[i as u8, 1]).expect("quote");
        let s = ias
            .attest_and_provision(&quote, "svc")
            .expect("ias attest")
            .breakdown();
        cas_total.quote_generation_ns += c.quote_generation_ns;
        cas_total.quote_transfer_ns += c.quote_transfer_ns;
        cas_total.verification_ns += c.verification_ns;
        cas_total.key_transfer_ns += c.key_transfer_ns;
        ias_total.quote_generation_ns += s.quote_generation_ns;
        ias_total.quote_transfer_ns += s.quote_transfer_ns;
        ias_total.verification_ns += s.verification_ns;
        ias_total.key_transfer_ns += s.key_transfer_ns;
    }
    let avg = |b: AttestationBreakdown| AttestationBreakdown {
        quote_generation_ns: b.quote_generation_ns / RUNS as u64,
        quote_transfer_ns: b.quote_transfer_ns / RUNS as u64,
        verification_ns: b.verification_ns / RUNS as u64,
        key_transfer_ns: b.key_transfer_ns / RUNS as u64,
    };
    let cas_avg = avg(cas_total);
    let ias_avg = avg(ias_total);

    header(
        "Figure 4: attestation & key-transfer latency (mean of 20 runs)",
        &[
            "system        ",
            " quote gen ",
            " transfer  ",
            "  verify   ",
            " key xfer  ",
            "  total    ",
        ],
    );
    print_breakdown("CAS (secureTF)", cas_avg);
    print_breakdown("IAS (trad.)", ias_avg);
    println!(
        "\nspeedup CAS over IAS: {}   (paper: ~19x; CAS ~17 ms vs IAS ~325 ms)",
        fmt_ratio(ias_avg.total_ns(), cas_avg.total_ns())
    );
    println!(
        "verification: CAS {} (paper: <1 ms), IAS {} (paper: ~280 ms)",
        fmt_ns(cas_avg.verification_ns),
        fmt_ns(ias_avg.verification_ns)
    );

    BenchReport::new("fig4_attestation")
        .mode("hw")
        .paper_target("CAS ~17 ms vs IAS ~325 ms (~19x speedup)")
        .latency_ns("cas_quote_generation_ns", cas_avg.quote_generation_ns)
        .latency_ns("cas_quote_transfer_ns", cas_avg.quote_transfer_ns)
        .latency_ns("cas_verification_ns", cas_avg.verification_ns)
        .latency_ns("cas_key_transfer_ns", cas_avg.key_transfer_ns)
        .latency_ns("cas_total_ns", cas_avg.total_ns())
        .latency_ns("ias_quote_generation_ns", ias_avg.quote_generation_ns)
        .latency_ns("ias_quote_transfer_ns", ias_avg.quote_transfer_ns)
        .latency_ns("ias_verification_ns", ias_avg.verification_ns)
        .latency_ns("ias_key_transfer_ns", ias_avg.key_transfer_ns)
        .latency_ns("ias_total_ns", ias_avg.total_ns())
        .ratio(
            "ias_over_cas",
            ias_avg.total_ns() as f64 / cas_avg.total_ns().max(1) as f64,
        )
        .emit();
}
