//! Ablation (§7.1): how a larger EPC ("Ice Lake CPUs") closes the HW gap.
//!
//! The paper's discussion argues the EPC is the single bottleneck and
//! anticipates next-generation CPUs with much larger protected memory.
//! This sweep re-runs the Inception-v4 classification (the 163 MB model
//! that thrashes a 94 MiB EPC) with growing EPC sizes, comparing two
//! workspace regimes at each size:
//!
//! * **fixed** — the legacy 2 MiB scratch region, touched end to end on
//!   every inference;
//! * **planned** — a region sized to the Lite memory plan's arena peak
//!   for this model, the working set the unified planner actually needs.
//!
//! The planned arena is orders of magnitude smaller, so the workspace
//! contribution to paging vanishes even while the model itself still
//! thrashes.

use securetf_bench::{fmt_ns, fmt_ratio, header};
use securetf_tee::{CostModel, EnclaveImage, ExecutionMode, Platform};
use securetf_tflite::models::{self, INCEPTION_V4};

fn classify_latency(epc_mib: u64, workspace_bytes: u64) -> u64 {
    let model = CostModel {
        epc_bytes: epc_mib * 1024 * 1024,
        ..CostModel::default()
    };
    let platform = Platform::builder().cost_model(model).build();
    let enclave = platform
        .create_enclave(
            &EnclaveImage::builder()
                .code(b"epc sweep")
                .runtime_bytes(securetf_tflite::LITE_RUNTIME_BYTES)
                .build(),
            ExecutionMode::Hardware,
        )
        .expect("enclave");
    let region = enclave.alloc("model", INCEPTION_V4.bytes);
    let ws = enclave.alloc("workspace", workspace_bytes);
    // Warm load.
    enclave.touch_all(region).expect("load");
    let clock = enclave.clock().clone();
    let t0 = clock.now_ns();
    const RUNS: u64 = 3;
    for _ in 0..RUNS {
        enclave.touch_all(region).expect("model pass");
        enclave.touch_all(ws).expect("workspace");
        enclave.charge_compute(INCEPTION_V4.flops);
        for _ in 0..40 {
            enclave.charge_syscall();
        }
    }
    (clock.now_ns() - t0) / RUNS
}

fn main() {
    // The arena peak the unified planner computes for the synthetic
    // Inception-v4 stand-in at batch 1.
    let planned_ws = securetf_tflite::arena::plan_memory(&models::build(INCEPTION_V4), 1)
        .expect("planable by construction")
        .peak_bytes;
    header(
        "Ablation: EPC size vs Inception-v4 (163 MB) HW classification",
        &[
            "EPC (MiB)",
            "fixed ws   ",
            "planned ws ",
            "vs 94 MiB",
            "paging?",
        ],
    );
    let base = classify_latency(94, 2 * 1024 * 1024);
    for epc in [94u64, 128, 192, 256, 512] {
        let fixed_ns = classify_latency(epc, 2 * 1024 * 1024);
        let planned_ns = classify_latency(epc, planned_ws);
        let pages = epc * 1024 * 1024 / 4096;
        let model_pages = INCEPTION_V4.bytes / 4096;
        println!(
            "{epc:>9} | {:>10} | {:>10} | {:>8} | {}",
            fmt_ns(fixed_ns),
            fmt_ns(planned_ns),
            fmt_ratio(fixed_ns, base),
            if model_pages + 1000 > pages { "thrash" } else { "fits" },
        );
        assert!(
            planned_ns <= fixed_ns,
            "planned workspace must never page more than the fixed one"
        );
    }
    println!(
        "\nplanned arena for this model: {planned_ws} bytes (vs 2 MiB fixed)\n\
         \nthe paper (§7.1): inference is practical today, training waits for\n\
         larger-EPC CPUs — once the model fits, the HW penalty collapses to\n\
         the MEE compute overhead alone."
    );
}
