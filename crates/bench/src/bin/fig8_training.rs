//! Figure 8: distributed MNIST training latency.
//!
//! The paper trains on MNIST (batch 100, learning rate 5e-4) with 1–3
//! workers under: native TensorFlow, secureTF SIM without the network
//! shield, secureTF SIM with it, and secureTF HW with all features.
//! Headlines:
//!
//! * near-linear scaling: 1.96× / 2.57× speedup with 2 / 3 workers,
//! * HW-full ≈ 14× slower than native (EPC paging of the full-TF
//!   runtime + activations),
//! * SIM with / without the network shield ≈ 6× / 2.3× native — i.e.
//!   the network shield is the main non-EPC overhead.

use rand::SeedableRng;
use securetf_bench::report::{BenchReport, JsonValue};
use securetf_bench::{fmt_ns, fmt_ratio, header};
use securetf_distrib::cluster::{Cluster, ClusterConfig};
use securetf_distrib::trainer::DistributedTrainer;
use securetf_tee::{CostModel, ExecutionMode};
use securetf_tensor::layers;

const STEPS: u64 = 6;
const BATCH: usize = 100;

fn fig8_cost_model() -> CostModel {
    CostModel {
        // The paper's network shield (TLS-wrapping of gRPC inside the
        // enclave, §5.4) processes records at ~12 MB/s effective.
        shield_net_bytes_per_sec: 12.0e6,
        ..CostModel::default()
    }
}

fn run(workers: usize, mode: ExecutionMode, shield: bool) -> (u64, f64) {
    let cluster = Cluster::new(ClusterConfig {
        workers,
        mode,
        network_shield: shield,
        cost_model: Some(fig8_cost_model()),
        ..ClusterConfig::default()
    })
    .expect("cluster");
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let model = layers::conv_classifier(28, 28, 1, 16, 10, &mut rng).expect("model");
    let data = securetf_data::synthetic_mnist(600, 7);
    let mut trainer =
        DistributedTrainer::new(cluster, model, data, BATCH, 5e-4).expect("trainer");
    let report = trainer.train_steps(STEPS).expect("training");
    (report.elapsed_ns / STEPS, report.samples_per_sec())
}

fn main() {
    header(
        "Figure 8: distributed MNIST training (batch 100, lr 5e-4, CNN)",
        &[
            "workers",
            "native       ",
            "sim -netshld ",
            "sim +netshld ",
            "hw full      ",
        ],
    );
    let mut native1 = 0u64;
    let mut rows = Vec::new();
    for workers in [1usize, 2, 3] {
        let native = run(workers, ExecutionMode::Native, false);
        let sim_off = run(workers, ExecutionMode::Simulation, false);
        let sim_on = run(workers, ExecutionMode::Simulation, true);
        let hw = run(workers, ExecutionMode::Hardware, true);
        if workers == 1 {
            native1 = native.0;
        }
        println!(
            "{workers:>7} | {:>12} | {:>12} | {:>12} | {:>12}   (per step)",
            fmt_ns(native.0),
            fmt_ns(sim_off.0),
            fmt_ns(sim_on.0),
            fmt_ns(hw.0),
        );
        rows.push((workers, native, sim_off, sim_on, hw));
    }

    println!("\nslowdowns vs native (1 worker, paper values in parentheses):");
    let (_, native, sim_off, sim_on, hw) = &rows[0];
    println!(
        "  sim without network shield: {} (2.3x)",
        fmt_ratio(sim_off.0, native.0)
    );
    println!(
        "  sim with network shield:    {} (6x)",
        fmt_ratio(sim_on.0, native.0)
    );
    println!("  hw full:                    {} (14x)", fmt_ratio(hw.0, native.0));
    let _ = native1;

    println!("\nhw-full scaling (throughput speedup vs 1 worker, paper: 1.96x / 2.57x):");
    let base = rows[0].4 .1;
    for (workers, _, _, _, hw) in &rows {
        println!("  {workers} workers: {:.2}x", hw.1 / base);
    }

    let mut report = BenchReport::new("fig8_training")
        .mode("native/sim/hw")
        .paper_target("hw-full ~14x native; scaling 1.96x / 2.57x with 2 / 3 workers");
    for (workers, native, sim_off, sim_on, hw) in &rows {
        report = report.value(
            &format!("workers_{workers}"),
            JsonValue::Object(vec![
                ("native_step_ns".to_string(), JsonValue::U64(native.0)),
                ("sim_no_shield_step_ns".to_string(), JsonValue::U64(sim_off.0)),
                ("sim_shield_step_ns".to_string(), JsonValue::U64(sim_on.0)),
                ("hw_full_step_ns".to_string(), JsonValue::U64(hw.0)),
                ("hw_scaling_vs_1_worker".to_string(), JsonValue::F64(hw.1 / base)),
            ]),
        );
    }
    report.emit();
}
