//! Crypto data-plane microbenchmark (DESIGN.md §17).
//!
//! Like `kernels`, this binary measures **wall-clock** time — the AEAD
//! kernels are real compute, not cost-model charges. Three relationships
//! are the deliverable, two asserted hard (non-zero exit on violation):
//!
//! 1. every fast path (multi-block ChaCha20, in-place detached AEAD,
//!    parallel chunked sealing) is byte-identical to the retained
//!    reference implementation (asserted in every build), and
//! 2. the single-thread fast seal is at least 2x the reference at the
//!    shield's 64 KiB chunk size (release builds only), plus
//! 3. a fig6-style fs-shield write/read comparison showing what parallel
//!    chunk sealing buys end to end.

use securetf_bench::report::{BenchReport, JsonValue};
use securetf_bench::{fmt_ns, fmt_ratio, header};
use securetf_crypto::aead::{self, AeadCtx, Key, Nonce};
use securetf_shield::fs::{FsShield, UntrustedStore};
use securetf_tee::{EnclaveImage, ExecutionMode, Platform};
use securetf_tensor::kernels::WorkerPool;
use std::sync::Arc;
use std::time::Instant;

/// Deterministic pseudo-random payload bytes.
fn fill(seed: u64, len: usize) -> Vec<u8> {
    let mut s = seed | 1;
    (0..len)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as u8
        })
        .collect()
}

/// Best-of-`reps` wall-clock nanoseconds of `f`.
fn time_ns<R>(reps: usize, mut f: impl FnMut() -> R) -> (u64, R) {
    let t0 = Instant::now();
    let mut last = f();
    let mut best = t0.elapsed().as_nanos() as u64;
    for _ in 1..reps.max(1) {
        let t0 = Instant::now();
        last = f();
        best = best.min(t0.elapsed().as_nanos() as u64);
    }
    (best, last)
}

struct SealRow {
    label: String,
    len: usize,
    reference_ns: u64,
    fast_ns: u64,
    identical: bool,
}

/// Times one allocating reference seal against the zero-alloc in-place
/// fast path on a `len`-byte payload and checks byte identity.
fn bench_seal(len: usize, reps: usize) -> SealRow {
    let key = Key::from_bytes([0x42; 32]);
    let nonce = Nonce::from_counter(7, 1);
    let aad = [0x17u8; 13];
    let plaintext = fill(len as u64 + 3, len);

    let (reference_ns, reference) =
        time_ns(reps, || aead::seal_reference(&key, &nonce, &plaintext, &aad));

    let ctx = AeadCtx::new(key);
    let mut buf = plaintext.clone();
    let (fast_ns, tag) = time_ns(reps, || {
        buf.copy_from_slice(&plaintext);
        ctx.seal_in_place_detached(&nonce, &mut buf, &aad)
    });

    let identical = buf == reference[..len] && tag == reference[len..];
    SealRow {
        label: format!("seal {}", fmt_len(len)),
        len,
        reference_ns,
        fast_ns,
        identical,
    }
}

fn fmt_len(len: usize) -> String {
    if len >= 1024 * 1024 {
        format!("{} MiB", len / (1024 * 1024))
    } else if len >= 1024 {
        format!("{} KiB", len / 1024)
    } else {
        format!("{len} B")
    }
}

fn enclave(code: &[u8]) -> Arc<securetf_tee::Enclave> {
    Platform::builder()
        .id(0xbe9c)
        .build()
        .create_enclave(
            &EnclaveImage::builder().code(code).build(),
            ExecutionMode::Hardware,
        )
        .expect("enclave")
}

struct FsRow {
    write_ns: u64,
    read_ns: u64,
    image: Vec<(String, Vec<u8>)>,
}

/// Fig6-style fs-shield pass: writes and reads `data` through a shield
/// whose chunk sealing runs on `workers` threads, returning wall-clock
/// times and the full host disk image for bit-identity comparison.
fn bench_fs(workers: usize, data: &[u8], reps: usize) -> FsRow {
    let store = UntrustedStore::new();
    let mut shield = FsShield::with_key(
        enclave(b"crypto-bench-fs"),
        store.clone(),
        Key::from_bytes([0x33; 32]),
    );
    shield.set_worker_pool(WorkerPool::new(workers));
    let (write_ns, _) = time_ns(reps, || shield.write("/model/weights.bin", data).expect("write"));
    let (read_ns, back) = time_ns(reps, || shield.read("/model/weights.bin").expect("read"));
    assert_eq!(back, data, "fs shield read back diverged from payload");
    let image = store
        .paths()
        .into_iter()
        .map(|p| {
            let contents = store.raw_contents(&p).expect("listed path exists");
            (p, contents)
        })
        .collect();
    FsRow { write_ns, read_ns, image }
}

fn main() {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get().min(4))
        .unwrap_or(2);
    let reps = 5;

    header(
        "Crypto data plane: reference vs fast AEAD (wall clock)",
        &["payload        ", "reference ", "fast      ", "speedup", "bit-identical"],
    );

    let rows = vec![
        bench_seal(1024, reps),
        bench_seal(4 * 1024, reps),
        bench_seal(64 * 1024, reps),
        bench_seal(1024 * 1024, reps),
    ];

    let mut report = BenchReport::new("crypto")
        .unit("wall_ns")
        .mode(&format!("wall_clock/{workers}w"))
        .paper_target("secureTF: shield crypto off the critical path of file and network I/O");
    let mut all_identical = true;
    for row in &rows {
        println!(
            "{:<16} | {:>10} | {:>10} | {:>7} | {}",
            row.label,
            fmt_ns(row.reference_ns),
            fmt_ns(row.fast_ns),
            fmt_ratio(row.reference_ns, row.fast_ns),
            row.identical
        );
        all_identical &= row.identical;
        let key = format!("seal_{}", row.len);
        report = report
            .latency_ns(&format!("{key}.reference_ns"), row.reference_ns)
            .latency_ns(&format!("{key}.fast_ns"), row.fast_ns)
            .ratio(
                &format!("{key}.speedup"),
                row.reference_ns as f64 / row.fast_ns.max(1) as f64,
            );
    }

    // Fig6-style end-to-end: serial vs parallel chunk sealing in the fs
    // shield on a multi-chunk payload.
    let payload = fill(99, 4 * 1024 * 1024);
    let serial = bench_fs(1, &payload, reps.min(3));
    let parallel = bench_fs(workers, &payload, reps.min(3));
    let images_identical = serial.image == parallel.image;
    all_identical &= images_identical;

    println!();
    header(
        &format!("fs shield, 4 MiB payload: serial vs {workers}-worker sealing"),
        &["op     ", "serial    ", "parallel  ", "speedup"],
    );
    for (op, s, p) in [
        ("write", serial.write_ns, parallel.write_ns),
        ("read", serial.read_ns, parallel.read_ns),
    ] {
        println!(
            "{:<7} | {:>10} | {:>10} | {:>7}",
            op,
            fmt_ns(s),
            fmt_ns(p),
            fmt_ratio(s, p)
        );
    }
    report = report
        .latency_ns("fs_write.serial_ns", serial.write_ns)
        .latency_ns("fs_write.parallel_ns", parallel.write_ns)
        .ratio(
            "fs_write.parallel_speedup",
            serial.write_ns as f64 / parallel.write_ns.max(1) as f64,
        )
        .latency_ns("fs_read.serial_ns", serial.read_ns)
        .latency_ns("fs_read.parallel_ns", parallel.read_ns)
        .ratio(
            "fs_read.parallel_speedup",
            serial.read_ns as f64 / parallel.read_ns.max(1) as f64,
        )
        .value("parallel_bit_identical", JsonValue::Bool(all_identical));

    assert!(
        all_identical,
        "a fast or parallel crypto path diverged byte-wise from the reference"
    );
    // Wall-clock smoke gate, meaningful only with optimizations on.
    if cfg!(debug_assertions) {
        println!("\n(debug build: skipping speed assertions)");
    } else {
        let chunk = rows.iter().find(|r| r.len == 64 * 1024).expect("64 KiB row");
        let speedup = chunk.reference_ns as f64 / chunk.fast_ns.max(1) as f64;
        assert!(
            speedup >= 2.0,
            "single-thread fast seal at 64 KiB is only {speedup:.2}x the reference (need >= 2x)"
        );
    }
    report.emit();
}
