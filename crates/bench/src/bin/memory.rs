//! Memory-planner smoke gate: planned arenas vs per-tensor regions.
//!
//! Two experiments, both run planned and unplanned:
//!
//! * **training** at the Figure 8 size (CNN classifier, batch 100) in a
//!   hardware SecureSession — the planner keeps one persistent EPC
//!   region sized to the arena peak, so steady-state steps fault almost
//!   no pages, where the legacy path re-faults every activation page
//!   each step;
//! * **inference** on the Figure 5 largest model (Inception-v4, 163 MB)
//!   with the Lite interpreter, replaying the arena slot writes (or the
//!   legacy free/realloc/touch-all cycle) against a raw enclave.
//!
//! The bin exits non-zero (assert) unless planned execution is
//! bit-identical to unplanned AND strictly cheaper in EPC faults,
//! paging time, and peak resident pages. CI runs it as a smoke gate and
//! archives `BENCH_memory.json`.

use rand::SeedableRng;
use securetf::secure_session::SecureSession;
use securetf_bench::report::{BenchReport, JsonValue};
use securetf_bench::{fmt_ns, header};
use securetf_tee::{EnclaveImage, EpcStats, ExecutionMode, Platform};
use securetf_tensor::layers;
use securetf_tensor::memory::MemoryMode;
use securetf_tensor::optimizer::Sgd;
use securetf_tflite::interpreter::Interpreter;
use securetf_tflite::models::{self, INCEPTION_V4};

const TRAIN_STEPS: usize = 6;
const TRAIN_BATCH: usize = 100;
const INFER_RUNS: usize = 3;

struct ArmResult {
    /// Bit patterns of the outputs (losses or logits), for exact
    /// cross-arm comparison.
    bits: Vec<u32>,
    epc: EpcStats,
    paging_ns: u64,
    /// Peak activation residency: the EPC peak for training, and the
    /// activation-region size for inference (under Inception-v4 both
    /// arms thrash to the same 94 MiB EPC ceiling, so the region size is
    /// the discriminating number there).
    peak_bytes: u64,
}

fn train_arm(mode: MemoryMode) -> ArmResult {
    let platform = Platform::builder().build();
    let enclave = platform
        .create_enclave(
            &EnclaveImage::builder().code(b"memory bench").build(),
            ExecutionMode::Hardware,
        )
        .expect("enclave");
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let model = layers::conv_classifier(28, 28, 1, 16, 10, &mut rng).expect("model");
    let data = securetf_data::synthetic_mnist(600, 7);
    let mut session = SecureSession::new(enclave, model);
    session.set_memory_mode(mode);
    let mut sgd = Sgd::new(5e-4);
    let mut bits = Vec::with_capacity(TRAIN_STEPS);
    for step in 0..TRAIN_STEPS {
        let start = (step * TRAIN_BATCH) % (600 - TRAIN_BATCH);
        let (x, y) = data.batch(start, TRAIN_BATCH).expect("batch");
        let x = securetf_tensor::tensor::Tensor::from_vec(
            &[TRAIN_BATCH, 28, 28, 1],
            x.into_data(),
        )
        .expect("NHWC reshape");
        let loss = session.train_step(x, y, &mut sgd).expect("train step");
        bits.push(loss.to_bits());
    }
    let epc = session.enclave().epc_stats();
    ArmResult {
        bits,
        paging_ns: epc.faults * session.enclave().cost_model().page_swap_ns(),
        peak_bytes: epc.peak_resident_pages * 4096,
        epc,
    }
}

fn infer_arm(mode: MemoryMode) -> ArmResult {
    let platform = Platform::builder().build();
    let enclave = platform
        .create_enclave(
            &EnclaveImage::builder()
                .code(b"memory bench")
                .runtime_bytes(securetf_tflite::LITE_RUNTIME_BYTES)
                .build(),
            ExecutionMode::Hardware,
        )
        .expect("enclave");
    let model = models::build(INCEPTION_V4);
    let params_region = enclave.alloc("model", model.param_bytes());
    enclave.touch_all(params_region).expect("model load");
    let mut interp = Interpreter::new(model);
    interp.set_memory_mode(mode);
    let input = models::input_for(1);

    let mut bits = Vec::new();
    let mut activations = None;
    let mut region_bytes = 0u64;
    let mut last_stats = interp.stats();
    for _ in 0..INFER_RUNS {
        let out = interp.run(&input).expect("inference");
        bits.extend(out.data().iter().map(|v| v.to_bits()));
        let delta = interp.stats().since(&last_stats);
        last_stats = interp.stats();
        // Mirror SecureSession::charge: planned keeps one persistent
        // region sized to the plan peak and touches only the slots the
        // run wrote; unplanned re-allocates a region for everything the
        // run produced and touches it end to end.
        let planned_peak = interp.planned_peak_bytes().unwrap_or(0);
        if mode == MemoryMode::Planned && planned_peak > 0 {
            let region = *activations
                .get_or_insert_with(|| enclave.alloc("activations", planned_peak));
            region_bytes = planned_peak;
            for w in interp.take_slot_writes() {
                enclave.touch(region, w.offset, w.bytes).expect("touch slot");
            }
        } else {
            if let Some(region) = activations.take() {
                enclave.free(region).expect("free activations");
            }
            region_bytes = region_bytes.max(delta.activation_bytes.max(1));
            let region = enclave.alloc("activations", delta.activation_bytes.max(1));
            enclave.touch_all(region).expect("touch activations");
            activations = Some(region);
        }
    }
    let epc = enclave.epc_stats();
    ArmResult {
        bits,
        paging_ns: epc.faults * enclave.cost_model().page_swap_ns(),
        peak_bytes: region_bytes,
        epc,
    }
}

fn compare(name: &str, planned: &ArmResult, unplanned: &ArmResult) {
    assert_eq!(
        planned.bits, unplanned.bits,
        "{name}: planned output diverges from unplanned"
    );
    assert!(
        planned.epc.faults < unplanned.epc.faults,
        "{name}: planned faults {} not below unplanned {}",
        planned.epc.faults,
        unplanned.epc.faults
    );
    assert!(
        planned.paging_ns < unplanned.paging_ns,
        "{name}: planned paging {} ns not below unplanned {} ns",
        planned.paging_ns,
        unplanned.paging_ns
    );
    assert!(
        planned.peak_bytes < unplanned.peak_bytes,
        "{name}: planned peak resident {} not below unplanned {}",
        planned.peak_bytes,
        unplanned.peak_bytes
    );
}

fn row(name: &str, arm: &ArmResult) {
    println!(
        "{name:>22} | {:>8} | {:>10} | {:>12}",
        arm.epc.faults,
        fmt_ns(arm.paging_ns),
        arm.peak_bytes,
    );
}

fn report_arm(arm: &ArmResult) -> JsonValue {
    JsonValue::Object(vec![
        ("epc_faults".to_string(), JsonValue::U64(arm.epc.faults)),
        ("paging_ns".to_string(), JsonValue::U64(arm.paging_ns)),
        (
            "peak_activation_bytes".to_string(),
            JsonValue::U64(arm.peak_bytes),
        ),
    ])
}

fn main() {
    header(
        "Memory planner: planned arena vs per-tensor regions (hardware mode)",
        &["experiment", "faults", "paging    ", "peak resident"],
    );

    let train_planned = train_arm(MemoryMode::Planned);
    let train_unplanned = train_arm(MemoryMode::Unplanned);
    row("train planned", &train_planned);
    row("train unplanned", &train_unplanned);
    compare("training (fig8 CNN)", &train_planned, &train_unplanned);

    let infer_planned = infer_arm(MemoryMode::Planned);
    let infer_unplanned = infer_arm(MemoryMode::Unplanned);
    row("inception-v4 planned", &infer_planned);
    row("inception-v4 unplanned", &infer_unplanned);
    compare("inference (inception-v4)", &infer_planned, &infer_unplanned);

    println!(
        "\nplanned outputs are bit-identical to unplanned; faults, paging\n\
         time and peak residency are strictly lower in both experiments."
    );

    BenchReport::new("memory")
        .mode("hw")
        .paper_target("planned arena faults/paging strictly below per-tensor regions")
        .value("train_planned", report_arm(&train_planned))
        .value("train_unplanned", report_arm(&train_unplanned))
        .value("inception_v4_planned", report_arm(&infer_planned))
        .value("inception_v4_unplanned", report_arm(&infer_unplanned))
        .emit();
}
