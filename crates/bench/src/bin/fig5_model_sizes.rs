//! Figure 5: classification latency vs model size across systems.
//!
//! The paper classifies one image with Densenet (42 MB), Inception-v3
//! (91 MB) and Inception-v4 (163 MB) under: native TFLite with glibc,
//! native TFLite with musl, secureTF in SIM mode, secureTF in HW mode,
//! and the Graphene-SGX baseline. Headline shapes:
//!
//! * SIM ≈ native + ~5%;
//! * HW slower than SIM (paper: 1.39× / 1.14× / 1.12×);
//! * secureTF-HW vs Graphene: 1.03× at 42 MB growing to ~1.4× at 163 MB
//!   once the model exceeds the ~94 MiB EPC.

use securetf::deployment::Deployment;
use securetf::profile::RuntimeProfile;
use securetf_bench::report::{BenchReport, JsonValue};
use securetf_bench::{fmt_ns, fmt_ratio, header};
use securetf_tee::ExecutionMode;
use securetf_tflite::models::{self, ModelSpec, PAPER_MODELS};

const RUNS: u32 = 3;

fn measure(spec: ModelSpec, mode: ExecutionMode, profile: RuntimeProfile) -> u64 {
    let model = models::build(spec);
    let mut deployment = Deployment::new(mode);
    deployment
        .publish_model("classify", "/models/m", &model)
        .expect("publish");
    drop(model);
    let mut classifier = deployment
        .deploy_classifier("classify", "/models/m", profile)
        .expect("deploy");
    let input = models::input_for(4);
    // Warm-up run (the paper warms the machine before measuring).
    classifier.classify(&input).expect("warmup");
    classifier
        .mean_latency_ns(&input, RUNS)
        .expect("measurement runs")
}

fn main() {
    header(
        "Figure 5: classification latency vs model size",
        &[
            "model            ",
            "native-glibc",
            "native-musl ",
            "securetf-sim",
            "securetf-hw ",
            "graphene-hw ",
        ],
    );
    let mut rows = Vec::new();
    for spec in PAPER_MODELS {
        let native_glibc = measure(spec, ExecutionMode::Native, RuntimeProfile::native_glibc());
        let native_musl = measure(spec, ExecutionMode::Native, RuntimeProfile::native_musl());
        let sim = measure(spec, ExecutionMode::Simulation, RuntimeProfile::scone_lite());
        let hw = measure(spec, ExecutionMode::Hardware, RuntimeProfile::scone_lite());
        let graphene = measure(spec, ExecutionMode::Hardware, RuntimeProfile::graphene());
        println!(
            "{:<12} ({:>3} MB) | {:>10} | {:>10} | {:>10} | {:>10} | {:>10}",
            spec.name,
            spec.bytes / (1024 * 1024),
            fmt_ns(native_glibc),
            fmt_ns(native_musl),
            fmt_ns(sim),
            fmt_ns(hw),
            fmt_ns(graphene),
        );
        rows.push((spec, native_glibc, sim, hw, graphene));
    }

    println!("\nratios (paper values in parentheses):");
    let paper_hw_sim = ["1.39", "1.14", "1.12"];
    let paper_graphene = ["1.03", "-", "1.40"];
    for (i, (spec, native, sim, hw, graphene)) in rows.iter().enumerate() {
        println!(
            "  {:<12}  sim/native {} (~1.05)   hw/sim {} ({})   graphene/securetf-hw {} ({})",
            spec.name,
            fmt_ratio(*sim, *native),
            fmt_ratio(*hw, *sim),
            paper_hw_sim[i],
            fmt_ratio(*graphene, *hw),
            paper_graphene[i],
        );
    }

    let mut report = BenchReport::new("fig5_model_sizes")
        .mode("native/sim/hw")
        .paper_target("hw/sim 1.39x/1.14x/1.12x; graphene/hw 1.03x..~1.40x");
    for (spec, native, sim, hw, graphene) in &rows {
        report = report.value(
            spec.name,
            JsonValue::Object(vec![
                ("model_bytes".to_string(), JsonValue::U64(spec.bytes)),
                ("native_glibc_ns".to_string(), JsonValue::U64(*native)),
                ("sim_ns".to_string(), JsonValue::U64(*sim)),
                ("hw_ns".to_string(), JsonValue::U64(*hw)),
                ("graphene_hw_ns".to_string(), JsonValue::U64(*graphene)),
            ]),
        );
    }
    report.emit();
}
