//! Graph-compiler smoke gate: pass pipeline on vs off.
//!
//! Two experiments, each run optimized (the default) and baseline:
//!
//! * **training** one Figure 8 CNN epoch slice in a hardware
//!   SecureSession — the training pipeline (DCE → fold → fuse) rewrites
//!   every `matmul → bias` / `conv → bias → relu` chain into fused
//!   kernels; the loss trajectory must stay bit-identical;
//! * **inference** on the Figure 5 largest model (Inception-v4, 163 MB)
//!   with the Lite interpreter hosted on a raw enclave, replaying arena
//!   slot writes — fusion skips the per-layer bias/relu intermediates,
//!   so the optimized run writes fewer arena slots (fewer EPC faults)
//!   and moves the epilogue flops out of the element-wise kernel family.
//!
//! The bin exits non-zero (assert) unless both experiments are
//! bit-identical AND fused inference charges strictly fewer EPC faults
//! AND at least 15% less element-wise (`other`-family) kernel time AND
//! no more total kernel time. CI runs it as a smoke gate and archives
//! `BENCH_compiler.json`.

use rand::SeedableRng;
use securetf::secure_session::SecureSession;
use securetf_bench::report::{BenchReport, JsonValue};
use securetf_bench::{fmt_ns, header};
use securetf_tee::{EnclaveImage, ExecutionMode, Platform, SimClock, Telemetry};
use securetf_tensor::layers;
use securetf_tensor::optimizer::Sgd;
use securetf_tensor::passes::PipelineReport;
use securetf_tflite::interpreter::Interpreter;
use securetf_tflite::models::{self, INCEPTION_V4};

const TRAIN_STEPS: usize = 6;
const TRAIN_BATCH: usize = 100;
const INFER_RUNS: usize = 3;

#[derive(Default)]
struct ArmResult {
    /// Bit patterns of the outputs (losses or logits), for exact
    /// cross-arm comparison.
    bits: Vec<u32>,
    epc_faults: u64,
    /// Virtual time in the element-wise kernel family (biases, relus,
    /// pools, losses) — what fusion removes.
    other_ns: u64,
    /// Virtual time across all kernel families.
    total_ns: u64,
    /// Graph node count before/after compilation (equal when the
    /// pipeline is off).
    nodes_before: u64,
    nodes_after: u64,
    nodes_fused: u64,
    nodes_eliminated: u64,
}

fn record_report(arm: &mut ArmResult, report: Option<&PipelineReport>) {
    if let Some(report) = report {
        arm.nodes_before = report.nodes_before() as u64;
        arm.nodes_after = report.nodes_after() as u64;
        arm.nodes_fused = report.nodes_fused();
        arm.nodes_eliminated = report.nodes_eliminated();
    }
}

fn train_arm(optimize: bool) -> ArmResult {
    let telemetry = Telemetry::new(std::sync::Arc::new(SimClock::new()));
    let platform = Platform::builder().telemetry(telemetry.clone()).build();
    let enclave = platform
        .create_enclave(
            &EnclaveImage::builder().code(b"compiler bench").build(),
            ExecutionMode::Hardware,
        )
        .expect("enclave");
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let model = layers::conv_classifier(28, 28, 1, 16, 10, &mut rng).expect("model");
    let data = securetf_data::synthetic_mnist(600, 7);
    let mut session = SecureSession::new(enclave, model);
    session.set_graph_optimize(optimize);
    let mut sgd = Sgd::new(5e-4);
    let mut arm = ArmResult::default();
    for step in 0..TRAIN_STEPS {
        let start = (step * TRAIN_BATCH) % (600 - TRAIN_BATCH);
        let (x, y) = data.batch(start, TRAIN_BATCH).expect("batch");
        let x = securetf_tensor::tensor::Tensor::from_vec(
            &[TRAIN_BATCH, 28, 28, 1],
            x.into_data(),
        )
        .expect("NHWC reshape");
        let loss = session.train_step(x, y, &mut sgd).expect("train step");
        arm.bits.push(loss.to_bits());
    }
    // SecureSession::charge drains the session stats onto telemetry
    // after every step; read the accumulated per-family counters back.
    arm.other_ns = telemetry.counter("kernel.other.ns").get();
    arm.total_ns = arm.other_ns
        + telemetry.counter("kernel.matmul.ns").get()
        + telemetry.counter("kernel.conv2d.ns").get();
    arm.epc_faults = session.enclave().epc_stats().faults;
    let graph_len = session.model().graph.len() as u64;
    arm.nodes_before = graph_len;
    arm.nodes_after = graph_len;
    record_report(&mut arm, session.session().pipeline_report());
    arm
}

fn infer_arm(optimize: bool) -> ArmResult {
    let platform = Platform::builder().build();
    let enclave = platform
        .create_enclave(
            &EnclaveImage::builder()
                .code(b"compiler bench")
                .runtime_bytes(securetf_tflite::LITE_RUNTIME_BYTES)
                .build(),
            ExecutionMode::Hardware,
        )
        .expect("enclave");
    let model = models::build(INCEPTION_V4);
    let unoptimized_nodes = model.graph().len() as u64;
    let params_region = enclave.alloc("model", model.param_bytes());
    enclave.touch_all(params_region).expect("model load");
    let mut interp = if optimize {
        Interpreter::new(model)
    } else {
        Interpreter::unoptimized(model)
    };
    let input = models::input_for(1);

    let mut arm = ArmResult::default();
    let mut activations = None;
    for _ in 0..INFER_RUNS {
        let out = interp.run(&input).expect("inference");
        arm.bits.extend(out.data().iter().map(|v| v.to_bits()));
        // Mirror SecureClassifier: every inference streams the model
        // through the EPC once (evicting the small activation region),
        // then touches exactly the arena slots the run wrote — so each
        // run re-faults one page per written slot.
        enclave.touch_all(params_region).expect("model pass");
        let planned_peak = interp.planned_peak_bytes().unwrap_or(0).max(1);
        let region =
            *activations.get_or_insert_with(|| enclave.alloc("activations", planned_peak));
        for w in interp.take_slot_writes() {
            enclave.touch(region, w.offset, w.bytes).expect("touch slot");
        }
    }
    let kf = interp.stats().kernel_flops;
    let cost = enclave.cost_model();
    let mode = enclave.mode();
    arm.other_ns = cost.compute_ns(kf.other, mode);
    arm.total_ns = cost.compute_ns(kf.matmul + kf.conv2d + kf.other, mode);
    arm.epc_faults = enclave.epc_stats().faults;
    arm.nodes_before = unoptimized_nodes;
    arm.nodes_after = interp.model().graph().len() as u64;
    record_report(&mut arm, interp.pipeline_report());
    arm
}

fn compare(name: &str, optimized: &ArmResult, baseline: &ArmResult, gate_costs: bool) {
    assert_eq!(
        optimized.bits, baseline.bits,
        "{name}: optimized output diverges from baseline"
    );
    assert!(
        optimized.nodes_fused > 0 && optimized.nodes_after < optimized.nodes_before,
        "{name}: pipeline fused nothing ({} nodes before, {} after)",
        optimized.nodes_before,
        optimized.nodes_after
    );
    if !gate_costs {
        return;
    }
    assert!(
        optimized.epc_faults < baseline.epc_faults,
        "{name}: optimized EPC faults {} not strictly below baseline {}",
        optimized.epc_faults,
        baseline.epc_faults
    );
    assert!(
        (optimized.other_ns as f64) <= 0.85 * baseline.other_ns as f64,
        "{name}: element-wise kernel time {} ns not >=15% below baseline {} ns",
        optimized.other_ns,
        baseline.other_ns
    );
    assert!(
        optimized.total_ns <= baseline.total_ns,
        "{name}: total kernel time {} ns above baseline {} ns",
        optimized.total_ns,
        baseline.total_ns
    );
}

fn row(name: &str, arm: &ArmResult) {
    println!(
        "{name:>24} | {:>9} | {:>10} | {:>10} | {:>5} -> {:<5}",
        arm.epc_faults,
        fmt_ns(arm.other_ns),
        fmt_ns(arm.total_ns),
        arm.nodes_before,
        arm.nodes_after,
    );
}

fn report_arm(arm: &ArmResult) -> JsonValue {
    JsonValue::Object(vec![
        ("epc_faults".to_string(), JsonValue::U64(arm.epc_faults)),
        ("other_kernel_ns".to_string(), JsonValue::U64(arm.other_ns)),
        ("total_kernel_ns".to_string(), JsonValue::U64(arm.total_ns)),
        ("nodes_before".to_string(), JsonValue::U64(arm.nodes_before)),
        ("nodes_after".to_string(), JsonValue::U64(arm.nodes_after)),
        ("nodes_fused".to_string(), JsonValue::U64(arm.nodes_fused)),
        (
            "nodes_eliminated".to_string(),
            JsonValue::U64(arm.nodes_eliminated),
        ),
    ])
}

fn main() {
    header(
        "Graph compiler: pass pipeline on vs off (hardware mode)",
        &["experiment", "faults  ", "other ns ", "total ns ", "nodes"],
    );

    let train_optimized = train_arm(true);
    let train_baseline = train_arm(false);
    row("train optimized", &train_optimized);
    row("train baseline", &train_baseline);
    compare(
        "training (fig8 CNN)",
        &train_optimized,
        &train_baseline,
        false,
    );

    let infer_optimized = infer_arm(true);
    let infer_baseline = infer_arm(false);
    row("inception-v4 optimized", &infer_optimized);
    row("inception-v4 baseline", &infer_baseline);
    compare(
        "inference (inception-v4)",
        &infer_optimized,
        &infer_baseline,
        true,
    );

    println!(
        "\noptimized outputs are bit-identical to baseline in both\n\
         experiments; fused inference charges strictly fewer EPC faults\n\
         and >=15% less element-wise kernel time."
    );

    BenchReport::new("compiler")
        .mode("hw")
        .paper_target("fused inference: fewer EPC faults, >=15% less element-wise kernel time")
        .value("train_optimized", report_arm(&train_optimized))
        .value("train_baseline", report_arm(&train_baseline))
        .value("inception_v4_optimized", report_arm(&infer_optimized))
        .value("inception_v4_baseline", report_arm(&infer_baseline))
        .emit();
}
