//! Figure 6: effect of the file-system shield on classification latency.
//!
//! The paper classifies with the shield protecting the model and input
//! files (encrypt + authenticate on every read) versus reading them in
//! the clear. Overhead is tiny — 0.12% in SIM mode, 0.9% in HW mode —
//! because the shield's streaming crypto runs at AES-NI rates (~4 GB/s)
//! while classification is compute-bound.
//!
//! Workload: `label_image` runs as one process per classification, so
//! each run re-reads the model file (through the shield when enabled)
//! and the input image.

use securetf::deployment::Deployment;
use securetf::profile::RuntimeProfile;
use securetf_bench::report::{BenchReport, JsonValue};
use securetf_bench::{fmt_ns, header};
use securetf_tee::ExecutionMode;
use securetf_tflite::models::{self, ModelSpec, PAPER_MODELS};

const RUNS: u32 = 3;

fn measure(spec: ModelSpec, mode: ExecutionMode, fs_shield: bool) -> u64 {
    let model = models::build(spec);
    let model_file_bytes = model.param_bytes() + 64;
    let mut deployment = Deployment::new(mode);
    deployment
        .publish_model("classify", "/models/m", &model)
        .expect("publish");
    drop(model);
    let mut classifier = deployment
        .deploy_classifier("classify", "/models/m", RuntimeProfile::scone_lite())
        .expect("deploy");
    let input = models::input_for(4);
    classifier.classify(&input).expect("warmup");
    let clock = classifier.enclave().clock().clone();
    let t0 = clock.now_ns();
    for _ in 0..RUNS {
        // Per-run file reads: the model file and the input image.
        classifier.enclave().charge_syscall();
        if fs_shield {
            classifier
                .enclave()
                .charge_shield_crypto(model_file_bytes + input.byte_len());
        }
        classifier.classify(&input).expect("classify");
    }
    (clock.now_ns() - t0) / RUNS as u64
}

fn main() {
    header(
        "Figure 6: file-system shield effect on classification latency",
        &["model            ", "mode", "shield off ", "shield on  ", "overhead"],
    );
    let paper = [("sim", "0.12%"), ("hw", "0.9%")];
    let mut report = BenchReport::new("fig6_fs_shield")
        .mode("sim/hw")
        .paper_target("shield overhead 0.12% in SIM, 0.9% in HW");
    for spec in PAPER_MODELS {
        for (mode, mode_name) in [
            (ExecutionMode::Simulation, "sim"),
            (ExecutionMode::Hardware, "hw "),
        ] {
            let off = measure(spec, mode, false);
            let on = measure(spec, mode, true);
            let overhead = (on as f64 - off as f64) / off as f64 * 100.0;
            println!(
                "{:<12} ({:>3} MB) | {} | {:>10} | {:>10} | {:+.2}%",
                spec.name,
                spec.bytes / (1024 * 1024),
                mode_name,
                fmt_ns(off),
                fmt_ns(on),
                overhead,
            );
            report = report.value(
                &format!("{}_{}", spec.name, mode_name.trim()),
                JsonValue::Object(vec![
                    ("shield_off_ns".to_string(), JsonValue::U64(off)),
                    ("shield_on_ns".to_string(), JsonValue::U64(on)),
                    ("overhead_pct".to_string(), JsonValue::F64(overhead)),
                ]),
            );
        }
    }
    println!(
        "\npaper: shield overhead {} in SIM mode, {} in HW mode (startup-dominated)",
        paper[0].1, paper[1].1
    );
    report.emit();
}
