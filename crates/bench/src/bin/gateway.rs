//! Gateway serving benchmark (ISSUE 7): offered load × batch ceiling,
//! virtual time.
//!
//! Sweeps the gateway's micro-batch ceiling against a serial baseline
//! (`core::serving::serve`, one request per `classify`) at several
//! offered loads, all in deterministic virtual time, and writes
//! `BENCH_gateway.json`. Two relationships are asserted hard (the
//! process exits non-zero on violation, making CI the regression gate):
//!
//! 1. at batch ceiling ≥ 8, batched gateway throughput strictly beats
//!    the serial baseline — the planned-arena/worker-pool investment of
//!    PRs 3–4 must pay off at the serving tier, and
//! 2. the gateway answers every offered request exactly once.

use securetf::deployment::Deployment;
use securetf::profile::RuntimeProfile;
use securetf::serving::{encode_request, serve, Request};
use securetf_bench::header;
use securetf_bench::report::{BenchReport, JsonValue};
use securetf_gateway::chaos::{attested_pair, demo_input, demo_model};
use securetf_gateway::{Gateway, GatewayConfig};
use securetf_tee::{EnclaveImage, ExecutionMode, Platform, SimClock};

const CLIENTS: usize = 4;
const ROUNDS: u64 = 16;

/// Serial baseline: the same total request stream drained one at a
/// time by `serve` over a single attested channel. Returns virtual ns.
fn serial_ns(total: u64) -> u64 {
    let clock = SimClock::new();
    let telemetry = clock.telemetry();
    let mut deployment =
        Deployment::instrumented(ExecutionMode::Hardware, clock.clone(), telemetry);
    deployment
        .publish_model("bench", "/m", &demo_model())
        .expect("publish");
    let mut classifier = deployment
        .deploy_classifier("bench", "/m", RuntimeProfile::scone_lite())
        .expect("deploy");
    let (mut server, mut client) = attested_pair(classifier.enclave().clone());
    let t0 = clock.now_ns();
    let mut served = 0u64;
    let mut seq = 0u64;
    while served < total {
        // Feed in slices so the pipe never holds more than one round.
        let burst = (total - served).min(CLIENTS as u64);
        for _ in 0..burst {
            client
                .send(&encode_request(&Request::new(seq, demo_input(0, seq))))
                .expect("send");
            seq += 1;
        }
        served += serve(&mut classifier, &mut server).expect("serve");
    }
    clock.now_ns() - t0
}

/// Gateway run at one (per-round load, batch ceiling) cell. Returns
/// `(virtual ns, answered)`.
fn gateway_ns(load_per_client: u64, max_batch: usize) -> (u64, u64) {
    let clock = SimClock::new();
    let telemetry = clock.telemetry();
    let mut deployment =
        Deployment::instrumented(ExecutionMode::Hardware, clock.clone(), telemetry.clone());
    deployment
        .publish_model("bench", "/m", &demo_model())
        .expect("publish");
    let classifier = deployment
        .deploy_classifier("bench", "/m", RuntimeProfile::scone_lite())
        .expect("deploy");
    let frontend_platform = Platform::builder()
        .clock(clock.clone())
        .telemetry(telemetry)
        .build();
    let frontend = frontend_platform
        .create_enclave(
            &EnclaveImage::builder().code(b"bench-frontend").build(),
            ExecutionMode::Simulation,
        )
        .expect("frontend");
    let config = GatewayConfig {
        max_batch,
        queue_capacity: 256, // admission never interferes with the sweep
        ..GatewayConfig::default()
    };
    let mut gateway = Gateway::new(classifier, config);
    let mut clients = Vec::with_capacity(CLIENTS);
    for _ in 0..CLIENTS {
        let (server, client) = attested_pair(frontend.clone());
        gateway.accept(server);
        clients.push(client);
    }
    let t0 = clock.now_ns();
    let mut seq = 0u64;
    for _ in 0..ROUNDS {
        for (c, client) in clients.iter_mut().enumerate() {
            for _ in 0..load_per_client {
                let id = (c as u64) << 32 | seq;
                client
                    .send(&encode_request(&Request::new(id, demo_input(c, seq))))
                    .expect("send");
                seq += 1;
            }
        }
        gateway.pump().expect("pump");
    }
    gateway.flush().expect("flush");
    (clock.now_ns() - t0, gateway.report().answered)
}

fn rps(requests: u64, ns: u64) -> f64 {
    requests as f64 / (ns.max(1) as f64 / 1e9)
}

fn main() {
    header(
        "Gateway: offered load x batch ceiling (virtual time)",
        &["load/client", "ceiling", "virtual ms", "req/s      ", "vs serial"],
    );

    let loads = [1u64, 2, 4];
    let ceilings = [1usize, 2, 4, 8, 16];
    let mut report = BenchReport::new("gateway")
        .unit("virtual_rps")
        .mode("hardware/scone_lite")
        .paper_target("secureTF §4.2 / Privado: enclave DNN serving at scale needs batching");

    let mut gate_holds = true;
    for &load in &loads {
        let total = load * CLIENTS as u64 * ROUNDS;
        let base_ns = serial_ns(total);
        let base_rps = rps(total, base_ns);
        report = report
            .latency_ns(&format!("load{load}.serial_ns"), base_ns)
            .ratio(&format!("load{load}.serial_rps"), base_rps);
        println!(
            "{:>11} | {:>7} | {:>10.3} | {:>11.1} | {:>9}",
            load,
            "serial",
            base_ns as f64 / 1e6,
            base_rps,
            "1.00x"
        );
        for &ceiling in &ceilings {
            let (ns, answered) = gateway_ns(load, ceiling);
            assert_eq!(
                answered, total,
                "gateway dropped requests at load={load} ceiling={ceiling}"
            );
            let through = rps(total, ns);
            let speedup = through / base_rps;
            println!(
                "{:>11} | {:>7} | {:>10.3} | {:>11.1} | {:>8.2}x",
                load,
                ceiling,
                ns as f64 / 1e6,
                through,
                speedup
            );
            report = report
                .latency_ns(&format!("load{load}.batch{ceiling}.ns"), ns)
                .ratio(&format!("load{load}.batch{ceiling}.rps"), through)
                .ratio(&format!("load{load}.batch{ceiling}.vs_serial"), speedup);
            if ceiling >= 8 && through <= base_rps {
                gate_holds = false;
                eprintln!(
                    "GATE VIOLATION: load={load} ceiling={ceiling}: {through:.1} req/s \
                     does not beat serial {base_rps:.1} req/s"
                );
            }
        }
    }
    report = report.value("batched_beats_serial_at_8", JsonValue::Bool(gate_holds));
    report.emit();
    assert!(
        gate_holds,
        "batched gateway throughput must strictly beat serial serving at batch >= 8"
    );
}
