//! Distributed comm-plane benchmark (ISSUE 8): workers × PS shards ×
//! codec × overlap, virtual time.
//!
//! Sweeps the trainer's communication plane at the Figure-8 network
//! shield speed (~12 MB/s record processing): dense vs int8-quantized
//! gradient pushes, barrier vs layer-wise overlapped exchange, and 1 vs
//! 2 parameter-server shards. Writes `BENCH_distrib.json`. Three
//! relationships are asserted hard (non-zero exit on violation, making
//! CI the regression gate):
//!
//! 1. at 8 workers, overlapped + quantized beats the dense barrier
//!    exchange by at least 2x in virtual step time;
//! 2. the applied update is codec-timing independent: overlap on/off
//!    and 1/2 shards give bit-identical losses, and same-seed runs
//!    produce bit-identical telemetry digests;
//! 3. quantized training converges: final loss within 2% of dense.

use rand::SeedableRng;
use securetf_bench::header;
use securetf_bench::report::{BenchReport, JsonValue};
use securetf_distrib::cluster::{Cluster, ClusterConfig};
use securetf_distrib::comm::{Codec, CommConfig, CommStats};
use securetf_distrib::trainer::DistributedTrainer;
use securetf_tee::{CostModel, ExecutionMode, SimClock, Telemetry};
use securetf_tensor::layers;

const STEPS: u64 = 5;
const BATCH: usize = 32;

fn shielded_cost_model() -> CostModel {
    CostModel {
        // Figure 8's network shield: ~12 MB/s effective record
        // processing (TLS-wrapping of gRPC inside the enclave, §5.4).
        shield_net_bytes_per_sec: 12.0e6,
        ..CostModel::default()
    }
}

fn trainer(workers: usize, ps: usize, telemetry: Telemetry) -> DistributedTrainer {
    let cluster = Cluster::new(ClusterConfig {
        workers,
        parameter_servers: ps,
        mode: ExecutionMode::Simulation,
        network_shield: true,
        cost_model: Some(shielded_cost_model()),
        telemetry,
        ..ClusterConfig::default()
    })
    .expect("cluster");
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let model = layers::mlp_classifier(784, &[128], 10, &mut rng).expect("model");
    let data = securetf_data::synthetic_mnist(600, 7);
    DistributedTrainer::new(cluster, model, data, BATCH, 0.1).expect("trainer")
}

struct Cell {
    step_ns: u64,
    loss_bits: u32,
    stats: CommStats,
}

fn run(workers: usize, ps: usize, comm: CommConfig) -> Cell {
    let mut t = trainer(workers, ps, Telemetry::disabled());
    t.set_comm_config(comm);
    let report = t.train_steps(STEPS).expect("training");
    Cell {
        step_ns: report.elapsed_ns / STEPS,
        loss_bits: report.final_loss.to_bits(),
        stats: t.comm_stats(),
    }
}

/// Same-seed digest of one full telemetry-instrumented run.
fn digest(workers: usize, comm: CommConfig) -> [u8; 32] {
    let telemetry = Telemetry::new(std::sync::Arc::new(SimClock::new()));
    let mut t = trainer(workers, 2, telemetry.clone());
    t.set_comm_config(comm);
    t.train_steps(STEPS).expect("training");
    telemetry.metrics_digest()
}

fn label(comm: CommConfig) -> String {
    format!(
        "{}+{}",
        comm.codec.name(),
        if comm.overlap { "overlap" } else { "barrier" }
    )
}

fn main() {
    header(
        "Distributed comm plane: workers x PS shards x codec x overlap (virtual time)",
        &["workers", "ps", "codec+mode      ", "step ms ", "vs dense+barrier", "wire bytes"],
    );

    let configs = [
        CommConfig { codec: Codec::Dense, overlap: false },
        CommConfig { codec: Codec::Dense, overlap: true },
        CommConfig { codec: Codec::Quantized, overlap: false },
        CommConfig { codec: Codec::Quantized, overlap: true },
    ];
    let mut report = BenchReport::new("distrib")
        .unit("virtual_step_ns")
        .mode("simulation+network_shield")
        .paper_target("secureTF §5.4 / Fig 8: network shield dominates distributed step time");

    let mut gate_speedup = 0.0f64;
    let mut dense_loss: Option<f32> = None;
    let mut quant_loss: Option<f32> = None;
    for &workers in &[1usize, 2, 4, 8] {
        for &ps in &[1usize, 2] {
            let mut baseline_ns = 0u64;
            let mut baseline_loss = 0u32;
            for &comm in &configs {
                let cell = run(workers, ps, comm);
                if !comm.overlap && comm.codec == Codec::Dense {
                    baseline_ns = cell.step_ns;
                    baseline_loss = cell.loss_bits;
                }
                // Overlap and sharding change only the virtual-time
                // schedule, never the arithmetic.
                if comm.codec == Codec::Dense {
                    assert_eq!(
                        cell.loss_bits, baseline_loss,
                        "dense loss must be identical across overlap settings"
                    );
                }
                let speedup = baseline_ns as f64 / cell.step_ns.max(1) as f64;
                // Dense-equivalent over actual total wire bytes
                // (broadcast included, so < the push-only ~4x).
                let ratio = if cell.stats.bytes_sent > 0 {
                    (cell.stats.bytes_sent + cell.stats.bytes_saved) as f64
                        / cell.stats.bytes_sent as f64
                } else {
                    1.0
                };
                println!(
                    "{workers:>7} | {ps:>2} | {:>16} | {:>8.3} | {:>15.2}x | {ratio:>9.2}x",
                    label(comm),
                    cell.step_ns as f64 / 1e6,
                    speedup,
                );
                let key = format!("w{workers}.ps{ps}.{}", label(comm));
                report = report
                    .latency_ns(&format!("{key}.step_ns"), cell.step_ns)
                    .ratio(&format!("{key}.vs_dense_barrier"), speedup)
                    .value(
                        &format!("{key}.comm"),
                        JsonValue::Object(vec![
                            ("bytes_sent".to_string(), JsonValue::U64(cell.stats.bytes_sent)),
                            ("bytes_saved".to_string(), JsonValue::U64(cell.stats.bytes_saved)),
                            ("comm_ns".to_string(), JsonValue::U64(cell.stats.comm_ns)),
                            (
                                "overlap_hidden_ns".to_string(),
                                JsonValue::U64(cell.stats.overlap_hidden_ns),
                            ),
                        ]),
                    );
                if workers == 8 && ps == 1 {
                    if comm.codec == Codec::Quantized && comm.overlap {
                        gate_speedup = speedup;
                        quant_loss = Some(f32::from_bits(cell.loss_bits));
                    }
                    if comm.codec == Codec::Dense && !comm.overlap {
                        dense_loss = Some(f32::from_bits(cell.loss_bits));
                    }
                }
            }
        }
    }

    // Convergence: int8 + error feedback must track dense closely.
    let (dense_loss, quant_loss) = (dense_loss.expect("swept"), quant_loss.expect("swept"));
    let drift = (quant_loss - dense_loss).abs() / dense_loss.abs().max(f32::EPSILON);
    println!(
        "\n8-worker losses: dense {dense_loss:.6}, quantized {quant_loss:.6} ({:.3}% drift)",
        drift * 100.0
    );

    // Determinism: same-seed instrumented runs are digest-identical.
    let comm = CommConfig { codec: Codec::Quantized, overlap: true };
    let digests_equal = digest(3, comm) == digest(3, comm);
    println!(
        "same-seed telemetry digests identical: {digests_equal}\n\
         8-worker gate: quantized+overlap is {gate_speedup:.2}x dense+barrier (need >= 2x)"
    );

    report = report
        .ratio("gate.speedup_8w_quant_overlap", gate_speedup)
        .ratio("gate.quantized_loss_drift", f64::from(drift))
        .value("gate.digests_equal", JsonValue::Bool(digests_equal));
    report.emit();

    let mut ok = true;
    if gate_speedup < 2.0 {
        ok = false;
        eprintln!(
            "GATE VIOLATION: overlapped+quantized only {gate_speedup:.2}x dense barrier \
             at 8 workers (need >= 2x)"
        );
    }
    if drift > 0.02 {
        ok = false;
        eprintln!("GATE VIOLATION: quantized loss drifts {:.2}% from dense (cap 2%)", drift * 100.0);
    }
    if !digests_equal {
        ok = false;
        eprintln!("GATE VIOLATION: same-seed telemetry digests differ");
    }
    assert!(ok, "distrib comm-plane gates failed");
}
