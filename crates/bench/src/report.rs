//! Machine-readable benchmark reports.
//!
//! Every `fig*` binary prints a human table *and* writes a
//! `BENCH_<experiment>.json` file next to it, so CI can archive the
//! numbers as artifacts and diff runs over time. All latencies are
//! virtual nanoseconds from the TEE cost model, so two runs of the same
//! binary produce byte-identical reports.
//!
//! The JSON is hand-rolled (the workspace builds offline, without serde);
//! [`JsonValue`] covers the handful of shapes the reports need.

use std::fmt::Write as _;
use std::path::PathBuf;

/// A JSON value, sufficient for benchmark reports.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (latencies, counts).
    U64(u64),
    /// A float; non-finite values render as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    fn render(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::F64(f) if f.is_finite() => {
                let _ = write!(out, "{f}");
            }
            JsonValue::F64(_) => out.push_str("null"),
            JsonValue::Str(s) => escape_into(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(key, out);
                    out.push(':');
                    value.render(out);
                }
                out.push('}');
            }
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A benchmark report for one experiment, written as
/// `BENCH_<experiment>.json`.
#[derive(Debug, Clone)]
pub struct BenchReport {
    experiment: String,
    mode: String,
    paper_target: String,
    unit: String,
    entries: Vec<(String, JsonValue)>,
}

impl BenchReport {
    /// Starts a report for `experiment` (e.g. `"fig4_attestation"`); the
    /// name becomes the output file name, so keep it filesystem-safe.
    pub fn new(experiment: &str) -> Self {
        BenchReport {
            experiment: experiment.to_string(),
            mode: String::new(),
            paper_target: String::new(),
            unit: "virtual_ns".to_string(),
            entries: Vec::new(),
        }
    }

    /// Overrides the latency unit recorded in the report (default
    /// `"virtual_ns"`; the kernel microbenchmarks measure `"wall_ns"`).
    pub fn unit(mut self, unit: &str) -> Self {
        self.unit = unit.to_string();
        self
    }

    /// Sets the execution mode(s) the experiment ran in (e.g. `"hw"`).
    pub fn mode(mut self, mode: &str) -> Self {
        self.mode = mode.to_string();
        self
    }

    /// Records what the paper reports for this experiment, for comparison.
    pub fn paper_target(mut self, target: &str) -> Self {
        self.paper_target = target.to_string();
        self
    }

    /// Adds a virtual-nanosecond latency series point.
    pub fn latency_ns(mut self, name: &str, ns: u64) -> Self {
        self.entries.push((name.to_string(), JsonValue::U64(ns)));
        self
    }

    /// Adds a dimensionless ratio (speedups, slowdowns).
    pub fn ratio(mut self, name: &str, value: f64) -> Self {
        self.entries.push((name.to_string(), JsonValue::F64(value)));
        self
    }

    /// Adds an arbitrary value.
    pub fn value(mut self, name: &str, value: JsonValue) -> Self {
        self.entries.push((name.to_string(), value));
        self
    }

    /// The report as a single-line JSON document.
    pub fn to_json(&self) -> String {
        let results = JsonValue::Object(self.entries.clone());
        let doc = JsonValue::Object(vec![
            (
                "experiment".to_string(),
                JsonValue::Str(self.experiment.clone()),
            ),
            ("mode".to_string(), JsonValue::Str(self.mode.clone())),
            (
                "paper_target".to_string(),
                JsonValue::Str(self.paper_target.clone()),
            ),
            ("unit".to_string(), JsonValue::Str(self.unit.clone())),
            ("results".to_string(), results),
        ]);
        let mut out = String::new();
        doc.render(&mut out);
        out.push('\n');
        out
    }

    /// The output file name, `BENCH_<experiment>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.experiment)
    }

    /// Writes the report to the current directory (or `$SECURETF_BENCH_DIR`
    /// when set) and returns the path written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the write.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = std::env::var_os("SECURETF_BENCH_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."));
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Writes the report and prints the path, swallowing (but reporting)
    /// filesystem errors — a benchmark table is still useful when the
    /// working directory is read-only.
    pub fn emit(&self) {
        match self.write() {
            Ok(path) => println!("\nwrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", self.file_name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_stable_json() {
        let json = BenchReport::new("fig4_attestation")
            .mode("hw")
            .paper_target("CAS ~17 ms vs IAS ~325 ms (~19x)")
            .latency_ns("cas_total_ns", 17_000_000)
            .latency_ns("ias_total_ns", 325_000_000)
            .ratio("ias_over_cas", 19.1)
            .to_json();
        assert_eq!(
            json,
            "{\"experiment\":\"fig4_attestation\",\"mode\":\"hw\",\
             \"paper_target\":\"CAS ~17 ms vs IAS ~325 ms (~19x)\",\
             \"unit\":\"virtual_ns\",\"results\":{\"cas_total_ns\":17000000,\
             \"ias_total_ns\":325000000,\"ias_over_cas\":19.1}}\n"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        JsonValue::Str("a\"b\\c\nd\u{1}".to_string()).render(&mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut out = String::new();
        JsonValue::Array(vec![
            JsonValue::F64(f64::NAN),
            JsonValue::F64(f64::INFINITY),
            JsonValue::F64(1.5),
        ])
        .render(&mut out);
        assert_eq!(out, "[null,null,1.5]");
    }

    #[test]
    fn nested_objects_render() {
        let mut out = String::new();
        JsonValue::Object(vec![
            (
                "series".to_string(),
                JsonValue::Array(vec![JsonValue::U64(1), JsonValue::U64(2)]),
            ),
            ("ok".to_string(), JsonValue::Bool(true)),
            ("none".to_string(), JsonValue::Null),
        ])
        .render(&mut out);
        assert_eq!(out, "{\"series\":[1,2],\"ok\":true,\"none\":null}");
    }

    #[test]
    fn write_honors_bench_dir() {
        let dir = std::env::temp_dir().join("securetf-bench-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        // Serialize access to the env var within this test only.
        std::env::set_var("SECURETF_BENCH_DIR", &dir);
        let report = BenchReport::new("unit_test").mode("sim");
        let path = report.write().unwrap();
        std::env::remove_var("SECURETF_BENCH_DIR");
        assert_eq!(path, dir.join("BENCH_unit_test.json"));
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.contains("\"experiment\":\"unit_test\""));
        std::fs::remove_file(&path).unwrap();
    }
}
