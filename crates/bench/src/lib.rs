//! Shared support for the figure-regeneration binaries.
//!
//! Each `fig*` binary regenerates one table/figure of the paper's
//! evaluation (§5) and prints the series the paper reports, plus the
//! paper's own numbers for comparison. All latencies are **virtual time**
//! from the TEE cost model (see `DESIGN.md` §4), so runs are deterministic.

pub mod report;

/// Formats nanoseconds as adaptive human units.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 10_000_000_000 {
        format!("{:.1} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Formats a ratio like `1.39x`.
pub fn fmt_ratio(num: u64, den: u64) -> String {
    if den == 0 {
        return "∞".to_string();
    }
    format!("{:.2}x", num as f64 / den as f64)
}

/// Prints a table header with a separator row.
pub fn header(title: &str, columns: &[&str]) {
    println!("\n== {title} ==");
    println!("{}", columns.join(" | "));
    println!(
        "{}",
        "-".repeat(columns.iter().map(|c| c.len() + 3).sum::<usize>().max(20))
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_formatting_picks_units() {
        assert_eq!(fmt_ns(12), "12 ns");
        assert_eq!(fmt_ns(1_500), "1.5 µs");
        assert_eq!(fmt_ns(2_500_000), "2.5 ms");
        assert_eq!(fmt_ns(1_500_000_000), "1.50 s");
        assert_eq!(fmt_ns(15_000_000_000), "15.0 s");
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(fmt_ratio(278, 200), "1.39x");
        assert_eq!(fmt_ratio(1, 0), "∞");
    }
}
