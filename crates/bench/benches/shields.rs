//! Wall-clock benchmarks of the file-system and network shields.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use securetf_shield::fs::{FsShield, PathPolicy, Policy, UntrustedStore};
use securetf_shield::net::{duplex, Role, SecureChannel, Transport};
use securetf_tee::{EnclaveImage, ExecutionMode, Platform};
use std::sync::Arc;

fn enclave() -> Arc<securetf_tee::Enclave> {
    let platform = Platform::builder().build();
    platform
        .create_enclave(
            &EnclaveImage::builder().code(b"bench shield").build(),
            ExecutionMode::Hardware,
        )
        .expect("enclave")
}

fn bench_fs_shield(c: &mut Criterion) {
    let mut group = c.benchmark_group("fs_shield");
    for size in [4 * 1024usize, 256 * 1024] {
        let data = vec![0x3cu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        let store = UntrustedStore::new();
        let mut shield = FsShield::new(enclave(), store);
        shield.add_policy(PathPolicy::new("/", Policy::EncryptAuth));
        group.bench_function(format!("write/{size}"), |b| {
            b.iter(|| shield.write("/f", black_box(&data)).expect("write"))
        });
        shield.write("/f", &data).expect("write");
        group.bench_function(format!("read/{size}"), |b| {
            b.iter(|| shield.read(black_box("/f")).expect("read"))
        });
    }
    group.finish();
}

/// Spin-waiting transport so the handshake halves can run on two threads.
struct Spin(securetf_shield::net::PipeEnd);

impl Transport for Spin {
    fn send(&self, m: Vec<u8>) {
        self.0.send(m);
    }

    fn recv(&self) -> Option<Vec<u8>> {
        for _ in 0..1_000_000 {
            if let Some(m) = self.0.recv() {
                return Some(m);
            }
            std::thread::yield_now();
        }
        None
    }
}

fn bench_net_shield(c: &mut Criterion) {
    let (a, b) = duplex(None);
    let eb = enclave();
    let resp =
        std::thread::spawn(move || SecureChannel::handshake(Spin(b), eb, Role::Responder));
    let mut alice =
        SecureChannel::handshake(Spin(a), enclave(), Role::Initiator).expect("handshake");
    let mut bob = resp.join().expect("join").expect("handshake");

    let mut group = c.benchmark_group("net_shield");
    for size in [1024usize, 64 * 1024] {
        let payload = vec![0x77u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("roundtrip/{size}"), |b| {
            b.iter(|| {
                alice.send(black_box(&payload)).unwrap();
                bob.recv().expect("recv")
            })
        });
    }
    group.finish();

    c.bench_function("net_shield/handshake", |b| {
        b.iter(|| {
            let (a, bb) = duplex(None);
            let eb = enclave();
            let resp = std::thread::spawn(move || {
                SecureChannel::handshake(Spin(bb), eb, Role::Responder)
            });
            let init = SecureChannel::handshake(Spin(a), enclave(), Role::Initiator)
                .expect("handshake");
            let _ = resp.join().expect("join").expect("handshake");
            init
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fs_shield, bench_net_shield
}
criterion_main!(benches);
