//! Wall-clock benchmarks of the ML framework's kernels.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rand::SeedableRng;
use securetf_tensor::graph::{Graph, Padding};
use securetf_tensor::layers;
use securetf_tensor::optimizer::Sgd;
use securetf_tensor::session::Session;
use securetf_tensor::tensor::Tensor;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for n in [64usize, 256] {
        let a = Tensor::full(&[n, n], 1.01);
        let b = Tensor::full(&[n, n], 0.99);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_function(format!("{n}x{n}"), |bencher| {
            bencher.iter(|| black_box(&a).matmul(black_box(&b)).expect("matmul"))
        });
    }
    group.finish();
}

fn bench_conv2d(c: &mut Criterion) {
    let mut g = Graph::new();
    let x = g.placeholder("x", &[0, 28, 28, 1]);
    let f = g.variable("f", Tensor::full(&[3, 3, 1, 8], 0.1));
    let conv = g.conv2d(x, f, Padding::Same).expect("conv");
    let mut session = Session::new(&g);
    let input = Tensor::full(&[8, 28, 28, 1], 0.5);
    c.bench_function("conv2d/28x28x1x8_batch8", |b| {
        b.iter(|| {
            session
                .run(&g, &[(x, input.clone())], &[conv])
                .expect("run")
        })
    });
}

fn bench_train_step(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let model = layers::mlp_classifier(784, &[64], 10, &mut rng).expect("model");
    let mut session = Session::new(&model.graph);
    let mut sgd = Sgd::new(0.05);
    let data = securetf_data::synthetic_mnist(64, 1);
    let (xs, ys) = data.batch(0, 64).expect("batch");
    c.bench_function("train_step/mlp_784_64_10_batch64", |b| {
        b.iter(|| {
            session
                .train_step(
                    &model.graph,
                    &[(model.input, xs.clone()), (model.labels, ys.clone())],
                    model.loss,
                    &mut sgd,
                )
                .expect("step")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_conv2d, bench_train_step
}
criterion_main!(benches);
