//! Criterion companion of Figure 8: distributed training steps.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use securetf_distrib::cluster::{Cluster, ClusterConfig};
use securetf_distrib::trainer::DistributedTrainer;
use securetf_tee::ExecutionMode;
use securetf_tensor::layers;

fn trainer(workers: usize, mode: ExecutionMode, shield: bool) -> DistributedTrainer {
    let cluster = Cluster::new(ClusterConfig {
        workers,
        parameter_servers: 1,
        mode,
        network_shield: shield,
        runtime_bytes: 8 * 1024 * 1024,
        heap_bytes: 16 * 1024 * 1024,
        ..ClusterConfig::default()
    })
    .expect("cluster");
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let model = layers::mlp_classifier(784, &[32], 10, &mut rng).expect("model");
    let data = securetf_data::synthetic_mnist(300, 3);
    DistributedTrainer::new(cluster, model, data, 50, 0.05).expect("trainer")
}

fn bench_training(c: &mut Criterion) {
    for (label, mode, shield) in [
        ("native", ExecutionMode::Native, false),
        ("sim_noshield", ExecutionMode::Simulation, false),
        ("sim_shield", ExecutionMode::Simulation, true),
        ("hw_full", ExecutionMode::Hardware, true),
    ] {
        let mut t = trainer(2, mode, shield);
        c.bench_function(format!("train_step/{label}"), |b| {
            b.iter(|| t.step().expect("step"))
        });
    }
    // Scaling series.
    for workers in [1usize, 2, 3] {
        let mut t = trainer(workers, ExecutionMode::Simulation, true);
        c.bench_function(format!("train_step/sim_workers_{workers}"), |b| {
            b.iter(|| t.step().expect("step"))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_training
}
criterion_main!(benches);
