//! Criterion companion of Figure 4: the attestation fast path.
//!
//! Measures the wall-clock of the simulated CAS and IAS attestation
//! flows (the virtual-time figures come from `fig4_attestation`); the
//! interesting real work here is quote signing + verification (HMAC)
//! and policy lookup.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use securetf_cas::ias::IasAttestor;
use securetf_cas::policy::ServicePolicy;
use securetf_cas::service::CasService;
use securetf_tee::{EnclaveImage, ExecutionMode, Platform};

fn bench_attestation(c: &mut Criterion) {
    let platform = Platform::builder().build();
    let image = EnclaveImage::builder().code(b"bench worker").build();
    let worker = platform
        .create_enclave(&image, ExecutionMode::Hardware)
        .expect("worker");
    let policy = ServicePolicy::new("svc")
        .allow_measurement(image.measurement())
        .with_secret("k", &[1u8; 32]);

    let cas_enclave = platform
        .create_enclave(
            &EnclaveImage::builder().code(b"cas").build(),
            ExecutionMode::Hardware,
        )
        .expect("cas");
    let mut cas = CasService::new(cas_enclave, platform.fleet_verifier());
    cas.register_policy(policy.clone()).expect("policy");
    let mut ias = IasAttestor::new(
        platform.fleet_verifier(),
        platform.cost_model().clone(),
        platform.clock().clone(),
    );
    ias.register_policy(policy);

    c.bench_function("attestation/quote_generation", |b| {
        b.iter(|| worker.quote(black_box(b"report data")).expect("quote"))
    });

    let quote = worker.quote(b"bench").expect("quote");
    c.bench_function("attestation/cas_verify_and_provision", |b| {
        b.iter(|| {
            cas.attest_and_provision(black_box(&quote), "svc")
                .expect("attest")
        })
    });
    c.bench_function("attestation/ias_verify_and_provision", |b| {
        b.iter(|| {
            ias.attest_and_provision(black_box(&quote), "svc")
                .expect("attest")
        })
    });
}

criterion_group!(benches, bench_attestation);
criterion_main!(benches);
