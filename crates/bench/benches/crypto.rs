//! Wall-clock benchmarks of the cryptographic substrate.
//!
//! These measure the real primitives that bound the shields' throughput
//! (the virtual cost model charges an AES-NI-like 4 GB/s; these numbers
//! show what the pure-Rust implementations actually achieve).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use securetf_crypto::aead::{self, Key, Nonce};
use securetf_crypto::sha256;
use securetf_crypto::x25519::{PublicKey, StaticSecret};

fn bench_aead(c: &mut Criterion) {
    let key = Key::from_bytes([7; 32]);
    let nonce = Nonce::from_bytes([1; 12]);
    let mut group = c.benchmark_group("aead");
    for size in [1024usize, 64 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("seal/{size}"), |b| {
            b.iter(|| aead::seal(&key, &nonce, black_box(&data), b""))
        });
        let sealed = aead::seal(&key, &nonce, &data, b"");
        group.bench_function(format!("open/{size}"), |b| {
            b.iter(|| aead::open(&key, &nonce, black_box(&sealed), b"").expect("valid"))
        });
    }
    group.finish();
}

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 64 * 1024] {
        let data = vec![0x5au8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("digest/{size}"), |b| {
            b.iter(|| sha256::digest(black_box(&data)))
        });
    }
    group.finish();
}

fn bench_x25519(c: &mut Criterion) {
    let secret = StaticSecret::from_bytes([0x42; 32]);
    let peer = PublicKey::from(&StaticSecret::from_bytes([0x24; 32]));
    c.bench_function("x25519/diffie_hellman", |b| {
        b.iter(|| black_box(&secret).diffie_hellman(black_box(&peer)))
    });
}

criterion_group!(benches, bench_aead, bench_sha256, bench_x25519);
criterion_main!(benches);
