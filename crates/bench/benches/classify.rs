//! Criterion companion of Figures 5–6: the classification service path.
//!
//! Uses a small synthetic model so iterations stay fast; the
//! paper-sized-model virtual latencies come from `fig5_model_sizes`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use securetf::deployment::Deployment;
use securetf::profile::RuntimeProfile;
use securetf_tee::ExecutionMode;
use securetf_tflite::models::{self, ModelSpec};

const SMALL: ModelSpec = ModelSpec {
    name: "bench-small",
    bytes: 4 * 1024 * 1024,
    flops: 1.0e8,
};

fn bench_classify(c: &mut Criterion) {
    let input = models::input_for(2);
    for (label, mode, profile) in [
        ("native", ExecutionMode::Native, RuntimeProfile::native_glibc()),
        ("sim", ExecutionMode::Simulation, RuntimeProfile::scone_lite()),
        ("hw", ExecutionMode::Hardware, RuntimeProfile::scone_lite()),
        ("graphene", ExecutionMode::Hardware, RuntimeProfile::graphene()),
    ] {
        let model = models::build(SMALL);
        let mut deployment = Deployment::new(mode);
        deployment
            .publish_model("svc", "/m", &model)
            .expect("publish");
        let mut classifier = deployment
            .deploy_classifier("svc", "/m", profile)
            .expect("deploy");
        c.bench_function(format!("classify/{label}"), |b| {
            b.iter(|| classifier.classify(black_box(&input)).expect("classify"))
        });
    }
}

fn bench_deploy(c: &mut Criterion) {
    c.bench_function("classify/deploy_attest_and_load", |b| {
        b.iter_with_setup(
            || {
                let model = models::build(SMALL);
                let mut deployment = Deployment::new(ExecutionMode::Hardware);
                deployment
                    .publish_model("svc", "/m", &model)
                    .expect("publish");
                deployment
            },
            |mut deployment| {
                deployment
                    .deploy_classifier("svc", "/m", RuntimeProfile::scone_lite())
                    .expect("deploy")
            },
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_classify, bench_deploy
}
criterion_main!(benches);
