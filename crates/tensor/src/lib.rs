//! A dataflow-graph machine-learning framework — the reproduction's
//! stand-in for the full TensorFlow 1.x used by secureTF for *training*.
//!
//! Mirroring TensorFlow's architecture (paper §2.1):
//!
//! * users build a static directed [`graph::Graph`] of operations
//!   (placeholders, variables, matmul, convolution, activations, losses),
//! * a [`session::Session`] owns variable state and executes the graph,
//! * reverse-mode automatic differentiation ([`autodiff`]) plus an
//!   [`optimizer`] implement training,
//! * graphs can be *frozen* (variables folded into constants) and
//!   exported/imported in a binary `GraphDef`-like format ([`freeze`]),
//!   the interchange the paper relies on to move models from the Python
//!   API into the enclave runtime,
//! * every run reports FLOPs and memory statistics ([`autodiff::RunStats`])
//!   that the TEE layer converts into virtual time and EPC traffic.
//!
//! # Examples
//!
//! Train y = relu(x·W + b) on a toy objective:
//!
//! ```
//! use securetf_tensor::graph::Graph;
//! use securetf_tensor::session::Session;
//! use securetf_tensor::optimizer::Sgd;
//! use securetf_tensor::tensor::Tensor;
//!
//! # fn main() -> Result<(), securetf_tensor::TensorError> {
//! let mut g = Graph::new();
//! let x = g.placeholder("x", &[1, 2]);
//! let w = g.variable("w", Tensor::zeros(&[2, 1]));
//! let y = g.matmul(x, w)?;
//! let target = g.placeholder("t", &[1, 1]);
//! let loss = g.mse_loss(y, target)?;
//!
//! let mut session = Session::new(&g);
//! let mut sgd = Sgd::new(0.1);
//! for _ in 0..200 {
//!     session.train_step(
//!         &g,
//!         &[(x, Tensor::from_vec(&[1, 2], vec![1.0, 2.0])?),
//!           (target, Tensor::from_vec(&[1, 1], vec![3.0])?)],
//!         loss,
//!         &mut sgd,
//!     )?;
//! }
//! let out = session.run(&g, &[(x, Tensor::from_vec(&[1, 2], vec![1.0, 2.0])?)], &[y])?;
//! assert!((out[0].data()[0] - 3.0).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

pub mod autodiff;
pub mod freeze;
pub mod graph;
pub mod kernels;
pub mod layers;
pub mod memory;
pub mod optimizer;
pub mod passes;
pub mod session;
pub mod tensor;

use std::error::Error;
use std::fmt;

/// Errors produced by the framework.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Description of the failing operation.
        op: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// A placeholder was not fed, or fed with the wrong shape.
    BadFeed(String),
    /// A fetched/referenced node does not exist in the graph.
    UnknownNode,
    /// Deserialization of a graph/checkpoint failed.
    MalformedModel(&'static str),
    /// The graph contains a cycle or an op not supported by this runtime.
    InvalidGraph(&'static str),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, detail } => {
                write!(f, "shape mismatch in {op}: {detail}")
            }
            TensorError::BadFeed(what) => write!(f, "bad feed: {what}"),
            TensorError::UnknownNode => write!(f, "unknown graph node"),
            TensorError::MalformedModel(why) => write!(f, "malformed model: {why}"),
            TensorError::InvalidGraph(why) => write!(f, "invalid graph: {why}"),
        }
    }
}

impl Error for TensorError {}
