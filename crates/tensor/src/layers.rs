//! Convenience model builders (the "high-level Python API" analogue).
//!
//! The paper notes users define models with the convenient Python API and
//! export them for the in-enclave runtime; these helpers play that role:
//! they compose [`crate::graph::Graph`] primitives into dense layers and
//! complete classifier networks used by the examples and benchmarks.

use crate::graph::{Graph, NodeId, Padding};
use crate::tensor::Tensor;
use crate::TensorError;
use rand::Rng;

/// A fully-connected layer `y = activation(x·W + b)`.
///
/// # Errors
///
/// Propagates graph-construction errors.
pub fn dense<R: Rng>(
    g: &mut Graph,
    x: NodeId,
    in_dim: usize,
    out_dim: usize,
    relu: bool,
    name: &str,
    rng: &mut R,
) -> Result<NodeId, TensorError> {
    let w = g.variable(&format!("{name}/w"), Tensor::glorot(&[in_dim, out_dim], rng));
    let b = g.variable(&format!("{name}/b"), Tensor::zeros(&[out_dim]));
    let mm = g.matmul(x, w)?;
    let out = g.add_bias(mm, b)?;
    if relu {
        g.relu(out)
    } else {
        Ok(out)
    }
}

/// A complete multi-layer perceptron classifier with softmax-cross-entropy
/// training head.
#[derive(Debug, Clone)]
pub struct Classifier {
    /// The graph holding the model.
    pub graph: Graph,
    /// Input placeholder `[batch, features]`.
    pub input: NodeId,
    /// One-hot label placeholder `[batch, classes]`.
    pub labels: NodeId,
    /// Raw class scores `[batch, classes]`.
    pub logits: NodeId,
    /// Softmax probabilities (inference head).
    pub probabilities: NodeId,
    /// Scalar training loss.
    pub loss: NodeId,
}

/// Builds an MLP classifier: `features -> hidden… -> classes`.
///
/// # Errors
///
/// Propagates graph-construction errors.
pub fn mlp_classifier<R: Rng>(
    features: usize,
    hidden: &[usize],
    classes: usize,
    rng: &mut R,
) -> Result<Classifier, TensorError> {
    let mut g = Graph::new();
    let input = g.placeholder("input", &[0, features]);
    let labels = g.placeholder("labels", &[0, classes]);
    let mut x = input;
    let mut dim = features;
    for (i, &h) in hidden.iter().enumerate() {
        x = dense(&mut g, x, dim, h, true, &format!("hidden{i}"), rng)?;
        dim = h;
    }
    let logits = dense(&mut g, x, dim, classes, false, "logits", rng)?;
    let probabilities = g.softmax(logits)?;
    let loss = g.softmax_cross_entropy(logits, labels)?;
    Ok(Classifier {
        graph: g,
        input,
        labels,
        logits,
        probabilities,
        loss,
    })
}

/// Builds a small convolutional classifier for `[batch, h, w, c]` images:
/// conv(3×3, `conv_channels`) → relu → 2×2 maxpool → flatten → dense.
///
/// # Errors
///
/// Propagates graph-construction errors.
pub fn conv_classifier<R: Rng>(
    height: usize,
    width: usize,
    channels: usize,
    conv_channels: usize,
    classes: usize,
    rng: &mut R,
) -> Result<Classifier, TensorError> {
    let mut g = Graph::new();
    let input = g.placeholder("input", &[0, height, width, channels]);
    let labels = g.placeholder("labels", &[0, classes]);
    let f = g.variable(
        "conv/f",
        Tensor::glorot(&[3, 3, channels, conv_channels], rng),
    );
    let conv = g.conv2d(input, f, Padding::Same)?;
    let act = g.relu(conv)?;
    let pool = g.max_pool2(act)?;
    let flat = g.flatten(pool)?;
    let flat_dim = (height / 2) * (width / 2) * conv_channels;
    let logits = dense(&mut g, flat, flat_dim, classes, false, "logits", rng)?;
    let probabilities = g.softmax(logits)?;
    let loss = g.softmax_cross_entropy(logits, labels)?;
    Ok(Classifier {
        graph: g,
        input,
        labels,
        logits,
        probabilities,
        loss,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Sgd;
    use crate::session::Session;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    #[test]
    fn mlp_shapes_work_end_to_end() {
        let c = mlp_classifier(10, &[16, 8], 3, &mut rng()).unwrap();
        let mut s = Session::new(&c.graph);
        let x = Tensor::zeros(&[5, 10]);
        let out = s.run(&c.graph, &[(c.input, x)], &[c.probabilities]).unwrap();
        assert_eq!(out[0].shape(), &[5, 3]);
        // Uniform input -> rows sum to 1.
        let row_sum: f32 = out[0].data()[..3].iter().sum();
        assert!((row_sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn conv_classifier_shapes_work() {
        let c = conv_classifier(8, 8, 1, 4, 10, &mut rng()).unwrap();
        let mut s = Session::new(&c.graph);
        let x = Tensor::zeros(&[2, 8, 8, 1]);
        let out = s.run(&c.graph, &[(c.input, x)], &[c.logits]).unwrap();
        assert_eq!(out[0].shape(), &[2, 10]);
    }

    #[test]
    fn mlp_learns_a_linear_rule() {
        // Class = which of 4 features is largest.
        let c = mlp_classifier(4, &[16], 4, &mut rng()).unwrap();
        let mut s = Session::new(&c.graph);
        let mut sgd = Sgd::new(0.3);
        let mut r = rng();
        let mut batch = || {
            let mut xs = Vec::new();
            let mut ys = vec![0.0; 32 * 4];
            for i in 0..32 {
                let row: Vec<f32> = (0..4).map(|_| r.gen_range(-1.0..1.0)).collect();
                let label = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap()
                    .0;
                xs.extend_from_slice(&row);
                ys[i * 4 + label] = 1.0;
            }
            (
                Tensor::from_vec(&[32, 4], xs).unwrap(),
                Tensor::from_vec(&[32, 4], ys).unwrap(),
            )
        };
        let mut loss = f32::INFINITY;
        for _ in 0..150 {
            let (x, y) = batch();
            loss = s
                .train_step(&c.graph, &[(c.input, x), (c.labels, y)], c.loss, &mut sgd)
                .unwrap();
        }
        assert!(loss < 0.4, "loss {loss}");
    }

    #[test]
    fn named_variables_discoverable() {
        let c = mlp_classifier(4, &[8], 2, &mut rng()).unwrap();
        assert!(c.graph.by_name("hidden0/w").is_some());
        assert!(c.graph.by_name("logits/b").is_some());
    }
}
