//! Static dataflow graphs of operations (TensorFlow's GraphDef analogue).

use crate::tensor::Tensor;
use crate::TensorError;

/// Identifier of a node within one graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The node's position in its graph's topological node order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Padding mode for convolutions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Padding {
    /// Output spatial size equals input size (zero padding).
    Same,
    /// No padding; output shrinks by `kernel - 1`.
    Valid,
}

/// An operation node.
#[derive(Debug, Clone)]
pub enum Op {
    /// Runtime-fed input with a shape template (0 = any size on that axis).
    Placeholder {
        /// Shape template; `0` entries match any extent.
        shape: Vec<usize>,
    },
    /// Trainable state initialized from a tensor.
    Variable {
        /// Initial value.
        init: Tensor,
    },
    /// Immutable embedded tensor.
    Constant(Tensor),
    /// `[m,k] × [k,n]` matrix product.
    MatMul(NodeId, NodeId),
    /// Adds a `[n]` bias row-broadcast onto `[m,n]`.
    AddBias(NodeId, NodeId),
    /// Elementwise addition of same-shape tensors.
    Add(NodeId, NodeId),
    /// Elementwise multiplication of same-shape tensors.
    Mul(NodeId, NodeId),
    /// Rectified linear unit.
    Relu(NodeId),
    /// Row-wise softmax over `[batch, classes]`.
    Softmax(NodeId),
    /// NHWC convolution with `[kh, kw, c_in, c_out]` filters, stride 1.
    Conv2d {
        /// Input activations `[batch, h, w, c_in]`.
        input: NodeId,
        /// Filter bank `[kh, kw, c_in, c_out]`.
        filter: NodeId,
        /// Padding mode.
        padding: Padding,
    },
    /// 2×2 max pooling with stride 2 over NHWC.
    MaxPool2(NodeId),
    /// Collapses all but the leading axis: `[b, …] -> [b, rest]`.
    Flatten(NodeId),
    /// Reshape to an explicit shape (element count must match).
    Reshape(NodeId, Vec<usize>),
    /// Fused softmax + cross-entropy against one-hot labels; scalar mean
    /// loss over the batch.
    SoftmaxCrossEntropy {
        /// Unnormalized scores `[batch, classes]`.
        logits: NodeId,
        /// One-hot labels `[batch, classes]`.
        labels: NodeId,
    },
    /// Mean squared error; scalar mean over all elements.
    MseLoss(NodeId, NodeId),
    /// Elementwise subtraction of same-shape tensors.
    Sub(NodeId, NodeId),
    /// Multiplication by a compile-time scalar.
    Scale(NodeId, f32),
    /// Logistic sigmoid.
    Sigmoid(NodeId),
    /// Hyperbolic tangent.
    Tanh(NodeId),
    /// 2×2 average pooling with stride 2 over NHWC.
    AvgPool2(NodeId),
    /// Concatenation of two matrices along the feature axis:
    /// `[m, a] ++ [m, b] -> [m, a + b]`.
    ConcatCols(NodeId, NodeId),
    /// Fused `matmul → add_bias[ → relu]`. The bias/relu epilogue runs
    /// inside the GEMM kernel, so the intermediates never materialize;
    /// results are bit-identical to the unfused op sequence.
    FusedMatMul {
        /// Left operand `[m, k]`.
        lhs: NodeId,
        /// Right operand `[k, n]`.
        rhs: NodeId,
        /// Bias row `[n]`.
        bias: NodeId,
        /// Whether a ReLU follows the bias addition.
        relu: bool,
    },
    /// Fused `conv2d → add_bias[ → relu]` with the same bit-identity
    /// guarantee as [`Op::FusedMatMul`].
    FusedConv2d {
        /// Input activations `[batch, h, w, c_in]`.
        input: NodeId,
        /// Filter bank `[kh, kw, c_in, c_out]`.
        filter: NodeId,
        /// Bias over output channels `[c_out]`.
        bias: NodeId,
        /// Padding mode.
        padding: Padding,
        /// Whether a ReLU follows the bias addition.
        relu: bool,
    },
}

impl Op {
    /// The node ids this op consumes.
    pub fn inputs(&self) -> Vec<NodeId> {
        match self {
            Op::Placeholder { .. } | Op::Variable { .. } | Op::Constant(_) => vec![],
            Op::MatMul(a, b)
            | Op::AddBias(a, b)
            | Op::Add(a, b)
            | Op::Mul(a, b)
            | Op::Sub(a, b)
            | Op::ConcatCols(a, b)
            | Op::MseLoss(a, b) => vec![*a, *b],
            Op::Relu(a)
            | Op::Softmax(a)
            | Op::MaxPool2(a)
            | Op::AvgPool2(a)
            | Op::Sigmoid(a)
            | Op::Tanh(a)
            | Op::Flatten(a) => vec![*a],
            Op::Reshape(a, _) | Op::Scale(a, _) => vec![*a],
            Op::Conv2d { input, filter, .. } => vec![*input, *filter],
            Op::SoftmaxCrossEntropy { logits, labels } => vec![*logits, *labels],
            Op::FusedMatMul { lhs, rhs, bias, .. } => vec![*lhs, *rhs, *bias],
            Op::FusedConv2d {
                input, filter, bias, ..
            } => vec![*input, *filter, *bias],
        }
    }

    /// Returns a copy of this op with every input id rewritten by `f`
    /// (used by graph-transformation passes).
    pub fn map_inputs(&self, f: impl Fn(NodeId) -> NodeId) -> Op {
        let mut op = self.clone();
        match &mut op {
            Op::Placeholder { .. } | Op::Variable { .. } | Op::Constant(_) => {}
            Op::MatMul(a, b)
            | Op::AddBias(a, b)
            | Op::Add(a, b)
            | Op::Mul(a, b)
            | Op::Sub(a, b)
            | Op::ConcatCols(a, b)
            | Op::MseLoss(a, b) => {
                *a = f(*a);
                *b = f(*b);
            }
            Op::Relu(a)
            | Op::Softmax(a)
            | Op::MaxPool2(a)
            | Op::AvgPool2(a)
            | Op::Sigmoid(a)
            | Op::Tanh(a)
            | Op::Flatten(a)
            | Op::Reshape(a, _)
            | Op::Scale(a, _) => *a = f(*a),
            Op::Conv2d { input, filter, .. } => {
                *input = f(*input);
                *filter = f(*filter);
            }
            Op::SoftmaxCrossEntropy { logits, labels } => {
                *logits = f(*logits);
                *labels = f(*labels);
            }
            Op::FusedMatMul { lhs, rhs, bias, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
                *bias = f(*bias);
            }
            Op::FusedConv2d {
                input, filter, bias, ..
            } => {
                *input = f(*input);
                *filter = f(*filter);
                *bias = f(*bias);
            }
        }
        op
    }

    /// A short mnemonic for serialization and debugging.
    pub fn kind(&self) -> &'static str {
        match self {
            Op::Placeholder { .. } => "placeholder",
            Op::Variable { .. } => "variable",
            Op::Constant(_) => "const",
            Op::MatMul(..) => "matmul",
            Op::AddBias(..) => "add_bias",
            Op::Add(..) => "add",
            Op::Mul(..) => "mul",
            Op::Relu(_) => "relu",
            Op::Softmax(_) => "softmax",
            Op::Conv2d { .. } => "conv2d",
            Op::MaxPool2(_) => "max_pool2",
            Op::Flatten(_) => "flatten",
            Op::Reshape(..) => "reshape",
            Op::SoftmaxCrossEntropy { .. } => "softmax_xent",
            Op::MseLoss(..) => "mse_loss",
            Op::Sub(..) => "sub",
            Op::Scale(..) => "scale",
            Op::Sigmoid(_) => "sigmoid",
            Op::Tanh(_) => "tanh",
            Op::AvgPool2(_) => "avg_pool2",
            Op::ConcatCols(..) => "concat_cols",
            // The relu flag is part of the kind so plan/pipeline cache
            // keys never collide across the two epilogues.
            Op::FusedMatMul { relu: false, .. } => "fused_matmul_bias",
            Op::FusedMatMul { relu: true, .. } => "fused_matmul_bias_relu",
            Op::FusedConv2d { relu: false, .. } => "fused_conv2d_bias",
            Op::FusedConv2d { relu: true, .. } => "fused_conv2d_bias_relu",
        }
    }
}

/// A named node.
#[derive(Debug, Clone)]
pub struct Node {
    /// The operation.
    pub op: Op,
    /// Display/export name.
    pub name: String,
}

/// A static computation graph.
///
/// Nodes only reference earlier nodes, so the node order is already a
/// topological order.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    fn push(&mut self, name: &str, op: Op) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            op,
            name: name.to_string(),
        });
        id
    }

    fn check(&self, id: NodeId) -> Result<(), TensorError> {
        if id.0 < self.nodes.len() {
            Ok(())
        } else {
            Err(TensorError::UnknownNode)
        }
    }

    /// Adds a placeholder. `0` in the shape template matches any extent
    /// (use it for the batch axis).
    pub fn placeholder(&mut self, name: &str, shape: &[usize]) -> NodeId {
        self.push(
            name,
            Op::Placeholder {
                shape: shape.to_vec(),
            },
        )
    }

    /// Adds a trainable variable with an initial value.
    pub fn variable(&mut self, name: &str, init: Tensor) -> NodeId {
        self.push(name, Op::Variable { init })
    }

    /// Adds an immutable constant.
    pub fn constant(&mut self, name: &str, value: Tensor) -> NodeId {
        self.push(name, Op::Constant(value))
    }

    /// Adds a matrix multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnknownNode`] for foreign node ids.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, TensorError> {
        self.check(a)?;
        self.check(b)?;
        Ok(self.push("matmul", Op::MatMul(a, b)))
    }

    /// Adds a row-broadcast bias addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnknownNode`] for foreign node ids.
    pub fn add_bias(&mut self, x: NodeId, bias: NodeId) -> Result<NodeId, TensorError> {
        self.check(x)?;
        self.check(bias)?;
        Ok(self.push("add_bias", Op::AddBias(x, bias)))
    }

    /// Adds an elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnknownNode`] for foreign node ids.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, TensorError> {
        self.check(a)?;
        self.check(b)?;
        Ok(self.push("add", Op::Add(a, b)))
    }

    /// Adds an elementwise multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnknownNode`] for foreign node ids.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, TensorError> {
        self.check(a)?;
        self.check(b)?;
        Ok(self.push("mul", Op::Mul(a, b)))
    }

    /// Adds a ReLU.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnknownNode`] for foreign node ids.
    pub fn relu(&mut self, x: NodeId) -> Result<NodeId, TensorError> {
        self.check(x)?;
        Ok(self.push("relu", Op::Relu(x)))
    }

    /// Adds a row-wise softmax.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnknownNode`] for foreign node ids.
    pub fn softmax(&mut self, x: NodeId) -> Result<NodeId, TensorError> {
        self.check(x)?;
        Ok(self.push("softmax", Op::Softmax(x)))
    }

    /// Adds an NHWC convolution (stride 1).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnknownNode`] for foreign node ids.
    pub fn conv2d(
        &mut self,
        input: NodeId,
        filter: NodeId,
        padding: Padding,
    ) -> Result<NodeId, TensorError> {
        self.check(input)?;
        self.check(filter)?;
        Ok(self.push(
            "conv2d",
            Op::Conv2d {
                input,
                filter,
                padding,
            },
        ))
    }

    /// Adds a 2×2/stride-2 max pool.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnknownNode`] for foreign node ids.
    pub fn max_pool2(&mut self, x: NodeId) -> Result<NodeId, TensorError> {
        self.check(x)?;
        Ok(self.push("max_pool2", Op::MaxPool2(x)))
    }

    /// Adds a flatten-to-matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnknownNode`] for foreign node ids.
    pub fn flatten(&mut self, x: NodeId) -> Result<NodeId, TensorError> {
        self.check(x)?;
        Ok(self.push("flatten", Op::Flatten(x)))
    }

    /// Adds a reshape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnknownNode`] for foreign node ids.
    pub fn reshape(&mut self, x: NodeId, shape: &[usize]) -> Result<NodeId, TensorError> {
        self.check(x)?;
        Ok(self.push("reshape", Op::Reshape(x, shape.to_vec())))
    }

    /// Adds a fused softmax-cross-entropy loss.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnknownNode`] for foreign node ids.
    pub fn softmax_cross_entropy(
        &mut self,
        logits: NodeId,
        labels: NodeId,
    ) -> Result<NodeId, TensorError> {
        self.check(logits)?;
        self.check(labels)?;
        Ok(self.push("softmax_xent", Op::SoftmaxCrossEntropy { logits, labels }))
    }

    /// Adds a mean-squared-error loss.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnknownNode`] for foreign node ids.
    pub fn mse_loss(&mut self, prediction: NodeId, target: NodeId) -> Result<NodeId, TensorError> {
        self.check(prediction)?;
        self.check(target)?;
        Ok(self.push("mse_loss", Op::MseLoss(prediction, target)))
    }

    /// Adds an elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnknownNode`] for foreign node ids.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, TensorError> {
        self.check(a)?;
        self.check(b)?;
        Ok(self.push("sub", Op::Sub(a, b)))
    }

    /// Adds a multiplication by a constant scalar.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnknownNode`] for foreign node ids.
    pub fn scale(&mut self, x: NodeId, factor: f32) -> Result<NodeId, TensorError> {
        self.check(x)?;
        Ok(self.push("scale", Op::Scale(x, factor)))
    }

    /// Adds a logistic sigmoid.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnknownNode`] for foreign node ids.
    pub fn sigmoid(&mut self, x: NodeId) -> Result<NodeId, TensorError> {
        self.check(x)?;
        Ok(self.push("sigmoid", Op::Sigmoid(x)))
    }

    /// Adds a hyperbolic tangent.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnknownNode`] for foreign node ids.
    pub fn tanh(&mut self, x: NodeId) -> Result<NodeId, TensorError> {
        self.check(x)?;
        Ok(self.push("tanh", Op::Tanh(x)))
    }

    /// Adds a 2×2/stride-2 average pool.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnknownNode`] for foreign node ids.
    pub fn avg_pool2(&mut self, x: NodeId) -> Result<NodeId, TensorError> {
        self.check(x)?;
        Ok(self.push("avg_pool2", Op::AvgPool2(x)))
    }

    /// Adds a column-axis concatenation of two matrices.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnknownNode`] for foreign node ids.
    pub fn concat_cols(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, TensorError> {
        self.check(a)?;
        self.check(b)?;
        Ok(self.push("concat_cols", Op::ConcatCols(a, b)))
    }

    /// Adds a fused `matmul → add_bias[ → relu]` node (normally produced
    /// by the fusion pass rather than built by hand).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnknownNode`] for foreign node ids.
    pub fn fused_matmul(
        &mut self,
        lhs: NodeId,
        rhs: NodeId,
        bias: NodeId,
        relu: bool,
    ) -> Result<NodeId, TensorError> {
        self.check(lhs)?;
        self.check(rhs)?;
        self.check(bias)?;
        Ok(self.push(
            "fused_matmul",
            Op::FusedMatMul {
                lhs,
                rhs,
                bias,
                relu,
            },
        ))
    }

    /// Adds a fused `conv2d → add_bias[ → relu]` node.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnknownNode`] for foreign node ids.
    pub fn fused_conv2d(
        &mut self,
        input: NodeId,
        filter: NodeId,
        bias: NodeId,
        padding: Padding,
        relu: bool,
    ) -> Result<NodeId, TensorError> {
        self.check(input)?;
        self.check(filter)?;
        self.check(bias)?;
        Ok(self.push(
            "fused_conv2d",
            Op::FusedConv2d {
                input,
                filter,
                bias,
                padding,
                relu,
            },
        ))
    }

    /// All nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The node for `id`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnknownNode`] for foreign ids.
    pub fn node(&self, id: NodeId) -> Result<&Node, TensorError> {
        self.nodes.get(id.0).ok_or(TensorError::UnknownNode)
    }

    /// Ids of all variables, in creation order.
    pub fn variables(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.op, Op::Variable { .. }))
            .map(|(i, _)| NodeId(i))
            .collect()
    }

    /// Looks a node up by name (first match).
    pub fn by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(NodeId)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total bytes of variable and constant tensors (the "model size" the
    /// EPC accounting uses).
    pub fn param_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| match &n.op {
                Op::Variable { init } => init.byte_len(),
                Op::Constant(t) => t.byte_len(),
                _ => 0,
            })
            .sum()
    }

    pub(crate) fn push_node(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(node);
        id
    }

    /// Returns the id of the node at `index`, if in range. Indices are
    /// stable across serialization ([`crate::freeze`]), so external model
    /// formats may store them.
    pub fn node_id(&self, index: usize) -> Option<NodeId> {
        (index < self.nodes.len()).then_some(NodeId(index))
    }

    /// Replaces the tensor of an existing constant node (used by model
    /// optimization passes such as dequantization).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnknownNode`] for foreign ids or
    /// [`TensorError::InvalidGraph`] if the node is not a constant.
    pub fn replace_constant(&mut self, id: NodeId, value: Tensor) -> Result<(), TensorError> {
        let node = self.nodes.get_mut(id.0).ok_or(TensorError::UnknownNode)?;
        match &mut node.op {
            Op::Constant(t) => {
                *t = value;
                Ok(())
            }
            _ => Err(TensorError::InvalidGraph("node is not a constant")),
        }
    }

    /// Replaces any node's operation with a constant holding `value`
    /// (constant-folding support; downstream references are unaffected).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnknownNode`] for foreign ids.
    pub fn replace_with_constant(&mut self, id: NodeId, value: Tensor) -> Result<(), TensorError> {
        let node = self.nodes.get_mut(id.0).ok_or(TensorError::UnknownNode)?;
        node.op = Op::Constant(value);
        Ok(())
    }

    /// Appends a pre-built node, validating that all of its inputs
    /// reference existing nodes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnknownNode`] on a dangling input reference.
    pub fn append_node(&mut self, node: Node) -> Result<NodeId, TensorError> {
        for input in node.op.inputs() {
            self.check(input)?;
        }
        Ok(self.push_node(node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_graph() {
        let mut g = Graph::new();
        let x = g.placeholder("x", &[0, 4]);
        let w = g.variable("w", Tensor::zeros(&[4, 2]));
        let y = g.matmul(x, w).unwrap();
        let r = g.relu(y).unwrap();
        assert_eq!(g.len(), 4);
        assert_eq!(g.node(r).unwrap().op.kind(), "relu");
        assert_eq!(g.variables(), vec![w]);
        assert_eq!(g.by_name("x"), Some(x));
        assert_eq!(g.by_name("nope"), None);
    }

    #[test]
    fn foreign_node_rejected() {
        let mut g1 = Graph::new();
        let mut g2 = Graph::new();
        let a = g1.placeholder("a", &[1]);
        let b = g1.placeholder("b", &[1]);
        g1.add(a, b).unwrap();
        // g2 has no nodes; ids from g1 are invalid there.
        assert_eq!(g2.add(a, b).unwrap_err(), TensorError::UnknownNode);
    }

    #[test]
    fn inputs_enumeration() {
        let mut g = Graph::new();
        let a = g.placeholder("a", &[1]);
        let b = g.placeholder("b", &[1]);
        let s = g.add(a, b).unwrap();
        assert_eq!(g.node(s).unwrap().op.inputs(), vec![a, b]);
        assert!(g.node(a).unwrap().op.inputs().is_empty());
    }

    #[test]
    fn param_bytes_counts_vars_and_consts() {
        let mut g = Graph::new();
        g.variable("w", Tensor::zeros(&[10]));
        g.constant("c", Tensor::zeros(&[5]));
        g.placeholder("x", &[100]);
        assert_eq!(g.param_bytes(), 60);
    }
}
