//! Gradient-descent optimizers.

use crate::graph::NodeId;
use crate::tensor::Tensor;
use crate::TensorError;
use std::collections::HashMap;

/// An optimizer updates a variable in place given its gradient.
pub trait Optimizer {
    /// Applies one update step for variable `id`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the gradient shape does
    /// not match the variable.
    fn apply(&mut self, id: NodeId, value: &mut Tensor, grad: &Tensor) -> Result<(), TensorError>;
}

/// Plain stochastic gradient descent: `w -= lr * g`.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// The learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }
}

impl Optimizer for Sgd {
    fn apply(&mut self, _id: NodeId, value: &mut Tensor, grad: &Tensor) -> Result<(), TensorError> {
        if value.shape() != grad.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "sgd",
                detail: format!("{:?} vs {:?}", value.shape(), grad.shape()),
            });
        }
        for (v, &g) in value.data_mut().iter_mut().zip(grad.data()) {
            *v -= self.lr * g;
        }
        Ok(())
    }
}

/// SGD with classical momentum: `m = μm + g; w -= lr * m`.
#[derive(Debug, Clone)]
pub struct Momentum {
    lr: f32,
    mu: f32,
    velocity: HashMap<NodeId, Tensor>,
}

impl Momentum {
    /// Creates momentum SGD.
    pub fn new(lr: f32, mu: f32) -> Self {
        Momentum {
            lr,
            mu,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for Momentum {
    fn apply(&mut self, id: NodeId, value: &mut Tensor, grad: &Tensor) -> Result<(), TensorError> {
        if value.shape() != grad.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "momentum",
                detail: format!("{:?} vs {:?}", value.shape(), grad.shape()),
            });
        }
        let velocity = self
            .velocity
            .entry(id)
            .or_insert_with(|| Tensor::zeros(grad.shape()));
        for ((v, m), &g) in value
            .data_mut()
            .iter_mut()
            .zip(velocity.data_mut())
            .zip(grad.data())
        {
            *m = self.mu * *m + g;
            *v -= self.lr * *m;
        }
        Ok(())
    }
}

/// The Adam optimizer (Kingma & Ba 2015).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    epsilon: f32,
    steps: HashMap<NodeId, u32>,
    first_moment: HashMap<NodeId, Tensor>,
    second_moment: HashMap<NodeId, Tensor>,
}

impl Adam {
    /// Creates Adam with the canonical hyperparameters
    /// (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            steps: HashMap::new(),
            first_moment: HashMap::new(),
            second_moment: HashMap::new(),
        }
    }
}

impl Optimizer for Adam {
    fn apply(&mut self, id: NodeId, value: &mut Tensor, grad: &Tensor) -> Result<(), TensorError> {
        if value.shape() != grad.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "adam",
                detail: format!("{:?} vs {:?}", value.shape(), grad.shape()),
            });
        }
        let step = self.steps.entry(id).or_insert(0);
        *step += 1;
        let t = *step as f32;
        let m = self
            .first_moment
            .entry(id)
            .or_insert_with(|| Tensor::zeros(grad.shape()));
        let v = self
            .second_moment
            .entry(id)
            .or_insert_with(|| Tensor::zeros(grad.shape()));
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        for (((w, mi), vi), &g) in value
            .data_mut()
            .iter_mut()
            .zip(m.data_mut())
            .zip(v.data_mut())
            .zip(grad.data())
        {
            *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
            *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
            let m_hat = *mi / bias1;
            let v_hat = *vi / bias2;
            *w -= self.lr * m_hat / (v_hat.sqrt() + self.epsilon);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_step_direction() {
        let mut sgd = Sgd::new(0.1);
        let mut w = Tensor::from_vec(&[2], vec![1.0, -1.0]).unwrap();
        let g = Tensor::from_vec(&[2], vec![0.5, -0.5]).unwrap();
        sgd.apply(NodeId(0), &mut w, &g).unwrap();
        assert_eq!(w.data(), &[0.95, -0.95]);
    }

    #[test]
    fn sgd_shape_mismatch() {
        let mut sgd = Sgd::new(0.1);
        let mut w = Tensor::zeros(&[2]);
        assert!(sgd.apply(NodeId(0), &mut w, &Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut opt = Momentum::new(0.1, 0.9);
        let mut w = Tensor::from_vec(&[1], vec![0.0]).unwrap();
        let g = Tensor::from_vec(&[1], vec![1.0]).unwrap();
        opt.apply(NodeId(0), &mut w, &g).unwrap();
        let after_one = w.data()[0];
        opt.apply(NodeId(0), &mut w, &g).unwrap();
        let second_step = w.data()[0] - after_one;
        // Second step is larger than the first (velocity built up).
        assert!(second_step.abs() > after_one.abs());
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimize f(w) = (w - 3)^2; gradient = 2(w - 3).
        let mut adam = Adam::new(0.1);
        let mut w = Tensor::from_vec(&[1], vec![0.0]).unwrap();
        for _ in 0..300 {
            let g = Tensor::from_vec(&[1], vec![2.0 * (w.data()[0] - 3.0)]).unwrap();
            adam.apply(NodeId(0), &mut w, &g).unwrap();
        }
        assert!((w.data()[0] - 3.0).abs() < 0.05, "w = {}", w.data()[0]);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the first Adam step is ~lr regardless of
        // gradient magnitude.
        let mut adam = Adam::new(0.01);
        for g0 in [1e-4f32, 1.0, 1e4] {
            let mut w = Tensor::from_vec(&[1], vec![0.0]).unwrap();
            let g = Tensor::from_vec(&[1], vec![g0]).unwrap();
            adam.apply(NodeId(99), &mut w, &g).unwrap();
            assert!(
                (w.data()[0].abs() - 0.01).abs() < 1e-3,
                "step {} for gradient {g0}",
                w.data()[0]
            );
            adam = Adam::new(0.01);
        }
    }

    #[test]
    fn adam_shape_mismatch() {
        let mut adam = Adam::new(0.1);
        let mut w = Tensor::zeros(&[2]);
        assert!(adam.apply(NodeId(0), &mut w, &Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn momentum_tracks_variables_independently() {
        let mut opt = Momentum::new(0.1, 0.9);
        let mut a = Tensor::from_vec(&[1], vec![0.0]).unwrap();
        let mut b = Tensor::from_vec(&[1], vec![0.0]).unwrap();
        let g = Tensor::from_vec(&[1], vec![1.0]).unwrap();
        opt.apply(NodeId(0), &mut a, &g).unwrap();
        opt.apply(NodeId(0), &mut a, &g).unwrap();
        opt.apply(NodeId(1), &mut b, &g).unwrap();
        // b only took one fresh step.
        assert_eq!(b.data()[0], -0.1);
        assert!(a.data()[0] < b.data()[0]);
    }
}
