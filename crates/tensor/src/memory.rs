//! Liveness-driven memory planning shared by training and inference
//! (DESIGN.md §12).
//!
//! The paper's central performance observation is that enclave throughput
//! is dominated by EPC paging, which is why secureTF serves inference
//! through TF Lite's statically planned arena. This module generalizes
//! that planner to *training*: it computes the lifetime of every forward
//! value and every gradient on one unified timeline (forward steps, then
//! backward steps, then the optimizer), assigns each buffer an offset in
//! a shared arena via first-fit over non-overlapping lifetime intervals,
//! and drives execution so forward intermediates are recycled as soon as
//! their last gradient consumer has fired.
//!
//! Three layers consume the plan:
//!
//! * [`PlannedExecutor`] runs forward/backward passes against a reusable
//!   arena ([`crate::session::Session`] owns one per session),
//! * `securetf-tflite` builds its inference [`plan_inference`] arena from
//!   the same first-fit planner, and
//! * the TEE layer sizes one EPC region to [`MemoryPlan::peak_bytes`] and
//!   replays [`SlotWrite`]s as page touches, so the simulated hardware
//!   sees planned execution touch strictly fewer pages than the
//!   size-of-everything baseline.
//!
//! Planning never changes results: planned execution is bit-for-bit
//! identical to the unplanned pass (property-tested), and when a graph
//! cannot be planned (e.g. a placeholder fed with exotic shapes mid-run)
//! the executor silently falls back to unplanned execution.

use crate::autodiff::{self, RunStats};
use crate::graph::{Graph, NodeId, Op, Padding};
use crate::kernels::{WorkerPool, Workspace};
use crate::tensor::Tensor;
use crate::TensorError;
use std::collections::HashMap;

/// Execution memory strategy of a [`crate::session::Session`] (or a
/// tflite interpreter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemoryMode {
    /// Per-node `Vec` allocation; every intermediate lives to the end of
    /// the run. The pre-planning baseline, kept for A/B benchmarks.
    Unplanned,
    /// Liveness-planned arena execution (the default): bit-identical
    /// results, bounded resident set, recycled buffers.
    #[default]
    Planned,
}

/// One planned buffer: an offset range in the arena plus the half-open
/// lifetime interval (in unified timeline steps) during which it is live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// Byte offset of the buffer within the arena.
    pub offset: u64,
    /// Buffer size in bytes.
    pub bytes: u64,
    /// First timeline step at which the buffer holds live data.
    pub live_from: usize,
    /// Last timeline step at which the buffer may be read.
    pub live_to: usize,
}

/// A complete memory plan for one graph execution (inference or one
/// training step).
#[derive(Debug, Clone)]
pub struct MemoryPlan {
    /// Size of the arena: the high-water mark of the first-fit layout.
    /// Every live set fits below this offset at every step.
    pub peak_bytes: u64,
    /// What the same buffers would cost without sharing (the per-node
    /// `Vec` baseline): the sum of all planned buffer sizes.
    pub unshared_bytes: u64,
    steps: usize,
    shapes: Vec<Vec<usize>>,
    value_slots: Vec<Option<Slot>>,
    grad_slots: Vec<Option<Slot>>,
    /// For each timeline step, the nodes whose forward value dies there.
    value_drops: Vec<Vec<usize>>,
}

impl MemoryPlan {
    /// The arena slot of node `index`'s forward value, if planned.
    pub fn value_slot(&self, index: usize) -> Option<&Slot> {
        self.value_slots.get(index).and_then(Option::as_ref)
    }

    /// The arena slot of node `index`'s gradient, if planned.
    pub fn grad_slot(&self, index: usize) -> Option<&Slot> {
        self.grad_slots.get(index).and_then(Option::as_ref)
    }

    /// The statically inferred shape of node `index` (empty for scalars
    /// and for nodes outside the needed set).
    pub fn shape(&self, index: usize) -> &[usize] {
        self.shapes.get(index).map_or(&[], Vec::as_slice)
    }

    /// Number of steps on the unified timeline.
    pub fn steps(&self) -> usize {
        self.steps
    }
}

fn elems(shape: &[usize]) -> usize {
    shape.iter().product()
}

fn bytes_of(shape: &[usize]) -> u64 {
    elems(shape) as u64 * 4
}

/// Statically infers the shape of every needed node from the graph
/// structure plus the shapes of the feeds and variables.
///
/// # Errors
///
/// Returns the same classes of error the executor would raise (missing
/// feeds, operand rank/shape mismatches); callers treat any error as
/// "not plannable" and fall back to unplanned execution, which re-raises
/// the executor's own error for the user.
pub fn infer_shapes(
    graph: &Graph,
    needed: &[bool],
    feeds: &HashMap<NodeId, Tensor>,
    vars: &HashMap<NodeId, Tensor>,
) -> Result<Vec<Vec<usize>>, TensorError> {
    let mut shapes: Vec<Vec<usize>> = vec![Vec::new(); graph.len()];
    for (index, node) in graph.nodes().iter().enumerate() {
        if !needed.get(index).copied().unwrap_or(false) {
            continue;
        }
        let id = NodeId(index);
        let of = |nid: &NodeId| shapes[nid.0].clone();
        let mismatch = |detail: String| TensorError::ShapeMismatch {
            op: "memory_plan",
            detail,
        };
        let shape = match &node.op {
            Op::Placeholder { shape } => {
                let fed = feeds
                    .get(&id)
                    .ok_or_else(|| TensorError::BadFeed(format!("placeholder '{}' not fed", node.name)))?;
                if !autodiff::feed_matches_template(shape, fed.shape()) {
                    return Err(TensorError::BadFeed(format!(
                        "placeholder '{}' expects {:?}, fed {:?}",
                        node.name,
                        shape,
                        fed.shape()
                    )));
                }
                fed.shape().to_vec()
            }
            Op::Variable { .. } => vars
                .get(&id)
                .ok_or(TensorError::InvalidGraph("variable without session value"))?
                .shape()
                .to_vec(),
            Op::Constant(t) => t.shape().to_vec(),
            Op::MatMul(a, b) => {
                let (sa, sb) = (of(a), of(b));
                let (&[m, k1], &[k2, n]) = (sa.as_slice(), sb.as_slice()) else {
                    return Err(mismatch(format!("matmul {sa:?} × {sb:?}")));
                };
                if k1 != k2 {
                    return Err(mismatch(format!("matmul inner dims {k1} vs {k2}")));
                }
                vec![m, n]
            }
            Op::AddBias(x, _) | Op::Relu(x) | Op::Softmax(x) | Op::Sigmoid(x) | Op::Tanh(x) => of(x),
            Op::Add(a, b) | Op::Mul(a, b) | Op::Sub(a, b) => {
                let (sa, sb) = (of(a), of(b));
                if sa != sb {
                    return Err(mismatch(format!("elementwise {sa:?} vs {sb:?}")));
                }
                sa
            }
            Op::Scale(x, _) => of(x),
            Op::Conv2d {
                input,
                filter,
                padding,
            } => {
                let (si, sf) = (of(input), of(filter));
                let (&[b, h, w, cin], &[kh, kw, fcin, cout]) = (si.as_slice(), sf.as_slice())
                else {
                    return Err(mismatch(format!("conv2d {si:?} * {sf:?}")));
                };
                if fcin != cin {
                    return Err(mismatch(format!("conv2d channels {cin} vs {fcin}")));
                }
                let (oh, ow) = match padding {
                    Padding::Same => (h, w),
                    Padding::Valid => {
                        if h < kh || w < kw {
                            return Err(mismatch(format!(
                                "conv2d input {h}x{w} smaller than kernel {kh}x{kw}"
                            )));
                        }
                        (h - kh + 1, w - kw + 1)
                    }
                };
                vec![b, oh, ow, cout]
            }
            Op::MaxPool2(x) | Op::AvgPool2(x) => {
                let sx = of(x);
                let &[b, h, w, c] = sx.as_slice() else {
                    return Err(mismatch(format!("pool2 {sx:?} (need NHWC)")));
                };
                vec![b, h / 2, w / 2, c]
            }
            Op::Flatten(x) => {
                let sx = of(x);
                let batch = *sx.first().unwrap_or(&1);
                let rest = elems(&sx) / batch.max(1);
                vec![batch, rest]
            }
            Op::Reshape(x, shape) => {
                if elems(&of(x)) != elems(shape) {
                    return Err(mismatch(format!("reshape {:?} -> {shape:?}", of(x))));
                }
                shape.clone()
            }
            Op::SoftmaxCrossEntropy { logits, labels } => {
                let (sl, sy) = (of(logits), of(labels));
                if sl != sy || sl.len() != 2 {
                    return Err(mismatch(format!("softmax_xent {sl:?} vs {sy:?}")));
                }
                Vec::new()
            }
            Op::MseLoss(p, t) => {
                let (sp, st) = (of(p), of(t));
                if sp != st {
                    return Err(mismatch(format!("mse_loss {sp:?} vs {st:?}")));
                }
                Vec::new()
            }
            Op::ConcatCols(a, b) => {
                let (sa, sb) = (of(a), of(b));
                let (&[m1, n1], &[m2, n2]) = (sa.as_slice(), sb.as_slice()) else {
                    return Err(mismatch(format!("concat_cols {sa:?} ++ {sb:?}")));
                };
                if m1 != m2 {
                    return Err(mismatch(format!("concat_cols rows {m1} vs {m2}")));
                }
                vec![m1, n1 + n2]
            }
            Op::FusedMatMul { lhs, rhs, bias, .. } => {
                let (sa, sb, sc) = (of(lhs), of(rhs), of(bias));
                let (&[m, k1], &[k2, n]) = (sa.as_slice(), sb.as_slice()) else {
                    return Err(mismatch(format!("fused_matmul {sa:?} × {sb:?}")));
                };
                if k1 != k2 {
                    return Err(mismatch(format!("fused_matmul inner dims {k1} vs {k2}")));
                }
                if sc != [n] {
                    return Err(mismatch(format!("fused_matmul bias {sc:?} vs columns {n}")));
                }
                vec![m, n]
            }
            Op::FusedConv2d {
                input,
                filter,
                bias,
                padding,
                ..
            } => {
                let (si, sf, sc) = (of(input), of(filter), of(bias));
                let (&[b, h, w, cin], &[kh, kw, fcin, cout]) = (si.as_slice(), sf.as_slice())
                else {
                    return Err(mismatch(format!("fused_conv2d {si:?} * {sf:?}")));
                };
                if fcin != cin {
                    return Err(mismatch(format!("fused_conv2d channels {cin} vs {fcin}")));
                }
                if sc != [cout] {
                    return Err(mismatch(format!("fused_conv2d bias {sc:?} vs channels {cout}")));
                }
                let (oh, ow) = match padding {
                    Padding::Same => (h, w),
                    Padding::Valid => {
                        if h < kh || w < kw {
                            return Err(mismatch(format!(
                                "fused_conv2d input {h}x{w} smaller than kernel {kh}x{kw}"
                            )));
                        }
                        (h - kh + 1, w - kw + 1)
                    }
                };
                vec![b, oh, ow, cout]
            }
        };
        shapes[index] = shape;
    }
    Ok(shapes)
}

/// Whether the backward rule of `op` reads the forward *value* of the
/// given input position (as opposed to only its shape, which the plan
/// provides statically).
fn backward_reads_input(op: &Op, position: usize) -> bool {
    match op {
        // ga = grad × bᵀ and gb = aᵀ × grad read both operands.
        Op::MatMul(..) | Op::Mul(..) => true,
        // Relu masks on its input; pooling argmax recomputes from it.
        Op::Relu(_) | Op::MaxPool2(_) => true,
        // conv2d_grad rebuilds the im2col matrix from the input and
        // multiplies by the filter.
        Op::Conv2d { .. } => true,
        // The loss gradients re-read both operands.
        Op::SoftmaxCrossEntropy { .. } | Op::MseLoss(..) => true,
        // Fused epilogue ops read their data operands (positions 0/1)
        // like the unfused MatMul/Conv2d; the bias gradient is a column
        // sum of the incoming gradient, so the bias *value* (position 2)
        // is never read — only its plan shape.
        Op::FusedMatMul { .. } | Op::FusedConv2d { .. } => position < 2,
        // Shape-only (AddBias, Flatten, Reshape, AvgPool2, ConcatCols)
        // or nothing at all (Add, Sub, Scale); the self-output readers
        // (Softmax, Sigmoid, Tanh) are handled by the caller.
        _ => false,
    }
}

/// Whether the backward rule of `op` reads the node's *own* forward
/// output (the s·(1-s)-style activations, and the fused-relu mask).
fn backward_reads_output(op: &Op) -> bool {
    match op {
        Op::Softmax(_) | Op::Sigmoid(_) | Op::Tanh(_) => true,
        // A fused relu masks the backward pass on the fused output
        // (`y > 0 ⟺ pre-activation > 0`, exactly); without relu the
        // epilogue is linear and nothing re-reads the output.
        Op::FusedMatMul { relu, .. } | Op::FusedConv2d { relu, .. } => *relu,
        _ => false,
    }
}

/// The input positions of `op` that receive gradient contributions.
fn grad_inputs(op: &Op) -> Vec<NodeId> {
    match op {
        // Losses propagate only through their prediction operand.
        Op::SoftmaxCrossEntropy { logits, .. } => vec![*logits],
        Op::MseLoss(p, _) => vec![*p],
        _ => op.inputs(),
    }
}

/// Nodes that never live in the arena: variable and constant storage is
/// owned by the session/graph (the EPC "params" region), not the
/// activation arena.
fn is_param(op: &Op) -> bool {
    matches!(op, Op::Variable { .. } | Op::Constant(_))
}

struct Request {
    /// 0 = forward value, 1 = gradient (tie-break only).
    kind: u8,
    node: usize,
    bytes: u64,
    from: usize,
    to: usize,
}

/// First-fit offset assignment over non-overlapping lifetime intervals —
/// the TF Lite arena algorithm. Requests are placed in (birth, node,
/// kind) order; each goes at the lowest offset whose gap clears every
/// already-placed, lifetime-overlapping slot. Returns `(peak, offsets)`.
fn first_fit(requests: &[Request]) -> (u64, Vec<u64>) {
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by_key(|&i| (requests[i].from, requests[i].node, requests[i].kind));
    let mut offsets = vec![0u64; requests.len()];
    let mut placed: Vec<usize> = Vec::new();
    let mut peak = 0u64;
    for &i in &order {
        let req = &requests[i];
        let mut conflicts: Vec<(u64, u64)> = placed
            .iter()
            .map(|&j| &requests[j])
            .zip(placed.iter().map(|&j| offsets[j]))
            .filter(|(other, _)| other.from <= req.to && req.from <= other.to)
            .map(|(other, off)| (off, off + other.bytes))
            .collect();
        conflicts.sort_unstable();
        let mut offset = 0u64;
        for (start, end) in conflicts {
            if offset + req.bytes <= start {
                break;
            }
            offset = offset.max(end);
        }
        offsets[i] = offset;
        peak = peak.max(offset + req.bytes);
        placed.push(i);
    }
    (peak, offsets)
}

fn build_plan(
    graph: &Graph,
    shapes: Vec<Vec<usize>>,
    steps: usize,
    value_lives: &[Option<(usize, usize)>],
    grad_lives: &[Option<(usize, usize)>],
) -> MemoryPlan {
    let mut requests = Vec::new();
    let mut owners: Vec<(u8, usize)> = Vec::new();
    for (index, live) in value_lives.iter().enumerate() {
        let Some(&(from, to)) = live.as_ref() else {
            continue;
        };
        let bytes = bytes_of(&shapes[index]);
        if bytes == 0 || is_param(&graph.nodes()[index].op) {
            continue;
        }
        requests.push(Request {
            kind: 0,
            node: index,
            bytes,
            from,
            to,
        });
        owners.push((0, index));
    }
    for (index, live) in grad_lives.iter().enumerate() {
        let Some(&(from, to)) = live.as_ref() else {
            continue;
        };
        let bytes = bytes_of(&shapes[index]);
        if bytes == 0 {
            continue;
        }
        requests.push(Request {
            kind: 1,
            node: index,
            bytes,
            from,
            to,
        });
        owners.push((1, index));
    }
    let (peak_bytes, offsets) = first_fit(&requests);
    let unshared_bytes = requests.iter().map(|r| r.bytes).sum();
    let mut value_slots: Vec<Option<Slot>> = vec![None; graph.len()];
    let mut grad_slots: Vec<Option<Slot>> = vec![None; graph.len()];
    let mut value_drops: Vec<Vec<usize>> = vec![Vec::new(); steps];
    for ((req, &offset), &(kind, node)) in requests.iter().zip(&offsets).zip(&owners) {
        let slot = Slot {
            offset,
            bytes: req.bytes,
            live_from: req.from,
            live_to: req.to,
        };
        if kind == 0 {
            value_slots[node] = Some(slot);
            // Values living to the final step are fetch targets (or
            // optimizer inputs); the end-of-run sweep reclaims them.
            if req.to + 1 < steps {
                value_drops[req.to].push(node);
            }
        } else {
            grad_slots[node] = Some(slot);
        }
    }
    for drops in &mut value_drops {
        drops.sort_unstable();
    }
    MemoryPlan {
        peak_bytes,
        unshared_bytes,
        steps,
        shapes,
        value_slots,
        grad_slots,
        value_drops,
    }
}

/// Plans an inference pass: node `i` is computed at step `i` and dies at
/// its last consumer; `targets` survive to the end of the run.
///
/// # Errors
///
/// Returns [`TensorError::UnknownNode`] for out-of-range targets.
pub fn plan_inference(
    graph: &Graph,
    shapes: Vec<Vec<usize>>,
    needed: &[bool],
    targets: &[NodeId],
) -> Result<MemoryPlan, TensorError> {
    let steps = graph.len() + 1;
    let mut value_lives: Vec<Option<(usize, usize)>> = vec![None; graph.len()];
    for index in 0..graph.len() {
        if !needed.get(index).copied().unwrap_or(false) {
            continue;
        }
        value_lives[index] = Some((index, index));
        for input in graph.nodes()[index].op.inputs() {
            if let Some(live) = value_lives[input.0].as_mut() {
                live.1 = live.1.max(index);
            }
        }
    }
    for target in targets {
        let live = value_lives
            .get_mut(target.0)
            .ok_or(TensorError::UnknownNode)?;
        if let Some(live) = live.as_mut() {
            live.1 = graph.len();
        }
    }
    let grad_lives = vec![None; graph.len()];
    Ok(build_plan(graph, shapes, steps, &value_lives, &grad_lives))
}

/// Plans one training step on the unified timeline: node `i`'s forward
/// value is born at step `i`; the backward pass visits node `i` at step
/// `2L+1-i` (`L` = the loss index); step `2L+2` is the optimizer update.
/// A forward value lives until its last consumer — forward *or* backward
/// (per `backward_reads_input`) — has fired; gradients are born at
/// their first contribution and die when their node's backward rule runs
/// (variables' gradients survive to the optimizer step).
///
/// # Errors
///
/// Returns [`TensorError::UnknownNode`] if `loss` is out of range.
pub fn plan_training(
    graph: &Graph,
    shapes: Vec<Vec<usize>>,
    needed: &[bool],
    loss: NodeId,
) -> Result<MemoryPlan, TensorError> {
    let l = loss.0;
    if l >= graph.len() {
        return Err(TensorError::UnknownNode);
    }
    let steps = 2 * l + 3;
    let bstep = |i: usize| 2 * l + 1 - i;

    // Which nodes receive a gradient at all: walk contributions down
    // from the loss.
    let mut has_grad = vec![false; graph.len()];
    has_grad[l] = true;
    for index in (0..=l).rev() {
        if !has_grad[index] || !needed.get(index).copied().unwrap_or(false) {
            continue;
        }
        for input in grad_inputs(&graph.nodes()[index].op) {
            has_grad[input.0] = true;
        }
    }

    let mut value_lives: Vec<Option<(usize, usize)>> = vec![None; graph.len()];
    for index in 0..=l {
        if !needed.get(index).copied().unwrap_or(false) {
            continue;
        }
        let op = &graph.nodes()[index].op;
        let mut death = index;
        if has_grad[index] && backward_reads_output(op) {
            death = death.max(bstep(index));
        }
        value_lives[index] = Some((index, death));
        for (position, input) in op.inputs().into_iter().enumerate() {
            let Some(live) = value_lives[input.0].as_mut() else {
                continue;
            };
            live.1 = live.1.max(index);
            if has_grad[index] && backward_reads_input(op, position) {
                live.1 = live.1.max(bstep(index));
            }
        }
    }
    // The gradient seed reads the loss value's shape at the first
    // backward step.
    if let Some(live) = value_lives[l].as_mut() {
        live.1 = live.1.max(l + 1);
    }

    let mut grad_lives: Vec<Option<(usize, usize)>> = vec![None; graph.len()];
    for index in (0..=l).rev() {
        if !has_grad[index] || !needed.get(index).copied().unwrap_or(false) {
            continue;
        }
        let death = if is_var(graph, index) { 2 * l + 2 } else { bstep(index) };
        if index == l {
            grad_lives[index] = Some((l + 1, death));
        } else {
            // Born when the highest-index contributing consumer runs.
            let birth = (index + 1..=l)
                .rev()
                .find(|&j| {
                    has_grad[j]
                        && needed.get(j).copied().unwrap_or(false)
                        && grad_inputs(&graph.nodes()[j].op).contains(&NodeId(index))
                })
                .map(bstep);
            if let Some(birth) = birth {
                grad_lives[index] = Some((birth, death));
            }
        }
    }

    Ok(build_plan(graph, shapes, steps, &value_lives, &grad_lives))
}

fn is_var(graph: &Graph, index: usize) -> bool {
    matches!(graph.nodes()[index].op, Op::Variable { .. })
}

/// A recycling pool of exact-length `f32` buffers backing arena slots.
///
/// The simulated arena is virtual: the *plan* assigns byte offsets (which
/// the TEE layer replays as EPC page touches), while execution backs each
/// live slot with a recycled `Vec<f32>`. `take` always returns a zeroed
/// buffer, so recycling can never change results.
#[derive(Debug, Clone, Default)]
pub struct Arena {
    free: HashMap<usize, Vec<Vec<f32>>>,
}

impl Arena {
    /// A zeroed buffer of exactly `len` elements, recycled if available.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        if let Some(mut buf) = self.free.get_mut(&len).and_then(Vec::pop) {
            buf.fill(0.0);
            buf
        } else {
            vec![0.0f32; len]
        }
    }

    /// Returns a buffer to the pool.
    pub fn put(&mut self, buf: Vec<f32>) {
        if !buf.is_empty() {
            self.free.entry(buf.len()).or_default().push(buf);
        }
    }
}

/// One write into the planned arena, for the TEE layer to replay as an
/// EPC page touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotWrite {
    /// Byte offset of the written slot within the arena.
    pub offset: u64,
    /// Bytes written.
    pub bytes: u64,
}

/// Point-in-time memory statistics of a planned executor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Arena size the current plan requires (0 when unplanned).
    pub planned_peak_bytes: u64,
    /// Sum of all planned buffer sizes — the no-sharing baseline.
    pub unshared_bytes: u64,
    /// Slot bytes live right now.
    pub resident_bytes: u64,
    /// High-water mark of `resident_bytes` during the last run.
    pub peak_resident_bytes: u64,
}

/// Runtime state of one planned execution: the plan, the backing arena,
/// resident accounting, and the slot-write log.
#[derive(Debug, Clone)]
pub struct ExecMemory {
    plan: MemoryPlan,
    arena: Arena,
    resident_bytes: u64,
    peak_resident_bytes: u64,
    writes: Vec<SlotWrite>,
}

impl ExecMemory {
    fn new(plan: MemoryPlan) -> ExecMemory {
        ExecMemory {
            plan,
            arena: Arena::default(),
            resident_bytes: 0,
            peak_resident_bytes: 0,
            writes: Vec::new(),
        }
    }

    /// The plan this execution follows.
    pub fn plan(&self) -> &MemoryPlan {
        &self.plan
    }

    pub(crate) fn begin_run(&mut self) {
        self.resident_bytes = 0;
        self.peak_resident_bytes = 0;
        // Bound the log when no one drains it between runs.
        self.writes.clear();
    }

    pub(crate) fn take(&mut self, len: usize) -> Vec<f32> {
        self.arena.take(len)
    }

    pub(crate) fn recycle(&mut self, tensor: Tensor) {
        self.arena.put(tensor.into_data());
    }

    fn note_live(&mut self, slot: Slot) {
        self.resident_bytes += slot.bytes;
        self.peak_resident_bytes = self.peak_resident_bytes.max(self.resident_bytes);
        self.writes.push(SlotWrite {
            offset: slot.offset,
            bytes: slot.bytes,
        });
    }

    pub(crate) fn on_value(&mut self, index: usize, value: &Tensor) {
        if let Some(&slot) = self.plan.value_slot(index) {
            debug_assert_eq!(slot.bytes, value.byte_len(), "planned shape drift at node {index}");
            self.note_live(slot);
        }
    }

    pub(crate) fn on_grad(&mut self, index: usize, grad: &Tensor) {
        if let Some(&slot) = self.plan.grad_slot(index) {
            debug_assert_eq!(slot.bytes, grad.byte_len(), "planned grad shape drift at node {index}");
            self.note_live(slot);
        }
    }

    pub(crate) fn release_grad(&mut self, index: usize, grad: Tensor) {
        if let Some(slot) = self.plan.grad_slot(index) {
            self.resident_bytes = self.resident_bytes.saturating_sub(slot.bytes);
        }
        self.recycle(grad);
    }

    /// Recycles every forward value whose planned lifetime ends at `step`.
    pub(crate) fn drop_dead_values(&mut self, step: usize, values: &mut [Option<Tensor>]) {
        // The drop list borrows the plan; move it out while recycling.
        let Some(entry) = self.plan.value_drops.get_mut(step) else {
            return;
        };
        let dead = std::mem::take(entry);
        for &index in &dead {
            if let Some(value) = values[index].take() {
                if let Some(slot) = self.plan.value_slot(index) {
                    self.resident_bytes = self.resident_bytes.saturating_sub(slot.bytes);
                }
                self.arena.put(value.into_data());
            }
        }
        self.plan.value_drops[step] = dead;
    }

    /// Recycles everything left alive at the end of a run and zeroes the
    /// resident gauge.
    pub(crate) fn end_run(&mut self, values: &mut [Option<Tensor>]) {
        for value in values.iter_mut() {
            if let Some(t) = value.take() {
                self.arena.put(t.into_data());
            }
        }
        self.resident_bytes = 0;
    }

    /// Drains the slot writes recorded since the last call.
    pub fn take_writes(&mut self) -> Vec<SlotWrite> {
        std::mem::take(&mut self.writes)
    }
}

#[derive(Debug, Clone)]
struct CachedPlan {
    key: u64,
    /// `None` records "this configuration is not plannable" so the
    /// fallback path does not re-run inference every step.
    mem: Option<ExecMemory>,
}

/// Fingerprint of everything the plan depends on: graph structure, feed
/// and variable shapes, targets, and the training flag.
fn plan_key(
    graph: &Graph,
    feeds: &HashMap<NodeId, Tensor>,
    vars: &HashMap<NodeId, Tensor>,
    targets: &[NodeId],
    train: bool,
) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |value: u64| {
        for byte in value.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(graph.len() as u64);
    eat(u64::from(train));
    for (index, node) in graph.nodes().iter().enumerate() {
        for byte in node.op.kind().bytes() {
            eat(u64::from(byte));
        }
        for input in node.op.inputs() {
            eat(input.0 as u64);
        }
        let id = NodeId(index);
        let shape: Option<&[usize]> = match &node.op {
            Op::Placeholder { .. } => feeds.get(&id).map(Tensor::shape),
            Op::Variable { .. } => vars.get(&id).map(Tensor::shape),
            Op::Constant(t) => Some(t.shape()),
            _ => None,
        };
        if let Some(shape) = shape {
            eat(shape.len() as u64);
            for &dim in shape {
                eat(dim as u64);
            }
        }
    }
    for target in targets {
        eat(target.0 as u64);
    }
    hash
}

/// A reusable planned-execution engine: caches the memory plan, the
/// arena, and the values vector across runs of the same configuration
/// (shape change → transparent replan; unplannable graph → transparent
/// fallback to unplanned execution).
#[derive(Debug, Clone, Default)]
pub struct PlannedExecutor {
    ws: Workspace,
    values: Vec<Option<Tensor>>,
    cached: Option<CachedPlan>,
}

impl PlannedExecutor {
    /// Creates an executor with no cached plan.
    pub fn new() -> PlannedExecutor {
        PlannedExecutor::default()
    }

    /// The plan size of the current cached plan, if any.
    pub fn planned_peak_bytes(&self) -> Option<u64> {
        self.cached
            .as_ref()
            .and_then(|c| c.mem.as_ref())
            .map(|m| m.plan.peak_bytes)
    }

    /// Current memory statistics (zeros when running unplanned).
    pub fn memory_stats(&self) -> MemoryStats {
        match self.cached.as_ref().and_then(|c| c.mem.as_ref()) {
            Some(mem) => MemoryStats {
                planned_peak_bytes: mem.plan.peak_bytes,
                unshared_bytes: mem.plan.unshared_bytes,
                resident_bytes: mem.resident_bytes,
                peak_resident_bytes: mem.peak_resident_bytes,
            },
            None => MemoryStats::default(),
        }
    }

    /// Drains the arena slot writes recorded by runs since the last call
    /// (empty when running unplanned).
    pub fn take_slot_writes(&mut self) -> Vec<SlotWrite> {
        self.cached
            .as_mut()
            .and_then(|c| c.mem.as_mut())
            .map(ExecMemory::take_writes)
            .unwrap_or_default()
    }

    fn ensure_plan(
        &mut self,
        graph: &Graph,
        feeds: &HashMap<NodeId, Tensor>,
        vars: &HashMap<NodeId, Tensor>,
        needed: &[bool],
        targets: &[NodeId],
        loss: Option<NodeId>,
    ) {
        let key = plan_key(graph, feeds, vars, targets, loss.is_some());
        if let Some(cached) = &self.cached {
            if cached.key == key {
                return;
            }
        }
        let plan = infer_shapes(graph, needed, feeds, vars).and_then(|shapes| match loss {
            Some(loss) => plan_training(graph, shapes, needed, loss),
            None => plan_inference(graph, shapes, needed, targets),
        });
        self.cached = Some(CachedPlan {
            key,
            mem: plan.ok().map(ExecMemory::new),
        });
    }

    /// Evaluates `targets`, preferring planned execution. Results and
    /// [`RunStats`] are bit-identical to [`autodiff::forward_with`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`autodiff::forward_with`].
    pub fn run(
        &mut self,
        graph: &Graph,
        feeds: &HashMap<NodeId, Tensor>,
        vars: &HashMap<NodeId, Tensor>,
        targets: &[NodeId],
        pool: &WorkerPool,
    ) -> Result<(Vec<Tensor>, RunStats), TensorError> {
        let needed = autodiff::needed_set(graph, targets)?;
        self.ensure_plan(graph, feeds, vars, &needed, targets, None);
        let Some(mem) = self.cached.as_mut().and_then(|c| c.mem.as_mut()) else {
            let fwd = autodiff::forward_with(graph, feeds, vars, targets, pool)?;
            let outs = targets
                .iter()
                .map(|&id| fwd.value(id).cloned().ok_or(TensorError::UnknownNode))
                .collect::<Result<Vec<_>, _>>()?;
            return Ok((outs, fwd.stats));
        };
        mem.begin_run();
        self.values.clear();
        self.values.resize(graph.len(), None);
        let stats = autodiff::forward_planned(
            graph,
            feeds,
            vars,
            &needed,
            pool,
            &mut self.ws,
            mem,
            &mut self.values,
        );
        let stats = match stats {
            Ok(stats) => stats,
            Err(e) => {
                mem.end_run(&mut self.values);
                return Err(e);
            }
        };
        let outs = targets
            .iter()
            .map(|&id| self.values[id.0].clone().ok_or(TensorError::UnknownNode))
            .collect::<Result<Vec<_>, _>>();
        mem.end_run(&mut self.values);
        Ok((outs?, stats))
    }

    /// Runs forward + backward for one training step, preferring planned
    /// execution. Returns the loss value, the gradients of every
    /// variable, and the forward-pass stats — all bit-identical to the
    /// unplanned `forward_with` + `backward_with` pair.
    ///
    /// # Errors
    ///
    /// Same conditions as [`autodiff::forward_with`] and
    /// [`autodiff::backward_with`].
    pub fn train(
        &mut self,
        graph: &Graph,
        feeds: &HashMap<NodeId, Tensor>,
        vars: &HashMap<NodeId, Tensor>,
        loss: NodeId,
        pool: &WorkerPool,
    ) -> Result<(f32, HashMap<NodeId, Tensor>, RunStats), TensorError> {
        let targets = [loss];
        let needed = autodiff::needed_set(graph, &targets)?;
        self.ensure_plan(graph, feeds, vars, &needed, &targets, Some(loss));
        let Some(mem) = self.cached.as_mut().and_then(|c| c.mem.as_mut()) else {
            let fwd = autodiff::forward_with(graph, feeds, vars, &targets, pool)?;
            let loss_value = fwd.value(loss).ok_or(TensorError::UnknownNode)?.data()[0];
            let grads = autodiff::backward_with(graph, &fwd, loss, pool)?;
            let var_grads = graph
                .variables()
                .into_iter()
                .filter_map(|v| grads.get(&v).map(|g| (v, g.clone())))
                .collect();
            return Ok((loss_value, var_grads, fwd.stats));
        };
        mem.begin_run();
        self.values.clear();
        self.values.resize(graph.len(), None);
        let result = autodiff::forward_planned(
            graph,
            feeds,
            vars,
            &needed,
            pool,
            &mut self.ws,
            mem,
            &mut self.values,
        )
        .and_then(|stats| {
            let loss_value = self.values[loss.0]
                .as_ref()
                .ok_or(TensorError::UnknownNode)?
                .data()[0];
            let grads = autodiff::backward_planned(
                graph,
                &mut self.values,
                loss,
                pool,
                &mut self.ws,
                mem,
            )?;
            Ok((loss_value, grads, stats))
        });
        mem.end_run(&mut self.values);
        result
    }
}
