//! im2col + GEMM convolution, forward and backward.
//!
//! The forward pass lowers NHWC convolution to one matrix product: the
//! `[positions, patch]` column matrix (one row per output position, one
//! column per `(ky, kx, ci)` filter tap, **explicit zeros** for `Same`
//! padding) times the `[patch, cout]` filter — the filter's natural
//! row-major layout. The backward pass is two more GEMM-shaped products
//! (`gf = colsᵀ × grad`, `gcol = grad × filterᵀ`) plus a `col2im`
//! scatter, each parallelized over disjoint output ranges.
//!
//! Per-element reduction orders are fixed (documented on each stage), so
//! all three stages are bit-identical to their serial and naive
//! reference counterparts. Note the *semantics*: padded taps participate
//! arithmetically as `0.0` operands (so a NaN/Inf filter tap propagates
//! through padding), unlike a bounds-skip.

use super::gemm;
use super::pool::{self, WorkerPool};
use super::{KernelCost, TakeBuffer, Workspace};
use crate::graph::Padding;
use crate::tensor::Tensor;
use crate::TensorError;

/// Resolved shapes of one convolution.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Geometry {
    pub b: usize,
    pub h: usize,
    pub w: usize,
    pub cin: usize,
    pub kh: usize,
    pub kw: usize,
    pub cout: usize,
    pub oh: usize,
    pub ow: usize,
    /// Top/left padding offsets.
    pub ph: usize,
    pub pw: usize,
    /// Column-matrix width: `kh * kw * cin`.
    pub patch: usize,
    /// Column-matrix height: `b * oh * ow`.
    pub positions: usize,
}

/// Validates shapes and resolves output/padding geometry.
pub(crate) fn geometry(input: &Tensor, filter: &Tensor, padding: Padding) -> Result<Geometry, TensorError> {
    let &[b, h, w, cin] = input.shape() else {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            detail: format!("input {:?} (need NHWC)", input.shape()),
        });
    };
    let &[kh, kw, fcin, cout] = filter.shape() else {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            detail: format!("filter {:?} (need [kh,kw,cin,cout])", filter.shape()),
        });
    };
    if fcin != cin {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            detail: format!("input channels {cin} vs filter {fcin}"),
        });
    }
    let (oh, ow) = match padding {
        Padding::Same => (h, w),
        Padding::Valid => {
            if h < kh || w < kw {
                return Err(TensorError::ShapeMismatch {
                    op: "conv2d",
                    detail: format!("input {h}x{w} smaller than kernel {kh}x{kw}"),
                });
            }
            (h - kh + 1, w - kw + 1)
        }
    };
    let (ph, pw) = match padding {
        Padding::Same => ((kh - 1) / 2, (kw - 1) / 2),
        Padding::Valid => (0, 0),
    };
    Ok(Geometry {
        b,
        h,
        w,
        cin,
        kh,
        kw,
        cout,
        oh,
        ow,
        ph,
        pw,
        patch: kh * kw * cin,
        positions: b * oh * ow,
    })
}

/// Builds the `[positions, patch]` column matrix into `ws.cols`, one row
/// per output position, parallel over position rows (pure copies, no
/// arithmetic). The buffer is resized and re-zeroed here, so padded taps
/// stay `0.0` regardless of what a previous call left behind.
fn im2col<'a>(pool: &WorkerPool, g: &Geometry, input: &[f32], ws: &'a mut Workspace) -> &'a [f32] {
    ws.cols.clear();
    ws.cols.resize(g.positions * g.patch, 0.0);
    im2col_into(pool, g, input, &mut ws.cols[..]);
    &ws.cols[..]
}

/// [`im2col`] writing into a pre-sized, pre-zeroed `cols` slice.
fn im2col_into(pool: &WorkerPool, g: &Geometry, input: &[f32], cols: &mut [f32]) {
    if cols.is_empty() {
        return;
    }
    let (h, w, cin, oh, ow, ph, pw, kh, kw) = (g.h, g.w, g.cin, g.oh, g.ow, g.ph, g.pw, g.kh, g.kw);
    pool.run_on_blocks(cols, g.patch, &|p, row| {
        let ox = p % ow;
        let rest = p / ow;
        let oy = rest % oh;
        let bi = rest / oh;
        for ky in 0..kh {
            let iy = (oy + ky) as isize - ph as isize;
            if iy < 0 || iy >= h as isize {
                continue; // row is pre-zeroed: padding stays 0.0
            }
            for kx in 0..kw {
                let ix = (ox + kx) as isize - pw as isize;
                if ix < 0 || ix >= w as isize {
                    continue;
                }
                let dst = (ky * kw + kx) * cin;
                let src = ((bi * h + iy as usize) * w + ix as usize) * cin;
                row[dst..dst + cin].copy_from_slice(&input[src..src + cin]);
            }
        }
    });
}

/// Critical path of `flops` split into `blocks` equal work units.
fn stage_cost(flops: f64, blocks: usize, workers: usize) -> KernelCost {
    let critical_flops = if blocks == 0 {
        0.0
    } else {
        flops * pool::critical_units(blocks, workers) as f64 / blocks as f64
    };
    KernelCost { flops, critical_flops }
}

/// Forward convolution. Returns `[b, oh, ow, cout]` and the cost.
pub(super) fn conv2d(
    pool: &WorkerPool,
    input: &Tensor,
    filter: &Tensor,
    padding: Padding,
) -> Result<(Tensor, KernelCost), TensorError> {
    let mut ws = Workspace::new();
    conv2d_with(pool, &mut ws, input, filter, padding, &mut |len| {
        vec![0.0f32; len]
    })
}

/// Forward convolution with caller-provided scratch and output buffer.
pub(super) fn conv2d_with(
    pool: &WorkerPool,
    ws: &mut Workspace,
    input: &Tensor,
    filter: &Tensor,
    padding: Padding,
    take: TakeBuffer<'_>,
) -> Result<(Tensor, KernelCost), TensorError> {
    let g = geometry(input, filter, padding)?;
    let mut out = take(g.positions * g.cout);
    {
        let cols = im2col(pool, &g, input.data(), ws);
        // Per output element (p, co): reduction over patch index increasing —
        // i.e. (ky, kx, ci) lexicographic, padded taps included as 0.0.
        gemm::gemm(pool, g.positions, g.patch, g.cout, cols, filter.data(), &mut out);
    }
    let cost = gemm::gemm_cost(pool, g.positions, g.patch, g.cout);
    Ok((Tensor::from_vec(&[g.b, g.oh, g.ow, g.cout], out)?, cost))
}

/// Backward convolution: gradients w.r.t. input and filter.
pub(super) fn conv2d_grad(
    pool: &WorkerPool,
    input: &Tensor,
    filter: &Tensor,
    grad: &Tensor,
    padding: Padding,
) -> Result<(Tensor, Tensor, KernelCost), TensorError> {
    let mut ws = Workspace::new();
    conv2d_grad_with(pool, &mut ws, input, filter, grad, padding, &mut |len| {
        vec![0.0f32; len]
    })
}

/// Backward convolution with caller-provided scratch and output buffers.
pub(super) fn conv2d_grad_with(
    pool: &WorkerPool,
    ws: &mut Workspace,
    input: &Tensor,
    filter: &Tensor,
    grad: &Tensor,
    padding: Padding,
    take: TakeBuffer<'_>,
) -> Result<(Tensor, Tensor, KernelCost), TensorError> {
    let g = geometry(input, filter, padding)?;
    if grad.shape() != [g.b, g.oh, g.ow, g.cout] {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_grad",
            detail: format!("grad {:?} vs output {:?}", grad.shape(), [g.b, g.oh, g.ow, g.cout]),
        });
    }
    let mut gf = take(g.patch * g.cout);
    let mut gi = take(input.len());
    // `cols` and `gcol` live in distinct workspace fields; destructure so
    // both can be borrowed at once.
    let Workspace { cols: cols_buf, gcol, .. } = ws;
    cols_buf.clear();
    cols_buf.resize(g.positions * g.patch, 0.0);
    im2col_into(pool, &g, input.data(), &mut cols_buf[..]);
    let cols = &cols_buf[..];
    let gdata = grad.data();
    let fdata = filter.data();
    let (patch, positions, cout) = (g.patch, g.positions, g.cout);
    let gemm_flops = 2.0 * positions as f64 * patch as f64 * cout as f64;
    let mut cost = KernelCost::default();

    // gf = colsᵀ × grad, [patch, cout]; parallel over patch rows. Per
    // element (kk, co) the reduction runs over positions increasing,
    // each term cols-value-first — the order the serial scalar loop used.
    pool.run_on_blocks(&mut gf, cout, &|kk, gf_row| {
        for p in 0..positions {
            let cv = cols[p * patch + kk];
            let grow = &gdata[p * cout..(p + 1) * cout];
            for (o, &gv) in gf_row.iter_mut().zip(grow) {
                *o += cv * gv;
            }
        }
    });
    cost.merge(stage_cost(gemm_flops, patch, pool.workers()));

    // gcol = grad × filterᵀ, [positions, patch]; parallel over position
    // rows. Each element is one dot product over cout increasing
    // (grad-value-first), entirely within one worker.
    gcol.clear();
    gcol.resize(positions * patch, 0.0);
    let gcol = &mut gcol[..];
    pool.run_on_blocks(gcol, patch, &|p, row| {
        let grow = &gdata[p * cout..(p + 1) * cout];
        for (kk, o) in row.iter_mut().enumerate() {
            let frow = &fdata[kk * cout..(kk + 1) * cout];
            let mut acc = 0.0f32;
            for (&gv, &fv) in grow.iter().zip(frow) {
                acc += gv * fv;
            }
            *o = acc;
        }
    });
    cost.merge(stage_cost(gemm_flops, positions, pool.workers()));
    let gcol = &gcol[..];

    // col2im scatter, parallel over batches (batch slices of gi are
    // disjoint). Per gi element, contributions arrive in (oy, ox)-major,
    // (ky, kx, ci)-minor order — matching the serial scalar loop; padded
    // gcol entries fall outside the input and are dropped.
    let per_batch = g.h * g.w * g.cin;
    let (h, w, cin, oh, ow, ph, pw, kh, kw) = (g.h, g.w, g.cin, g.oh, g.ow, g.ph, g.pw, g.kh, g.kw);
    pool.run_on_blocks(&mut gi, per_batch.max(1), &|bi, gi_b| {
        for oy in 0..oh {
            for ox in 0..ow {
                let p = (bi * oh + oy) * ow + ox;
                let prow = &gcol[p * patch..(p + 1) * patch];
                for ky in 0..kh {
                    let iy = (oy + ky) as isize - ph as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for kx in 0..kw {
                        let ix = (ox + kx) as isize - pw as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        let dst = ((iy as usize) * w + ix as usize) * cin;
                        let src = (ky * kw + kx) * cin;
                        for ci in 0..cin {
                            gi_b[dst + ci] += prow[src + ci];
                        }
                    }
                }
            }
        }
    });
    cost.merge(stage_cost(positions as f64 * patch as f64, g.b, pool.workers()));

    let gi = Tensor::from_vec(input.shape(), gi)?;
    let gf = Tensor::from_vec(filter.shape(), gf)?;
    Ok((gi, gf, cost))
}
