//! Blocked, pool-parallel compute kernels (DESIGN.md §11).
//!
//! This module is the framework's compute layer: a cache-blocked GEMM
//! (`gemm`), im2col + GEMM convolution (`conv`), and the deterministic
//! [`WorkerPool`] that splits kernels across disjoint output row-blocks.
//! The cardinal rule, enforced by property tests against
//! [`mod@reference`]: **blocking and parallelism never change the
//! per-element reduction order**, so every kernel is bit-for-bit
//! identical to its naive serial reference for any worker count.
//!
//! Each entry point also returns a [`KernelCost`] — total flops plus the
//! critical-path flops of the longest worker chain — which the TEE layer
//! turns into virtual time consistent with the sched shield's LPT
//! makespan model.

pub mod pool;
pub mod reference;

mod conv;
mod gemm;

pub use pool::WorkerPool;

use crate::graph::Padding;
use crate::tensor::Tensor;
use crate::TensorError;

/// Reusable kernel scratch memory.
///
/// Kernels that need intermediate buffers (the im2col column matrix, the
/// backward-convolution `gcol` product, max-pool routing indices) borrow
/// them from here instead of heap-allocating per call. A `Workspace` is
/// plain growable scratch: buffers are resized (and re-zeroed where the
/// kernel's reduction requires zeroed memory) on each use, so reuse never
/// changes results — only allocation traffic.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// im2col column matrix, `[positions, patch]`.
    pub(crate) cols: Vec<f32>,
    /// Backward-conv `gcol = grad × filterᵀ` scratch, `[positions, patch]`.
    pub(crate) gcol: Vec<f32>,
    /// Max-pool argmax routing indices, one per output element.
    pub(crate) pool_indices: Vec<usize>,
}

impl Workspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Workspace::default()
    }
}

/// A caller-provided output-buffer source for the `*_with` kernel entry
/// points: called with the required element count, must return a zeroed
/// buffer of exactly that length (an arena slot or a fresh `vec![0.0; n]`).
pub type TakeBuffer<'a> = &'a mut dyn FnMut(usize) -> Vec<f32>;

/// The cost of one kernel invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelCost {
    /// Total floating-point operations across all workers.
    pub flops: f64,
    /// Flops on the longest single-worker chain — what a parallel
    /// execution pays in wall/virtual time. Equals `flops` when serial.
    pub critical_flops: f64,
}

impl KernelCost {
    /// Accumulates another sequentially-executed stage into this cost.
    pub fn merge(&mut self, other: KernelCost) {
        self.flops += other.flops;
        self.critical_flops += other.critical_flops;
    }
}

/// Blocked matrix product `lhs × rhs` for rank-2 tensors.
///
/// Bit-identical to [`reference::naive_matmul`] for every worker count;
/// see the module docs for the determinism argument.
pub fn matmul(pool: &WorkerPool, lhs: &Tensor, rhs: &Tensor) -> Result<(Tensor, KernelCost), TensorError> {
    matmul_with(pool, lhs, rhs, &mut |len| vec![0.0f32; len])
}

/// [`matmul`] writing its result into a caller-provided buffer obtained
/// from `take` (see [`TakeBuffer`]). Bit-identical to [`matmul`]; only
/// the allocation source differs.
///
/// # Errors
///
/// Same conditions as [`matmul`].
pub fn matmul_with(
    pool: &WorkerPool,
    lhs: &Tensor,
    rhs: &Tensor,
    take: TakeBuffer<'_>,
) -> Result<(Tensor, KernelCost), TensorError> {
    let (&[m, k1], &[k2, n]) = (lhs.shape(), rhs.shape()) else {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            detail: format!("{:?} × {:?} (need rank 2)", lhs.shape(), rhs.shape()),
        });
    };
    if k1 != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            detail: format!("inner dims {k1} vs {k2}"),
        });
    }
    let mut out = take(m * n);
    gemm::gemm(pool, m, k1, n, lhs.data(), rhs.data(), &mut out);
    let cost = gemm::gemm_cost(pool, m, k1, n);
    Ok((Tensor::from_vec(&[m, n], out)?, cost))
}

/// im2col + GEMM forward convolution (NHWC input, `[kh,kw,cin,cout]`
/// filter). Bit-identical to [`reference::naive_conv2d`].
pub fn conv2d(
    pool: &WorkerPool,
    input: &Tensor,
    filter: &Tensor,
    padding: Padding,
) -> Result<(Tensor, KernelCost), TensorError> {
    conv::conv2d(pool, input, filter, padding)
}

/// [`conv2d`] with caller-provided scratch (`ws` holds the im2col column
/// matrix) and output buffer (`take`). Bit-identical to [`conv2d`].
///
/// # Errors
///
/// Same conditions as [`conv2d`].
pub fn conv2d_with(
    pool: &WorkerPool,
    ws: &mut Workspace,
    input: &Tensor,
    filter: &Tensor,
    padding: Padding,
    take: TakeBuffer<'_>,
) -> Result<(Tensor, KernelCost), TensorError> {
    conv::conv2d_with(pool, ws, input, filter, padding, take)
}

/// Backward convolution: `(grad_input, grad_filter, cost)`.
/// Bit-identical to [`reference::naive_conv2d_grad`].
pub fn conv2d_grad(
    pool: &WorkerPool,
    input: &Tensor,
    filter: &Tensor,
    grad: &Tensor,
    padding: Padding,
) -> Result<(Tensor, Tensor, KernelCost), TensorError> {
    conv::conv2d_grad(pool, input, filter, grad, padding)
}

/// [`conv2d_grad`] with caller-provided scratch (`ws` holds the im2col
/// and `gcol` matrices) and output buffers (`take` supplies `grad_input`
/// and `grad_filter`). Bit-identical to [`conv2d_grad`].
///
/// # Errors
///
/// Same conditions as [`conv2d_grad`].
pub fn conv2d_grad_with(
    pool: &WorkerPool,
    ws: &mut Workspace,
    input: &Tensor,
    filter: &Tensor,
    grad: &Tensor,
    padding: Padding,
    take: TakeBuffer<'_>,
) -> Result<(Tensor, Tensor, KernelCost), TensorError> {
    conv::conv2d_grad_with(pool, ws, input, filter, grad, padding, take)
}
