//! Blocked, pool-parallel compute kernels (DESIGN.md §11).
//!
//! This module is the framework's compute layer: a cache-blocked GEMM
//! (`gemm`), im2col + GEMM convolution (`conv`), and the deterministic
//! [`WorkerPool`] that splits kernels across disjoint output row-blocks.
//! The cardinal rule, enforced by property tests against
//! [`mod@reference`]: **blocking and parallelism never change the
//! per-element reduction order**, so every kernel is bit-for-bit
//! identical to its naive serial reference for any worker count.
//!
//! Each entry point also returns a [`KernelCost`] — total flops plus the
//! critical-path flops of the longest worker chain — which the TEE layer
//! turns into virtual time consistent with the sched shield's LPT
//! makespan model.

pub mod pool;
pub mod reference;

mod conv;
mod gemm;

pub use pool::WorkerPool;

use crate::graph::Padding;
use crate::tensor::Tensor;
use crate::TensorError;

/// The cost of one kernel invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelCost {
    /// Total floating-point operations across all workers.
    pub flops: f64,
    /// Flops on the longest single-worker chain — what a parallel
    /// execution pays in wall/virtual time. Equals `flops` when serial.
    pub critical_flops: f64,
}

impl KernelCost {
    /// Accumulates another sequentially-executed stage into this cost.
    pub fn merge(&mut self, other: KernelCost) {
        self.flops += other.flops;
        self.critical_flops += other.critical_flops;
    }
}

/// Blocked matrix product `lhs × rhs` for rank-2 tensors.
///
/// Bit-identical to [`reference::naive_matmul`] for every worker count;
/// see the module docs for the determinism argument.
pub fn matmul(pool: &WorkerPool, lhs: &Tensor, rhs: &Tensor) -> Result<(Tensor, KernelCost), TensorError> {
    let (&[m, k1], &[k2, n]) = (lhs.shape(), rhs.shape()) else {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            detail: format!("{:?} × {:?} (need rank 2)", lhs.shape(), rhs.shape()),
        });
    };
    if k1 != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            detail: format!("inner dims {k1} vs {k2}"),
        });
    }
    let mut out = vec![0.0f32; m * n];
    gemm::gemm(pool, m, k1, n, lhs.data(), rhs.data(), &mut out);
    let cost = gemm::gemm_cost(pool, m, k1, n);
    Ok((Tensor::from_vec(&[m, n], out)?, cost))
}

/// im2col + GEMM forward convolution (NHWC input, `[kh,kw,cin,cout]`
/// filter). Bit-identical to [`reference::naive_conv2d`].
pub fn conv2d(
    pool: &WorkerPool,
    input: &Tensor,
    filter: &Tensor,
    padding: Padding,
) -> Result<(Tensor, KernelCost), TensorError> {
    conv::conv2d(pool, input, filter, padding)
}

/// Backward convolution: `(grad_input, grad_filter, cost)`.
/// Bit-identical to [`reference::naive_conv2d_grad`].
pub fn conv2d_grad(
    pool: &WorkerPool,
    input: &Tensor,
    filter: &Tensor,
    grad: &Tensor,
    padding: Padding,
) -> Result<(Tensor, Tensor, KernelCost), TensorError> {
    conv::conv2d_grad(pool, input, filter, grad, padding)
}
