//! Blocked, pool-parallel compute kernels (DESIGN.md §11).
//!
//! This module is the framework's compute layer: a cache-blocked GEMM
//! (`gemm`), im2col + GEMM convolution (`conv`), and the deterministic
//! [`WorkerPool`] that splits kernels across disjoint output row-blocks.
//! The cardinal rule, enforced by property tests against
//! [`mod@reference`]: **blocking and parallelism never change the
//! per-element reduction order**, so every kernel is bit-for-bit
//! identical to its naive serial reference for any worker count.
//!
//! Each entry point also returns a [`KernelCost`] — total flops plus the
//! critical-path flops of the longest worker chain — which the TEE layer
//! turns into virtual time consistent with the sched shield's LPT
//! makespan model.

pub mod pool;
pub mod reference;

mod conv;
mod gemm;

pub use pool::WorkerPool;

use crate::graph::Padding;
use crate::tensor::Tensor;
use crate::TensorError;

/// Reusable kernel scratch memory.
///
/// Kernels that need intermediate buffers (the im2col column matrix, the
/// backward-convolution `gcol` product, max-pool routing indices) borrow
/// them from here instead of heap-allocating per call. A `Workspace` is
/// plain growable scratch: buffers are resized (and re-zeroed where the
/// kernel's reduction requires zeroed memory) on each use, so reuse never
/// changes results — only allocation traffic.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// im2col column matrix, `[positions, patch]`.
    pub(crate) cols: Vec<f32>,
    /// Backward-conv `gcol = grad × filterᵀ` scratch, `[positions, patch]`.
    pub(crate) gcol: Vec<f32>,
    /// Max-pool argmax routing indices, one per output element.
    pub(crate) pool_indices: Vec<usize>,
}

impl Workspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Workspace::default()
    }
}

/// A caller-provided output-buffer source for the `*_with` kernel entry
/// points: called with the required element count, must return a zeroed
/// buffer of exactly that length (an arena slot or a fresh `vec![0.0; n]`).
pub type TakeBuffer<'a> = &'a mut dyn FnMut(usize) -> Vec<f32>;

/// The cost of one kernel invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelCost {
    /// Total floating-point operations across all workers.
    pub flops: f64,
    /// Flops on the longest single-worker chain — what a parallel
    /// execution pays in wall/virtual time. Equals `flops` when serial.
    pub critical_flops: f64,
}

impl KernelCost {
    /// Accumulates another sequentially-executed stage into this cost.
    pub fn merge(&mut self, other: KernelCost) {
        self.flops += other.flops;
        self.critical_flops += other.critical_flops;
    }
}

/// Blocked matrix product `lhs × rhs` for rank-2 tensors.
///
/// Bit-identical to [`reference::naive_matmul`] for every worker count;
/// see the module docs for the determinism argument.
pub fn matmul(pool: &WorkerPool, lhs: &Tensor, rhs: &Tensor) -> Result<(Tensor, KernelCost), TensorError> {
    matmul_with(pool, lhs, rhs, &mut |len| vec![0.0f32; len])
}

/// [`matmul`] writing its result into a caller-provided buffer obtained
/// from `take` (see [`TakeBuffer`]). Bit-identical to [`matmul`]; only
/// the allocation source differs.
///
/// # Errors
///
/// Same conditions as [`matmul`].
pub fn matmul_with(
    pool: &WorkerPool,
    lhs: &Tensor,
    rhs: &Tensor,
    take: TakeBuffer<'_>,
) -> Result<(Tensor, KernelCost), TensorError> {
    let (&[m, k1], &[k2, n]) = (lhs.shape(), rhs.shape()) else {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            detail: format!("{:?} × {:?} (need rank 2)", lhs.shape(), rhs.shape()),
        });
    };
    if k1 != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            detail: format!("inner dims {k1} vs {k2}"),
        });
    }
    let mut out = take(m * n);
    gemm::gemm(pool, m, k1, n, lhs.data(), rhs.data(), &mut out);
    let cost = gemm::gemm_cost(pool, m, k1, n);
    Ok((Tensor::from_vec(&[m, n], out)?, cost))
}

/// Applies the fused `+bias[ → relu]` epilogue in place, one block per
/// output row (`bias.len()` elements), and returns its cost.
///
/// Per element this performs exactly the operations of the unfused
/// `add_bias` then `relu` sequence (`out[i] += bias[i % n]`, then
/// `max(0.0)`), and every element is independent, so blocking and
/// parallelism cannot change results. The bias add charges no flops
/// (matching the unfused `AddBias`); the relu charges one flop per
/// element, pool-parallel over rows.
fn bias_relu_epilogue(pool: &WorkerPool, out: &mut [f32], bias: &[f32], relu: bool) -> KernelCost {
    let n = bias.len().max(1);
    pool.run_on_blocks(out, n, &|_, block| {
        for (v, b) in block.iter_mut().zip(bias) {
            *v += *b;
            if relu {
                *v = v.max(0.0);
            }
        }
    });
    if relu {
        let nblocks = out.len().div_ceil(n);
        KernelCost {
            flops: out.len() as f64,
            critical_flops: (pool::critical_units(nblocks, pool.workers()) * n) as f64,
        }
    } else {
        KernelCost::default()
    }
}

/// Fused `lhs × rhs + bias[ → relu]`: the GEMM of [`matmul`] followed by
/// an in-buffer bias/relu epilogue, so the pre-bias and pre-relu
/// intermediates never materialize. Bit-identical to the unfused
/// `matmul → add_bias → relu` op sequence for any worker count.
///
/// # Errors
///
/// Same conditions as [`matmul`], plus a bias shape check (`[n]`).
pub fn matmul_bias_relu(
    pool: &WorkerPool,
    lhs: &Tensor,
    rhs: &Tensor,
    bias: &Tensor,
    relu: bool,
) -> Result<(Tensor, KernelCost), TensorError> {
    matmul_bias_relu_with(pool, lhs, rhs, bias, relu, &mut |len| vec![0.0f32; len])
}

/// [`matmul_bias_relu`] writing into a caller-provided buffer.
///
/// # Errors
///
/// Same conditions as [`matmul_bias_relu`].
pub fn matmul_bias_relu_with(
    pool: &WorkerPool,
    lhs: &Tensor,
    rhs: &Tensor,
    bias: &Tensor,
    relu: bool,
    take: TakeBuffer<'_>,
) -> Result<(Tensor, KernelCost), TensorError> {
    let (mut out, mut cost) = matmul_with(pool, lhs, rhs, take)?;
    let n = out.shape()[1];
    if bias.shape() != [n] {
        return Err(TensorError::ShapeMismatch {
            op: "fused_matmul",
            detail: format!("bias {:?} vs columns {n}", bias.shape()),
        });
    }
    cost.merge(bias_relu_epilogue(pool, out.data_mut(), bias.data(), relu));
    Ok((out, cost))
}

/// Fused `conv2d + bias[ → relu]`: [`conv2d`]'s im2col + GEMM followed by
/// an in-buffer per-channel bias/relu epilogue. Bit-identical to the
/// unfused `conv2d → add_bias → relu` op sequence for any worker count.
///
/// # Errors
///
/// Same conditions as [`conv2d`], plus a bias shape check (`[cout]`).
pub fn conv2d_bias_relu(
    pool: &WorkerPool,
    input: &Tensor,
    filter: &Tensor,
    bias: &Tensor,
    padding: Padding,
    relu: bool,
) -> Result<(Tensor, KernelCost), TensorError> {
    let mut ws = Workspace::new();
    conv2d_bias_relu_with(pool, &mut ws, input, filter, bias, padding, relu, &mut |len| {
        vec![0.0f32; len]
    })
}

/// [`conv2d_bias_relu`] with caller-provided scratch and output buffer.
///
/// # Errors
///
/// Same conditions as [`conv2d_bias_relu`].
#[allow(clippy::too_many_arguments)]
pub fn conv2d_bias_relu_with(
    pool: &WorkerPool,
    ws: &mut Workspace,
    input: &Tensor,
    filter: &Tensor,
    bias: &Tensor,
    padding: Padding,
    relu: bool,
    take: TakeBuffer<'_>,
) -> Result<(Tensor, KernelCost), TensorError> {
    let (mut out, mut cost) = conv::conv2d_with(pool, ws, input, filter, padding, take)?;
    let cout = *out.shape().last().expect("conv output is NHWC");
    if bias.shape() != [cout] {
        return Err(TensorError::ShapeMismatch {
            op: "fused_conv2d",
            detail: format!("bias {:?} vs channels {cout}", bias.shape()),
        });
    }
    cost.merge(bias_relu_epilogue(pool, out.data_mut(), bias.data(), relu));
    Ok((out, cost))
}

/// im2col + GEMM forward convolution (NHWC input, `[kh,kw,cin,cout]`
/// filter). Bit-identical to [`reference::naive_conv2d`].
pub fn conv2d(
    pool: &WorkerPool,
    input: &Tensor,
    filter: &Tensor,
    padding: Padding,
) -> Result<(Tensor, KernelCost), TensorError> {
    conv::conv2d(pool, input, filter, padding)
}

/// [`conv2d`] with caller-provided scratch (`ws` holds the im2col column
/// matrix) and output buffer (`take`). Bit-identical to [`conv2d`].
///
/// # Errors
///
/// Same conditions as [`conv2d`].
pub fn conv2d_with(
    pool: &WorkerPool,
    ws: &mut Workspace,
    input: &Tensor,
    filter: &Tensor,
    padding: Padding,
    take: TakeBuffer<'_>,
) -> Result<(Tensor, KernelCost), TensorError> {
    conv::conv2d_with(pool, ws, input, filter, padding, take)
}

/// Backward convolution: `(grad_input, grad_filter, cost)`.
/// Bit-identical to [`reference::naive_conv2d_grad`].
pub fn conv2d_grad(
    pool: &WorkerPool,
    input: &Tensor,
    filter: &Tensor,
    grad: &Tensor,
    padding: Padding,
) -> Result<(Tensor, Tensor, KernelCost), TensorError> {
    conv::conv2d_grad(pool, input, filter, grad, padding)
}

/// [`conv2d_grad`] with caller-provided scratch (`ws` holds the im2col
/// and `gcol` matrices) and output buffers (`take` supplies `grad_input`
/// and `grad_filter`). Bit-identical to [`conv2d_grad`].
///
/// # Errors
///
/// Same conditions as [`conv2d_grad`].
pub fn conv2d_grad_with(
    pool: &WorkerPool,
    ws: &mut Workspace,
    input: &Tensor,
    filter: &Tensor,
    grad: &Tensor,
    padding: Padding,
    take: TakeBuffer<'_>,
) -> Result<(Tensor, Tensor, KernelCost), TensorError> {
    conv::conv2d_grad_with(pool, ws, input, filter, grad, padding, take)
}
