//! Cache-blocked GEMM with packed A panels.
//!
//! The naive triple loop streams the whole of B from memory once per row
//! of A. Blocking fixes that: rows are processed in [`ROW_BLOCK`]-row
//! blocks (the unit of parallelism), the k dimension in [`KC`]-deep
//! panels so the B rows a panel touches stay cache-resident, and within
//! a panel a [`MR`]-row strip of A is packed k-major into a small
//! contiguous buffer the micro-kernel reads sequentially.
//!
//! **Determinism rule**: blocking and packing change the *memory* order
//! only, never the *arithmetic* order. For every output element `C[i,j]`
//! the additions run over `p = 0..k` strictly increasing, exactly like
//! the naive loop, so blocked — and pool-parallel — results are
//! bit-for-bit identical to [`super::reference::naive_matmul`].

use super::pool::{self, WorkerPool};
use super::KernelCost;

/// Rows per parallel row-block (the pool's work unit).
pub(crate) const ROW_BLOCK: usize = 64;
/// Depth of one packed k-panel (4 KiB of packed A per strip).
const KC: usize = 256;
/// Rows per packed micro-kernel strip.
const MR: usize = 4;

/// Computes `C = A × B` for row-major `A [m,k]`, `B [k,n]` into the
/// zeroed buffer `c` of `m * n` elements, splitting row blocks over the
/// pool.
pub(crate) fn gemm(pool: &WorkerPool, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    pool.run_on_blocks(c, ROW_BLOCK * n, &|blk, c_block| {
        gemm_rows(blk * ROW_BLOCK, c_block.len() / n, k, n, a, b, c_block);
    });
}

/// Total and critical-path flops of a pooled [`gemm`] call.
pub(crate) fn gemm_cost(pool: &WorkerPool, m: usize, k: usize, n: usize) -> KernelCost {
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    let nblocks = m.div_ceil(ROW_BLOCK);
    let crit_rows = (pool::critical_units(nblocks, pool.workers()) * ROW_BLOCK).min(m);
    KernelCost {
        flops,
        critical_flops: 2.0 * crit_rows as f64 * k as f64 * n as f64,
    }
}

/// One row block: C rows `i0..i0+rows` (c holds exactly those rows).
fn gemm_rows(i0: usize, rows: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    let mut packed = [0.0f32; MR * KC];
    for pc in (0..k).step_by(KC) {
        let kc = KC.min(k - pc);
        let b_panel = &b[pc * n..(pc + kc) * n];
        for ir in (0..rows).step_by(MR) {
            let mr = MR.min(rows - ir);
            // Pack the strip k-major: packed[p * mr + r] = A[i0+ir+r][pc+p].
            for p in 0..kc {
                for r in 0..mr {
                    packed[p * mr + r] = a[(i0 + ir + r) * k + pc + p];
                }
            }
            let c_strip = &mut c[ir * n..(ir + mr) * n];
            if mr == MR {
                micro_4xn(kc, n, &packed, b_panel, c_strip);
            } else {
                micro_mxn(mr, kc, n, &packed, b_panel, c_strip);
            }
        }
    }
}

/// 4×n register micro-kernel: four C rows accumulate one B row per step.
fn micro_4xn(kc: usize, n: usize, packed: &[f32], b_panel: &[f32], c: &mut [f32]) {
    let (c0, rest) = c.split_at_mut(n);
    let (c1, rest) = rest.split_at_mut(n);
    let (c2, c3) = rest.split_at_mut(n);
    for p in 0..kc {
        let a0 = packed[p * 4];
        let a1 = packed[p * 4 + 1];
        let a2 = packed[p * 4 + 2];
        let a3 = packed[p * 4 + 3];
        let brow = &b_panel[p * n..(p + 1) * n];
        for (j, &bv) in brow.iter().enumerate() {
            c0[j] += a0 * bv;
            c1[j] += a1 * bv;
            c2[j] += a2 * bv;
            c3[j] += a3 * bv;
        }
    }
}

/// Generic remainder strip (1–3 rows), same accumulation order.
fn micro_mxn(mr: usize, kc: usize, n: usize, packed: &[f32], b_panel: &[f32], c: &mut [f32]) {
    for p in 0..kc {
        let brow = &b_panel[p * n..(p + 1) * n];
        for r in 0..mr {
            let av = packed[p * mr + r];
            let crow = &mut c[r * n..(r + 1) * n];
            for (o, &bv) in crow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::reference::naive_matmul;

    fn fill(seed: u64, len: usize) -> Vec<f32> {
        let mut s = seed | 1;
        (0..len)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as i32 % 1000) as f32 * 1e-3
            })
            .collect()
    }

    #[test]
    fn blocked_matches_naive_bitwise_across_shapes() {
        for (m, k, n) in [(1, 1, 1), (4, 4, 4), (5, 7, 3), (63, 17, 9), (64, 256, 10), (65, 300, 33), (130, 513, 5)] {
            let a = fill(m as u64 * 31 + k as u64, m * k);
            let b = fill(n as u64 * 17 + 3, k * n);
            let naive = naive_matmul(m, k, n, &a, &b);
            for workers in [1usize, 2, 3, 5] {
                let mut c = vec![0.0f32; m * n];
                gemm(&WorkerPool::new(workers), m, k, n, &a, &b, &mut c);
                let lhs: Vec<u32> = c.iter().map(|v| v.to_bits()).collect();
                let rhs: Vec<u32> = naive.iter().map(|v| v.to_bits()).collect();
                assert_eq!(lhs, rhs, "m={m} k={k} n={n} workers={workers}");
            }
        }
    }

    #[test]
    fn cost_critical_path_shrinks_with_workers() {
        let serial = gemm_cost(&WorkerPool::serial(), 256, 64, 64);
        assert_eq!(serial.critical_flops, serial.flops);
        let par = gemm_cost(&WorkerPool::new(4), 256, 64, 64);
        assert_eq!(par.flops, serial.flops);
        assert_eq!(par.critical_flops, serial.flops / 4.0);
        // More workers than row blocks: critical path is one block.
        let tiny = gemm_cost(&WorkerPool::new(8), 70, 8, 8);
        assert_eq!(tiny.critical_flops, 2.0 * 64.0 * 8.0 * 8.0);
    }
}
