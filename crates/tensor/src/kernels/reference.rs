//! Naive scalar reference kernels.
//!
//! These are the ground truth the blocked/parallel kernels are tested —
//! and benchmarked — against: the simplest possible loops, written so
//! their per-element reduction order and operand order are *exactly* the
//! ones the production kernels commit to. No zero-skips, no blocking, no
//! threads. Kept `pub` so the bench binaries can time them.

use crate::graph::Padding;
use crate::tensor::Tensor;
use crate::TensorError;

/// Naive row-major `C = A × B` for `A [m,k]`, `B [k,n]`.
///
/// Per output element the reduction runs over `p = 0..k` increasing,
/// each term A-value-first (`a * b`) — the contract every blocked and
/// pooled variant must match bit-for-bit.
pub fn naive_matmul(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        let crow = &mut c[i * n..(i + 1) * n];
        for p in 0..k {
            let av = a[i * k + p];
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bv) in crow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    c
}

/// Naive NHWC forward convolution.
///
/// Padded taps contribute `0.0 * filter` (they are not skipped), so
/// non-finite filter values propagate through `Same` padding exactly as
/// in the im2col path; the per-element reduction is `(ky, kx, ci)`
/// lexicographic, input-value-first.
pub fn naive_conv2d(input: &Tensor, filter: &Tensor, padding: Padding) -> Result<Tensor, TensorError> {
    let g = super::conv::geometry(input, filter, padding)?;
    let idata = input.data();
    let fdata = filter.data();
    let mut out = vec![0.0f32; g.positions * g.cout];
    for bi in 0..g.b {
        for oy in 0..g.oh {
            for ox in 0..g.ow {
                let obase = ((bi * g.oh + oy) * g.ow + ox) * g.cout;
                for ky in 0..g.kh {
                    let iy = (oy + ky) as isize - g.ph as isize;
                    for kx in 0..g.kw {
                        let ix = (ox + kx) as isize - g.pw as isize;
                        let inside = iy >= 0 && iy < g.h as isize && ix >= 0 && ix < g.w as isize;
                        let ibase = if inside {
                            ((bi * g.h + iy as usize) * g.w + ix as usize) * g.cin
                        } else {
                            0
                        };
                        for ci in 0..g.cin {
                            let iv = if inside { idata[ibase + ci] } else { 0.0 };
                            let fbase = ((ky * g.kw + kx) * g.cin + ci) * g.cout;
                            for co in 0..g.cout {
                                out[obase + co] += iv * fdata[fbase + co];
                            }
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(&[g.b, g.oh, g.ow, g.cout], out)
}

/// Naive NHWC convolution backward pass: `(grad_input, grad_filter)`.
///
/// Orders mirror the production stages: the filter gradient accumulates
/// over positions increasing with input-value-first terms (`iv * g`,
/// padded taps included as zeros), and the input gradient accumulates a
/// per-tap dot over `co` increasing with grad-value-first terms
/// (`g * f`), scattered in `(oy, ox)`-major order.
pub fn naive_conv2d_grad(
    input: &Tensor,
    filter: &Tensor,
    grad: &Tensor,
    padding: Padding,
) -> Result<(Tensor, Tensor), TensorError> {
    let g = super::conv::geometry(input, filter, padding)?;
    if grad.shape() != [g.b, g.oh, g.ow, g.cout] {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_grad",
            detail: format!("grad {:?} vs output {:?}", grad.shape(), [g.b, g.oh, g.ow, g.cout]),
        });
    }
    let idata = input.data();
    let fdata = filter.data();
    let gdata = grad.data();
    let mut gi = vec![0.0f32; input.len()];
    let mut gf = vec![0.0f32; filter.len()];
    for bi in 0..g.b {
        for oy in 0..g.oh {
            for ox in 0..g.ow {
                let obase = ((bi * g.oh + oy) * g.ow + ox) * g.cout;
                for ky in 0..g.kh {
                    let iy = (oy + ky) as isize - g.ph as isize;
                    for kx in 0..g.kw {
                        let ix = (ox + kx) as isize - g.pw as isize;
                        let inside = iy >= 0 && iy < g.h as isize && ix >= 0 && ix < g.w as isize;
                        let ibase = if inside {
                            ((bi * g.h + iy as usize) * g.w + ix as usize) * g.cin
                        } else {
                            0
                        };
                        for ci in 0..g.cin {
                            let iv = if inside { idata[ibase + ci] } else { 0.0 };
                            let fbase = ((ky * g.kw + kx) * g.cin + ci) * g.cout;
                            let mut gsum = 0.0f32;
                            for co in 0..g.cout {
                                let gv = gdata[obase + co];
                                gsum += gv * fdata[fbase + co];
                                gf[fbase + co] += iv * gv;
                            }
                            if inside {
                                gi[ibase + ci] += gsum;
                            }
                        }
                    }
                }
            }
        }
    }
    Ok((Tensor::from_vec(input.shape(), gi)?, Tensor::from_vec(filter.shape(), gf)?))
}
