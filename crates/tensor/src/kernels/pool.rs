//! The deterministic in-enclave worker pool.
//!
//! SCONE-style enclaves cannot rely on OS work-stealing runtimes: thread
//! creation is expensive, and — more importantly for this reproduction —
//! the result of a kernel must not depend on scheduling. The pool
//! therefore parallelizes only over **disjoint contiguous blocks of the
//! output**: each output element is computed entirely by one worker, in
//! the same per-element reduction order the serial kernel uses, so the
//! parallel result is bit-for-bit identical to the serial one for any
//! worker count.
//!
//! Workers are plain `std::thread::scope` threads (the workspace builds
//! offline; no rayon). Worker 0 runs on the calling thread, so a
//! one-worker pool spawns nothing.

use std::ops::Range;

/// Upper bound on workers; far above any EPC-resident core count.
const MAX_WORKERS: usize = 64;

/// A fixed-size deterministic worker pool.
///
/// The pool is a *policy* object (how many ways to split a kernel), not a
/// set of live threads: threads are scoped to each kernel invocation, so
/// the pool is trivially `Copy` and can be embedded in sessions and
/// interpreters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    workers: usize,
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::serial()
    }
}

impl WorkerPool {
    /// Creates a pool with `workers` workers (clamped to `1..=64`).
    pub fn new(workers: usize) -> Self {
        WorkerPool {
            workers: workers.clamp(1, MAX_WORKERS),
        }
    }

    /// A single-worker pool: kernels run serially on the calling thread.
    pub const fn serial() -> Self {
        WorkerPool { workers: 1 }
    }

    /// The number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Splits `out` into consecutive blocks of `block_len` elements (the
    /// last block may be shorter) and calls `f(block_index, block)` for
    /// every block, distributing contiguous block ranges over the
    /// workers.
    ///
    /// Because block ranges are disjoint and `f` receives the global
    /// block index, the writes — and therefore the results — are
    /// identical whether the blocks run serially or on threads.
    pub fn run_on_blocks(&self, out: &mut [f32], block_len: usize, f: &(impl Fn(usize, &mut [f32]) + Sync)) {
        if out.is_empty() {
            return;
        }
        let block_len = block_len.clamp(1, out.len());
        let nblocks = out.len().div_ceil(block_len);
        let ranges = partition(nblocks, self.workers);
        if ranges.len() <= 1 {
            for (i, block) in out.chunks_mut(block_len).enumerate() {
                f(i, block);
            }
            return;
        }
        std::thread::scope(|scope| {
            let mut rest: &mut [f32] = out;
            let mut regions = Vec::with_capacity(ranges.len());
            for r in &ranges {
                let elems = ((r.end - r.start) * block_len).min(rest.len());
                let (head, tail) = rest.split_at_mut(elems);
                regions.push((r.start, head));
                rest = tail;
            }
            let mut regions = regions.into_iter();
            // Worker 0 runs on the calling thread; the rest are spawned.
            let local = regions.next();
            for (first_block, region) in regions {
                scope.spawn(move || {
                    for (j, block) in region.chunks_mut(block_len).enumerate() {
                        f(first_block + j, block);
                    }
                });
            }
            if let Some((first_block, region)) = local {
                for (j, block) in region.chunks_mut(block_len).enumerate() {
                    f(first_block + j, block);
                }
            }
        });
    }

    /// Calls `f(item_index, &mut items[item_index])` for every item,
    /// distributing contiguous index ranges over the workers.
    ///
    /// This is the generic (non-`f32`) sibling of
    /// [`WorkerPool::run_on_blocks`], used by the shields to seal
    /// independently-nonced chunks in parallel: each slot is written by
    /// exactly one worker and `f` sees the global item index, so filling
    /// a pre-sized slot vector produces bit-identical output for any
    /// worker count. Worker 0 runs on the calling thread.
    pub fn run_items<T: Send>(&self, items: &mut [T], f: &(impl Fn(usize, &mut T) + Sync)) {
        if items.is_empty() {
            return;
        }
        let ranges = partition(items.len(), self.workers);
        if ranges.len() <= 1 {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
            return;
        }
        std::thread::scope(|scope| {
            let mut rest: &mut [T] = items;
            let mut regions = Vec::with_capacity(ranges.len());
            for r in &ranges {
                let (head, tail) = rest.split_at_mut(r.end - r.start);
                regions.push((r.start, head));
                rest = tail;
            }
            let mut regions = regions.into_iter();
            // Worker 0 runs on the calling thread; the rest are spawned.
            let local = regions.next();
            for (first, region) in regions {
                scope.spawn(move || {
                    for (j, item) in region.iter_mut().enumerate() {
                        f(first + j, item);
                    }
                });
            }
            if let Some((first, region)) = local {
                for (j, item) in region.iter_mut().enumerate() {
                    f(first + j, item);
                }
            }
        });
    }
}

/// Splits `items` work units into at most `workers` contiguous ranges.
///
/// The first `items % workers` ranges get one extra unit, so the first
/// range is always a longest one — the parallel critical path in units.
/// Deterministic: depends only on the two arguments.
pub fn partition(items: usize, workers: usize) -> Vec<Range<usize>> {
    if items == 0 {
        return Vec::new();
    }
    let w = workers.clamp(1, items);
    let base = items / w;
    let extra = items % w;
    let mut ranges = Vec::with_capacity(w);
    let mut start = 0usize;
    for i in 0..w {
        let len = base + usize::from(i < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// The largest number of work units any single worker receives — the
/// critical path of a [`partition`] in units.
pub fn critical_units(items: usize, workers: usize) -> usize {
    partition(items, workers)
        .first()
        .map(|r| r.end - r.start)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_exactly_once() {
        for items in 0..40 {
            for workers in 1..9 {
                let ranges = partition(items, workers);
                let mut covered = 0usize;
                let mut expect_start = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, expect_start, "gap at {items}/{workers}");
                    assert!(r.end > r.start, "empty range at {items}/{workers}");
                    covered += r.end - r.start;
                    expect_start = r.end;
                }
                assert_eq!(covered, items);
                assert!(ranges.len() <= workers.max(1));
                assert_eq!(critical_units(items, workers), ranges.first().map(|r| r.end - r.start).unwrap_or(0));
            }
        }
    }

    #[test]
    fn first_range_is_longest() {
        for items in 1..50 {
            for workers in 1..8 {
                let ranges = partition(items, workers);
                let first = ranges[0].end - ranges[0].start;
                for r in &ranges {
                    assert!(r.end - r.start <= first);
                }
            }
        }
    }

    #[test]
    fn run_on_blocks_visits_every_block_once() {
        for (len, block_len, workers) in [(10usize, 3usize, 1usize), (10, 3, 4), (64, 8, 3), (7, 100, 2), (5, 1, 5)] {
            let mut out = vec![0.0f32; len];
            WorkerPool::new(workers).run_on_blocks(&mut out, block_len, &|blk, block| {
                for (j, v) in block.iter_mut().enumerate() {
                    *v += (blk * block_len + j) as f32 + 1.0;
                }
            });
            let expect: Vec<f32> = (0..len).map(|i| i as f32 + 1.0).collect();
            assert_eq!(out, expect, "len={len} block_len={block_len} workers={workers}");
        }
    }

    #[test]
    fn run_on_blocks_empty_output_is_noop() {
        let mut out: Vec<f32> = Vec::new();
        WorkerPool::new(4).run_on_blocks(&mut out, 8, &|_, _| panic!("no blocks expected"));
    }

    #[test]
    fn run_items_visits_every_item_once() {
        for (len, workers) in [(0usize, 3usize), (1, 1), (1, 4), (7, 3), (16, 4), (5, 8)] {
            let mut items: Vec<Vec<u8>> = vec![Vec::new(); len];
            WorkerPool::new(workers).run_items(&mut items, &|i, slot| {
                slot.push(i as u8);
            });
            for (i, slot) in items.iter().enumerate() {
                assert_eq!(slot[..], [i as u8], "len={len} workers={workers}");
            }
        }
    }

    #[test]
    fn run_items_matches_serial_for_any_worker_count() {
        let build = |workers: usize| {
            let mut items: Vec<u64> = (0..23).collect();
            WorkerPool::new(workers).run_items(&mut items, &|i, v| {
                *v = v.wrapping_mul(31).wrapping_add(i as u64);
            });
            items
        };
        let serial = build(1);
        for workers in 2..8 {
            assert_eq!(build(workers), serial, "workers={workers}");
        }
    }

    #[test]
    fn worker_count_is_clamped() {
        assert_eq!(WorkerPool::new(0).workers(), 1);
        assert_eq!(WorkerPool::new(1000).workers(), MAX_WORKERS);
        assert_eq!(WorkerPool::serial().workers(), 1);
        assert_eq!(WorkerPool::default(), WorkerPool::serial());
    }
}
