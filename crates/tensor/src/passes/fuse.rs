//! Operator fusion: `matmul/conv2d → add_bias[ → relu]` chains become
//! single fused nodes with epilogue-aware kernels.

use super::{Pass, PassOutcome};
use crate::graph::{Graph, Node, NodeId, Op};
use crate::TensorError;

/// Rewrites `MatMul → AddBias[ → Relu]` and `Conv2d → AddBias[ → Relu]`
/// chains into [`Op::FusedMatMul`] / [`Op::FusedConv2d`], whose kernels
/// apply the bias/relu epilogue inside the output buffer so the
/// pre-bias and pre-relu intermediates never materialize (fewer arena
/// slots, fewer EPC page touches, one kernel launch).
///
/// Legality: an intermediate may be absorbed only if it has exactly one
/// consumer (counted with multiplicity) and is not a root — otherwise
/// its value is observable and must stay materialized. Bit-identity:
/// the fused kernels perform the identical per-element operations in
/// the identical order as the unfused sequence
/// ([`crate::kernels::matmul_bias_relu_with`]), and the fused backward
/// uses the same gradient kernels with the same accumulation order
/// (bias → lhs → rhs, matching the unfused reverse-topological visit).
pub struct OperatorFusion;

enum Action {
    /// Copy the node through (with remapped inputs).
    Emit,
    /// Node absorbed into a fused op; nothing emitted.
    Skip,
    /// Terminal of a fusion group: emit this op (ids still in the old
    /// id space) instead of the original node.
    Fuse(Op),
}

impl Pass for OperatorFusion {
    fn name(&self) -> &'static str {
        "fuse"
    }

    fn run(&self, graph: &Graph, roots: &[NodeId]) -> Result<PassOutcome, TensorError> {
        let n = graph.len();
        let mut is_root = vec![false; n];
        for &root in roots {
            graph.node(root)?;
            is_root[root.index()] = true;
        }
        // Consumers with multiplicity: a node used twice by one op
        // appears twice, which correctly blocks fusion.
        let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (index, node) in graph.nodes().iter().enumerate() {
            for input in node.op.inputs() {
                consumers[input.index()].push(index);
            }
        }
        let sole_consumer = |i: usize| -> Option<usize> {
            (consumers[i].len() == 1).then(|| consumers[i][0])
        };

        let mut actions: Vec<Action> = (0..n).map(|_| Action::Emit).collect();
        let mut fused = 0u64;
        for i in 0..n {
            let Op::AddBias(x, b) = graph.nodes()[i].op else {
                continue;
            };
            let xi = x.index();
            // The producer must be exclusively ours and unobservable.
            if is_root[xi] || sole_consumer(xi) != Some(i) {
                continue;
            }
            enum Core {
                MatMul(NodeId, NodeId),
                Conv(NodeId, NodeId, crate::graph::Padding),
            }
            let core = match &graph.nodes()[xi].op {
                Op::MatMul(a, w) => Core::MatMul(*a, *w),
                Op::Conv2d {
                    input,
                    filter,
                    padding,
                } => Core::Conv(*input, *filter, *padding),
                _ => continue,
            };
            // Extend through a relu if the bias output is also private.
            let relu_terminal = if is_root[i] {
                None
            } else {
                sole_consumer(i).filter(|&j| matches!(graph.nodes()[j].op, Op::Relu(r) if r.index() == i))
            };
            let (terminal, relu) = match relu_terminal {
                Some(j) => (j, true),
                None => (i, false),
            };
            let fused_op = match core {
                Core::MatMul(lhs, rhs) => Op::FusedMatMul {
                    lhs,
                    rhs,
                    bias: b,
                    relu,
                },
                Core::Conv(input, filter, padding) => Op::FusedConv2d {
                    input,
                    filter,
                    bias: b,
                    padding,
                    relu,
                },
            };
            actions[xi] = Action::Skip;
            fused += 1;
            if relu {
                actions[i] = Action::Skip;
                fused += 1;
            }
            actions[terminal] = Action::Fuse(fused_op);
        }

        let mut out = Graph::new();
        let mut remap: Vec<Option<NodeId>> = vec![None; n];
        for (index, node) in graph.nodes().iter().enumerate() {
            let op = match &actions[index] {
                Action::Skip => continue,
                Action::Emit => node.op.clone(),
                Action::Fuse(fused_op) => fused_op.clone(),
            };
            let op = op.map_inputs(|old| remap[old.index()].expect("inputs precede node"));
            let new_id = out
                .append_node(Node {
                    op,
                    name: node.name.clone(),
                })
                .expect("remapped inputs exist");
            remap[index] = Some(new_id);
        }
        Ok(PassOutcome {
            graph: out,
            remap,
            eliminated: 0,
            fused,
        })
    }
}
