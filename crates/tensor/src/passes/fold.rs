//! Constant folding: bake operations whose inputs are all constants.

use super::{Pass, PassOutcome};
use crate::autodiff;
use crate::graph::{Graph, Node, Op};
use crate::tensor::Tensor;
use crate::TensorError;
use std::collections::HashMap;

/// Folds every operation whose inputs are all constants into a constant,
/// in place. Returns the number of nodes folded. Node ids are unchanged
/// (folded nodes keep their position; orphaned input constants become
/// dead code for [`super::DeadCodeElimination`] to sweep).
///
/// Bit-identity: the fold evaluates each op with the same kernels the
/// runtime uses, and kernels are bit-identical for every worker count
/// (the kernel module's cardinal rule), so the baked value equals what
/// the runtime would have computed exactly. Constants receive no
/// gradients, and an op folds only when *no* placeholder or variable
/// feeds it, so the backward pass is unaffected.
pub fn fold_graph(graph: &mut Graph) -> usize {
    let mut known: HashMap<usize, Tensor> = graph
        .nodes()
        .iter()
        .enumerate()
        .filter_map(|(i, n)| match &n.op {
            Op::Constant(t) => Some((i, t.clone())),
            _ => None,
        })
        .collect();
    let mut folded = 0usize;
    for index in 0..graph.len() {
        let node = &graph.nodes()[index];
        if matches!(
            node.op,
            Op::Constant(_) | Op::Placeholder { .. } | Op::Variable { .. }
        ) {
            continue;
        }
        let inputs = node.op.inputs();
        if inputs.is_empty() || !inputs.iter().all(|i| known.contains_key(&i.index())) {
            continue;
        }
        // Evaluate the op in a scratch graph fed by the known constants.
        let mut scratch = Graph::new();
        let mut remap = HashMap::new();
        for input in &inputs {
            remap
                .entry(input.index())
                .or_insert_with(|| scratch.constant("in", known[&input.index()].clone()));
        }
        let op = node.op.map_inputs(|old| remap[&old.index()]);
        let name = node.name.clone();
        let Ok(target) = scratch.append_node(Node { op, name }) else {
            continue;
        };
        let Ok(fwd) = autodiff::forward(&scratch, &HashMap::new(), &HashMap::new(), &[target])
        else {
            continue;
        };
        let Some(value) = fwd.value(target).cloned() else {
            continue;
        };
        let id = graph.node_id(index).expect("in range");
        graph
            .replace_with_constant(id, value.clone())
            .expect("id in range");
        known.insert(index, value);
        folded += 1;
    }
    folded
}

/// The [`fold_graph`] rewrite as a pipeline [`Pass`] (identity remap:
/// folded nodes keep their ids, only their op changes).
pub struct ConstantFolding;

impl Pass for ConstantFolding {
    fn name(&self) -> &'static str {
        "fold"
    }

    fn run(&self, graph: &Graph, roots: &[crate::graph::NodeId]) -> Result<PassOutcome, TensorError> {
        for &root in roots {
            graph.node(root)?;
        }
        let mut out = graph.clone();
        let folded = fold_graph(&mut out);
        let mut outcome = PassOutcome::unchanged(graph);
        outcome.graph = out;
        outcome.eliminated = folded as u64;
        Ok(outcome)
    }
}
