//! The graph compiler: a deterministic pass pipeline shared by the
//! training executor and Lite inference (DESIGN.md §16).
//!
//! secureTF's cost driver is what the enclave executes: every node a
//! compile-time pass eliminates or fuses removes kernel flops, EPC page
//! touches, and shield-charged memory traffic at once. This module is
//! the shared optimization layer both engines run through:
//!
//! * [`Pass`] — one graph-to-graph rewrite returning the new graph plus
//!   an old-id → new-id remap,
//! * [`Pipeline`] — a fixed, deterministic pass sequence that composes
//!   the remaps and produces a [`PipelineReport`],
//! * the four shipped passes: [`DeadCodeElimination`],
//!   [`CommonSubexpressionElimination`], [`ConstantFolding`], and
//!   [`OperatorFusion`].
//!
//! **Bit-identity is the contract.** Every pipeline output must evaluate
//! bit-for-bit identically to the input graph — forward values,
//! gradients, and whole training trajectories — for every worker count
//! and [`crate::memory::MemoryMode`]. The per-pass arguments:
//!
//! * DCE only removes nodes the executor's own needed-set walk would
//!   never run, so results *and* run statistics are untouched.
//! * Constant folding evaluates the folded subgraph with the same
//!   kernels the runtime uses, and kernels are bit-identical across
//!   worker counts (the kernel module's cardinal rule), so the baked
//!   constant equals the runtime value exactly; constants receive no
//!   gradients, so backward is unaffected.
//! * Fusion replaces `matmul → add_bias[ → relu]` chains with kernels
//!   that apply the same per-element epilogue in the same order, and the
//!   fused backward uses the identical kernels and accumulation order as
//!   the unfused sequence (see [`crate::kernels::matmul_bias_relu_with`]).
//! * CSE merges structurally identical subexpressions. Forward values
//!   are bit-identical (same computation), but merging changes how
//!   float gradient contributions *accumulate* (`f'·(g₁+g₂)` is not
//!   bitwise `f'·g₁ + f'·g₂`), so CSE is only part of
//!   [`Pipeline::inference`], never [`Pipeline::training`].
//!
//! Pass timing is *virtual*: [`PassStats::virtual_ns`] is derived from
//! node counts alone (never wall clock), so same-seed telemetry digests
//! stay deterministic.

mod cse;
mod dce;
mod fold;
mod fuse;

pub use cse::CommonSubexpressionElimination;
pub use dce::DeadCodeElimination;
pub use fold::{fold_graph, ConstantFolding};
pub use fuse::OperatorFusion;

use crate::graph::{Graph, NodeId};
use crate::TensorError;

/// Deterministic virtual cost of examining one node in a pass.
const PASS_NODE_NS: u64 = 240;
/// Deterministic virtual cost of one graph rewrite (a node eliminated,
/// folded, or absorbed into a fused op).
const PASS_REWRITE_NS: u64 = 960;

/// The result of running one [`Pass`].
#[derive(Debug, Clone)]
pub struct PassOutcome {
    /// The rewritten graph.
    pub graph: Graph,
    /// `remap[old.index()]` is the surviving id in `graph`, or `None`
    /// if the node was eliminated/absorbed.
    pub remap: Vec<Option<NodeId>>,
    /// Nodes whose computation the pass removed (DCE'd, CSE-merged, or
    /// constant-folded).
    pub eliminated: u64,
    /// Nodes absorbed into fused operators.
    pub fused: u64,
}

impl PassOutcome {
    /// An outcome that leaves `graph` untouched (identity remap).
    pub fn unchanged(graph: &Graph) -> PassOutcome {
        PassOutcome {
            graph: graph.clone(),
            remap: (0..graph.len()).map(|i| Some(NodeId(i))).collect(),
            eliminated: 0,
            fused: 0,
        }
    }
}

/// One deterministic graph-to-graph rewrite.
///
/// A pass must be pure (same input graph + roots → same output), must
/// keep every root alive (roots may be remapped but never dropped), and
/// must preserve bit-identical evaluation as described in the module
/// docs.
pub trait Pass {
    /// Short name used in reports and telemetry span attribution.
    fn name(&self) -> &'static str;

    /// Rewrites `graph`; `roots` are the ids that must survive
    /// (fetches, the loss, exported outputs).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnknownNode`] for out-of-range roots.
    fn run(&self, graph: &Graph, roots: &[NodeId]) -> Result<PassOutcome, TensorError>;
}

/// Per-pass statistics of one pipeline run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassStats {
    /// The pass's [`Pass::name`].
    pub name: &'static str,
    /// Node count entering the pass.
    pub nodes_before: usize,
    /// Node count leaving the pass.
    pub nodes_after: usize,
    /// Nodes whose computation the pass removed.
    pub eliminated: u64,
    /// Nodes absorbed into fused operators.
    pub fused: u64,
    /// Deterministic virtual cost of the pass, derived from node counts
    /// only — never wall clock — so telemetry digests stay reproducible.
    pub virtual_ns: u64,
}

/// What a whole [`Pipeline`] run did, pass by pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineReport {
    /// One entry per executed pass, in order.
    pub passes: Vec<PassStats>,
}

impl PipelineReport {
    /// Total nodes eliminated (DCE + CSE + folded) across all passes.
    pub fn nodes_eliminated(&self) -> u64 {
        self.passes.iter().map(|p| p.eliminated).sum()
    }

    /// Total nodes absorbed into fused operators.
    pub fn nodes_fused(&self) -> u64 {
        self.passes.iter().map(|p| p.fused).sum()
    }

    /// Total deterministic virtual time of the pipeline.
    pub fn virtual_ns(&self) -> u64 {
        self.passes.iter().map(|p| p.virtual_ns).sum()
    }

    /// Node count entering the first pass (0 for an empty report).
    pub fn nodes_before(&self) -> usize {
        self.passes.first().map_or(0, |p| p.nodes_before)
    }

    /// Node count leaving the last pass (0 for an empty report).
    pub fn nodes_after(&self) -> usize {
        self.passes.last().map_or(0, |p| p.nodes_after)
    }

    /// Whether any pass changed the graph at all.
    pub fn changed(&self) -> bool {
        self.passes.iter().any(|p| p.eliminated + p.fused > 0)
    }
}

/// An optimized graph plus the bookkeeping callers need to translate
/// between the original and optimized id spaces.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The optimized graph.
    pub graph: Graph,
    /// Composed old-id → new-id map over every pass.
    pub remap: Vec<Option<NodeId>>,
    /// Per-pass statistics.
    pub report: PipelineReport,
}

impl Optimized {
    /// The optimized id of `original`, if the node survived.
    pub fn target(&self, original: NodeId) -> Option<NodeId> {
        self.remap.get(original.index()).copied().flatten()
    }
}

/// A deterministic, ordered pass sequence.
pub struct Pipeline {
    passes: Vec<Box<dyn Pass>>,
}

impl Pipeline {
    /// A pipeline running exactly `passes`, in order.
    pub fn new(passes: Vec<Box<dyn Pass>>) -> Pipeline {
        Pipeline { passes }
    }

    /// The training pipeline: DCE → constant folding → fusion.
    ///
    /// CSE is deliberately absent: merging duplicate subexpressions
    /// reroutes float gradient *accumulation* through a single node,
    /// which is not bitwise-identical to summing the duplicates'
    /// gradients separately.
    pub fn training() -> Pipeline {
        Pipeline::new(vec![
            Box::new(DeadCodeElimination),
            Box::new(ConstantFolding),
            Box::new(OperatorFusion),
        ])
    }

    /// The inference pipeline: DCE → CSE → constant folding → fusion.
    pub fn inference() -> Pipeline {
        Pipeline::new(vec![
            Box::new(DeadCodeElimination),
            Box::new(CommonSubexpressionElimination),
            Box::new(ConstantFolding),
            Box::new(OperatorFusion),
        ])
    }

    /// Runs every pass in order, composing the id remaps.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnknownNode`] for out-of-range roots.
    pub fn run(&self, graph: &Graph, roots: &[NodeId]) -> Result<Optimized, TensorError> {
        for &root in roots {
            graph.node(root)?;
        }
        let mut current = graph.clone();
        let mut remap: Vec<Option<NodeId>> = (0..graph.len()).map(|i| Some(NodeId(i))).collect();
        let mut live_roots: Vec<NodeId> = roots.to_vec();
        let mut report = PipelineReport::default();
        for pass in &self.passes {
            let before = current.len();
            let outcome = pass.run(&current, &live_roots)?;
            for slot in &mut remap {
                *slot = slot.and_then(|mid| outcome.remap.get(mid.index()).copied().flatten());
            }
            live_roots = live_roots
                .iter()
                .filter_map(|r| outcome.remap.get(r.index()).copied().flatten())
                .collect();
            report.passes.push(PassStats {
                name: pass.name(),
                nodes_before: before,
                nodes_after: outcome.graph.len(),
                eliminated: outcome.eliminated,
                fused: outcome.fused,
                virtual_ns: before as u64 * PASS_NODE_NS
                    + (outcome.eliminated + outcome.fused) * PASS_REWRITE_NS,
            });
            current = outcome.graph;
        }
        Ok(Optimized {
            graph: current,
            remap,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Op, Padding};
    use crate::tensor::Tensor;

    fn mlp_graph() -> (Graph, NodeId, NodeId) {
        let mut g = Graph::new();
        let x = g.placeholder("x", &[0, 4]);
        let w1 = g.variable("w1", Tensor::full(&[4, 8], 0.1));
        let b1 = g.variable("b1", Tensor::full(&[8], 0.05));
        let h = g.matmul(x, w1).unwrap();
        let h = g.add_bias(h, b1).unwrap();
        let h = g.relu(h).unwrap();
        let w2 = g.variable("w2", Tensor::full(&[8, 2], 0.2));
        let b2 = g.variable("b2", Tensor::zeros(&[2]));
        let o = g.matmul(h, w2).unwrap();
        let o = g.add_bias(o, b2).unwrap();
        (g, x, o)
    }

    #[test]
    fn dce_drops_dead_branches_and_keeps_roots() {
        let (mut g, _x, o) = mlp_graph();
        // A dead head: never reachable from the output.
        let dead_w = g.constant("dead_w", Tensor::full(&[4, 16], 0.3));
        let _ = dead_w;
        let before = g.len();
        let outcome = DeadCodeElimination.run(&g, &[o]).unwrap();
        assert_eq!(outcome.eliminated, 1);
        assert_eq!(outcome.graph.len(), before - 1);
        assert!(outcome.remap[o.index()].is_some());
        assert!(outcome.remap[dead_w.index()].is_none());
    }

    #[test]
    fn dce_rejects_foreign_roots() {
        let (g, ..) = mlp_graph();
        assert!(matches!(
            DeadCodeElimination.run(&g, &[NodeId(g.len() + 3)]),
            Err(TensorError::UnknownNode)
        ));
    }

    #[test]
    fn cse_merges_structural_duplicates_only() {
        let mut g = Graph::new();
        let x = g.placeholder("x", &[0, 2]);
        let w = g.constant("w", Tensor::full(&[2, 2], 0.5));
        let m1 = g.matmul(x, w).unwrap();
        let m2 = g.matmul(x, w).unwrap(); // duplicate
        let s = g.add(m1, m2).unwrap();
        let d = g.scale(m1, 2.0).unwrap(); // distinct (scale payload)
        let e = g.scale(m1, 3.0).unwrap();
        let outcome = CommonSubexpressionElimination.run(&g, &[s, d, e]).unwrap();
        assert_eq!(outcome.eliminated, 1, "only the duplicate matmul merges");
        // m2 now maps to m1's surviving id.
        assert_eq!(outcome.remap[m2.index()], outcome.remap[m1.index()]);
        // The two scales stay distinct.
        assert_ne!(outcome.remap[d.index()], outcome.remap[e.index()]);
    }

    #[test]
    fn cse_never_merges_placeholders_or_variables() {
        let mut g = Graph::new();
        let a = g.placeholder("a", &[0, 2]);
        let b = g.placeholder("b", &[0, 2]);
        let v1 = g.variable("v1", Tensor::zeros(&[2]));
        let v2 = g.variable("v2", Tensor::zeros(&[2]));
        let s = g.add(a, b).unwrap();
        let outcome = CommonSubexpressionElimination
            .run(&g, &[s, v1, v2])
            .unwrap();
        assert_eq!(outcome.eliminated, 0);
        assert_eq!(outcome.graph.len(), g.len());
    }

    #[test]
    fn cse_merges_bit_identical_constants() {
        let mut g = Graph::new();
        let c1 = g.constant("c1", Tensor::full(&[3], 1.5));
        let c2 = g.constant("c2", Tensor::full(&[3], 1.5));
        let c3 = g.constant("c3", Tensor::full(&[3], 1.5 + 1e-7));
        let s = g.add(c1, c2).unwrap();
        let t = g.add(s, c3).unwrap();
        let outcome = CommonSubexpressionElimination.run(&g, &[t]).unwrap();
        assert_eq!(outcome.eliminated, 1, "only the bitwise-equal pair merges");
    }

    #[test]
    fn fusion_rewrites_matmul_bias_relu_chains() {
        let (g, _x, o) = mlp_graph();
        let outcome = OperatorFusion.run(&g, &[o]).unwrap();
        // Layer 1 (matmul+bias+relu) absorbs 2 nodes, layer 2
        // (matmul+bias, no relu) absorbs 1.
        assert_eq!(outcome.fused, 3);
        let kinds: Vec<&str> = outcome.graph.nodes().iter().map(|n| n.op.kind()).collect();
        assert!(kinds.contains(&"fused_matmul_bias_relu"));
        assert!(kinds.contains(&"fused_matmul_bias"));
        assert!(!kinds.contains(&"matmul"));
        assert!(!kinds.contains(&"add_bias"));
    }

    #[test]
    fn fusion_respects_roots_and_fanout() {
        let mut g = Graph::new();
        let x = g.placeholder("x", &[0, 4]);
        let w = g.variable("w", Tensor::full(&[4, 4], 0.1));
        let b = g.variable("b", Tensor::zeros(&[4]));
        let mm = g.matmul(x, w).unwrap();
        let ab = g.add_bias(mm, b).unwrap();
        let _r = g.relu(ab).unwrap();
        // The matmul intermediate is itself fetched: fusing it away
        // would lose the fetch, so the chain must stay unfused.
        let outcome = OperatorFusion.run(&g, &[_r, mm]).unwrap();
        assert_eq!(outcome.fused, 0);

        // Fan-out blocks fusion too: the bias output feeds two readers,
        // so only matmul+bias may fuse (relu stays separate).
        let mut g2 = Graph::new();
        let x2 = g2.placeholder("x", &[0, 4]);
        let w2 = g2.variable("w", Tensor::full(&[4, 4], 0.1));
        let b2 = g2.variable("b", Tensor::zeros(&[4]));
        let mm2 = g2.matmul(x2, w2).unwrap();
        let ab2 = g2.add_bias(mm2, b2).unwrap();
        let r2 = g2.relu(ab2).unwrap();
        let s2 = g2.sigmoid(ab2).unwrap();
        let outcome2 = OperatorFusion.run(&g2, &[r2, s2]).unwrap();
        assert_eq!(outcome2.fused, 1, "matmul absorbs; relu must not");
        let kinds: Vec<&str> = outcome2.graph.nodes().iter().map(|n| n.op.kind()).collect();
        assert!(kinds.contains(&"fused_matmul_bias"));
        assert!(kinds.contains(&"relu"));
    }

    #[test]
    fn fusion_handles_conv_chains() {
        let mut g = Graph::new();
        let x = g.placeholder("x", &[0, 8, 8, 3]);
        let f = g.variable("f", Tensor::full(&[3, 3, 3, 4], 0.1));
        let b = g.variable("b", Tensor::zeros(&[4]));
        let c = g.conv2d(x, f, Padding::Same).unwrap();
        let c = g.add_bias(c, b).unwrap();
        let c = g.relu(c).unwrap();
        let outcome = OperatorFusion.run(&g, &[c]).unwrap();
        assert_eq!(outcome.fused, 2);
        assert!(outcome
            .graph
            .nodes()
            .iter()
            .any(|n| matches!(n.op, Op::FusedConv2d { relu: true, .. })));
    }

    #[test]
    fn folding_collapses_constant_subgraphs() {
        let mut g = Graph::new();
        let x = g.placeholder("x", &[0, 4]);
        let c1 = g.constant("c1", Tensor::full(&[4, 3], 0.5));
        let c2 = g.constant("c2", Tensor::full(&[4, 3], -0.2));
        let sum = g.add(c1, c2).unwrap();
        let w = g.relu(sum).unwrap();
        let out = g.matmul(x, w).unwrap();
        let outcome = ConstantFolding.run(&g, &[out]).unwrap();
        assert_eq!(outcome.eliminated, 2, "add and relu fold");
        assert!(matches!(
            outcome.graph.nodes()[w.index()].op,
            Op::Constant(_)
        ));
        // In-place pass: identity remap.
        assert_eq!(outcome.remap[out.index()], Some(out));
    }

    #[test]
    fn pipeline_composes_remaps_and_reports() {
        let (mut g, _x, o) = mlp_graph();
        g.constant("dead", Tensor::zeros(&[64]));
        let optimized = Pipeline::training().run(&g, &[o]).unwrap();
        // dead constant DCE'd; both layers fused.
        assert_eq!(optimized.report.nodes_eliminated(), 1);
        assert_eq!(optimized.report.nodes_fused(), 3);
        assert!(optimized.report.changed());
        assert_eq!(optimized.report.nodes_before(), g.len());
        assert_eq!(optimized.report.nodes_after(), optimized.graph.len());
        assert!(optimized.report.virtual_ns() > 0);
        // The output survives and its remap is in range.
        let new_o = optimized.target(o).unwrap();
        assert!(new_o.index() < optimized.graph.len());
        // The report's virtual time is a pure function of node counts:
        // running again gives the identical report.
        let again = Pipeline::training().run(&g, &[o]).unwrap();
        assert_eq!(optimized.report, again.report);
    }

    #[test]
    fn training_pipeline_has_no_cse() {
        let mut g = Graph::new();
        let x = g.placeholder("x", &[0, 2]);
        let w = g.variable("w", Tensor::full(&[2, 2], 0.5));
        let m1 = g.matmul(x, w).unwrap();
        let m2 = g.matmul(x, w).unwrap();
        let s = g.add(m1, m2).unwrap();
        let train = Pipeline::training().run(&g, &[s]).unwrap();
        assert_eq!(train.graph.len(), g.len(), "duplicates kept for training");
        let infer = Pipeline::inference().run(&g, &[s]).unwrap();
        assert_eq!(infer.graph.len(), g.len() - 1, "duplicates merged for inference");
    }
}
