//! Common-subexpression elimination via structural hashing.

use super::{Pass, PassOutcome};
use crate::graph::{Graph, Node, NodeId, Op, Padding};
use crate::TensorError;
use std::collections::HashMap;

/// Merges structurally identical pure subexpressions: two nodes with the
/// same operation, same attribute payload, and same (already-merged)
/// inputs compute the same value, so the later one is rewritten to
/// reference the earlier.
///
/// Placeholders and variables are never merged — they are *identities*
/// (fed and updated separately), not expressions. Constants merge only
/// when their data is bit-for-bit equal.
///
/// Forward values are bit-identical after CSE (the surviving node runs
/// the exact computation the duplicate would have). Gradients are NOT:
/// merging reroutes float gradient accumulation through one node, and
/// `f'·(g₁+g₂)` is not bitwise `f'·g₁ + f'·g₂`. This pass therefore
/// belongs to inference pipelines only — see
/// [`super::Pipeline::training`].
pub struct CommonSubexpressionElimination;

/// Structural key: op kind, attribute payload, and remapped input ids.
fn structural_key(op: &Op) -> Option<Vec<u8>> {
    match op {
        // Identities, never expressions.
        Op::Placeholder { .. } | Op::Variable { .. } => return None,
        _ => {}
    }
    let mut key = Vec::new();
    key.extend_from_slice(op.kind().as_bytes());
    key.push(0xFF);
    // Attribute payloads that `kind()` does not encode.
    match op {
        Op::Constant(t) => {
            for &d in t.shape() {
                key.extend_from_slice(&(d as u32).to_le_bytes());
            }
            key.push(0xFE);
            for &v in t.data() {
                key.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        Op::Scale(_, factor) => key.extend_from_slice(&factor.to_bits().to_le_bytes()),
        Op::Reshape(_, shape) => {
            for &d in shape {
                key.extend_from_slice(&(d as u32).to_le_bytes());
            }
        }
        Op::Conv2d { padding, .. } | Op::FusedConv2d { padding, .. } => {
            key.push(match padding {
                Padding::Same => 0,
                Padding::Valid => 1,
            });
        }
        _ => {}
    }
    key.push(0xFF);
    for input in op.inputs() {
        key.extend_from_slice(&(input.index() as u32).to_le_bytes());
    }
    Some(key)
}

impl Pass for CommonSubexpressionElimination {
    fn name(&self) -> &'static str {
        "cse"
    }

    fn run(&self, graph: &Graph, roots: &[NodeId]) -> Result<PassOutcome, TensorError> {
        for &root in roots {
            graph.node(root)?;
        }
        let mut out = Graph::new();
        let mut remap: Vec<Option<NodeId>> = vec![None; graph.len()];
        let mut seen: HashMap<Vec<u8>, NodeId> = HashMap::new();
        let mut eliminated = 0u64;
        for (index, node) in graph.nodes().iter().enumerate() {
            let op = node
                .op
                .map_inputs(|old| remap[old.index()].expect("inputs precede node in topo order"));
            if let Some(key) = structural_key(&op) {
                if let Some(&canonical) = seen.get(&key) {
                    remap[index] = Some(canonical);
                    eliminated += 1;
                    continue;
                }
                let new_id = out
                    .append_node(Node {
                        op,
                        name: node.name.clone(),
                    })
                    .expect("remapped inputs exist");
                seen.insert(key, new_id);
                remap[index] = Some(new_id);
            } else {
                let new_id = out
                    .append_node(Node {
                        op,
                        name: node.name.clone(),
                    })
                    .expect("remapped inputs exist");
                remap[index] = Some(new_id);
            }
        }
        Ok(PassOutcome {
            graph: out,
            remap,
            eliminated,
            fused: 0,
        })
    }
}
