//! Dead-code elimination: drop every node unreachable from the roots.

use super::{Pass, PassOutcome};
use crate::graph::{Graph, Node, NodeId};
use crate::TensorError;

/// Removes nodes that do not contribute to any root (dead training
/// heads, unused branches, constants orphaned by folding).
///
/// Bit-identity: the executors already restrict work to the needed set
/// of the requested fetches, so eliminated nodes were never executed in
/// the unoptimized run either — results *and* run statistics are
/// untouched. What DCE buys is a smaller graph for planning, export,
/// and the EPC params region (dead constants stop counting against
/// [`Graph::param_bytes`]).
pub struct DeadCodeElimination;

impl Pass for DeadCodeElimination {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&self, graph: &Graph, roots: &[NodeId]) -> Result<PassOutcome, TensorError> {
        let mut needed = vec![false; graph.len()];
        let mut stack: Vec<NodeId> = Vec::with_capacity(roots.len());
        for &root in roots {
            graph.node(root)?;
            stack.push(root);
        }
        while let Some(id) = stack.pop() {
            if needed[id.index()] {
                continue;
            }
            needed[id.index()] = true;
            stack.extend(graph.nodes()[id.index()].op.inputs());
        }
        let mut out = Graph::new();
        let mut remap: Vec<Option<NodeId>> = vec![None; graph.len()];
        for (index, node) in graph.nodes().iter().enumerate() {
            if !needed[index] {
                continue;
            }
            let op = node
                .op
                .map_inputs(|old| remap[old.index()].expect("inputs precede node in topo order"));
            let new_id = out
                .append_node(Node {
                    op,
                    name: node.name.clone(),
                })
                .expect("remapped inputs exist");
            remap[index] = Some(new_id);
        }
        let eliminated = (graph.len() - out.len()) as u64;
        Ok(PassOutcome {
            graph: out,
            remap,
            eliminated,
            fused: 0,
        })
    }
}
