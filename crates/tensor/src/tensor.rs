//! Dense row-major `f32` tensors and their kernels.

use crate::TensorError;
use std::fmt;

/// A dense tensor of `f32` values in row-major order.
#[derive(Clone, PartialEq, Default)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{:.4}, {:.4}, …]", self.data[0], self.data[1])
        }
    }
}

impl Tensor {
    /// Creates a tensor of zeros.
    pub fn zeros(shape: &[usize]) -> Tensor {
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Tensor {
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; shape.iter().product()],
        }
    }

    /// Creates a tensor from raw data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len()` does not
    /// equal the shape's element count.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Result<Tensor, TensorError> {
        let expect: usize = shape.iter().product();
        if data.len() != expect {
            return Err(TensorError::ShapeMismatch {
                op: "from_vec",
                detail: format!("shape {shape:?} needs {expect} values, got {}", data.len()),
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Creates a scalar tensor.
    pub fn scalar(value: f32) -> Tensor {
        Tensor {
            shape: vec![],
            data: vec![value],
        }
    }

    /// Xavier/Glorot-style uniform initialization from a caller-provided RNG.
    pub fn glorot<R: rand::Rng>(shape: &[usize], rng: &mut R) -> Tensor {
        let fan_in = *shape.first().unwrap_or(&1) as f32;
        let fan_out = *shape.last().unwrap_or(&1) as f32;
        let limit = (6.0 / (fan_in + fan_out)).sqrt();
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| rng.gen_range(-limit..=limit)).collect();
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes (for EPC accounting).
    pub fn byte_len(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f32>()) as u64
    }

    /// The underlying data slice.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on element-count mismatch.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor, TensorError> {
        let expect: usize = shape.iter().product();
        if expect != self.data.len() {
            return Err(TensorError::ShapeMismatch {
                op: "reshape",
                detail: format!("{:?} -> {shape:?}", self.shape),
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        })
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().copied().map(f).collect(),
        }
    }

    /// Elementwise combination of same-shape tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn zip(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor, TensorError> {
        if self.shape != rhs.shape {
            return Err(TensorError::ShapeMismatch {
                op: "zip",
                detail: format!("{:?} vs {:?}", self.shape, rhs.shape),
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Matrix multiplication: `[m, k] × [k, n] -> [m, n]`.
    ///
    /// Delegates to the blocked kernel layer ([`crate::kernels::matmul`])
    /// with a serial pool. Zero operands are *not* skipped: `0 × NaN` is
    /// NaN and must propagate.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless both operands are
    /// rank-2 with matching inner dimension.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        crate::kernels::matmul(&crate::kernels::WorkerPool::serial(), self, rhs).map(|(out, _)| out)
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] for non-matrices.
    pub fn transpose(&self) -> Result<Tensor, TensorError> {
        let &[m, n] = &self.shape[..] else {
            return Err(TensorError::ShapeMismatch {
                op: "transpose",
                detail: format!("{:?} (need rank 2)", self.shape),
            });
        };
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Ok(Tensor {
            shape: vec![n, m],
            data: out,
        })
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Index of the maximum element (ties broken low). `None` when empty.
    pub fn argmax(&self) -> Option<usize> {
        self.data
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
    }

    /// Row-wise argmax for a `[batch, classes]` tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] for non-matrices.
    pub fn argmax_rows(&self) -> Result<Vec<usize>, TensorError> {
        let &[m, n] = &self.shape[..] else {
            return Err(TensorError::ShapeMismatch {
                op: "argmax_rows",
                detail: format!("{:?}", self.shape),
            });
        };
        Ok((0..m)
            .map(|i| {
                let row = &self.data[i * n..(i + 1) * n];
                row.iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|(j, _)| j)
                    .unwrap_or(0)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_count() {
        assert!(Tensor::from_vec(&[2, 2], vec![1.0; 4]).is_ok());
        assert!(Tensor::from_vec(&[2, 2], vec![1.0; 3]).is_err());
    }

    #[test]
    fn matmul_known_result() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_propagates_nan_through_zero_lhs() {
        // A zero lhs element must still multiply the rhs: 0 × NaN = NaN.
        let a = Tensor::from_vec(&[1, 2], vec![0.0, 1.0]).unwrap();
        let b = Tensor::from_vec(&[2, 1], vec![f32::NAN, 2.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert!(c.data()[0].is_nan());
        let inf = Tensor::from_vec(&[2, 1], vec![f32::INFINITY, 2.0]).unwrap();
        assert!(a.matmul(&inf).unwrap().data()[0].is_nan()); // 0·∞ + 2
    }

    #[test]
    fn matmul_shape_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(a.matmul(&b).is_err());
        let v = Tensor::zeros(&[3]);
        assert!(a.matmul(&v).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let t = a.transpose().unwrap();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.data(), &[1., 4., 2., 5., 3., 6.]);
        assert_eq!(t.transpose().unwrap(), a);
    }

    #[test]
    fn identity_matmul_is_identity() {
        let a = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]).unwrap();
        let id = Tensor::from_vec(&[2, 2], vec![1., 0., 0., 1.]).unwrap();
        assert_eq!(a.matmul(&id).unwrap(), a);
        assert_eq!(id.matmul(&a).unwrap(), a);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let r = a.reshape(&[3, 2]).unwrap();
        assert_eq!(r.data(), a.data());
        assert!(a.reshape(&[7]).is_err());
    }

    #[test]
    fn zip_and_map() {
        let a = Tensor::from_vec(&[3], vec![1., 2., 3.]).unwrap();
        let b = Tensor::from_vec(&[3], vec![10., 20., 30.]).unwrap();
        assert_eq!(a.zip(&b, |x, y| x + y).unwrap().data(), &[11., 22., 33.]);
        assert_eq!(a.map(|x| x * 2.0).data(), &[2., 4., 6.]);
        assert!(a.zip(&Tensor::zeros(&[4]), |x, _| x).is_err());
    }

    #[test]
    fn argmax_rows_picks_per_row() {
        let a = Tensor::from_vec(&[2, 3], vec![0., 5., 1., 9., 2., 3.]).unwrap();
        assert_eq!(a.argmax_rows().unwrap(), vec![1, 0]);
        assert_eq!(a.argmax(), Some(3));
    }

    #[test]
    fn glorot_within_limit() {
        let mut rng = rand::rngs::mock::StepRng::new(0, 0x9e3779b97f4a7c15);
        let t = Tensor::glorot(&[10, 10], &mut rng);
        let limit = (6.0f32 / 20.0).sqrt() + 1e-6;
        assert!(t.data().iter().all(|v| v.abs() <= limit));
    }

    #[test]
    fn scalar_and_byte_len() {
        let s = Tensor::scalar(4.5);
        assert_eq!(s.shape(), &[] as &[usize]);
        assert_eq!(s.len(), 1);
        assert_eq!(Tensor::zeros(&[4, 4]).byte_len(), 64);
    }
}
