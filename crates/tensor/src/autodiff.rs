//! Graph execution: forward evaluation and reverse-mode differentiation.
//!
//! The executor walks the graph in topological order (node order), then —
//! for training — propagates gradients in reverse. Gradients are verified
//! against numerical differentiation in this module's tests.

use crate::graph::{Graph, NodeId, Op};
use crate::kernels::{self, KernelCost, TakeBuffer, WorkerPool, Workspace};
use crate::memory::ExecMemory;
use crate::tensor::Tensor;
use crate::TensorError;
use std::collections::HashMap;

/// Per-kernel-family flop attribution within a [`RunStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelFlops {
    /// Flops spent in matrix products.
    pub matmul: f64,
    /// Flops spent in convolution forward/backward kernels.
    pub conv2d: f64,
    /// Flops spent in everything else (element-wise ops, losses, pools).
    pub other: f64,
}

impl KernelFlops {
    fn merge(&mut self, other: KernelFlops) {
        self.matmul += other.matmul;
        self.conv2d += other.conv2d;
        self.other += other.other;
    }

    fn scale(&mut self, factor: f64) {
        self.matmul *= factor;
        self.conv2d *= factor;
        self.other *= factor;
    }
}

/// Resource usage of one graph execution, consumed by the TEE cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunStats {
    /// Floating-point operations performed (all workers summed).
    pub flops: f64,
    /// Flops on the longest worker chain — what the run costs in
    /// (virtual) time when pooled kernels split the work. Equals `flops`
    /// for serial execution.
    pub critical_flops: f64,
    /// Attribution of `flops` to kernel families.
    pub kernel_flops: KernelFlops,
    /// Bytes of activations produced.
    pub activation_bytes: u64,
}

impl RunStats {
    /// Merges another run's stats into this one.
    pub fn merge(&mut self, other: RunStats) {
        self.flops += other.flops;
        self.critical_flops += other.critical_flops;
        self.kernel_flops.merge(other.kernel_flops);
        self.activation_bytes += other.activation_bytes;
    }

    /// Multiplies every compute field by `factor` — e.g. the usual
    /// "backward ≈ 2× forward" training heuristic.
    pub fn scale_compute(&mut self, factor: f64) {
        self.flops *= factor;
        self.critical_flops *= factor;
        self.kernel_flops.scale(factor);
    }

    /// Rescales the compute fields so `flops == target`, preserving the
    /// critical-path ratio and per-kernel attribution (used when a model
    /// declares authoritative flop counts).
    pub fn rescale_flops(&mut self, target: f64) {
        if self.flops > 0.0 {
            self.scale_compute(target / self.flops);
        } else {
            self.critical_flops = target;
            self.kernel_flops.other = target;
        }
        self.flops = target;
    }

    /// The difference `self - earlier` — the usage accrued since the
    /// `earlier` snapshot was taken.
    #[must_use]
    pub fn since(&self, earlier: &RunStats) -> RunStats {
        RunStats {
            flops: self.flops - earlier.flops,
            critical_flops: self.critical_flops - earlier.critical_flops,
            kernel_flops: KernelFlops {
                matmul: self.kernel_flops.matmul - earlier.kernel_flops.matmul,
                conv2d: self.kernel_flops.conv2d - earlier.kernel_flops.conv2d,
                other: self.kernel_flops.other - earlier.kernel_flops.other,
            },
            activation_bytes: self.activation_bytes.saturating_sub(earlier.activation_bytes),
        }
    }

    /// A serial op: total and critical flops coincide.
    pub(crate) fn charge_serial(&mut self, flops: f64) {
        self.flops += flops;
        self.critical_flops += flops;
        self.kernel_flops.other += flops;
    }

    pub(crate) fn charge_matmul(&mut self, cost: KernelCost) {
        self.flops += cost.flops;
        self.critical_flops += cost.critical_flops;
        self.kernel_flops.matmul += cost.flops;
    }

    pub(crate) fn charge_conv(&mut self, cost: KernelCost) {
        self.flops += cost.flops;
        self.critical_flops += cost.critical_flops;
        self.kernel_flops.conv2d += cost.flops;
    }
}

/// The result of a forward pass.
#[derive(Debug)]
pub struct Forward {
    values: Vec<Option<Tensor>>,
    /// Resource usage of the pass.
    pub stats: RunStats,
}

impl Forward {
    /// The computed value of `id`, if it was needed by the pass.
    pub fn value(&self, id: NodeId) -> Option<&Tensor> {
        self.values.get(id.0).and_then(Option::as_ref)
    }
}

pub(crate) fn needed_set(graph: &Graph, targets: &[NodeId]) -> Result<Vec<bool>, TensorError> {
    let mut needed = vec![false; graph.len()];
    let mut stack: Vec<NodeId> = targets.to_vec();
    while let Some(id) = stack.pop() {
        if id.0 >= graph.len() {
            return Err(TensorError::UnknownNode);
        }
        if needed[id.0] {
            continue;
        }
        needed[id.0] = true;
        stack.extend(graph.node(id)?.op.inputs());
    }
    Ok(needed)
}

pub(crate) fn feed_matches_template(template: &[usize], shape: &[usize]) -> bool {
    template.len() == shape.len()
        && template
            .iter()
            .zip(shape.iter())
            .all(|(&t, &s)| t == 0 || t == s)
}

/// Evaluates `targets` given placeholder `feeds` and variable values.
///
/// # Errors
///
/// * [`TensorError::UnknownNode`] for ids outside the graph.
/// * [`TensorError::BadFeed`] for missing or mis-shaped placeholder feeds.
/// * [`TensorError::ShapeMismatch`] for incompatible operand shapes.
/// * [`TensorError::InvalidGraph`] for a variable with no session value.
pub fn forward(
    graph: &Graph,
    feeds: &HashMap<NodeId, Tensor>,
    vars: &HashMap<NodeId, Tensor>,
    targets: &[NodeId],
) -> Result<Forward, TensorError> {
    forward_with(graph, feeds, vars, targets, &WorkerPool::serial())
}

/// [`forward`] with an explicit worker pool for the matmul/conv kernels.
///
/// Results are bit-identical to the serial pass for any worker count
/// (the kernels' determinism guarantee); only [`RunStats::critical_flops`]
/// changes.
///
/// # Errors
///
/// Same conditions as [`forward`].
pub fn forward_with(
    graph: &Graph,
    feeds: &HashMap<NodeId, Tensor>,
    vars: &HashMap<NodeId, Tensor>,
    targets: &[NodeId],
    pool: &WorkerPool,
) -> Result<Forward, TensorError> {
    let needed = needed_set(graph, targets)?;
    let mut values: Vec<Option<Tensor>> = vec![None; graph.len()];
    let mut stats = RunStats::default();

    for (index, node) in graph.nodes().iter().enumerate() {
        if !needed[index] {
            continue;
        }
        let id = NodeId(index);
        let get = |nid: NodeId| -> &Tensor {
            values[nid.0]
                .as_ref()
                .expect("inputs precede node in topological order")
        };
        let value = match &node.op {
            Op::Placeholder { shape } => {
                let fed = feeds.get(&id).ok_or_else(|| {
                    TensorError::BadFeed(format!("placeholder '{}' not fed", node.name))
                })?;
                if !feed_matches_template(shape, fed.shape()) {
                    return Err(TensorError::BadFeed(format!(
                        "placeholder '{}' expects {:?}, fed {:?}",
                        node.name,
                        shape,
                        fed.shape()
                    )));
                }
                fed.clone()
            }
            Op::Variable { .. } => vars
                .get(&id)
                .cloned()
                .ok_or(TensorError::InvalidGraph("variable without session value"))?,
            Op::Constant(t) => t.clone(),
            Op::MatMul(a, b) => {
                let (ta, tb) = (get(*a), get(*b));
                let (out, cost) = kernels::matmul(pool, ta, tb)?;
                stats.charge_matmul(cost);
                out
            }
            Op::AddBias(x, bias) => {
                let (tx, tb) = (get(*x), get(*bias));
                add_bias(tx, tb)?
            }
            Op::Add(a, b) => {
                stats.charge_serial(get(*a).len() as f64);
                get(*a).zip(get(*b), |x, y| x + y)?
            }
            Op::Mul(a, b) => {
                stats.charge_serial(get(*a).len() as f64);
                get(*a).zip(get(*b), |x, y| x * y)?
            }
            Op::Relu(x) => {
                stats.charge_serial(get(*x).len() as f64);
                get(*x).map(|v| v.max(0.0))
            }
            Op::Softmax(x) => {
                let t = get(*x);
                stats.charge_serial(5.0 * t.len() as f64);
                softmax(t)?
            }
            Op::Conv2d {
                input,
                filter,
                padding,
            } => {
                let (ti, tf) = (get(*input), get(*filter));
                let (out, cost) = kernels::conv2d(pool, ti, tf, *padding)?;
                stats.charge_conv(cost);
                out
            }
            Op::MaxPool2(x) => {
                stats.charge_serial(get(*x).len() as f64);
                max_pool2(get(*x))?.0
            }
            Op::Flatten(x) => {
                let t = get(*x);
                let batch = *t.shape().first().unwrap_or(&1);
                let rest = t.len() / batch.max(1);
                t.reshape(&[batch, rest])?
            }
            Op::Reshape(x, shape) => get(*x).reshape(shape)?,
            Op::SoftmaxCrossEntropy { logits, labels } => {
                let (tl, ty) = (get(*logits), get(*labels));
                stats.charge_serial(8.0 * tl.len() as f64);
                softmax_cross_entropy(tl, ty)?
            }
            Op::MseLoss(p, t) => {
                let (tp, tt) = (get(*p), get(*t));
                stats.charge_serial(3.0 * tp.len() as f64);
                let diff = tp.zip(tt, |a, b| a - b)?;
                Tensor::scalar(diff.data().iter().map(|d| d * d).sum::<f32>() / tp.len() as f32)
            }
            Op::Sub(a, b) => {
                stats.charge_serial(get(*a).len() as f64);
                get(*a).zip(get(*b), |x, y| x - y)?
            }
            Op::Scale(x, factor) => {
                let f = *factor;
                stats.charge_serial(get(*x).len() as f64);
                get(*x).map(|v| v * f)
            }
            Op::Sigmoid(x) => {
                stats.charge_serial(4.0 * get(*x).len() as f64);
                get(*x).map(|v| 1.0 / (1.0 + (-v).exp()))
            }
            Op::Tanh(x) => {
                stats.charge_serial(4.0 * get(*x).len() as f64);
                get(*x).map(f32::tanh)
            }
            Op::AvgPool2(x) => {
                stats.charge_serial(get(*x).len() as f64);
                avg_pool2(get(*x))?
            }
            Op::ConcatCols(a, b) => concat_cols(get(*a), get(*b))?,
            Op::FusedMatMul {
                lhs,
                rhs,
                bias,
                relu,
            } => {
                let (tl, tr, tb) = (get(*lhs), get(*rhs), get(*bias));
                let (out, cost) = kernels::matmul_bias_relu(pool, tl, tr, tb, *relu)?;
                stats.charge_matmul(cost);
                out
            }
            Op::FusedConv2d {
                input,
                filter,
                bias,
                padding,
                relu,
            } => {
                let (ti, tf, tb) = (get(*input), get(*filter), get(*bias));
                let (out, cost) = kernels::conv2d_bias_relu(pool, ti, tf, tb, *padding, *relu)?;
                stats.charge_conv(cost);
                out
            }
        };
        stats.activation_bytes += value.byte_len();
        values[index] = Some(value);
    }
    Ok(Forward { values, stats })
}

/// Computes gradients of the scalar `loss` with respect to every needed
/// node, given a completed forward pass.
///
/// # Errors
///
/// * [`TensorError::InvalidGraph`] if `loss` is not a scalar or was not
///   computed by `fwd`.
pub fn backward(
    graph: &Graph,
    fwd: &Forward,
    loss: NodeId,
) -> Result<HashMap<NodeId, Tensor>, TensorError> {
    backward_with(graph, fwd, loss, &WorkerPool::serial())
}

/// [`backward`] with an explicit worker pool for the matmul/conv kernels.
/// Gradients are bit-identical to the serial pass for any worker count.
///
/// # Errors
///
/// Same conditions as [`backward`].
pub fn backward_with(
    graph: &Graph,
    fwd: &Forward,
    loss: NodeId,
    pool: &WorkerPool,
) -> Result<HashMap<NodeId, Tensor>, TensorError> {
    let loss_value = fwd
        .value(loss)
        .ok_or(TensorError::InvalidGraph("loss not computed by forward"))?;
    if loss_value.len() != 1 {
        return Err(TensorError::InvalidGraph("loss must be scalar"));
    }
    let mut grads: HashMap<NodeId, Tensor> = HashMap::new();
    grads.insert(loss, Tensor::full(loss_value.shape(), 1.0));

    for index in (0..=loss.0).rev() {
        let id = NodeId(index);
        let Some(grad) = grads.get(&id).cloned() else {
            continue;
        };
        let node = graph.node(id)?;
        let value_of = |nid: NodeId| -> Result<&Tensor, TensorError> {
            fwd.value(nid)
                .ok_or(TensorError::InvalidGraph("missing forward value"))
        };
        let accumulate = |grads: &mut HashMap<NodeId, Tensor>,
                              nid: NodeId,
                              g: Tensor|
         -> Result<(), TensorError> {
            match grads.get_mut(&nid) {
                Some(existing) => {
                    *existing = existing.zip(&g, |a, b| a + b)?;
                }
                None => {
                    grads.insert(nid, g);
                }
            }
            Ok(())
        };
        match &node.op {
            Op::Placeholder { .. } | Op::Variable { .. } | Op::Constant(_) => {}
            Op::MatMul(a, b) => {
                let (ta, tb) = (value_of(*a)?, value_of(*b)?);
                let ga = kernels::matmul(pool, &grad, &tb.transpose()?)?.0;
                let gb = kernels::matmul(pool, &ta.transpose()?, &grad)?.0;
                accumulate(&mut grads, *a, ga)?;
                accumulate(&mut grads, *b, gb)?;
            }
            Op::AddBias(x, bias) => {
                let tb = value_of(*bias)?;
                accumulate(&mut grads, *x, grad.clone())?;
                accumulate(&mut grads, *bias, column_sum(&grad, tb.shape())?)?;
            }
            Op::Add(a, b) => {
                accumulate(&mut grads, *a, grad.clone())?;
                accumulate(&mut grads, *b, grad)?;
            }
            Op::Mul(a, b) => {
                let (ta, tb) = (value_of(*a)?.clone(), value_of(*b)?.clone());
                accumulate(&mut grads, *a, grad.zip(&tb, |g, v| g * v)?)?;
                accumulate(&mut grads, *b, grad.zip(&ta, |g, v| g * v)?)?;
            }
            Op::Relu(x) => {
                let tx = value_of(*x)?;
                let gx = grad.zip(tx, |g, v| if v > 0.0 { g } else { 0.0 })?;
                accumulate(&mut grads, *x, gx)?;
            }
            Op::Softmax(x) => {
                let s = fwd
                    .value(id)
                    .ok_or(TensorError::InvalidGraph("missing softmax value"))?;
                accumulate(&mut grads, *x, softmax_grad(s, &grad)?)?;
            }
            Op::Conv2d {
                input,
                filter,
                padding,
            } => {
                let (ti, tf) = (value_of(*input)?, value_of(*filter)?);
                let (gi, gf, _) = kernels::conv2d_grad(pool, ti, tf, &grad, *padding)?;
                accumulate(&mut grads, *input, gi)?;
                accumulate(&mut grads, *filter, gf)?;
            }
            Op::MaxPool2(x) => {
                let tx = value_of(*x)?;
                let (_, indices) = max_pool2(tx)?;
                let mut gx = Tensor::zeros(tx.shape());
                for (out_idx, &src_idx) in indices.iter().enumerate() {
                    gx.data_mut()[src_idx] += grad.data()[out_idx];
                }
                accumulate(&mut grads, *x, gx)?;
            }
            Op::Flatten(x) | Op::Reshape(x, _) => {
                let tx = value_of(*x)?;
                accumulate(&mut grads, *x, grad.reshape(tx.shape())?)?;
            }
            Op::SoftmaxCrossEntropy { logits, labels } => {
                let (tl, ty) = (value_of(*logits)?, value_of(*labels)?);
                let batch = tl.shape()[0] as f32;
                let probs = softmax(tl)?;
                let scale = grad.data()[0] / batch;
                let gl = probs.zip(ty, |p, y| (p - y) * scale)?;
                accumulate(&mut grads, *logits, gl)?;
            }
            Op::MseLoss(p, t) => {
                let (tp, tt) = (value_of(*p)?, value_of(*t)?);
                let n = tp.len() as f32;
                let scale = 2.0 * grad.data()[0] / n;
                let gp = tp.zip(tt, |a, b| (a - b) * scale)?;
                accumulate(&mut grads, *p, gp)?;
            }
            Op::Sub(a, b) => {
                accumulate(&mut grads, *a, grad.clone())?;
                accumulate(&mut grads, *b, grad.map(|g| -g))?;
            }
            Op::Scale(x, factor) => {
                let f = *factor;
                accumulate(&mut grads, *x, grad.map(|g| g * f))?;
            }
            Op::Sigmoid(x) => {
                let s = fwd
                    .value(id)
                    .ok_or(TensorError::InvalidGraph("missing sigmoid value"))?;
                let gx = grad.zip(s, |g, sv| g * sv * (1.0 - sv))?;
                accumulate(&mut grads, *x, gx)?;
            }
            Op::Tanh(x) => {
                let t = fwd
                    .value(id)
                    .ok_or(TensorError::InvalidGraph("missing tanh value"))?;
                let gx = grad.zip(t, |g, tv| g * (1.0 - tv * tv))?;
                accumulate(&mut grads, *x, gx)?;
            }
            Op::AvgPool2(x) => {
                let tx = value_of(*x)?;
                accumulate(&mut grads, *x, avg_pool2_grad(tx.shape(), &grad)?)?;
            }
            Op::ConcatCols(a, b) => {
                let (ta, tb) = (value_of(*a)?, value_of(*b)?);
                let (ga, gb) = concat_cols_grad(ta.shape(), tb.shape(), &grad)?;
                accumulate(&mut grads, *a, ga)?;
                accumulate(&mut grads, *b, gb)?;
            }
            Op::FusedMatMul {
                lhs,
                rhs,
                bias,
                relu,
            } => {
                // `relu(pre) > 0 ⟺ pre > 0`, so masking on the fused
                // output is bit-identical to the unfused relu backward's
                // mask on the never-materialized pre-activation.
                let dpre = if *relu {
                    let y = fwd
                        .value(id)
                        .ok_or(TensorError::InvalidGraph("missing fused value"))?;
                    grad.zip(y, |g, v| if v > 0.0 { g } else { 0.0 })?
                } else {
                    grad.clone()
                };
                let (tl, tr, tb) = (value_of(*lhs)?, value_of(*rhs)?, value_of(*bias)?);
                let gbias = column_sum(&dpre, tb.shape())?;
                let ga = kernels::matmul(pool, &dpre, &tr.transpose()?)?.0;
                let gb = kernels::matmul(pool, &tl.transpose()?, &dpre)?.0;
                // Unfused order: add_bias's bias grad lands before the
                // matmul grads, so aliased inputs accumulate identically.
                accumulate(&mut grads, *bias, gbias)?;
                accumulate(&mut grads, *lhs, ga)?;
                accumulate(&mut grads, *rhs, gb)?;
            }
            Op::FusedConv2d {
                input,
                filter,
                bias,
                padding,
                relu,
            } => {
                let dpre = if *relu {
                    let y = fwd
                        .value(id)
                        .ok_or(TensorError::InvalidGraph("missing fused value"))?;
                    grad.zip(y, |g, v| if v > 0.0 { g } else { 0.0 })?
                } else {
                    grad.clone()
                };
                let (ti, tf, tb) = (value_of(*input)?, value_of(*filter)?, value_of(*bias)?);
                let gbias = column_sum(&dpre, tb.shape())?;
                let (gi, gf, _) = kernels::conv2d_grad(pool, ti, tf, &dpre, *padding)?;
                accumulate(&mut grads, *bias, gbias)?;
                accumulate(&mut grads, *input, gi)?;
                accumulate(&mut grads, *filter, gf)?;
            }
        }
    }
    Ok(grads)
}

// ---- planned execution -----------------------------------------------------
//
// The planned forward/backward passes mirror `forward_with`/`backward_with`
// arm for arm — same kernels, same reduction orders, same stats charges —
// but draw kernel output buffers from the session arena
// ([`crate::memory::ExecMemory`]), reuse the kernel [`Workspace`], read
// shape-only operands from the plan instead of keeping the tensors alive,
// and recycle each value the moment its planned lifetime ends. The memory
// proptests assert bit-identity between the two pairs.

/// [`forward_with`] executing into planned arena slots. `values` must be
/// cleared and resized to `graph.len()` by the caller; results land there
/// so the backward pass (and fetch cloning) can read them.
#[allow(clippy::too_many_arguments)]
pub(crate) fn forward_planned(
    graph: &Graph,
    feeds: &HashMap<NodeId, Tensor>,
    vars: &HashMap<NodeId, Tensor>,
    needed: &[bool],
    pool: &WorkerPool,
    ws: &mut Workspace,
    mem: &mut ExecMemory,
    values: &mut [Option<Tensor>],
) -> Result<RunStats, TensorError> {
    let mut stats = RunStats::default();
    for (index, node) in graph.nodes().iter().enumerate() {
        if !needed[index] {
            continue;
        }
        let id = NodeId(index);
        let get = |nid: NodeId| -> &Tensor {
            values[nid.0]
                .as_ref()
                .expect("inputs precede node in topological order")
        };
        let value = match &node.op {
            Op::Placeholder { shape } => {
                let fed = feeds.get(&id).ok_or_else(|| {
                    TensorError::BadFeed(format!("placeholder '{}' not fed", node.name))
                })?;
                if !feed_matches_template(shape, fed.shape()) {
                    return Err(TensorError::BadFeed(format!(
                        "placeholder '{}' expects {:?}, fed {:?}",
                        node.name,
                        shape,
                        fed.shape()
                    )));
                }
                fed.clone()
            }
            Op::Variable { .. } => vars
                .get(&id)
                .cloned()
                .ok_or(TensorError::InvalidGraph("variable without session value"))?,
            Op::Constant(t) => t.clone(),
            Op::MatMul(a, b) => {
                let (ta, tb) = (get(*a), get(*b));
                let (out, cost) = kernels::matmul_with(pool, ta, tb, &mut |len| mem.take(len))?;
                stats.charge_matmul(cost);
                out
            }
            Op::AddBias(x, bias) => {
                let (tx, tb) = (get(*x), get(*bias));
                add_bias(tx, tb)?
            }
            Op::Add(a, b) => {
                stats.charge_serial(get(*a).len() as f64);
                get(*a).zip(get(*b), |x, y| x + y)?
            }
            Op::Mul(a, b) => {
                stats.charge_serial(get(*a).len() as f64);
                get(*a).zip(get(*b), |x, y| x * y)?
            }
            Op::Relu(x) => {
                stats.charge_serial(get(*x).len() as f64);
                get(*x).map(|v| v.max(0.0))
            }
            Op::Softmax(x) => {
                let t = get(*x);
                stats.charge_serial(5.0 * t.len() as f64);
                softmax(t)?
            }
            Op::Conv2d {
                input,
                filter,
                padding,
            } => {
                let (ti, tf) = (get(*input), get(*filter));
                let (out, cost) =
                    kernels::conv2d_with(pool, ws, ti, tf, *padding, &mut |len| mem.take(len))?;
                stats.charge_conv(cost);
                out
            }
            Op::MaxPool2(x) => {
                stats.charge_serial(get(*x).len() as f64);
                max_pool2_with(get(*x), &mut ws.pool_indices, &mut |len| mem.take(len))?
            }
            Op::Flatten(x) => {
                let t = get(*x);
                let batch = *t.shape().first().unwrap_or(&1);
                let rest = t.len() / batch.max(1);
                t.reshape(&[batch, rest])?
            }
            Op::Reshape(x, shape) => get(*x).reshape(shape)?,
            Op::SoftmaxCrossEntropy { logits, labels } => {
                let (tl, ty) = (get(*logits), get(*labels));
                stats.charge_serial(8.0 * tl.len() as f64);
                softmax_cross_entropy(tl, ty)?
            }
            Op::MseLoss(p, t) => {
                let (tp, tt) = (get(*p), get(*t));
                stats.charge_serial(3.0 * tp.len() as f64);
                let diff = tp.zip(tt, |a, b| a - b)?;
                Tensor::scalar(diff.data().iter().map(|d| d * d).sum::<f32>() / tp.len() as f32)
            }
            Op::Sub(a, b) => {
                stats.charge_serial(get(*a).len() as f64);
                get(*a).zip(get(*b), |x, y| x - y)?
            }
            Op::Scale(x, factor) => {
                let f = *factor;
                stats.charge_serial(get(*x).len() as f64);
                get(*x).map(|v| v * f)
            }
            Op::Sigmoid(x) => {
                stats.charge_serial(4.0 * get(*x).len() as f64);
                get(*x).map(|v| 1.0 / (1.0 + (-v).exp()))
            }
            Op::Tanh(x) => {
                stats.charge_serial(4.0 * get(*x).len() as f64);
                get(*x).map(f32::tanh)
            }
            Op::AvgPool2(x) => {
                stats.charge_serial(get(*x).len() as f64);
                avg_pool2(get(*x))?
            }
            Op::ConcatCols(a, b) => concat_cols(get(*a), get(*b))?,
            Op::FusedMatMul {
                lhs,
                rhs,
                bias,
                relu,
            } => {
                let (tl, tr, tb) = (get(*lhs), get(*rhs), get(*bias));
                let (out, cost) =
                    kernels::matmul_bias_relu_with(pool, tl, tr, tb, *relu, &mut |len| {
                        mem.take(len)
                    })?;
                stats.charge_matmul(cost);
                out
            }
            Op::FusedConv2d {
                input,
                filter,
                bias,
                padding,
                relu,
            } => {
                let (ti, tf, tb) = (get(*input), get(*filter), get(*bias));
                let (out, cost) = kernels::conv2d_bias_relu_with(
                    pool,
                    ws,
                    ti,
                    tf,
                    tb,
                    *padding,
                    *relu,
                    &mut |len| mem.take(len),
                )?;
                stats.charge_conv(cost);
                out
            }
        };
        stats.activation_bytes += value.byte_len();
        mem.on_value(index, &value);
        values[index] = Some(value);
        mem.drop_dead_values(index, values);
    }
    Ok(stats)
}

/// Accumulates gradient `g` into `nid`'s entry: in-place add on merge
/// (value-identical to `backward_with`'s `zip(a + b)`, recycling `g`'s
/// buffer), arena bookkeeping on first insert.
fn accumulate_planned(
    grads: &mut HashMap<NodeId, Tensor>,
    mem: &mut ExecMemory,
    nid: NodeId,
    g: Tensor,
) -> Result<(), TensorError> {
    match grads.get_mut(&nid) {
        Some(existing) => {
            if existing.shape() != g.shape() {
                return Err(TensorError::ShapeMismatch {
                    op: "zip",
                    detail: format!("{:?} vs {:?}", existing.shape(), g.shape()),
                });
            }
            for (a, &b) in existing.data_mut().iter_mut().zip(g.data()) {
                *a += b;
            }
            mem.recycle(g);
        }
        None => {
            mem.on_grad(nid.0, &g);
            grads.insert(nid, g);
        }
    }
    Ok(())
}

/// [`backward_with`] over a planned forward pass: gradients draw buffers
/// from the arena, shape-only operands come from the plan, forward values
/// are recycled at their last backward reader, and non-variable gradients
/// are recycled right after their node's rule fires. Returns exactly the
/// variable gradients (what the optimizer consumes), each bit-identical
/// to the unplanned pass.
pub(crate) fn backward_planned(
    graph: &Graph,
    values: &mut [Option<Tensor>],
    loss: NodeId,
    pool: &WorkerPool,
    ws: &mut Workspace,
    mem: &mut ExecMemory,
) -> Result<HashMap<NodeId, Tensor>, TensorError> {
    let loss_value = values
        .get(loss.0)
        .and_then(Option::as_ref)
        .ok_or(TensorError::InvalidGraph("loss not computed by forward"))?;
    if loss_value.len() != 1 {
        return Err(TensorError::InvalidGraph("loss must be scalar"));
    }
    let seed = Tensor::full(loss_value.shape(), 1.0);
    let mut grads: HashMap<NodeId, Tensor> = HashMap::new();
    mem.on_grad(loss.0, &seed);
    grads.insert(loss, seed);

    for index in (0..=loss.0).rev() {
        let id = NodeId(index);
        let node = graph.node(id)?;
        // Variable gradients stay in the map for the optimizer; everything
        // else is removed (not cloned), used, and recycled below.
        let grad = if matches!(node.op, Op::Variable { .. }) {
            None
        } else {
            grads.remove(&id)
        };
        if let Some(grad) = grad {
            let value_of = |nid: NodeId| -> Result<&Tensor, TensorError> {
                values
                    .get(nid.0)
                    .and_then(Option::as_ref)
                    .ok_or(TensorError::InvalidGraph("missing forward value"))
            };
            match &node.op {
                Op::Placeholder { .. } | Op::Variable { .. } | Op::Constant(_) => {}
                Op::MatMul(a, b) => {
                    let (ta, tb) = (value_of(*a)?, value_of(*b)?);
                    let tat = ta.transpose()?;
                    let tbt = tb.transpose()?;
                    let ga = kernels::matmul_with(pool, &grad, &tbt, &mut |len| mem.take(len))?.0;
                    let gb = kernels::matmul_with(pool, &tat, &grad, &mut |len| mem.take(len))?.0;
                    mem.recycle(tat);
                    mem.recycle(tbt);
                    accumulate_planned(&mut grads, mem, *a, ga)?;
                    accumulate_planned(&mut grads, mem, *b, gb)?;
                }
                Op::AddBias(x, bias) => {
                    let bias_shape = mem.plan().shape(bias.0).to_vec();
                    accumulate_planned(&mut grads, mem, *x, grad.clone())?;
                    accumulate_planned(&mut grads, mem, *bias, column_sum(&grad, &bias_shape)?)?;
                }
                Op::Add(a, b) => {
                    accumulate_planned(&mut grads, mem, *a, grad.clone())?;
                    accumulate_planned(&mut grads, mem, *b, grad.clone())?;
                }
                Op::Mul(a, b) => {
                    let ga = grad.zip(value_of(*b)?, |g, v| g * v)?;
                    let gb = grad.zip(value_of(*a)?, |g, v| g * v)?;
                    accumulate_planned(&mut grads, mem, *a, ga)?;
                    accumulate_planned(&mut grads, mem, *b, gb)?;
                }
                Op::Relu(x) => {
                    let gx = grad.zip(value_of(*x)?, |g, v| if v > 0.0 { g } else { 0.0 })?;
                    accumulate_planned(&mut grads, mem, *x, gx)?;
                }
                Op::Softmax(x) => {
                    let s = values
                        .get(index)
                        .and_then(Option::as_ref)
                        .ok_or(TensorError::InvalidGraph("missing softmax value"))?;
                    let gx = softmax_grad(s, &grad)?;
                    accumulate_planned(&mut grads, mem, *x, gx)?;
                }
                Op::Conv2d {
                    input,
                    filter,
                    padding,
                } => {
                    let (ti, tf) = (value_of(*input)?, value_of(*filter)?);
                    let (gi, gf, _) =
                        kernels::conv2d_grad_with(pool, ws, ti, tf, &grad, *padding, &mut |len| {
                            mem.take(len)
                        })?;
                    accumulate_planned(&mut grads, mem, *input, gi)?;
                    accumulate_planned(&mut grads, mem, *filter, gf)?;
                }
                Op::MaxPool2(x) => {
                    let tx = value_of(*x)?;
                    let routed =
                        max_pool2_with(tx, &mut ws.pool_indices, &mut |len| mem.take(len))?;
                    let mut gx = Tensor::from_vec(tx.shape(), mem.take(tx.len()))?;
                    for (out_idx, &src_idx) in ws.pool_indices.iter().enumerate() {
                        gx.data_mut()[src_idx] += grad.data()[out_idx];
                    }
                    mem.recycle(routed);
                    accumulate_planned(&mut grads, mem, *x, gx)?;
                }
                Op::Flatten(x) | Op::Reshape(x, _) => {
                    let x_shape = mem.plan().shape(x.0).to_vec();
                    accumulate_planned(&mut grads, mem, *x, grad.reshape(&x_shape)?)?;
                }
                Op::SoftmaxCrossEntropy { logits, labels } => {
                    let (tl, ty) = (value_of(*logits)?, value_of(*labels)?);
                    let batch = tl.shape()[0] as f32;
                    let probs = softmax(tl)?;
                    let scale = grad.data()[0] / batch;
                    let gl = probs.zip(ty, |p, y| (p - y) * scale)?;
                    mem.recycle(probs);
                    accumulate_planned(&mut grads, mem, *logits, gl)?;
                }
                Op::MseLoss(p, t) => {
                    let (tp, tt) = (value_of(*p)?, value_of(*t)?);
                    let n = tp.len() as f32;
                    let scale = 2.0 * grad.data()[0] / n;
                    let gp = tp.zip(tt, |a, b| (a - b) * scale)?;
                    accumulate_planned(&mut grads, mem, *p, gp)?;
                }
                Op::Sub(a, b) => {
                    accumulate_planned(&mut grads, mem, *a, grad.clone())?;
                    accumulate_planned(&mut grads, mem, *b, grad.map(|g| -g))?;
                }
                Op::Scale(x, factor) => {
                    let f = *factor;
                    accumulate_planned(&mut grads, mem, *x, grad.map(|g| g * f))?;
                }
                Op::Sigmoid(x) => {
                    let s = values
                        .get(index)
                        .and_then(Option::as_ref)
                        .ok_or(TensorError::InvalidGraph("missing sigmoid value"))?;
                    let gx = grad.zip(s, |g, sv| g * sv * (1.0 - sv))?;
                    accumulate_planned(&mut grads, mem, *x, gx)?;
                }
                Op::Tanh(x) => {
                    let t = values
                        .get(index)
                        .and_then(Option::as_ref)
                        .ok_or(TensorError::InvalidGraph("missing tanh value"))?;
                    let gx = grad.zip(t, |g, tv| g * (1.0 - tv * tv))?;
                    accumulate_planned(&mut grads, mem, *x, gx)?;
                }
                Op::AvgPool2(x) => {
                    let x_shape = mem.plan().shape(x.0).to_vec();
                    accumulate_planned(&mut grads, mem, *x, avg_pool2_grad(&x_shape, &grad)?)?;
                }
                Op::ConcatCols(a, b) => {
                    let a_shape = mem.plan().shape(a.0).to_vec();
                    let b_shape = mem.plan().shape(b.0).to_vec();
                    let (ga, gb) = concat_cols_grad(&a_shape, &b_shape, &grad)?;
                    accumulate_planned(&mut grads, mem, *a, ga)?;
                    accumulate_planned(&mut grads, mem, *b, gb)?;
                }
                Op::FusedMatMul {
                    lhs,
                    rhs,
                    bias,
                    relu,
                } => {
                    let dpre = if *relu {
                        let y = values
                            .get(index)
                            .and_then(Option::as_ref)
                            .ok_or(TensorError::InvalidGraph("missing fused value"))?;
                        grad.zip(y, |g, v| if v > 0.0 { g } else { 0.0 })?
                    } else {
                        grad.clone()
                    };
                    let bias_shape = mem.plan().shape(bias.0).to_vec();
                    let gbias = column_sum(&dpre, &bias_shape)?;
                    let (tl, tr) = (value_of(*lhs)?, value_of(*rhs)?);
                    let tlt = tl.transpose()?;
                    let trt = tr.transpose()?;
                    let ga = kernels::matmul_with(pool, &dpre, &trt, &mut |len| mem.take(len))?.0;
                    let gb = kernels::matmul_with(pool, &tlt, &dpre, &mut |len| mem.take(len))?.0;
                    mem.recycle(tlt);
                    mem.recycle(trt);
                    mem.recycle(dpre);
                    accumulate_planned(&mut grads, mem, *bias, gbias)?;
                    accumulate_planned(&mut grads, mem, *lhs, ga)?;
                    accumulate_planned(&mut grads, mem, *rhs, gb)?;
                }
                Op::FusedConv2d {
                    input,
                    filter,
                    bias,
                    padding,
                    relu,
                } => {
                    let dpre = if *relu {
                        let y = values
                            .get(index)
                            .and_then(Option::as_ref)
                            .ok_or(TensorError::InvalidGraph("missing fused value"))?;
                        grad.zip(y, |g, v| if v > 0.0 { g } else { 0.0 })?
                    } else {
                        grad.clone()
                    };
                    let bias_shape = mem.plan().shape(bias.0).to_vec();
                    let gbias = column_sum(&dpre, &bias_shape)?;
                    let (ti, tf) = (value_of(*input)?, value_of(*filter)?);
                    let (gi, gf, _) =
                        kernels::conv2d_grad_with(pool, ws, ti, tf, &dpre, *padding, &mut |len| {
                            mem.take(len)
                        })?;
                    mem.recycle(dpre);
                    accumulate_planned(&mut grads, mem, *bias, gbias)?;
                    accumulate_planned(&mut grads, mem, *input, gi)?;
                    accumulate_planned(&mut grads, mem, *filter, gf)?;
                }
            }
            mem.release_grad(index, grad);
        }
        mem.drop_dead_values(2 * loss.0 + 1 - index, values);
    }
    Ok(grads)
}

// ---- kernels ---------------------------------------------------------------

fn add_bias(x: &Tensor, bias: &Tensor) -> Result<Tensor, TensorError> {
    let n = *x
        .shape()
        .last()
        .ok_or(TensorError::ShapeMismatch {
            op: "add_bias",
            detail: "scalar input".to_string(),
        })?;
    if bias.shape() != [n] {
        return Err(TensorError::ShapeMismatch {
            op: "add_bias",
            detail: format!("x {:?} bias {:?}", x.shape(), bias.shape()),
        });
    }
    let mut out = x.clone();
    for (i, v) in out.data_mut().iter_mut().enumerate() {
        *v += bias.data()[i % n];
    }
    Ok(out)
}

fn column_sum(grad: &Tensor, bias_shape: &[usize]) -> Result<Tensor, TensorError> {
    let n = bias_shape[0];
    let mut out = Tensor::zeros(bias_shape);
    for (i, &g) in grad.data().iter().enumerate() {
        out.data_mut()[i % n] += g;
    }
    Ok(out)
}

fn softmax(x: &Tensor) -> Result<Tensor, TensorError> {
    let &[m, n] = x.shape() else {
        return Err(TensorError::ShapeMismatch {
            op: "softmax",
            detail: format!("{:?} (need rank 2)", x.shape()),
        });
    };
    let mut out = x.clone();
    for i in 0..m {
        let row = &mut out.data_mut()[i * n..(i + 1) * n];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    Ok(out)
}

fn softmax_grad(s: &Tensor, grad: &Tensor) -> Result<Tensor, TensorError> {
    let &[m, n] = s.shape() else {
        return Err(TensorError::ShapeMismatch {
            op: "softmax_grad",
            detail: format!("{:?}", s.shape()),
        });
    };
    let mut out = Tensor::zeros(s.shape());
    for i in 0..m {
        let srow = &s.data()[i * n..(i + 1) * n];
        let grow = &grad.data()[i * n..(i + 1) * n];
        let dot: f32 = srow.iter().zip(grow.iter()).map(|(&a, &b)| a * b).sum();
        let orow = &mut out.data_mut()[i * n..(i + 1) * n];
        for j in 0..n {
            orow[j] = srow[j] * (grow[j] - dot);
        }
    }
    Ok(out)
}

fn softmax_cross_entropy(logits: &Tensor, labels: &Tensor) -> Result<Tensor, TensorError> {
    if logits.shape() != labels.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "softmax_xent",
            detail: format!("{:?} vs {:?}", logits.shape(), labels.shape()),
        });
    }
    let &[m, n] = logits.shape() else {
        return Err(TensorError::ShapeMismatch {
            op: "softmax_xent",
            detail: format!("{:?} (need rank 2)", logits.shape()),
        });
    };
    let mut total = 0.0f32;
    for i in 0..m {
        let row = &logits.data()[i * n..(i + 1) * n];
        let yrow = &labels.data()[i * n..(i + 1) * n];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let log_sum: f32 = row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln() + max;
        for j in 0..n {
            if yrow[j] != 0.0 {
                total += yrow[j] * (log_sum - row[j]);
            }
        }
    }
    Ok(Tensor::scalar(total / m as f32))
}

fn avg_pool2(x: &Tensor) -> Result<Tensor, TensorError> {
    let &[b, h, w, c] = x.shape() else {
        return Err(TensorError::ShapeMismatch {
            op: "avg_pool2",
            detail: format!("{:?} (need NHWC)", x.shape()),
        });
    };
    let (oh, ow) = (h / 2, w / 2);
    let mut out = Tensor::zeros(&[b, oh, ow, c]);
    let xd = x.data();
    for bi in 0..b {
        for oy in 0..oh {
            for ox in 0..ow {
                for ci in 0..c {
                    let mut sum = 0.0f32;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            sum += xd[((bi * h + oy * 2 + dy) * w + ox * 2 + dx) * c + ci];
                        }
                    }
                    out.data_mut()[((bi * oh + oy) * ow + ox) * c + ci] = sum / 4.0;
                }
            }
        }
    }
    Ok(out)
}

fn avg_pool2_grad(in_shape: &[usize], grad: &Tensor) -> Result<Tensor, TensorError> {
    let &[b, h, w, c] = in_shape else {
        return Err(TensorError::ShapeMismatch {
            op: "avg_pool2_grad",
            detail: format!("{in_shape:?}"),
        });
    };
    let (oh, ow) = (h / 2, w / 2);
    let mut gx = Tensor::zeros(in_shape);
    for bi in 0..b {
        for oy in 0..oh {
            for ox in 0..ow {
                for ci in 0..c {
                    let g = grad.data()[((bi * oh + oy) * ow + ox) * c + ci] / 4.0;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            gx.data_mut()
                                [((bi * h + oy * 2 + dy) * w + ox * 2 + dx) * c + ci] += g;
                        }
                    }
                }
            }
        }
    }
    Ok(gx)
}

fn concat_cols(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (&[m1, n1], &[m2, n2]) = (a.shape(), b.shape()) else {
        return Err(TensorError::ShapeMismatch {
            op: "concat_cols",
            detail: format!("{:?} ++ {:?} (need rank 2)", a.shape(), b.shape()),
        });
    };
    if m1 != m2 {
        return Err(TensorError::ShapeMismatch {
            op: "concat_cols",
            detail: format!("row counts {m1} vs {m2}"),
        });
    }
    let mut out = Tensor::zeros(&[m1, n1 + n2]);
    for i in 0..m1 {
        out.data_mut()[i * (n1 + n2)..i * (n1 + n2) + n1]
            .copy_from_slice(&a.data()[i * n1..(i + 1) * n1]);
        out.data_mut()[i * (n1 + n2) + n1..(i + 1) * (n1 + n2)]
            .copy_from_slice(&b.data()[i * n2..(i + 1) * n2]);
    }
    Ok(out)
}

fn concat_cols_grad(
    a_shape: &[usize],
    b_shape: &[usize],
    grad: &Tensor,
) -> Result<(Tensor, Tensor), TensorError> {
    let (&[m, n1], &[_, n2]) = (a_shape, b_shape) else {
        return Err(TensorError::ShapeMismatch {
            op: "concat_cols_grad",
            detail: format!("{a_shape:?} / {b_shape:?}"),
        });
    };
    let mut ga = Tensor::zeros(a_shape);
    let mut gb = Tensor::zeros(b_shape);
    for i in 0..m {
        ga.data_mut()[i * n1..(i + 1) * n1]
            .copy_from_slice(&grad.data()[i * (n1 + n2)..i * (n1 + n2) + n1]);
        gb.data_mut()[i * n2..(i + 1) * n2]
            .copy_from_slice(&grad.data()[i * (n1 + n2) + n1..(i + 1) * (n1 + n2)]);
    }
    Ok((ga, gb))
}

fn max_pool2(x: &Tensor) -> Result<(Tensor, Vec<usize>), TensorError> {
    let mut indices = Vec::new();
    let out = max_pool2_with(x, &mut indices, &mut |len| vec![0.0f32; len])?;
    Ok((out, indices))
}

/// [`max_pool2`] writing the output into a `take`-provided buffer and the
/// argmax routing indices into a caller-owned, reusable `indices` vector
/// (resized here). Bit-identical to [`max_pool2`].
fn max_pool2_with(
    x: &Tensor,
    indices: &mut Vec<usize>,
    take: TakeBuffer<'_>,
) -> Result<Tensor, TensorError> {
    let &[b, h, w, c] = x.shape() else {
        return Err(TensorError::ShapeMismatch {
            op: "max_pool2",
            detail: format!("{:?} (need NHWC)", x.shape()),
        });
    };
    let (oh, ow) = (h / 2, w / 2);
    let n = b * oh * ow * c;
    let mut out = take(n);
    indices.clear();
    indices.resize(n, 0);
    let xd = x.data();
    for bi in 0..b {
        for oy in 0..oh {
            for ox in 0..ow {
                for ci in 0..c {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let iy = oy * 2 + dy;
                            let ix = ox * 2 + dx;
                            let idx = ((bi * h + iy) * w + ix) * c + ci;
                            if xd[idx] > best {
                                best = xd[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let oidx = ((bi * oh + oy) * ow + ox) * c + ci;
                    out[oidx] = best;
                    indices[oidx] = best_idx;
                }
            }
        }
    }
    Tensor::from_vec(&[b, oh, ow, c], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Graph, Padding};

    fn feeds(pairs: &[(NodeId, Tensor)]) -> HashMap<NodeId, Tensor> {
        pairs.iter().cloned().collect()
    }

    fn vars_of(graph: &Graph) -> HashMap<NodeId, Tensor> {
        graph
            .variables()
            .into_iter()
            .map(|id| {
                let Op::Variable { init } = &graph.node(id).unwrap().op else {
                    unreachable!()
                };
                (id, init.clone())
            })
            .collect()
    }

    /// Numerically checks d(loss)/d(var) for every variable element.
    fn gradient_check(
        graph: &Graph,
        feeds: &HashMap<NodeId, Tensor>,
        mut vars: HashMap<NodeId, Tensor>,
        loss: NodeId,
        tolerance: f32,
    ) {
        let fwd = forward(graph, feeds, &vars, &[loss]).unwrap();
        let grads = backward(graph, &fwd, loss).unwrap();
        let eps = 1e-3f32;
        for var in graph.variables() {
            let analytic = grads.get(&var).cloned().unwrap_or_else(|| {
                Tensor::zeros(vars[&var].shape())
            });
            for i in 0..vars[&var].len() {
                let orig = vars[&var].data()[i];
                vars.get_mut(&var).unwrap().data_mut()[i] = orig + eps;
                let up = forward(graph, feeds, &vars, &[loss]).unwrap()
                    .value(loss)
                    .unwrap()
                    .data()[0];
                vars.get_mut(&var).unwrap().data_mut()[i] = orig - eps;
                let down = forward(graph, feeds, &vars, &[loss]).unwrap()
                    .value(loss)
                    .unwrap()
                    .data()[0];
                vars.get_mut(&var).unwrap().data_mut()[i] = orig;
                let numeric = (up - down) / (2.0 * eps);
                let a = analytic.data()[i];
                assert!(
                    (a - numeric).abs() <= tolerance * (1.0 + numeric.abs()),
                    "var {var:?} elem {i}: analytic {a} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn forward_matmul_bias_relu() {
        let mut g = Graph::new();
        let x = g.placeholder("x", &[0, 2]);
        let w = g.variable("w", Tensor::from_vec(&[2, 2], vec![1., -1., 0.5, 2.]).unwrap());
        let b = g.variable("b", Tensor::from_vec(&[2], vec![0.1, -0.2]).unwrap());
        let mm = g.matmul(x, w).unwrap();
        let biased = g.add_bias(mm, b).unwrap();
        let y = g.relu(biased).unwrap();
        let vars = vars_of(&g);
        let fwd = forward(
            &g,
            &feeds(&[(x, Tensor::from_vec(&[1, 2], vec![1.0, 2.0]).unwrap())]),
            &vars,
            &[y],
        )
        .unwrap();
        // x·W = [1*1+2*0.5, 1*-1+2*2] = [2, 3]; +b = [2.1, 2.8]; relu same.
        assert_eq!(fwd.value(y).unwrap().data(), &[2.1, 2.8]);
        assert!(fwd.stats.flops > 0.0);
    }

    #[test]
    fn missing_feed_is_error() {
        let mut g = Graph::new();
        let x = g.placeholder("x", &[0, 2]);
        let y = g.relu(x).unwrap();
        assert!(matches!(
            forward(&g, &HashMap::new(), &HashMap::new(), &[y]),
            Err(TensorError::BadFeed(_))
        ));
    }

    #[test]
    fn wrong_shape_feed_is_error() {
        let mut g = Graph::new();
        let x = g.placeholder("x", &[0, 2]);
        let y = g.relu(x).unwrap();
        let result = forward(
            &g,
            &feeds(&[(x, Tensor::zeros(&[1, 3]))]),
            &HashMap::new(),
            &[y],
        );
        assert!(matches!(result, Err(TensorError::BadFeed(_))));
    }

    #[test]
    fn unneeded_placeholders_not_required() {
        let mut g = Graph::new();
        let _unused = g.placeholder("unused", &[1]);
        let c = g.constant("c", Tensor::scalar(3.0));
        let fwd = forward(&g, &HashMap::new(), &HashMap::new(), &[c]).unwrap();
        assert_eq!(fwd.value(c).unwrap().data(), &[3.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., -1., 0., 100.]).unwrap();
        let s = softmax(&t).unwrap();
        for i in 0..2 {
            let sum: f32 = s.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Large logits don't overflow (stability).
        assert!(s.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Tensor::from_vec(&[1, 3], vec![20.0, 0.0, 0.0]).unwrap();
        let labels = Tensor::from_vec(&[1, 3], vec![1.0, 0.0, 0.0]).unwrap();
        let loss = softmax_cross_entropy(&logits, &labels).unwrap();
        assert!(loss.data()[0] < 1e-3);
        // Wrong prediction has high loss.
        let wrong = Tensor::from_vec(&[1, 3], vec![0.0, 20.0, 0.0]).unwrap();
        assert!(softmax_cross_entropy(&wrong, &labels).unwrap().data()[0] > 5.0);
    }

    #[test]
    fn gradcheck_linear_mse() {
        let mut g = Graph::new();
        let x = g.placeholder("x", &[0, 3]);
        let w = g.variable(
            "w",
            Tensor::from_vec(&[3, 2], vec![0.1, -0.2, 0.3, 0.4, -0.5, 0.6]).unwrap(),
        );
        let b = g.variable("b", Tensor::from_vec(&[2], vec![0.05, -0.07]).unwrap());
        let t = g.placeholder("t", &[0, 2]);
        let mm = g.matmul(x, w).unwrap();
        let y = g.add_bias(mm, b).unwrap();
        let loss = g.mse_loss(y, t).unwrap();
        gradient_check(
            &g,
            &feeds(&[
                (x, Tensor::from_vec(&[2, 3], vec![1., 2., 3., -1., 0.5, 2.]).unwrap()),
                (t, Tensor::from_vec(&[2, 2], vec![1., 0., 0., 1.]).unwrap()),
            ]),
            vars_of(&g),
            loss,
            2e-2,
        );
    }

    #[test]
    fn gradcheck_relu_softmax_xent() {
        let mut g = Graph::new();
        let x = g.placeholder("x", &[0, 4]);
        let w = g.variable(
            "w",
            Tensor::from_vec(
                &[4, 3],
                vec![
                    0.3, -0.1, 0.2, 0.5, 0.4, -0.3, -0.2, 0.1, 0.6, 0.15, -0.25, 0.35,
                ],
            )
            .unwrap(),
        );
        let labels = g.placeholder("y", &[0, 3]);
        let mm = g.matmul(x, w).unwrap();
        let h = g.relu(mm).unwrap();
        let loss = g.softmax_cross_entropy(h, labels).unwrap();
        gradient_check(
            &g,
            &feeds(&[
                (
                    x,
                    Tensor::from_vec(&[2, 4], vec![1., -2., 0.5, 3., 2., 1., -1., 0.5]).unwrap(),
                ),
                (
                    labels,
                    Tensor::from_vec(&[2, 3], vec![1., 0., 0., 0., 0., 1.]).unwrap(),
                ),
            ]),
            vars_of(&g),
            loss,
            2e-2,
        );
    }

    #[test]
    fn gradcheck_conv_pool_network() {
        let mut g = Graph::new();
        let x = g.placeholder("x", &[0, 4, 4, 1]);
        let f = g.variable(
            "f",
            Tensor::from_vec(
                &[3, 3, 1, 2],
                (0..18).map(|i| (i as f32 - 9.0) * 0.05).collect(),
            )
            .unwrap(),
        );
        let labels = g.placeholder("y", &[0, 8]);
        let conv = g.conv2d(x, f, Padding::Same).unwrap();
        let act = g.relu(conv).unwrap();
        let pool = g.max_pool2(act).unwrap();
        let flat = g.flatten(pool).unwrap();
        let loss = g.softmax_cross_entropy(flat, labels).unwrap();
        let x_data: Vec<f32> = (0..16).map(|i| ((i * 7) % 11) as f32 * 0.1 - 0.5).collect();
        let mut y_data = vec![0.0f32; 8];
        y_data[3] = 1.0;
        gradient_check(
            &g,
            &feeds(&[
                (x, Tensor::from_vec(&[1, 4, 4, 1], x_data).unwrap()),
                (labels, Tensor::from_vec(&[1, 8], y_data).unwrap()),
            ]),
            vars_of(&g),
            loss,
            3e-2,
        );
    }

    #[test]
    fn gradcheck_mul_and_softmax() {
        let mut g = Graph::new();
        let a = g.variable("a", Tensor::from_vec(&[1, 3], vec![0.2, -0.4, 0.6]).unwrap());
        let b = g.variable("b", Tensor::from_vec(&[1, 3], vec![1.0, 0.5, -0.5]).unwrap());
        let t = g.placeholder("t", &[0, 3]);
        let prod = g.mul(a, b).unwrap();
        let s = g.softmax(prod).unwrap();
        let loss = g.mse_loss(s, t).unwrap();
        gradient_check(
            &g,
            &feeds(&[(t, Tensor::from_vec(&[1, 3], vec![0.1, 0.7, 0.2]).unwrap())]),
            vars_of(&g),
            loss,
            2e-2,
        );
    }

    #[test]
    fn conv_valid_output_shape() {
        let pool = WorkerPool::serial();
        let input = Tensor::zeros(&[2, 5, 6, 3]);
        let filter = Tensor::zeros(&[3, 3, 3, 4]);
        let (out, _) = kernels::conv2d(&pool, &input, &filter, Padding::Valid).unwrap();
        assert_eq!(out.shape(), &[2, 3, 4, 4]);
        let (same, _) = kernels::conv2d(&pool, &input, &filter, Padding::Same).unwrap();
        assert_eq!(same.shape(), &[2, 5, 6, 4]);
    }

    #[test]
    fn conv_channel_mismatch_rejected() {
        let input = Tensor::zeros(&[1, 5, 5, 3]);
        let filter = Tensor::zeros(&[3, 3, 2, 4]);
        assert!(kernels::conv2d(&WorkerPool::serial(), &input, &filter, Padding::Same).is_err());
    }

    #[test]
    fn conv_known_value() {
        // 1x3x3x1 input, 3x3 all-ones filter, Same padding: center output
        // is the sum of all inputs.
        let input = Tensor::from_vec(&[1, 3, 3, 1], (1..=9).map(|v| v as f32).collect()).unwrap();
        let filter = Tensor::full(&[3, 3, 1, 1], 1.0);
        let (out, cost) = kernels::conv2d(&WorkerPool::serial(), &input, &filter, Padding::Same).unwrap();
        assert_eq!(out.data()[4], 45.0);
        // Corner output sums the 2x2 corner: 1+2+4+5 = 12.
        assert_eq!(out.data()[0], 12.0);
        assert!(cost.flops > 0.0);
        assert_eq!(cost.critical_flops, cost.flops);
    }

    #[test]
    fn max_pool_takes_maxima_and_routes_gradient() {
        let x = Tensor::from_vec(
            &[1, 2, 2, 1],
            vec![1.0, 5.0, 3.0, 2.0],
        )
        .unwrap();
        let (out, idx) = max_pool2(&x).unwrap();
        assert_eq!(out.shape(), &[1, 1, 1, 1]);
        assert_eq!(out.data(), &[5.0]);
        assert_eq!(idx, vec![1]);
    }

    #[test]
    fn backward_requires_scalar_loss() {
        let mut g = Graph::new();
        let x = g.placeholder("x", &[0, 2]);
        let y = g.relu(x).unwrap();
        let fwd = forward(
            &g,
            &feeds(&[(x, Tensor::zeros(&[1, 2]))]),
            &HashMap::new(),
            &[y],
        )
        .unwrap();
        assert!(matches!(
            backward(&g, &fwd, y),
            Err(TensorError::InvalidGraph(_))
        ));
    }

    #[test]
    fn gradcheck_sub_scale() {
        let mut g = Graph::new();
        let a = g.variable("a", Tensor::from_vec(&[1, 3], vec![0.5, -0.3, 0.8]).unwrap());
        let b = g.variable("b", Tensor::from_vec(&[1, 3], vec![0.1, 0.9, -0.4]).unwrap());
        let t = g.placeholder("t", &[0, 3]);
        let diff = g.sub(a, b).unwrap();
        let scaled = g.scale(diff, 2.5).unwrap();
        let loss = g.mse_loss(scaled, t).unwrap();
        gradient_check(
            &g,
            &feeds(&[(t, Tensor::from_vec(&[1, 3], vec![0.2, -0.1, 0.6]).unwrap())]),
            vars_of(&g),
            loss,
            2e-2,
        );
    }

    #[test]
    fn gradcheck_sigmoid_tanh() {
        let mut g = Graph::new();
        let w = g.variable(
            "w",
            Tensor::from_vec(&[2, 2], vec![0.4, -0.7, 0.2, 0.9]).unwrap(),
        );
        let x = g.placeholder("x", &[0, 2]);
        let t = g.placeholder("t", &[0, 2]);
        let mm = g.matmul(x, w).unwrap();
        let sig = g.sigmoid(mm).unwrap();
        let th = g.tanh(sig).unwrap();
        let loss = g.mse_loss(th, t).unwrap();
        gradient_check(
            &g,
            &feeds(&[
                (x, Tensor::from_vec(&[2, 2], vec![1.0, -0.5, 0.3, 2.0]).unwrap()),
                (t, Tensor::from_vec(&[2, 2], vec![0.5, 0.5, 0.1, 0.9]).unwrap()),
            ]),
            vars_of(&g),
            loss,
            2e-2,
        );
    }

    #[test]
    fn gradcheck_avg_pool_and_concat() {
        let mut g = Graph::new();
        let f = g.variable(
            "f",
            Tensor::from_vec(&[4, 4, 1, 1], (0..16).map(|i| i as f32 * 0.03 - 0.2).collect())
                .unwrap(),
        );
        let extra = g.variable("extra", Tensor::from_vec(&[1, 2], vec![0.5, -0.5]).unwrap());
        let t = g.placeholder("t", &[0, 6]);
        let rect = g.reshape(f, &[1, 4, 4, 1]).unwrap();
        let pooled = g.avg_pool2(rect).unwrap();
        let flat = g.flatten(pooled).unwrap();
        let both = g.concat_cols(flat, extra).unwrap();
        let loss = g.mse_loss(both, t).unwrap();
        gradient_check(
            &g,
            &feeds(&[(
                t,
                Tensor::from_vec(&[1, 6], vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]).unwrap(),
            )]),
            vars_of(&g),
            loss,
            2e-2,
        );
    }

    #[test]
    fn avg_pool_forward_values() {
        let x = Tensor::from_vec(&[1, 2, 2, 1], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let out = avg_pool2(&x).unwrap();
        assert_eq!(out.data(), &[2.5]);
    }

    #[test]
    fn sigmoid_range_and_symmetry() {
        let mut g = Graph::new();
        let x = g.placeholder("x", &[0, 3]);
        let s = g.sigmoid(x).unwrap();
        let fwd = forward(
            &g,
            &feeds(&[(x, Tensor::from_vec(&[1, 3], vec![-100.0, 0.0, 100.0]).unwrap())]),
            &HashMap::new(),
            &[s],
        )
        .unwrap();
        let v = fwd.value(s).unwrap().data();
        assert!(v[0] < 1e-6);
        assert!((v[1] - 0.5).abs() < 1e-6);
        assert!(v[2] > 1.0 - 1e-6);
    }

    #[test]
    fn concat_cols_layout() {
        let a = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]).unwrap();
        let b = Tensor::from_vec(&[2, 1], vec![9., 8.]).unwrap();
        let out = concat_cols(&a, &b).unwrap();
        assert_eq!(out.shape(), &[2, 3]);
        assert_eq!(out.data(), &[1., 2., 9., 3., 4., 8.]);
        assert!(concat_cols(&a, &Tensor::zeros(&[3, 1])).is_err());
    }

    #[test]
    fn fanout_gradients_accumulate() {
        // loss = mse(a + a, t): d(loss)/da flows through both Add inputs.
        let mut g = Graph::new();
        let a = g.variable("a", Tensor::from_vec(&[1, 1], vec![1.0]).unwrap());
        let t = g.placeholder("t", &[0, 1]);
        let double = g.add(a, a).unwrap();
        let loss = g.mse_loss(double, t).unwrap();
        let vars = vars_of(&g);
        let fwd = forward(
            &g,
            &feeds(&[(t, Tensor::from_vec(&[1, 1], vec![0.0]).unwrap())]),
            &vars,
            &[loss],
        )
        .unwrap();
        let grads = backward(&g, &fwd, loss).unwrap();
        // loss = (2a)^2, d/da = 8a = 8.
        assert!((grads[&a].data()[0] - 8.0).abs() < 1e-5);
    }
}
