//! Sessions: stateful graph execution (TensorFlow's `tf.Session`).

use crate::autodiff::{backward_with, forward_with, RunStats};
use crate::graph::{Graph, NodeId, Op};
use crate::kernels::WorkerPool;
use crate::memory::{MemoryMode, MemoryStats, PlannedExecutor, SlotWrite};
use crate::optimizer::Optimizer;
use crate::tensor::Tensor;
use crate::TensorError;
use std::collections::HashMap;

/// Owns variable state and runs graphs.
#[derive(Debug, Clone)]
pub struct Session {
    vars: HashMap<NodeId, Tensor>,
    stats: RunStats,
    pool: WorkerPool,
    mode: MemoryMode,
    planner: PlannedExecutor,
}

impl Session {
    /// Creates a session with variables at their initial values.
    pub fn new(graph: &Graph) -> Self {
        let vars = graph
            .variables()
            .into_iter()
            .filter_map(|id| match &graph.nodes()[id.0].op {
                Op::Variable { init } => Some((id, init.clone())),
                _ => None,
            })
            .collect();
        Session {
            vars,
            stats: RunStats::default(),
            pool: WorkerPool::serial(),
            mode: MemoryMode::default(),
            planner: PlannedExecutor::new(),
        }
    }

    /// Sets the worker pool used by the compute kernels. Results are
    /// bit-identical for any pool; only the critical-path cost changes.
    pub fn set_worker_pool(&mut self, pool: WorkerPool) {
        self.pool = pool;
    }

    /// The worker pool kernels currently run on.
    pub fn worker_pool(&self) -> WorkerPool {
        self.pool
    }

    /// Selects planned-arena or legacy per-node-`Vec` execution. Results
    /// are bit-identical either way; only allocation behaviour (and the
    /// EPC traffic the TEE layer derives from it) changes.
    pub fn set_memory_mode(&mut self, mode: MemoryMode) {
        self.mode = mode;
    }

    /// The session's current memory mode.
    pub fn memory_mode(&self) -> MemoryMode {
        self.mode
    }

    /// Arena size required by the current execution plan, if the last
    /// run was planned.
    pub fn planned_peak_bytes(&self) -> Option<u64> {
        self.planner.planned_peak_bytes()
    }

    /// Memory-planner statistics (zeros when running unplanned).
    pub fn memory_stats(&self) -> MemoryStats {
        self.planner.memory_stats()
    }

    /// Drains the arena slot writes recorded since the last call; the
    /// TEE layer replays them as EPC page touches.
    pub fn take_slot_writes(&mut self) -> Vec<SlotWrite> {
        self.planner.take_slot_writes()
    }

    /// Evaluates `fetches` with the given placeholder feeds.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::autodiff::forward`] errors.
    pub fn run(
        &mut self,
        graph: &Graph,
        feeds: &[(NodeId, Tensor)],
        fetches: &[NodeId],
    ) -> Result<Vec<Tensor>, TensorError> {
        let feed_map: HashMap<NodeId, Tensor> = feeds.iter().cloned().collect();
        if self.mode == MemoryMode::Planned {
            let (outs, stats) =
                self.planner
                    .run(graph, &feed_map, &self.vars, fetches, &self.pool)?;
            self.stats.merge(stats);
            return Ok(outs);
        }
        let fwd = forward_with(graph, &feed_map, &self.vars, fetches, &self.pool)?;
        self.stats.merge(fwd.stats);
        fetches
            .iter()
            .map(|&id| {
                fwd.value(id)
                    .cloned()
                    .ok_or(TensorError::UnknownNode)
            })
            .collect()
    }

    /// Runs one training step: forward, backward, optimizer update.
    /// Returns the loss value.
    ///
    /// # Errors
    ///
    /// Propagates executor errors; additionally
    /// [`TensorError::InvalidGraph`] if `loss` is not scalar.
    pub fn train_step(
        &mut self,
        graph: &Graph,
        feeds: &[(NodeId, Tensor)],
        loss: NodeId,
        optimizer: &mut dyn Optimizer,
    ) -> Result<f32, TensorError> {
        let feed_map: HashMap<NodeId, Tensor> = feeds.iter().cloned().collect();
        let (loss_value, grads, fwd_stats) = self.forward_backward(graph, &feed_map, loss)?;
        // Backward costs roughly 2x forward compute.
        let mut stats = fwd_stats;
        stats.scale_compute(3.0);
        stats.activation_bytes *= 2;
        self.stats.merge(stats);
        for var in graph.variables() {
            if let Some(grad) = grads.get(&var) {
                let value = self
                    .vars
                    .get_mut(&var)
                    .ok_or(TensorError::InvalidGraph("untracked variable"))?;
                optimizer.apply(var, value, grad)?;
            }
        }
        Ok(loss_value)
    }

    /// Forward + backward via the mode-selected executor. Returns the
    /// loss value, the gradient of every variable, and the forward stats.
    fn forward_backward(
        &mut self,
        graph: &Graph,
        feed_map: &HashMap<NodeId, Tensor>,
        loss: NodeId,
    ) -> Result<(f32, HashMap<NodeId, Tensor>, RunStats), TensorError> {
        if self.mode == MemoryMode::Planned {
            return self.planner.train(graph, feed_map, &self.vars, loss, &self.pool);
        }
        let fwd = forward_with(graph, feed_map, &self.vars, &[loss], &self.pool)?;
        let loss_value = fwd
            .value(loss)
            .ok_or(TensorError::UnknownNode)?
            .data()[0];
        let grads = backward_with(graph, &fwd, loss, &self.pool)?;
        let var_grads = graph
            .variables()
            .into_iter()
            .filter_map(|v| grads.get(&v).map(|g| (v, g.clone())))
            .collect();
        Ok((loss_value, var_grads, fwd.stats))
    }

    /// Computes gradients without applying them (used by the
    /// parameter-server workers, which ship gradients over the network).
    ///
    /// # Errors
    ///
    /// Propagates executor errors.
    pub fn gradients(
        &mut self,
        graph: &Graph,
        feeds: &[(NodeId, Tensor)],
        loss: NodeId,
    ) -> Result<(f32, HashMap<NodeId, Tensor>), TensorError> {
        let feed_map: HashMap<NodeId, Tensor> = feeds.iter().cloned().collect();
        let (loss_value, var_grads, fwd_stats) = self.forward_backward(graph, &feed_map, loss)?;
        let mut stats = fwd_stats;
        stats.scale_compute(3.0);
        stats.activation_bytes *= 2;
        self.stats.merge(stats);
        Ok((loss_value, var_grads))
    }

    /// Current value of a variable.
    pub fn variable(&self, id: NodeId) -> Option<&Tensor> {
        self.vars.get(&id)
    }

    /// Overwrites a variable's value (parameter-server weight install).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnknownNode`] if the variable is untracked,
    /// or [`TensorError::ShapeMismatch`] if the shape differs.
    pub fn set_variable(&mut self, id: NodeId, value: Tensor) -> Result<(), TensorError> {
        let existing = self.vars.get_mut(&id).ok_or(TensorError::UnknownNode)?;
        if existing.shape() != value.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "set_variable",
                detail: format!("{:?} vs {:?}", existing.shape(), value.shape()),
            });
        }
        *existing = value;
        Ok(())
    }

    /// All variables and their current values, ordered by id.
    pub fn variables(&self) -> Vec<(NodeId, &Tensor)> {
        let mut v: Vec<_> = self.vars.iter().map(|(id, t)| (*id, t)).collect();
        v.sort_by_key(|(id, _)| *id);
        v
    }

    /// Accumulated execution statistics (FLOPs and activation bytes) of
    /// every run so far; the TEE layer converts these into virtual time.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Resets accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats = RunStats::default();
    }

    /// Total bytes of variable state (the trainable model size).
    pub fn param_bytes(&self) -> u64 {
        self.vars.values().map(Tensor::byte_len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Sgd;

    fn xor_setup() -> (Graph, NodeId, NodeId, NodeId, NodeId) {
        // A 2-4-2 MLP for XOR: genuinely needs the hidden layer.
        let mut g = Graph::new();
        let x = g.placeholder("x", &[0, 2]);
        let labels = g.placeholder("y", &[0, 2]);
        let mut rng = seeded_rng();
        let w1 = g.variable("w1", Tensor::glorot(&[2, 8], &mut rng));
        let b1 = g.variable("b1", Tensor::zeros(&[8]));
        let w2 = g.variable("w2", Tensor::glorot(&[8, 2], &mut rng));
        let b2 = g.variable("b2", Tensor::zeros(&[2]));
        let h = g.matmul(x, w1).unwrap();
        let h = g.add_bias(h, b1).unwrap();
        let h = g.relu(h).unwrap();
        let logits = g.matmul(h, w2).unwrap();
        let logits = g.add_bias(logits, b2).unwrap();
        let loss = g.softmax_cross_entropy(logits, labels).unwrap();
        (g, x, labels, logits, loss)
    }

    fn seeded_rng() -> impl rand::Rng {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(42)
    }

    fn xor_batch() -> (Tensor, Tensor) {
        let x = Tensor::from_vec(&[4, 2], vec![0., 0., 0., 1., 1., 0., 1., 1.]).unwrap();
        let y = Tensor::from_vec(&[4, 2], vec![1., 0., 0., 1., 0., 1., 1., 0.]).unwrap();
        (x, y)
    }

    #[test]
    fn training_learns_xor() {
        let (g, x, labels, logits, loss) = xor_setup();
        let mut session = Session::new(&g);
        let mut sgd = Sgd::new(0.5);
        let (xd, yd) = xor_batch();
        let mut last = f32::INFINITY;
        for _ in 0..500 {
            last = session
                .train_step(&g, &[(x, xd.clone()), (labels, yd.clone())], loss, &mut sgd)
                .unwrap();
        }
        assert!(last < 0.05, "loss did not converge: {last}");
        let out = session.run(&g, &[(x, xd)], &[logits]).unwrap();
        let preds = out[0].argmax_rows().unwrap();
        assert_eq!(preds, vec![0, 1, 1, 0]);
    }

    #[test]
    fn loss_decreases_monotonically_at_start() {
        let (g, x, labels, _logits, loss) = xor_setup();
        let mut session = Session::new(&g);
        let mut sgd = Sgd::new(0.1);
        let (xd, yd) = xor_batch();
        let l1 = session
            .train_step(&g, &[(x, xd.clone()), (labels, yd.clone())], loss, &mut sgd)
            .unwrap();
        let mut l_final = l1;
        for _ in 0..20 {
            l_final = session
                .train_step(&g, &[(x, xd.clone()), (labels, yd.clone())], loss, &mut sgd)
                .unwrap();
        }
        assert!(l_final < l1, "{l_final} >= {l1}");
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let (g, x, labels, _logits, loss) = xor_setup();
        let mut session = Session::new(&g);
        let mut sgd = Sgd::new(0.1);
        let (xd, yd) = xor_batch();
        session
            .train_step(&g, &[(x, xd), (labels, yd)], loss, &mut sgd)
            .unwrap();
        assert!(session.stats().flops > 0.0);
        session.reset_stats();
        assert_eq!(session.stats().flops, 0.0);
    }

    #[test]
    fn set_variable_validates_shape() {
        let (g, ..) = xor_setup();
        let mut session = Session::new(&g);
        let w1 = g.by_name("w1").unwrap();
        assert!(session.set_variable(w1, Tensor::zeros(&[2, 8])).is_ok());
        assert!(session.set_variable(w1, Tensor::zeros(&[3, 8])).is_err());
        let foreign = NodeId(999);
        assert!(session.set_variable(foreign, Tensor::zeros(&[1])).is_err());
    }

    #[test]
    fn gradients_match_train_step_effect() {
        let (g, x, labels, _logits, loss) = xor_setup();
        let mut s1 = Session::new(&g);
        let mut s2 = Session::new(&g);
        let (xd, yd) = xor_batch();
        // s1: manual gradient application must equal s2's train_step.
        let (l1, grads) = s1
            .gradients(&g, &[(x, xd.clone()), (labels, yd.clone())], loss)
            .unwrap();
        for (var, grad) in &grads {
            let updated = s1.variable(*var).unwrap().zip(grad, |v, g| v - 0.5 * g).unwrap();
            s1.set_variable(*var, updated).unwrap();
        }
        let mut sgd = Sgd::new(0.5);
        let l2 = s2
            .train_step(&g, &[(x, xd), (labels, yd)], loss, &mut sgd)
            .unwrap();
        assert_eq!(l1, l2);
        for v in g.variables() {
            assert_eq!(s1.variable(v).unwrap().data(), s2.variable(v).unwrap().data());
        }
    }

    #[test]
    fn multiple_fetches_and_variable_fetch() {
        let (g, x, _labels, logits, _loss) = xor_setup();
        let mut session = Session::new(&g);
        let w1 = g.by_name("w1").unwrap();
        let (xd, _) = xor_batch();
        let out = session.run(&g, &[(x, xd)], &[logits, w1]).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].shape(), &[4, 2]);
        assert_eq!(out[1].shape(), &[2, 8]);
        // Fetching only a variable needs no placeholder feeds at all.
        let only_var = session.run(&g, &[], &[w1]).unwrap();
        assert_eq!(only_var[0].shape(), &[2, 8]);
    }

    #[test]
    fn fetching_foreign_node_errors() {
        let (g, ..) = xor_setup();
        let mut session = Session::new(&g);
        let mut other = Graph::new();
        let foreign = other.placeholder("f", &[1]);
        let _ = foreign;
        // An id beyond this graph's length.
        let bad = NodeId(g.len() + 5);
        assert!(matches!(
            session.run(&g, &[], &[bad]),
            Err(TensorError::UnknownNode)
        ));
    }

    #[test]
    fn adam_trains_xor_too() {
        use crate::optimizer::Adam;
        let (g, x, labels, logits, loss) = xor_setup();
        let mut session = Session::new(&g);
        let mut adam = Adam::new(0.02);
        let (xd, yd) = xor_batch();
        for _ in 0..400 {
            session
                .train_step(&g, &[(x, xd.clone()), (labels, yd.clone())], loss, &mut adam)
                .unwrap();
        }
        let out = session.run(&g, &[(x, xd)], &[logits]).unwrap();
        assert_eq!(out[0].argmax_rows().unwrap(), vec![0, 1, 1, 0]);
    }

    #[test]
    fn pooled_training_is_bit_identical_to_serial() {
        let (g, x, labels, logits, loss) = xor_setup();
        let mut serial = Session::new(&g);
        let mut pooled = Session::new(&g);
        pooled.set_worker_pool(WorkerPool::new(4));
        assert_eq!(pooled.worker_pool().workers(), 4);
        let (xd, yd) = xor_batch();
        let mut sgd_a = Sgd::new(0.5);
        let mut sgd_b = Sgd::new(0.5);
        for _ in 0..25 {
            let la = serial
                .train_step(&g, &[(x, xd.clone()), (labels, yd.clone())], loss, &mut sgd_a)
                .unwrap();
            let lb = pooled
                .train_step(&g, &[(x, xd.clone()), (labels, yd.clone())], loss, &mut sgd_b)
                .unwrap();
            assert_eq!(la.to_bits(), lb.to_bits());
        }
        let oa = serial.run(&g, &[(x, xd.clone())], &[logits]).unwrap();
        let ob = pooled.run(&g, &[(x, xd)], &[logits]).unwrap();
        assert_eq!(oa[0].data(), ob[0].data());
        assert_eq!(serial.stats().flops, pooled.stats().flops);
        assert!(pooled.stats().critical_flops <= serial.stats().critical_flops);
    }

    #[test]
    fn param_bytes_counts_all_variables() {
        let (g, ..) = xor_setup();
        let session = Session::new(&g);
        // w1 2x8 + b1 8 + w2 8x2 + b2 2 = 42 floats = 168 bytes.
        assert_eq!(session.param_bytes(), 168);
    }
}
