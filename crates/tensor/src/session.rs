//! Sessions: stateful graph execution (TensorFlow's `tf.Session`).

use crate::autodiff::{backward_with, forward_with, RunStats};
use crate::graph::{Graph, NodeId, Op, Padding};
use crate::kernels::WorkerPool;
use crate::memory::{MemoryMode, MemoryStats, PlannedExecutor, SlotWrite};
use crate::optimizer::Optimizer;
use crate::passes::{Pipeline, PipelineReport};
use crate::tensor::Tensor;
use crate::TensorError;
use std::collections::HashMap;

/// A pipeline-optimized graph cached by the session, keyed by the
/// compile key of (graph structure, roots, training flag).
#[derive(Debug, Clone)]
struct CompiledGraph {
    graph: Graph,
    /// Original-id → optimized-id map; `None` for eliminated nodes.
    remap: Vec<Option<NodeId>>,
    report: PipelineReport,
}

/// Structural fingerprint of a compilation request (FNV-1a). Covers
/// every input that can change what the pipeline produces: op kinds,
/// graph wiring, attribute payloads, constant *data* (folding bakes the
/// values into the optimized graph), leaf shapes, the requested roots,
/// and whether the training or inference pipeline applies. Variable
/// values are deliberately excluded — folding never evaluates them and
/// execution reads them from the session's own state.
fn compile_key(graph: &Graph, roots: &[NodeId], train: bool) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    let eat_usize = |h: &mut dyn FnMut(u8), v: usize| {
        for b in (v as u64).to_le_bytes() {
            h(b);
        }
    };
    eat(u8::from(train));
    eat_usize(&mut eat, graph.len());
    for node in graph.nodes() {
        for &b in node.op.kind().as_bytes() {
            eat(b);
        }
        eat(0xFF);
        match &node.op {
            Op::Constant(t) => {
                for &d in t.shape() {
                    eat_usize(&mut eat, d);
                }
                eat(0xFE);
                for &v in t.data() {
                    for b in v.to_bits().to_le_bytes() {
                        eat(b);
                    }
                }
            }
            Op::Placeholder { shape } => {
                for &d in shape {
                    eat_usize(&mut eat, d);
                }
            }
            Op::Variable { init } => {
                for &d in init.shape() {
                    eat_usize(&mut eat, d);
                }
            }
            Op::Scale(_, factor) => {
                for b in factor.to_bits().to_le_bytes() {
                    eat(b);
                }
            }
            Op::Reshape(_, shape) => {
                for &d in shape {
                    eat_usize(&mut eat, d);
                }
            }
            Op::Conv2d { padding, .. } | Op::FusedConv2d { padding, .. } => {
                eat(match padding {
                    Padding::Same => 0,
                    Padding::Valid => 1,
                });
            }
            _ => {}
        }
        eat(0xFF);
        for input in node.op.inputs() {
            eat_usize(&mut eat, input.index());
        }
    }
    eat(0xFD);
    for &root in roots {
        eat_usize(&mut eat, root.index());
    }
    hash
}

/// Owns variable state and runs graphs.
#[derive(Debug, Clone)]
pub struct Session {
    vars: HashMap<NodeId, Tensor>,
    stats: RunStats,
    pool: WorkerPool,
    mode: MemoryMode,
    planner: PlannedExecutor,
    optimize: bool,
    compiled: HashMap<u64, CompiledGraph>,
    last_key: Option<u64>,
    fresh_reports: Vec<PipelineReport>,
}

impl Session {
    /// Creates a session with variables at their initial values.
    pub fn new(graph: &Graph) -> Self {
        let vars = graph
            .variables()
            .into_iter()
            .filter_map(|id| match &graph.nodes()[id.0].op {
                Op::Variable { init } => Some((id, init.clone())),
                _ => None,
            })
            .collect();
        Session {
            vars,
            stats: RunStats::default(),
            pool: WorkerPool::serial(),
            mode: MemoryMode::default(),
            planner: PlannedExecutor::new(),
            optimize: true,
            compiled: HashMap::new(),
            last_key: None,
            fresh_reports: Vec::new(),
        }
    }

    /// Enables or disables the graph-compiler pass pipeline. Optimized
    /// execution is bit-identical to unoptimized — this switch exists
    /// for A/B verification and cost benchmarking.
    pub fn set_optimize(&mut self, on: bool) {
        self.optimize = on;
    }

    /// Whether the pass pipeline is applied before execution.
    pub fn optimize_enabled(&self) -> bool {
        self.optimize
    }

    /// The pipeline report of the most recently used compiled graph,
    /// if the session has optimized anything yet.
    pub fn pipeline_report(&self) -> Option<&PipelineReport> {
        self.last_key
            .and_then(|key| self.compiled.get(&key))
            .map(|c| &c.report)
    }

    /// Drains the reports of pipeline runs performed since the last
    /// call (one per newly compiled graph; cache hits produce none).
    /// The TEE layer turns these into `compiler.*` telemetry.
    pub fn take_pipeline_reports(&mut self) -> Vec<PipelineReport> {
        std::mem::take(&mut self.fresh_reports)
    }

    /// Compiles `graph` for the given roots if not already cached, and
    /// returns the cache key.
    fn ensure_compiled(
        &mut self,
        graph: &Graph,
        roots: &[NodeId],
        train: bool,
    ) -> Result<u64, TensorError> {
        let key = compile_key(graph, roots, train);
        if !self.compiled.contains_key(&key) {
            let pipeline = if train {
                Pipeline::training()
            } else {
                Pipeline::inference()
            };
            let optimized = pipeline.run(graph, roots)?;
            // Bound the cache: sessions normally see a handful of
            // distinct (graph, fetch-set) pairs; a runaway caller
            // resets rather than grows without limit.
            if self.compiled.len() >= 16 {
                self.compiled.clear();
            }
            self.fresh_reports.push(optimized.report.clone());
            self.compiled.insert(
                key,
                CompiledGraph {
                    graph: optimized.graph,
                    remap: optimized.remap,
                    report: optimized.report,
                },
            );
        }
        self.last_key = Some(key);
        Ok(key)
    }

    /// Moves the session's variable values into the optimized graph's
    /// id space (zero-copy). Returns the translated map and the
    /// `(new_id, old_id)` pairs needed to move them back.
    fn translate_vars(
        vars: &mut HashMap<NodeId, Tensor>,
        graph: &Graph,
        remap: &[Option<NodeId>],
    ) -> (HashMap<NodeId, Tensor>, Vec<(NodeId, NodeId)>) {
        let mut translated = HashMap::with_capacity(vars.len());
        let mut back = Vec::with_capacity(vars.len());
        for old in graph.variables() {
            if let Some(new_id) = remap.get(old.index()).copied().flatten() {
                if let Some(value) = vars.remove(&old) {
                    translated.insert(new_id, value);
                    back.push((new_id, old));
                }
            }
        }
        (translated, back)
    }

    /// Moves translated variable values back under their original ids.
    fn restore_vars(
        vars: &mut HashMap<NodeId, Tensor>,
        translated: &mut HashMap<NodeId, Tensor>,
        back: &[(NodeId, NodeId)],
    ) {
        for &(new_id, old) in back {
            if let Some(value) = translated.remove(&new_id) {
                vars.insert(old, value);
            }
        }
    }

    /// Sets the worker pool used by the compute kernels. Results are
    /// bit-identical for any pool; only the critical-path cost changes.
    pub fn set_worker_pool(&mut self, pool: WorkerPool) {
        self.pool = pool;
    }

    /// The worker pool kernels currently run on.
    pub fn worker_pool(&self) -> WorkerPool {
        self.pool
    }

    /// Selects planned-arena or legacy per-node-`Vec` execution. Results
    /// are bit-identical either way; only allocation behaviour (and the
    /// EPC traffic the TEE layer derives from it) changes.
    pub fn set_memory_mode(&mut self, mode: MemoryMode) {
        self.mode = mode;
    }

    /// The session's current memory mode.
    pub fn memory_mode(&self) -> MemoryMode {
        self.mode
    }

    /// Arena size required by the current execution plan, if the last
    /// run was planned.
    pub fn planned_peak_bytes(&self) -> Option<u64> {
        self.planner.planned_peak_bytes()
    }

    /// Memory-planner statistics (zeros when running unplanned).
    pub fn memory_stats(&self) -> MemoryStats {
        self.planner.memory_stats()
    }

    /// Drains the arena slot writes recorded since the last call; the
    /// TEE layer replays them as EPC page touches.
    pub fn take_slot_writes(&mut self) -> Vec<SlotWrite> {
        self.planner.take_slot_writes()
    }

    /// Evaluates `fetches` with the given placeholder feeds.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::autodiff::forward`] errors.
    pub fn run(
        &mut self,
        graph: &Graph,
        feeds: &[(NodeId, Tensor)],
        fetches: &[NodeId],
    ) -> Result<Vec<Tensor>, TensorError> {
        for &fetch in fetches {
            graph.node(fetch)?;
        }
        if self.optimize {
            let key = self.ensure_compiled(graph, fetches, false)?;
            let compiled = self.compiled.get(&key).expect("just compiled");
            let feed_map: HashMap<NodeId, Tensor> = feeds
                .iter()
                .filter_map(|(id, t)| {
                    compiled
                        .remap
                        .get(id.index())
                        .copied()
                        .flatten()
                        .map(|new_id| (new_id, t.clone()))
                })
                .collect();
            let new_fetches: Vec<NodeId> = fetches
                .iter()
                .map(|&f| {
                    compiled
                        .remap
                        .get(f.index())
                        .copied()
                        .flatten()
                        .ok_or(TensorError::UnknownNode)
                })
                .collect::<Result<_, _>>()?;
            let (mut tvars, back) = Self::translate_vars(&mut self.vars, graph, &compiled.remap);
            let result = if self.mode == MemoryMode::Planned {
                self.planner
                    .run(&compiled.graph, &feed_map, &tvars, &new_fetches, &self.pool)
            } else {
                forward_with(&compiled.graph, &feed_map, &tvars, &new_fetches, &self.pool)
                    .and_then(|fwd| {
                        let outs = new_fetches
                            .iter()
                            .map(|&id| fwd.value(id).cloned().ok_or(TensorError::UnknownNode))
                            .collect::<Result<Vec<_>, _>>()?;
                        Ok((outs, fwd.stats))
                    })
            };
            Self::restore_vars(&mut self.vars, &mut tvars, &back);
            let (outs, stats) = result?;
            self.stats.merge(stats);
            return Ok(outs);
        }
        let feed_map: HashMap<NodeId, Tensor> = feeds.iter().cloned().collect();
        if self.mode == MemoryMode::Planned {
            let (outs, stats) =
                self.planner
                    .run(graph, &feed_map, &self.vars, fetches, &self.pool)?;
            self.stats.merge(stats);
            return Ok(outs);
        }
        let fwd = forward_with(graph, &feed_map, &self.vars, fetches, &self.pool)?;
        self.stats.merge(fwd.stats);
        fetches
            .iter()
            .map(|&id| {
                fwd.value(id)
                    .cloned()
                    .ok_or(TensorError::UnknownNode)
            })
            .collect()
    }

    /// Runs one training step: forward, backward, optimizer update.
    /// Returns the loss value.
    ///
    /// # Errors
    ///
    /// Propagates executor errors; additionally
    /// [`TensorError::InvalidGraph`] if `loss` is not scalar.
    pub fn train_step(
        &mut self,
        graph: &Graph,
        feeds: &[(NodeId, Tensor)],
        loss: NodeId,
        optimizer: &mut dyn Optimizer,
    ) -> Result<f32, TensorError> {
        let feed_map: HashMap<NodeId, Tensor> = feeds.iter().cloned().collect();
        let (loss_value, grads, fwd_stats) = self.forward_backward(graph, &feed_map, loss)?;
        // Backward costs roughly 2x forward compute.
        let mut stats = fwd_stats;
        stats.scale_compute(3.0);
        stats.activation_bytes *= 2;
        self.stats.merge(stats);
        for var in graph.variables() {
            if let Some(grad) = grads.get(&var) {
                let value = self
                    .vars
                    .get_mut(&var)
                    .ok_or(TensorError::InvalidGraph("untracked variable"))?;
                optimizer.apply(var, value, grad)?;
            }
        }
        Ok(loss_value)
    }

    /// Forward + backward via the mode-selected executor. Returns the
    /// loss value, the gradient of every variable, and the forward stats.
    fn forward_backward(
        &mut self,
        graph: &Graph,
        feed_map: &HashMap<NodeId, Tensor>,
        loss: NodeId,
    ) -> Result<(f32, HashMap<NodeId, Tensor>, RunStats), TensorError> {
        graph.node(loss)?;
        if self.optimize {
            let key = self.ensure_compiled(graph, &[loss], true)?;
            let compiled = self.compiled.get(&key).expect("just compiled");
            let new_loss = compiled
                .remap
                .get(loss.index())
                .copied()
                .flatten()
                .ok_or(TensorError::UnknownNode)?;
            let new_feeds: HashMap<NodeId, Tensor> = feed_map
                .iter()
                .filter_map(|(id, t)| {
                    compiled
                        .remap
                        .get(id.index())
                        .copied()
                        .flatten()
                        .map(|new_id| (new_id, t.clone()))
                })
                .collect();
            let (mut tvars, back) = Self::translate_vars(&mut self.vars, graph, &compiled.remap);
            let result = Self::executor_forward_backward(
                &mut self.planner,
                self.mode,
                &compiled.graph,
                &new_feeds,
                &tvars,
                new_loss,
                &self.pool,
            );
            Self::restore_vars(&mut self.vars, &mut tvars, &back);
            let (loss_value, mut grads, stats) = result?;
            // Gradients come back in the optimized id space; translate
            // to the caller's original variable ids.
            let var_grads = back
                .iter()
                .filter_map(|&(new_id, old)| grads.remove(&new_id).map(|g| (old, g)))
                .collect();
            return Ok((loss_value, var_grads, stats));
        }
        Self::executor_forward_backward(
            &mut self.planner,
            self.mode,
            graph,
            feed_map,
            &self.vars,
            loss,
            &self.pool,
        )
    }

    /// Forward + backward on an already-translated graph, via the
    /// mode-selected executor.
    fn executor_forward_backward(
        planner: &mut PlannedExecutor,
        mode: MemoryMode,
        graph: &Graph,
        feed_map: &HashMap<NodeId, Tensor>,
        vars: &HashMap<NodeId, Tensor>,
        loss: NodeId,
        pool: &WorkerPool,
    ) -> Result<(f32, HashMap<NodeId, Tensor>, RunStats), TensorError> {
        if mode == MemoryMode::Planned {
            return planner.train(graph, feed_map, vars, loss, pool);
        }
        let fwd = forward_with(graph, feed_map, vars, &[loss], pool)?;
        let loss_value = fwd
            .value(loss)
            .ok_or(TensorError::UnknownNode)?
            .data()[0];
        let grads = backward_with(graph, &fwd, loss, pool)?;
        let var_grads = graph
            .variables()
            .into_iter()
            .filter_map(|v| grads.get(&v).map(|g| (v, g.clone())))
            .collect();
        Ok((loss_value, var_grads, fwd.stats))
    }

    /// Computes gradients without applying them (used by the
    /// parameter-server workers, which ship gradients over the network).
    ///
    /// # Errors
    ///
    /// Propagates executor errors.
    pub fn gradients(
        &mut self,
        graph: &Graph,
        feeds: &[(NodeId, Tensor)],
        loss: NodeId,
    ) -> Result<(f32, HashMap<NodeId, Tensor>), TensorError> {
        let feed_map: HashMap<NodeId, Tensor> = feeds.iter().cloned().collect();
        let (loss_value, var_grads, fwd_stats) = self.forward_backward(graph, &feed_map, loss)?;
        let mut stats = fwd_stats;
        stats.scale_compute(3.0);
        stats.activation_bytes *= 2;
        self.stats.merge(stats);
        Ok((loss_value, var_grads))
    }

    /// Current value of a variable.
    pub fn variable(&self, id: NodeId) -> Option<&Tensor> {
        self.vars.get(&id)
    }

    /// Overwrites a variable's value (parameter-server weight install).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnknownNode`] if the variable is untracked,
    /// or [`TensorError::ShapeMismatch`] if the shape differs.
    pub fn set_variable(&mut self, id: NodeId, value: Tensor) -> Result<(), TensorError> {
        let existing = self.vars.get_mut(&id).ok_or(TensorError::UnknownNode)?;
        if existing.shape() != value.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "set_variable",
                detail: format!("{:?} vs {:?}", existing.shape(), value.shape()),
            });
        }
        *existing = value;
        Ok(())
    }

    /// All variables and their current values, ordered by id.
    pub fn variables(&self) -> Vec<(NodeId, &Tensor)> {
        let mut v: Vec<_> = self.vars.iter().map(|(id, t)| (*id, t)).collect();
        v.sort_by_key(|(id, _)| *id);
        v
    }

    /// Accumulated execution statistics (FLOPs and activation bytes) of
    /// every run so far; the TEE layer converts these into virtual time.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Resets accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats = RunStats::default();
    }

    /// Total bytes of variable state (the trainable model size).
    pub fn param_bytes(&self) -> u64 {
        self.vars.values().map(Tensor::byte_len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Sgd;

    fn xor_setup() -> (Graph, NodeId, NodeId, NodeId, NodeId) {
        // A 2-4-2 MLP for XOR: genuinely needs the hidden layer.
        let mut g = Graph::new();
        let x = g.placeholder("x", &[0, 2]);
        let labels = g.placeholder("y", &[0, 2]);
        let mut rng = seeded_rng();
        let w1 = g.variable("w1", Tensor::glorot(&[2, 8], &mut rng));
        let b1 = g.variable("b1", Tensor::zeros(&[8]));
        let w2 = g.variable("w2", Tensor::glorot(&[8, 2], &mut rng));
        let b2 = g.variable("b2", Tensor::zeros(&[2]));
        let h = g.matmul(x, w1).unwrap();
        let h = g.add_bias(h, b1).unwrap();
        let h = g.relu(h).unwrap();
        let logits = g.matmul(h, w2).unwrap();
        let logits = g.add_bias(logits, b2).unwrap();
        let loss = g.softmax_cross_entropy(logits, labels).unwrap();
        (g, x, labels, logits, loss)
    }

    fn seeded_rng() -> impl rand::Rng {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(42)
    }

    fn xor_batch() -> (Tensor, Tensor) {
        let x = Tensor::from_vec(&[4, 2], vec![0., 0., 0., 1., 1., 0., 1., 1.]).unwrap();
        let y = Tensor::from_vec(&[4, 2], vec![1., 0., 0., 1., 0., 1., 1., 0.]).unwrap();
        (x, y)
    }

    #[test]
    fn training_learns_xor() {
        let (g, x, labels, logits, loss) = xor_setup();
        let mut session = Session::new(&g);
        let mut sgd = Sgd::new(0.5);
        let (xd, yd) = xor_batch();
        let mut last = f32::INFINITY;
        for _ in 0..500 {
            last = session
                .train_step(&g, &[(x, xd.clone()), (labels, yd.clone())], loss, &mut sgd)
                .unwrap();
        }
        assert!(last < 0.05, "loss did not converge: {last}");
        let out = session.run(&g, &[(x, xd)], &[logits]).unwrap();
        let preds = out[0].argmax_rows().unwrap();
        assert_eq!(preds, vec![0, 1, 1, 0]);
    }

    #[test]
    fn loss_decreases_monotonically_at_start() {
        let (g, x, labels, _logits, loss) = xor_setup();
        let mut session = Session::new(&g);
        let mut sgd = Sgd::new(0.1);
        let (xd, yd) = xor_batch();
        let l1 = session
            .train_step(&g, &[(x, xd.clone()), (labels, yd.clone())], loss, &mut sgd)
            .unwrap();
        let mut l_final = l1;
        for _ in 0..20 {
            l_final = session
                .train_step(&g, &[(x, xd.clone()), (labels, yd.clone())], loss, &mut sgd)
                .unwrap();
        }
        assert!(l_final < l1, "{l_final} >= {l1}");
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let (g, x, labels, _logits, loss) = xor_setup();
        let mut session = Session::new(&g);
        let mut sgd = Sgd::new(0.1);
        let (xd, yd) = xor_batch();
        session
            .train_step(&g, &[(x, xd), (labels, yd)], loss, &mut sgd)
            .unwrap();
        assert!(session.stats().flops > 0.0);
        session.reset_stats();
        assert_eq!(session.stats().flops, 0.0);
    }

    #[test]
    fn set_variable_validates_shape() {
        let (g, ..) = xor_setup();
        let mut session = Session::new(&g);
        let w1 = g.by_name("w1").unwrap();
        assert!(session.set_variable(w1, Tensor::zeros(&[2, 8])).is_ok());
        assert!(session.set_variable(w1, Tensor::zeros(&[3, 8])).is_err());
        let foreign = NodeId(999);
        assert!(session.set_variable(foreign, Tensor::zeros(&[1])).is_err());
    }

    #[test]
    fn gradients_match_train_step_effect() {
        let (g, x, labels, _logits, loss) = xor_setup();
        let mut s1 = Session::new(&g);
        let mut s2 = Session::new(&g);
        let (xd, yd) = xor_batch();
        // s1: manual gradient application must equal s2's train_step.
        let (l1, grads) = s1
            .gradients(&g, &[(x, xd.clone()), (labels, yd.clone())], loss)
            .unwrap();
        for (var, grad) in &grads {
            let updated = s1.variable(*var).unwrap().zip(grad, |v, g| v - 0.5 * g).unwrap();
            s1.set_variable(*var, updated).unwrap();
        }
        let mut sgd = Sgd::new(0.5);
        let l2 = s2
            .train_step(&g, &[(x, xd), (labels, yd)], loss, &mut sgd)
            .unwrap();
        assert_eq!(l1, l2);
        for v in g.variables() {
            assert_eq!(s1.variable(v).unwrap().data(), s2.variable(v).unwrap().data());
        }
    }

    #[test]
    fn multiple_fetches_and_variable_fetch() {
        let (g, x, _labels, logits, _loss) = xor_setup();
        let mut session = Session::new(&g);
        let w1 = g.by_name("w1").unwrap();
        let (xd, _) = xor_batch();
        let out = session.run(&g, &[(x, xd)], &[logits, w1]).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].shape(), &[4, 2]);
        assert_eq!(out[1].shape(), &[2, 8]);
        // Fetching only a variable needs no placeholder feeds at all.
        let only_var = session.run(&g, &[], &[w1]).unwrap();
        assert_eq!(only_var[0].shape(), &[2, 8]);
    }

    #[test]
    fn fetching_foreign_node_errors() {
        let (g, ..) = xor_setup();
        let mut session = Session::new(&g);
        let mut other = Graph::new();
        let foreign = other.placeholder("f", &[1]);
        let _ = foreign;
        // An id beyond this graph's length.
        let bad = NodeId(g.len() + 5);
        assert!(matches!(
            session.run(&g, &[], &[bad]),
            Err(TensorError::UnknownNode)
        ));
    }

    #[test]
    fn adam_trains_xor_too() {
        use crate::optimizer::Adam;
        let (g, x, labels, logits, loss) = xor_setup();
        let mut session = Session::new(&g);
        let mut adam = Adam::new(0.02);
        let (xd, yd) = xor_batch();
        for _ in 0..400 {
            session
                .train_step(&g, &[(x, xd.clone()), (labels, yd.clone())], loss, &mut adam)
                .unwrap();
        }
        let out = session.run(&g, &[(x, xd)], &[logits]).unwrap();
        assert_eq!(out[0].argmax_rows().unwrap(), vec![0, 1, 1, 0]);
    }

    #[test]
    fn pooled_training_is_bit_identical_to_serial() {
        let (g, x, labels, logits, loss) = xor_setup();
        let mut serial = Session::new(&g);
        let mut pooled = Session::new(&g);
        pooled.set_worker_pool(WorkerPool::new(4));
        assert_eq!(pooled.worker_pool().workers(), 4);
        let (xd, yd) = xor_batch();
        let mut sgd_a = Sgd::new(0.5);
        let mut sgd_b = Sgd::new(0.5);
        for _ in 0..25 {
            let la = serial
                .train_step(&g, &[(x, xd.clone()), (labels, yd.clone())], loss, &mut sgd_a)
                .unwrap();
            let lb = pooled
                .train_step(&g, &[(x, xd.clone()), (labels, yd.clone())], loss, &mut sgd_b)
                .unwrap();
            assert_eq!(la.to_bits(), lb.to_bits());
        }
        let oa = serial.run(&g, &[(x, xd.clone())], &[logits]).unwrap();
        let ob = pooled.run(&g, &[(x, xd)], &[logits]).unwrap();
        assert_eq!(oa[0].data(), ob[0].data());
        assert_eq!(serial.stats().flops, pooled.stats().flops);
        assert!(pooled.stats().critical_flops <= serial.stats().critical_flops);
    }

    #[test]
    fn param_bytes_counts_all_variables() {
        let (g, ..) = xor_setup();
        let session = Session::new(&g);
        // w1 2x8 + b1 8 + w2 8x2 + b2 2 = 42 floats = 168 bytes.
        assert_eq!(session.param_bytes(), 168);
    }
}
