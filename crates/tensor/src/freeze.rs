//! Graph freezing, export/import and checkpoints.
//!
//! The paper's workflow (§4.1) defines a graph with the Python API,
//! *freezes* it (folds trained variables into constants), exports it in
//! the Protocol Buffers exchange format, and imports it inside the
//! enclave with the C++ or TFLite runtime. This module provides the
//! equivalent interchange: a compact length-prefixed binary `GraphDef`,
//! plus checkpoints that snapshot variable values.

use crate::graph::{Graph, Node, NodeId, Op, Padding};
use crate::session::Session;
use crate::tensor::Tensor;
use crate::TensorError;

const GRAPH_MAGIC: &[u8; 5] = b"STFG1";
const CKPT_MAGIC: &[u8; 5] = b"STFC1";

/// Returns a copy of `graph` with every variable replaced by a constant
/// holding its current session value.
///
/// # Errors
///
/// Returns [`TensorError::InvalidGraph`] if the session does not track
/// one of the graph's variables.
pub fn freeze(graph: &Graph, session: &Session) -> Result<Graph, TensorError> {
    let mut out = Graph::new();
    for (index, node) in graph.nodes().iter().enumerate() {
        let op = match &node.op {
            Op::Variable { .. } => {
                let value = session
                    .variable(NodeId(index))
                    .ok_or(TensorError::InvalidGraph("variable not in session"))?;
                Op::Constant(value.clone())
            }
            other => other.clone(),
        };
        out.push_node(Node {
            op,
            name: node.name.clone(),
        });
    }
    Ok(out)
}

// ---- byte-level helpers ------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

fn put_tensor(out: &mut Vec<u8>, t: &Tensor) {
    put_u32(out, t.shape().len() as u32);
    for &d in t.shape() {
        put_u32(out, d as u32);
    }
    put_u32(out, t.data().len() as u32);
    for &v in t.data() {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    cursor: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, cursor: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], TensorError> {
        if self.cursor + n > self.bytes.len() {
            return Err(TensorError::MalformedModel("truncated"));
        }
        let s = &self.bytes[self.cursor..self.cursor + n];
        self.cursor += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, TensorError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn bytes_field(&mut self) -> Result<&'a [u8], TensorError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    fn tensor(&mut self) -> Result<Tensor, TensorError> {
        let rank = self.u32()? as usize;
        if rank > 8 {
            return Err(TensorError::MalformedModel("rank too large"));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(self.u32()? as usize);
        }
        let count = self.u32()? as usize;
        if count != shape.iter().product::<usize>() {
            return Err(TensorError::MalformedModel("element count mismatch"));
        }
        let raw = self.take(count * 4)?;
        let data = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4")))
            .collect();
        Tensor::from_vec(&shape, data)
            .map_err(|_| TensorError::MalformedModel("bad tensor"))
    }

    fn done(&self) -> bool {
        self.cursor == self.bytes.len()
    }
}

/// Serializes a graph to the binary `GraphDef` format.
pub fn export_graph(graph: &Graph) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(GRAPH_MAGIC);
    put_u32(&mut out, graph.len() as u32);
    for node in graph.nodes() {
        put_bytes(&mut out, node.name.as_bytes());
        match &node.op {
            Op::Placeholder { shape } => {
                out.push(0);
                put_u32(&mut out, shape.len() as u32);
                for &d in shape {
                    put_u32(&mut out, d as u32);
                }
            }
            Op::Variable { init } => {
                out.push(1);
                put_tensor(&mut out, init);
            }
            Op::Constant(t) => {
                out.push(2);
                put_tensor(&mut out, t);
            }
            Op::MatMul(a, b) => {
                out.push(3);
                put_u32(&mut out, a.0 as u32);
                put_u32(&mut out, b.0 as u32);
            }
            Op::AddBias(a, b) => {
                out.push(4);
                put_u32(&mut out, a.0 as u32);
                put_u32(&mut out, b.0 as u32);
            }
            Op::Add(a, b) => {
                out.push(5);
                put_u32(&mut out, a.0 as u32);
                put_u32(&mut out, b.0 as u32);
            }
            Op::Mul(a, b) => {
                out.push(6);
                put_u32(&mut out, a.0 as u32);
                put_u32(&mut out, b.0 as u32);
            }
            Op::Relu(a) => {
                out.push(7);
                put_u32(&mut out, a.0 as u32);
            }
            Op::Softmax(a) => {
                out.push(8);
                put_u32(&mut out, a.0 as u32);
            }
            Op::Conv2d {
                input,
                filter,
                padding,
            } => {
                out.push(9);
                put_u32(&mut out, input.0 as u32);
                put_u32(&mut out, filter.0 as u32);
                out.push(match padding {
                    Padding::Same => 0,
                    Padding::Valid => 1,
                });
            }
            Op::MaxPool2(a) => {
                out.push(10);
                put_u32(&mut out, a.0 as u32);
            }
            Op::Flatten(a) => {
                out.push(11);
                put_u32(&mut out, a.0 as u32);
            }
            Op::Reshape(a, shape) => {
                out.push(12);
                put_u32(&mut out, a.0 as u32);
                put_u32(&mut out, shape.len() as u32);
                for &d in shape {
                    put_u32(&mut out, d as u32);
                }
            }
            Op::SoftmaxCrossEntropy { logits, labels } => {
                out.push(13);
                put_u32(&mut out, logits.0 as u32);
                put_u32(&mut out, labels.0 as u32);
            }
            Op::MseLoss(a, b) => {
                out.push(14);
                put_u32(&mut out, a.0 as u32);
                put_u32(&mut out, b.0 as u32);
            }
            Op::Sub(a, b) => {
                out.push(15);
                put_u32(&mut out, a.0 as u32);
                put_u32(&mut out, b.0 as u32);
            }
            Op::Scale(a, factor) => {
                out.push(16);
                put_u32(&mut out, a.0 as u32);
                out.extend_from_slice(&factor.to_le_bytes());
            }
            Op::Sigmoid(a) => {
                out.push(17);
                put_u32(&mut out, a.0 as u32);
            }
            Op::Tanh(a) => {
                out.push(18);
                put_u32(&mut out, a.0 as u32);
            }
            Op::AvgPool2(a) => {
                out.push(19);
                put_u32(&mut out, a.0 as u32);
            }
            Op::ConcatCols(a, b) => {
                out.push(20);
                put_u32(&mut out, a.0 as u32);
                put_u32(&mut out, b.0 as u32);
            }
            Op::FusedMatMul { lhs, rhs, bias, relu } => {
                out.push(21);
                put_u32(&mut out, lhs.0 as u32);
                put_u32(&mut out, rhs.0 as u32);
                put_u32(&mut out, bias.0 as u32);
                out.push(u8::from(*relu));
            }
            Op::FusedConv2d {
                input,
                filter,
                bias,
                padding,
                relu,
            } => {
                out.push(22);
                put_u32(&mut out, input.0 as u32);
                put_u32(&mut out, filter.0 as u32);
                put_u32(&mut out, bias.0 as u32);
                out.push(match padding {
                    Padding::Same => 0,
                    Padding::Valid => 1,
                });
                out.push(u8::from(*relu));
            }
        }
    }
    out
}

/// Deserializes a graph exported by [`export_graph`].
///
/// # Errors
///
/// Returns [`TensorError::MalformedModel`] on any structural violation —
/// bad magic, truncation, forward references, trailing bytes.
pub fn import_graph(bytes: &[u8]) -> Result<Graph, TensorError> {
    let mut r = Reader::new(bytes);
    if r.take(5)? != GRAPH_MAGIC {
        return Err(TensorError::MalformedModel("bad magic"));
    }
    let count = r.u32()? as usize;
    if count > 1_000_000 {
        return Err(TensorError::MalformedModel("node count too large"));
    }
    let mut graph = Graph::new();
    for index in 0..count {
        let name = String::from_utf8(r.bytes_field()?.to_vec())
            .map_err(|_| TensorError::MalformedModel("bad name"))?;
        let tag = r.take(1)?[0];
        // Every referenced node must already exist (topological order).
        let node_ref = |r: &mut Reader| -> Result<NodeId, TensorError> {
            let id = r.u32()? as usize;
            if id >= index {
                return Err(TensorError::MalformedModel("forward reference"));
            }
            Ok(NodeId(id))
        };
        let shape_field = |r: &mut Reader| -> Result<Vec<usize>, TensorError> {
            let rank = r.u32()? as usize;
            if rank > 8 {
                return Err(TensorError::MalformedModel("rank too large"));
            }
            (0..rank).map(|_| Ok(r.u32()? as usize)).collect()
        };
        let op = match tag {
            0 => Op::Placeholder {
                shape: shape_field(&mut r)?,
            },
            1 => Op::Variable { init: r.tensor()? },
            2 => Op::Constant(r.tensor()?),
            3 => Op::MatMul(node_ref(&mut r)?, node_ref(&mut r)?),
            4 => Op::AddBias(node_ref(&mut r)?, node_ref(&mut r)?),
            5 => Op::Add(node_ref(&mut r)?, node_ref(&mut r)?),
            6 => Op::Mul(node_ref(&mut r)?, node_ref(&mut r)?),
            7 => Op::Relu(node_ref(&mut r)?),
            8 => Op::Softmax(node_ref(&mut r)?),
            9 => {
                let input = node_ref(&mut r)?;
                let filter = node_ref(&mut r)?;
                let padding = match r.take(1)?[0] {
                    0 => Padding::Same,
                    1 => Padding::Valid,
                    _ => return Err(TensorError::MalformedModel("bad padding")),
                };
                Op::Conv2d {
                    input,
                    filter,
                    padding,
                }
            }
            10 => Op::MaxPool2(node_ref(&mut r)?),
            11 => Op::Flatten(node_ref(&mut r)?),
            12 => {
                let a = node_ref(&mut r)?;
                Op::Reshape(a, shape_field(&mut r)?)
            }
            13 => Op::SoftmaxCrossEntropy {
                logits: node_ref(&mut r)?,
                labels: node_ref(&mut r)?,
            },
            14 => Op::MseLoss(node_ref(&mut r)?, node_ref(&mut r)?),
            15 => Op::Sub(node_ref(&mut r)?, node_ref(&mut r)?),
            16 => {
                let a = node_ref(&mut r)?;
                let factor = f32::from_le_bytes(r.take(4)?.try_into().expect("4"));
                Op::Scale(a, factor)
            }
            17 => Op::Sigmoid(node_ref(&mut r)?),
            18 => Op::Tanh(node_ref(&mut r)?),
            19 => Op::AvgPool2(node_ref(&mut r)?),
            20 => Op::ConcatCols(node_ref(&mut r)?, node_ref(&mut r)?),
            21 => {
                let lhs = node_ref(&mut r)?;
                let rhs = node_ref(&mut r)?;
                let bias = node_ref(&mut r)?;
                let relu = match r.take(1)?[0] {
                    0 => false,
                    1 => true,
                    _ => return Err(TensorError::MalformedModel("bad relu flag")),
                };
                Op::FusedMatMul { lhs, rhs, bias, relu }
            }
            22 => {
                let input = node_ref(&mut r)?;
                let filter = node_ref(&mut r)?;
                let bias = node_ref(&mut r)?;
                let padding = match r.take(1)?[0] {
                    0 => Padding::Same,
                    1 => Padding::Valid,
                    _ => return Err(TensorError::MalformedModel("bad padding")),
                };
                let relu = match r.take(1)?[0] {
                    0 => false,
                    1 => true,
                    _ => return Err(TensorError::MalformedModel("bad relu flag")),
                };
                Op::FusedConv2d {
                    input,
                    filter,
                    bias,
                    padding,
                    relu,
                }
            }
            _ => return Err(TensorError::MalformedModel("unknown op tag")),
        };
        graph.push_node(Node { op, name });
    }
    if !r.done() {
        return Err(TensorError::MalformedModel("trailing bytes"));
    }
    Ok(graph)
}

/// Renders the graph in Graphviz dot format (debugging/documentation).
pub fn to_dot(graph: &Graph) -> String {
    let mut out = String::from("digraph model {\n  rankdir=LR;\n  node [shape=box];\n");
    for (index, node) in graph.nodes().iter().enumerate() {
        let label = match &node.op {
            Op::Constant(t) => format!("{} {:?}", node.name, t.shape()),
            Op::Variable { init } => format!("var {} {:?}", node.name, init.shape()),
            Op::Placeholder { shape } => format!("{} {:?}", node.name, shape),
            other => format!("{} ({})", node.name, other.kind()),
        };
        out.push_str(&format!("  n{index} [label=\"{label}\"];\n"));
        for input in node.op.inputs() {
            out.push_str(&format!("  n{} -> n{index};\n", input.index()));
        }
    }
    out.push_str("}\n");
    out
}

/// Serializes the current variable values of `session` for `graph`.
pub fn save_checkpoint(graph: &Graph, session: &Session) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(CKPT_MAGIC);
    let vars = graph.variables();
    put_u32(&mut out, vars.len() as u32);
    for var in vars {
        put_u32(&mut out, var.0 as u32);
        if let Some(value) = session.variable(var) {
            put_tensor(&mut out, value);
        } else {
            put_tensor(&mut out, &Tensor::zeros(&[0]));
        }
    }
    out
}

/// Restores variable values saved by [`save_checkpoint`] into `session`.
///
/// # Errors
///
/// Returns [`TensorError::MalformedModel`] on format violations, or
/// [`TensorError::ShapeMismatch`] if a value's shape does not match the
/// variable (checkpoint from a different graph).
pub fn restore_checkpoint(
    graph: &Graph,
    session: &mut Session,
    bytes: &[u8],
) -> Result<(), TensorError> {
    let mut r = Reader::new(bytes);
    if r.take(5)? != CKPT_MAGIC {
        return Err(TensorError::MalformedModel("bad magic"));
    }
    let count = r.u32()? as usize;
    for _ in 0..count {
        let id = NodeId(r.u32()? as usize);
        let value = r.tensor()?;
        graph.node(id).map_err(|_| TensorError::MalformedModel("unknown variable id"))?;
        session.set_variable(id, value)?;
    }
    if !r.done() {
        return Err(TensorError::MalformedModel("trailing bytes"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Sgd;

    fn sample_graph() -> (Graph, NodeId, NodeId) {
        let mut g = Graph::new();
        let x = g.placeholder("x", &[0, 2]);
        let w = g.variable("w", Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]).unwrap());
        let b = g.variable("b", Tensor::from_vec(&[2], vec![0.5, -0.5]).unwrap());
        let mm = g.matmul(x, w).unwrap();
        let y = g.add_bias(mm, b).unwrap();
        let s = g.softmax(y).unwrap();
        (g, x, s)
    }

    #[test]
    fn export_import_roundtrip_preserves_outputs() {
        let (g, x, s) = sample_graph();
        let bytes = export_graph(&g);
        let g2 = import_graph(&bytes).unwrap();
        let input = Tensor::from_vec(&[1, 2], vec![0.3, -0.7]).unwrap();
        let mut s1 = Session::new(&g);
        let mut s2 = Session::new(&g2);
        let out1 = s1.run(&g, &[(x, input.clone())], &[s]).unwrap();
        let out2 = s2.run(&g2, &[(x, input)], &[s]).unwrap();
        assert_eq!(out1[0].data(), out2[0].data());
    }

    #[test]
    fn export_import_roundtrip_preserves_fused_graphs() {
        use crate::graph::Padding;
        use crate::passes::Pipeline;
        use std::collections::HashMap;

        // Fuse a conv → bias → relu → flatten → matmul → bias → softmax
        // chain through the inference pipeline, then round-trip the fused
        // graph through the GraphDef bytes.
        let mut g = Graph::new();
        let x = g.placeholder("x", &[0, 4, 4, 2]);
        let f = g.constant(
            "f",
            Tensor::from_vec(&[3, 3, 2, 3], (0..54).map(|i| i as f32 * 0.01 - 0.2).collect())
                .unwrap(),
        );
        let cb = g.constant("cb", Tensor::from_vec(&[3], vec![0.1, -0.2, 0.3]).unwrap());
        let conv = g.conv2d(x, f, Padding::Same).unwrap();
        let biased = g.add_bias(conv, cb).unwrap();
        let act = g.relu(biased).unwrap();
        let flat = g.flatten(act).unwrap();
        let w = g.constant(
            "w",
            Tensor::from_vec(&[48, 2], (0..96).map(|i| (i % 7) as f32 * 0.1 - 0.3).collect())
                .unwrap(),
        );
        let b = g.constant("b", Tensor::from_vec(&[2], vec![0.05, -0.05]).unwrap());
        let mm = g.matmul(flat, w).unwrap();
        let logits = g.add_bias(mm, b).unwrap();
        let out = g.softmax(logits).unwrap();

        let optimized = Pipeline::inference().run(&g, &[x, out]).unwrap();
        assert!(optimized.report.nodes_fused() >= 2);
        let fused_out = optimized.target(out).unwrap();
        let fused_x = optimized.target(x).unwrap();
        assert!(optimized.graph.nodes().iter().any(|n| matches!(
            n.op,
            Op::FusedConv2d { relu: true, .. }
        )));
        assert!(optimized.graph.nodes().iter().any(|n| matches!(
            n.op,
            Op::FusedMatMul { relu: false, .. }
        )));

        let bytes = export_graph(&optimized.graph);
        let imported = import_graph(&bytes).unwrap();
        assert_eq!(imported.len(), optimized.graph.len());
        for (a, b) in imported.nodes().iter().zip(optimized.graph.nodes()) {
            assert_eq!(a.op.kind(), b.op.kind());
            assert_eq!(a.name, b.name);
        }

        let input =
            Tensor::from_vec(&[2, 4, 4, 2], (0..64).map(|i| (i % 9) as f32 * 0.2 - 0.8).collect())
                .unwrap();
        let feeds = HashMap::from([(fused_x, input.clone())]);
        let vars = HashMap::new();
        let fwd_a =
            crate::autodiff::forward(&optimized.graph, &feeds, &vars, &[fused_out]).unwrap();
        let fwd_b = crate::autodiff::forward(&imported, &feeds, &vars, &[fused_out]).unwrap();
        let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(fwd_a.value(fused_out).unwrap()),
            bits(fwd_b.value(fused_out).unwrap())
        );
        // And the fused graph computes the same values the unfused one did.
        let mut unfused = Session::new(&g);
        let plain = unfused.run(&g, &[(x, input)], &[out]).unwrap();
        assert_eq!(bits(&plain[0]), bits(fwd_a.value(fused_out).unwrap()));
    }

    #[test]
    fn freeze_folds_variables() {
        let (g, x, s) = sample_graph();
        let session = Session::new(&g);
        let frozen = freeze(&g, &session).unwrap();
        assert!(frozen.variables().is_empty());
        // Frozen graph still evaluates identically without a variable store.
        let input = Tensor::from_vec(&[1, 2], vec![1.0, 1.0]).unwrap();
        let mut live = Session::new(&g);
        let mut froze = Session::new(&frozen);
        assert_eq!(
            live.run(&g, &[(x, input.clone())], &[s]).unwrap()[0].data(),
            froze.run(&frozen, &[(x, input)], &[s]).unwrap()[0].data()
        );
    }

    #[test]
    fn freeze_captures_trained_state_not_initial() {
        let mut g = Graph::new();
        let x = g.placeholder("x", &[0, 1]);
        let w = g.variable("w", Tensor::zeros(&[1, 1]));
        let y = g.matmul(x, w).unwrap();
        let t = g.placeholder("t", &[0, 1]);
        let loss = g.mse_loss(y, t).unwrap();
        let mut session = Session::new(&g);
        let mut sgd = Sgd::new(0.5);
        for _ in 0..100 {
            session
                .train_step(
                    &g,
                    &[
                        (x, Tensor::from_vec(&[1, 1], vec![1.0]).unwrap()),
                        (t, Tensor::from_vec(&[1, 1], vec![2.0]).unwrap()),
                    ],
                    loss,
                    &mut sgd,
                )
                .unwrap();
        }
        let frozen = freeze(&g, &session).unwrap();
        let Op::Constant(c) = &frozen.nodes()[w.0].op else {
            panic!("variable not folded");
        };
        assert!((c.data()[0] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn import_rejects_corruption() {
        let (g, ..) = sample_graph();
        let bytes = export_graph(&g);
        assert!(import_graph(&bytes[..bytes.len() - 1]).is_err());
        assert!(import_graph(b"JUNK!").is_err());
        let mut extended = bytes.clone();
        extended.push(7);
        assert!(import_graph(&extended).is_err());
        let mut bad_magic = bytes;
        bad_magic[0] = b'X';
        assert!(import_graph(&bad_magic).is_err());
    }

    #[test]
    fn import_rejects_forward_references() {
        // Hand-craft: one relu node referencing node 5 (doesn't exist yet).
        let mut bytes = GRAPH_MAGIC.to_vec();
        put_u32(&mut bytes, 1);
        put_bytes(&mut bytes, b"r");
        bytes.push(7); // relu
        put_u32(&mut bytes, 5);
        assert_eq!(
            import_graph(&bytes).unwrap_err(),
            TensorError::MalformedModel("forward reference")
        );
    }

    #[test]
    fn checkpoint_roundtrip() {
        let (g, ..) = sample_graph();
        let mut session = Session::new(&g);
        let w = g.by_name("w").unwrap();
        session
            .set_variable(w, Tensor::from_vec(&[2, 2], vec![9., 8., 7., 6.]).unwrap())
            .unwrap();
        let ckpt = save_checkpoint(&g, &session);
        let mut fresh = Session::new(&g);
        restore_checkpoint(&g, &mut fresh, &ckpt).unwrap();
        assert_eq!(fresh.variable(w).unwrap().data(), &[9., 8., 7., 6.]);
    }

    #[test]
    fn checkpoint_from_wrong_graph_rejected() {
        let (g, ..) = sample_graph();
        let session = Session::new(&g);
        let ckpt = save_checkpoint(&g, &session);
        // A graph whose variable has a different shape.
        let mut other = Graph::new();
        other.placeholder("x", &[0, 2]);
        other.variable("w", Tensor::zeros(&[3, 3]));
        let mut other_session = Session::new(&other);
        assert!(restore_checkpoint(&other, &mut other_session, &ckpt).is_err());
    }

    #[test]
    fn dot_export_mentions_every_node_and_edge() {
        let (g, x, s) = sample_graph();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("matmul"));
        // One node line per graph node.
        assert_eq!(
            dot.matches("label=").count(),
            g.len(),
            "{dot}"
        );
        // The input feeds the matmul.
        assert!(dot.contains(&format!("n{} -> ", x.index())));
        let _ = s;
    }

    #[test]
    fn exported_graph_size_tracks_parameters() {
        let mut g = Graph::new();
        g.variable("big", Tensor::zeros(&[1000]));
        let bytes = export_graph(&g);
        assert!(bytes.len() > 4000, "exported size {} too small", bytes.len());
    }
}
