use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use securetf_crypto::aead::{AeadCtx, Key, Nonce};

struct CountingAlloc;
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static LAYOUTS: [AtomicU64; 2] = [AtomicU64::new(0), AtomicU64::new(0)];
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let n = ALLOCS.fetch_add(1, Ordering::SeqCst);
        if n >= 1000000 { }
        let i = (LAYOUTS[0].load(Ordering::SeqCst) != 0) as usize;
        if LAYOUTS[i].load(Ordering::SeqCst) == 0 { LAYOUTS[i].store(layout.size() as u64, Ordering::SeqCst); }
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}
#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn probe_exact() {
    let ctx = AeadCtx::new(Key::from_bytes([7u8; 32]));
    let mut buf = vec![0xabu8; 64 * 1024];
    let aad = [0x5au8; 13];

    // reset layout trackers after setup
    LAYOUTS[0].store(0, Ordering::SeqCst);
    LAYOUTS[1].store(0, Ordering::SeqCst);
    let before = ALLOCS.load(Ordering::SeqCst);
    for seq in 0..32u64 {
        let nonce = Nonce::from_counter(9, seq);
        let tag = ctx.seal_in_place_detached(&nonce, &mut buf, &aad);
        ctx.open_in_place_detached(&nonce, &mut buf, &tag, &aad)
            .expect("roundtrip authenticates");
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    eprintln!("window allocs = {}, first-two layout sizes = {} {}",
        after - before,
        LAYOUTS[0].load(Ordering::SeqCst),
        LAYOUTS[1].load(Ordering::SeqCst));
}
