//! Differential tests: every AEAD entry point — allocating, in-place
//! detached, context append — must produce bytes identical to the
//! retained reference implementation across arbitrary payload lengths
//! and every AAD alignment, and the multi-block ChaCha20 fast path must
//! emit the reference keystream.

use proptest::prelude::*;
use securetf_crypto::aead::{self, AeadCtx, Key, Nonce, TAG_LEN};
use securetf_crypto::chacha20::ChaCha20;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn every_seal_path_matches_the_reference(
        len in 0usize..4096,
        aad_len in 0usize..49,
        key_seed in any::<u8>(),
        stream in any::<u32>(),
        seq in any::<u64>(),
    ) {
        let key = Key::from_bytes(std::array::from_fn(|i| key_seed.wrapping_add(i as u8)));
        let nonce = Nonce::from_counter(stream, seq);
        let plaintext: Vec<u8> =
            (0..len).map(|i| (i.wrapping_mul(131) >> 2) as u8).collect();
        let aad: Vec<u8> = (0..aad_len).map(|i| (i * 7 + 3) as u8).collect();

        let reference = aead::seal_reference(&key, &nonce, &plaintext, &aad);
        let sealed = aead::seal(&key, &nonce, &plaintext, &aad);
        prop_assert_eq!(&sealed, &reference, "allocating seal diverged");

        let mut buf = plaintext.clone();
        let tag = aead::seal_in_place_detached(&key, &nonce, &mut buf, &aad);
        prop_assert_eq!(&buf[..], &reference[..len], "in-place ciphertext diverged");
        prop_assert_eq!(&tag[..], &reference[len..], "in-place tag diverged");

        let ctx = AeadCtx::new(key.clone());
        let mut appended = Vec::new();
        ctx.seal_append(&nonce, &plaintext, &aad, &mut appended);
        prop_assert_eq!(&appended, &reference, "seal_append diverged");

        // Every open path accepts the record and agrees on the plaintext.
        prop_assert_eq!(
            aead::open(&key, &nonce, &sealed, &aad).unwrap(),
            plaintext.clone()
        );
        prop_assert_eq!(
            aead::open_reference(&key, &nonce, &sealed, &aad).unwrap(),
            plaintext.clone()
        );
        let mut in_place = sealed[..len].to_vec();
        aead::open_in_place_detached(&key, &nonce, &mut in_place, &sealed[len..], &aad).unwrap();
        prop_assert_eq!(&in_place, &plaintext);
        let mut opened = Vec::new();
        ctx.open_append(&nonce, &sealed, &aad, &mut opened).unwrap();
        prop_assert_eq!(&opened, &plaintext);
    }

    #[test]
    fn fast_keystream_matches_reference(
        len in 0usize..2048,
        counter in 0u32..1000,
        key_seed in any::<u8>(),
    ) {
        let key: [u8; 32] = std::array::from_fn(|i| key_seed.wrapping_mul(i as u8 + 1));
        let nonce: [u8; 12] = std::array::from_fn(|i| (i as u8) ^ key_seed);
        let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();

        let mut fast = data.clone();
        ChaCha20::new(&key, &nonce, counter).apply_keystream(&mut fast);
        let mut slow = data;
        ChaCha20::new(&key, &nonce, counter).apply_keystream_reference(&mut slow);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn tampering_any_byte_is_rejected_by_every_open_path(
        len in 1usize..256,
        flip in any::<prop::sample::Index>(),
    ) {
        let key = Key::from_bytes([3u8; 32]);
        let nonce = Nonce::from_counter(1, 1);
        let plaintext: Vec<u8> = (0..len).map(|i| i as u8).collect();
        let mut sealed = aead::seal(&key, &nonce, &plaintext, b"aad");
        let idx = flip.index(sealed.len());
        sealed[idx] ^= 0x40;

        prop_assert!(aead::open(&key, &nonce, &sealed, b"aad").is_err());
        prop_assert!(aead::open_reference(&key, &nonce, &sealed, b"aad").is_err());
        let ct_len = sealed.len() - TAG_LEN;
        let mut buf = sealed[..ct_len].to_vec();
        prop_assert!(
            aead::open_in_place_detached(&key, &nonce, &mut buf, &sealed[ct_len..], b"aad")
                .is_err()
        );
        // Failed in-place open leaves the ciphertext untouched.
        prop_assert_eq!(&buf[..], &sealed[..ct_len]);
    }
}
