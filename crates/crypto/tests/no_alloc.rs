//! Counting-allocator proof of the zero-allocation steady-state contract:
//! in-place detached seal/open on a reusable [`AeadCtx`] must not touch
//! the heap. This file holds exactly one test so allocations from other
//! tests running in the same process can never pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use securetf_crypto::aead::{AeadCtx, Key, Nonce};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_in_place_seal_open_allocates_nothing() {
    let ctx = AeadCtx::new(Key::from_bytes([7u8; 32]));
    let mut buf = vec![0xabu8; 64 * 1024];
    let aad = [0x5au8; 13];

    let before = ALLOCS.load(Ordering::SeqCst);
    for seq in 0..32u64 {
        let nonce = Nonce::from_counter(9, seq);
        let tag = ctx.seal_in_place_detached(&nonce, &mut buf, &aad);
        ctx.open_in_place_detached(&nonce, &mut buf, &tag, &aad)
            .expect("roundtrip authenticates");
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "in-place detached seal/open must not allocate in steady state"
    );
}
