//! HMAC-SHA256 (RFC 2104), validated against the RFC 4231 test vectors.
//!
//! # Examples
//!
//! ```
//! let tag = securetf_crypto::hmac::hmac_sha256(b"key", b"message");
//! assert_eq!(tag.len(), 32);
//! ```

use crate::sha256::{self, Sha256, BLOCK_LEN, DIGEST_LEN};

/// Incremental HMAC-SHA256 computation.
///
/// # Examples
///
/// ```
/// use securetf_crypto::hmac::HmacSha256;
///
/// let mut mac = HmacSha256::new(b"key");
/// mac.update(b"mess");
/// mac.update(b"age");
/// assert_eq!(mac.finalize(), securetf_crypto::hmac::hmac_sha256(b"key", b"message"));
/// ```
#[derive(Debug, Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates an HMAC context keyed with `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut block_key = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            block_key[..DIGEST_LEN].copy_from_slice(&sha256::digest(key));
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; BLOCK_LEN];
        let mut opad = [0x5cu8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] ^= block_key[i];
            opad[i] ^= block_key[i];
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            opad_key: opad,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produces the 32-byte authentication tag.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// One-shot HMAC-SHA256.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0b; 20];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 0xaa*20 key, 0xdd*50 data.
    #[test]
    fn rfc4231_case3() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: key larger than block size.
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaa; 131];
        assert_eq!(
            hex(&hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    // RFC 4231 test case 7: long key and long data.
    #[test]
    fn rfc4231_case7_long_key_and_data() {
        let key = [0xaa; 131];
        let data: &[u8] = b"This is a test using a larger than block-size key and a \
larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        assert_eq!(
            hex(&hmac_sha256(&key, data)),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    // RFC 4231 test case 4: composite key 0x01..0x19, data 0xcd*50.
    #[test]
    fn rfc4231_case4() {
        let key: Vec<u8> = (1u8..=25).collect();
        let data = [0xcd; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &data)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
        );
    }

    // RFC 4231 test case 5: truncated-output case (we compare the prefix).
    #[test]
    fn rfc4231_case5_prefix() {
        let key = [0x0c; 20];
        let tag = hmac_sha256(&key, b"Test With Truncation");
        assert_eq!(hex(&tag[..16]), "a3b6167473100ee06e0c796c2955552b");
    }

    #[test]
    fn incremental_matches_oneshot() {
        let msg: Vec<u8> = (0..500u16).map(|i| (i & 0xff) as u8).collect();
        let whole = hmac_sha256(b"some key", &msg);
        let mut mac = HmacSha256::new(b"some key");
        for chunk in msg.chunks(7) {
            mac.update(chunk);
        }
        assert_eq!(mac.finalize(), whole);
    }

    #[test]
    fn different_keys_differ() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }
}
