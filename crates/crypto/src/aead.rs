//! ChaCha20-Poly1305 AEAD (RFC 7539 §2.8).
//!
//! This is the authenticated-encryption workhorse of the whole stack: the
//! file-system shield, the network shield record layer, EPC page sealing
//! and the CAS secret database all encrypt through this module.
//!
//! Three API tiers share one wire format (`ciphertext || tag`):
//!
//! * **in-place detached** ([`seal_in_place_detached`] /
//!   [`open_in_place_detached`], also on [`AeadCtx`]) — encrypts the
//!   caller's buffer and returns/accepts the tag separately; performs
//!   **zero heap allocations**, and derives the Poly1305 key and payload
//!   keystream from a single ChaCha20 key schedule (block 0 → one-time
//!   key, blocks 1.. → payload),
//! * **allocating wrappers** ([`seal`] / [`open`]) — the original
//!   convenience API, now thin shims over the in-place core with output
//!   capacity reserved up front, and
//! * **reference** ([`seal_reference`] / [`open_reference`]) — the
//!   original correctness-first implementation (scalar one-block
//!   ChaCha20, allocating pad path), retained for differential tests and
//!   the `BENCH_crypto.json` A/B gate.
//!
//! # Examples
//!
//! ```
//! use securetf_crypto::aead::{seal, open, Key, Nonce};
//!
//! # fn main() -> Result<(), securetf_crypto::CryptoError> {
//! let key = Key::from_bytes([3u8; 32]);
//! let nonce = Nonce::from_bytes([5u8; 12]);
//! let ct = seal(&key, &nonce, b"plaintext", b"aad");
//! assert_eq!(open(&key, &nonce, &ct, b"aad")?, b"plaintext");
//! assert!(open(&key, &nonce, &ct, b"other aad").is_err());
//! # Ok(())
//! # }
//! ```
//!
//! Zero-alloc steady state with a reusable context and buffer:
//!
//! ```
//! use securetf_crypto::aead::{AeadCtx, Key, Nonce, TAG_LEN};
//!
//! # fn main() -> Result<(), securetf_crypto::CryptoError> {
//! let ctx = AeadCtx::new(Key::from_bytes([3u8; 32]));
//! let nonce = Nonce::from_counter(7, 1);
//! let mut buf = *b"in-place payload";
//! let tag = ctx.seal_in_place_detached(&nonce, &mut buf, b"aad");
//! ctx.open_in_place_detached(&nonce, &mut buf, &tag, b"aad")?;
//! assert_eq!(&buf, b"in-place payload");
//! # Ok(())
//! # }
//! ```

use crate::chacha20::ChaCha20;
use crate::ct;
use crate::poly1305::{Poly1305, ReferencePoly1305};
use crate::CryptoError;

/// Length of the authentication tag appended to each ciphertext.
pub const TAG_LEN: usize = 16;
/// Length of an AEAD key.
pub const KEY_LEN: usize = 32;
/// Length of an AEAD nonce.
pub const NONCE_LEN: usize = 12;

/// A 256-bit AEAD key. Zeroed on drop.
#[derive(Clone, PartialEq, Eq)]
pub struct Key([u8; KEY_LEN]);

impl Drop for Key {
    fn drop(&mut self) {
        // Best-effort scrubbing of key material from memory.
        for b in self.0.iter_mut() {
            // Volatile write prevents the store from being elided.
            unsafe { std::ptr::write_volatile(b, 0) };
        }
    }
}

impl std::fmt::Debug for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Key(..)")
    }
}

impl Key {
    /// Wraps raw key bytes.
    pub fn from_bytes(bytes: [u8; KEY_LEN]) -> Self {
        Key(bytes)
    }

    /// Derives a key from a byte slice by hashing (for non-uniform input).
    pub fn derive_from(material: &[u8]) -> Self {
        Key(crate::sha256::digest(material))
    }

    /// Returns the raw bytes.
    pub fn as_bytes(&self) -> &[u8; KEY_LEN] {
        &self.0
    }
}

/// A 96-bit AEAD nonce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Nonce([u8; NONCE_LEN]);

impl Nonce {
    /// Wraps raw nonce bytes.
    pub fn from_bytes(bytes: [u8; NONCE_LEN]) -> Self {
        Nonce(bytes)
    }

    /// Builds a nonce from a 64-bit sequence number and a 32-bit stream id.
    ///
    /// The network shield derives record nonces this way so that a single
    /// key never reuses a nonce across directions.
    pub fn from_counter(stream_id: u32, seq: u64) -> Self {
        let mut n = [0u8; NONCE_LEN];
        n[..4].copy_from_slice(&stream_id.to_le_bytes());
        n[4..].copy_from_slice(&seq.to_le_bytes());
        Nonce(n)
    }

    /// Returns the raw bytes.
    pub fn as_bytes(&self) -> &[u8; NONCE_LEN] {
        &self.0
    }
}

/// Starts the single ChaCha20 key schedule shared by the Poly1305 key
/// and the payload keystream: block 0 yields the one-time key, and the
/// returned cipher sits at counter 1 ready for the payload.
#[inline]
fn start_cipher(key: &Key, nonce: &Nonce) -> (ChaCha20, [u8; 32]) {
    let mut cipher = ChaCha20::new(&key.0, &nonce.0, 0);
    let block0 = cipher.next_block();
    let mut pk = [0u8; 32];
    pk.copy_from_slice(&block0[..32]);
    (cipher, pk)
}

/// RFC 7539 §2.8 tag: pad16(aad) || pad16(ciphertext) || LE64 lengths,
/// with the pads taken from a stack buffer (no per-record allocations).
fn compute_tag(pk: &[u8; 32], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
    const ZERO: [u8; 16] = [0u8; 16];
    let mut mac = Poly1305::new(pk);
    mac.update(aad);
    mac.update(&ZERO[..(16 - aad.len() % 16) % 16]);
    mac.update(ciphertext);
    mac.update(&ZERO[..(16 - ciphertext.len() % 16) % 16]);
    let mut lens = [0u8; 16];
    lens[..8].copy_from_slice(&(aad.len() as u64).to_le_bytes());
    lens[8..].copy_from_slice(&(ciphertext.len() as u64).to_le_bytes());
    mac.update(&lens);
    mac.finalize()
}

/// Encrypts `buf` in place and returns the detached tag.
///
/// This is the zero-allocation core every other seal entry point wraps:
/// no heap traffic, one ChaCha20 key schedule, multi-block keystream.
pub fn seal_in_place_detached(
    key: &Key,
    nonce: &Nonce,
    buf: &mut [u8],
    aad: &[u8],
) -> [u8; TAG_LEN] {
    let (mut cipher, pk) = start_cipher(key, nonce);
    cipher.apply_keystream(buf);
    compute_tag(&pk, aad, buf)
}

/// Verifies `tag` over the ciphertext in `buf`, then decrypts in place.
///
/// Authentication runs **before** decryption: on error the buffer still
/// holds the untouched ciphertext, never unauthenticated plaintext.
///
/// # Errors
///
/// * [`CryptoError::TruncatedInput`] if `tag` is not exactly [`TAG_LEN`].
/// * [`CryptoError::TagMismatch`] if authentication fails.
pub fn open_in_place_detached(
    key: &Key,
    nonce: &Nonce,
    buf: &mut [u8],
    tag: &[u8],
    aad: &[u8],
) -> Result<(), CryptoError> {
    if tag.len() != TAG_LEN {
        return Err(CryptoError::TruncatedInput);
    }
    let (mut cipher, pk) = start_cipher(key, nonce);
    let expect = compute_tag(&pk, aad, buf);
    if !ct::eq(&expect, tag) {
        return Err(CryptoError::TagMismatch);
    }
    cipher.apply_keystream(buf);
    Ok(())
}

/// A reusable AEAD context owning a key.
///
/// Holding the key in a context lets steady-state callers (the shields'
/// record loops) seal and open through the in-place entry points with
/// zero heap allocations; the append variants reuse the capacity of a
/// caller-provided scratch `Vec` across records.
#[derive(Clone)]
pub struct AeadCtx {
    key: Key,
}

impl std::fmt::Debug for AeadCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AeadCtx(..)")
    }
}

impl AeadCtx {
    /// Wraps a key in a reusable context.
    pub fn new(key: Key) -> Self {
        AeadCtx { key }
    }

    /// Returns the underlying key.
    pub fn key(&self) -> &Key {
        &self.key
    }

    /// Encrypts `buf` in place and returns the detached tag.
    pub fn seal_in_place_detached(
        &self,
        nonce: &Nonce,
        buf: &mut [u8],
        aad: &[u8],
    ) -> [u8; TAG_LEN] {
        seal_in_place_detached(&self.key, nonce, buf, aad)
    }

    /// Verifies `tag` and decrypts `buf` in place.
    ///
    /// # Errors
    ///
    /// Same contract as [`open_in_place_detached`].
    pub fn open_in_place_detached(
        &self,
        nonce: &Nonce,
        buf: &mut [u8],
        tag: &[u8],
        aad: &[u8],
    ) -> Result<(), CryptoError> {
        open_in_place_detached(&self.key, nonce, buf, tag, aad)
    }

    /// Seals `plaintext`, appending `ciphertext || tag` to `out`.
    ///
    /// Reuses `out`'s existing capacity, so a scratch buffer cleared and
    /// passed back in each record allocates only until it reaches the
    /// high-water mark.
    pub fn seal_append(&self, nonce: &Nonce, plaintext: &[u8], aad: &[u8], out: &mut Vec<u8>) {
        out.reserve(plaintext.len() + TAG_LEN);
        let start = out.len();
        out.extend_from_slice(plaintext);
        let tag = seal_in_place_detached(&self.key, nonce, &mut out[start..], aad);
        out.extend_from_slice(&tag);
    }

    /// Opens `sealed` (`ciphertext || tag`), appending the plaintext to
    /// `out`. On error `out` is left exactly as passed in.
    ///
    /// # Errors
    ///
    /// Same contract as [`open`].
    pub fn open_append(
        &self,
        nonce: &Nonce,
        sealed: &[u8],
        aad: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), CryptoError> {
        if sealed.len() < TAG_LEN {
            return Err(CryptoError::TruncatedInput);
        }
        let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let start = out.len();
        out.extend_from_slice(ciphertext);
        match open_in_place_detached(&self.key, nonce, &mut out[start..], tag, aad) {
            Ok(()) => Ok(()),
            Err(e) => {
                out.truncate(start);
                Err(e)
            }
        }
    }
}

/// Encrypts and authenticates `plaintext` with associated data `aad`.
///
/// Returns `ciphertext || tag`. Thin wrapper over
/// [`seal_in_place_detached`] with the full output capacity (payload +
/// tag) reserved up front, so the tag append never reallocates.
pub fn seal(key: &Key, nonce: &Nonce, plaintext: &[u8], aad: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
    out.extend_from_slice(plaintext);
    let tag = seal_in_place_detached(key, nonce, &mut out, aad);
    out.extend_from_slice(&tag);
    out
}

/// Verifies and decrypts `sealed` (as produced by [`seal`]).
///
/// # Errors
///
/// * [`CryptoError::TruncatedInput`] if `sealed` is shorter than a tag.
/// * [`CryptoError::TagMismatch`] if authentication fails (tampered
///   ciphertext, wrong key/nonce or wrong associated data).
pub fn open(key: &Key, nonce: &Nonce, sealed: &[u8], aad: &[u8]) -> Result<Vec<u8>, CryptoError> {
    if sealed.len() < TAG_LEN {
        return Err(CryptoError::TruncatedInput);
    }
    let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
    let mut out = ciphertext.to_vec();
    open_in_place_detached(key, nonce, &mut out, tag, aad)?;
    Ok(out)
}

/// The original correctness-first seal: scalar one-block ChaCha20 via
/// [`ChaCha20::apply_keystream_reference`] and the allocating pad path.
/// Retained as the A/B baseline — output is bit-identical to [`seal`].
pub fn seal_reference(key: &Key, nonce: &Nonce, plaintext: &[u8], aad: &[u8]) -> Vec<u8> {
    let mut out = plaintext.to_vec();
    ChaCha20::new(&key.0, &nonce.0, 1).apply_keystream_reference(&mut out);
    let mut c = ChaCha20::new(&key.0, &nonce.0, 0);
    let block0 = c.next_block();
    let mut pk = [0u8; 32];
    pk.copy_from_slice(&block0[..32]);
    let tag = compute_tag_reference(&pk, aad, &out);
    out.extend_from_slice(&tag);
    out
}

/// The original allocating open, counterpart of [`seal_reference`].
///
/// # Errors
///
/// Same contract as [`open`].
pub fn open_reference(
    key: &Key,
    nonce: &Nonce,
    sealed: &[u8],
    aad: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    if sealed.len() < TAG_LEN {
        return Err(CryptoError::TruncatedInput);
    }
    let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
    let mut c = ChaCha20::new(&key.0, &nonce.0, 0);
    let block0 = c.next_block();
    let mut pk = [0u8; 32];
    pk.copy_from_slice(&block0[..32]);
    let expect = compute_tag_reference(&pk, aad, ciphertext);
    if !ct::eq(&expect, tag) {
        return Err(CryptoError::TagMismatch);
    }
    let mut out = ciphertext.to_vec();
    ChaCha20::new(&key.0, &nonce.0, 1).apply_keystream_reference(&mut out);
    Ok(out)
}

/// The original tag computation with heap-allocated pads, kept only so
/// the reference path exercises the pre-optimization code shape.
fn compute_tag_reference(pk: &[u8; 32], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
    let mut mac = ReferencePoly1305::new(pk);
    mac.update(aad);
    mac.update(&vec![0u8; (16 - aad.len() % 16) % 16]);
    mac.update(ciphertext);
    mac.update(&vec![0u8; (16 - ciphertext.len() % 16) % 16]);
    mac.update(&(aad.len() as u64).to_le_bytes());
    mac.update(&(ciphertext.len() as u64).to_le_bytes());
    mac.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 7539 §2.8.2 AEAD test vector.
    #[test]
    fn rfc7539_aead_vector() {
        let key = Key::from_bytes(
            unhex("808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
                .try_into()
                .unwrap(),
        );
        let nonce = Nonce::from_bytes(unhex("070000004041424344454647").try_into().unwrap());
        let aad = unhex("50515253c0c1c2c3c4c5c6c7");
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        let sealed = seal(&key, &nonce, plaintext, &aad);
        let (ct_part, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        assert_eq!(
            hex(&ct_part[..16]),
            "d31a8d34648e60db7b86afbc53ef7ec2"
        );
        assert_eq!(hex(tag), "1ae10b594f09e26a7e902ecbd0600691");
        assert_eq!(open(&key, &nonce, &sealed, &aad).unwrap(), plaintext);
    }

    // RFC 8439 §2.6.2: Poly1305 one-time key generation from ChaCha20
    // block 0 (the key schedule `start_cipher` relies on).
    #[test]
    fn rfc8439_poly1305_key_gen_vector() {
        let key = Key::from_bytes(
            unhex("808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
                .try_into()
                .unwrap(),
        );
        let nonce = Nonce::from_bytes(unhex("000000000001020304050607").try_into().unwrap());
        let (_, pk) = start_cipher(&key, &nonce);
        assert_eq!(
            hex(&pk),
            "8ad5a08b905f81cc815040274ab29471a833b637e3fd0da508dbb8e2fdd1a646"
        );
    }

    // RFC 8439 appendix A.5: the full AEAD *decryption* vector.
    #[test]
    fn rfc8439_a5_decryption_vector() {
        let key = Key::from_bytes(
            unhex("1c9240a5eb55d38af333888604f6b5f0473917c1402b80099dca5cbc207075c0")
                .try_into()
                .unwrap(),
        );
        let nonce = Nonce::from_bytes(unhex("000000000102030405060708").try_into().unwrap());
        let aad = unhex("f33388860000000000004e91");
        let mut sealed = unhex(
            "64a0861575861af460f062c79be643bd\
             5e805cfd345cf389f108670ac76c8cb2\
             4c6cfc18755d43eea09ee94e382d26b0\
             bdb7b73c321b0100d4f03b7f355894cf\
             332f830e710b97ce98c8a84abd0b9481\
             14ad176e008d33bd60f982b1ff37c855\
             9797a06ef4f0ef61c186324e2b350638\
             3606907b6a7c02b0f9f6157b53c867e4\
             b9166c767b804d46a59b5216cde7a4e9\
             9040c5a40433225ee282a1b0a06c523e\
             af4534d7f83fa1155b0047718cbc546a\
             0d072b04b3564eea1b422273f548271a\
             0bb2316053fa76991955ebd63159434e\
             cebb4e466dae5a1073a6727627097a10\
             49e617d91d361094fa68f0ff77987130\
             305beaba2eda04df997b714d6c6f2c29\
             a6ad5cb4022b02709b",
        );
        let tag = unhex("eead9d67890cbb22392336fea1851f38");
        sealed.extend_from_slice(&tag);
        let plaintext = open(&key, &nonce, &sealed, &aad).unwrap();
        let expect = "Internet-Drafts are draft documents valid for a maximum of six \
months and may be updated, replaced, or obsoleted by other documents at any time. It is \
inappropriate to use Internet-Drafts as reference material or to cite them other than as \
/\u{201c}work in progress./\u{201d}";
        assert_eq!(plaintext, expect.as_bytes());
        // Same record through the reference and in-place paths.
        assert_eq!(open_reference(&key, &nonce, &sealed, &aad).unwrap(), plaintext);
        let mut buf = sealed[..sealed.len() - TAG_LEN].to_vec();
        open_in_place_detached(&key, &nonce, &mut buf, &tag, &aad).unwrap();
        assert_eq!(buf, plaintext);
    }

    #[test]
    fn in_place_detached_matches_allocating_seal() {
        let key = Key::from_bytes([9; 32]);
        let nonce = Nonce::from_counter(3, 42);
        for len in [0usize, 1, 15, 16, 17, 63, 64, 65, 255, 256, 300, 1024] {
            let plaintext: Vec<u8> = (0..len).map(|i| (i * 13 % 256) as u8).collect();
            let aad = &plaintext[..len.min(7)];
            let sealed = seal(&key, &nonce, &plaintext, aad);
            let reference = seal_reference(&key, &nonce, &plaintext, aad);
            assert_eq!(sealed, reference, "len {len}");
            let mut buf = plaintext.clone();
            let tag = seal_in_place_detached(&key, &nonce, &mut buf, aad);
            assert_eq!(&sealed[..len], &buf[..], "ciphertext len {len}");
            assert_eq!(&sealed[len..], &tag[..], "tag len {len}");
        }
    }

    #[test]
    fn ctx_roundtrip_and_append_reuse() {
        let ctx = AeadCtx::new(Key::from_bytes([4; 32]));
        let mut scratch = Vec::with_capacity(256);
        for seq in 0..4u64 {
            let nonce = Nonce::from_counter(1, seq);
            let msg = format!("record {seq}");
            scratch.clear();
            ctx.seal_append(&nonce, msg.as_bytes(), b"hdr", &mut scratch);
            assert_eq!(
                scratch,
                seal(ctx.key(), &nonce, msg.as_bytes(), b"hdr"),
                "seq {seq}"
            );
            let mut out = Vec::new();
            ctx.open_append(&nonce, &scratch, b"hdr", &mut out).unwrap();
            assert_eq!(out, msg.as_bytes());
        }
    }

    #[test]
    fn open_in_place_failure_leaves_ciphertext() {
        let key = Key::from_bytes([6; 32]);
        let nonce = Nonce::from_bytes([7; 12]);
        let mut buf = *b"some secret data";
        let mut tag = seal_in_place_detached(&key, &nonce, &mut buf, b"");
        let ciphertext = buf;
        tag[0] ^= 1;
        assert_eq!(
            open_in_place_detached(&key, &nonce, &mut buf, &tag, b""),
            Err(CryptoError::TagMismatch)
        );
        // Buffer untouched: no unauthenticated plaintext escapes.
        assert_eq!(buf, ciphertext);
    }

    #[test]
    fn open_append_failure_restores_out() {
        let ctx = AeadCtx::new(Key::from_bytes([6; 32]));
        let nonce = Nonce::from_bytes([7; 12]);
        let mut sealed = seal(ctx.key(), &nonce, b"payload", b"");
        sealed[0] ^= 1;
        let mut out = b"prefix".to_vec();
        assert!(ctx.open_append(&nonce, &sealed, b"", &mut out).is_err());
        assert_eq!(out, b"prefix");
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let key = Key::from_bytes([1; 32]);
        let nonce = Nonce::from_bytes([2; 12]);
        let mut sealed = seal(&key, &nonce, b"hello world", b"");
        sealed[3] ^= 0x80;
        assert_eq!(open(&key, &nonce, &sealed, b""), Err(CryptoError::TagMismatch));
    }

    #[test]
    fn tampered_tag_rejected() {
        let key = Key::from_bytes([1; 32]);
        let nonce = Nonce::from_bytes([2; 12]);
        let mut sealed = seal(&key, &nonce, b"hello world", b"");
        let last = sealed.len() - 1;
        sealed[last] ^= 1;
        assert_eq!(open(&key, &nonce, &sealed, b""), Err(CryptoError::TagMismatch));
    }

    #[test]
    fn wrong_aad_rejected() {
        let key = Key::from_bytes([1; 32]);
        let nonce = Nonce::from_bytes([2; 12]);
        let sealed = seal(&key, &nonce, b"payload", b"v1");
        assert!(open(&key, &nonce, &sealed, b"v2").is_err());
    }

    #[test]
    fn wrong_nonce_rejected() {
        let key = Key::from_bytes([1; 32]);
        let sealed = seal(&key, &Nonce::from_bytes([2; 12]), b"payload", b"");
        assert!(open(&key, &Nonce::from_bytes([3; 12]), &sealed, b"").is_err());
    }

    #[test]
    fn truncated_input_rejected() {
        let key = Key::from_bytes([1; 32]);
        let nonce = Nonce::from_bytes([2; 12]);
        assert_eq!(
            open(&key, &nonce, &[0u8; 5], b""),
            Err(CryptoError::TruncatedInput)
        );
        let mut buf = [0u8; 4];
        assert_eq!(
            open_in_place_detached(&key, &nonce, &mut buf, &[0u8; 5], b""),
            Err(CryptoError::TruncatedInput)
        );
    }

    #[test]
    fn empty_plaintext_roundtrip() {
        let key = Key::from_bytes([7; 32]);
        let nonce = Nonce::from_bytes([8; 12]);
        let sealed = seal(&key, &nonce, b"", b"just aad");
        assert_eq!(sealed.len(), TAG_LEN);
        assert_eq!(open(&key, &nonce, &sealed, b"just aad").unwrap(), b"");
    }

    #[test]
    fn counter_nonces_are_distinct() {
        let a = Nonce::from_counter(1, 1);
        let b = Nonce::from_counter(1, 2);
        let c = Nonce::from_counter(2, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn key_debug_does_not_leak() {
        let key = Key::from_bytes([0xcd; 32]);
        assert!(!format!("{key:?}").contains("cd"));
    }
}
