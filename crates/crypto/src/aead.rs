//! ChaCha20-Poly1305 AEAD (RFC 7539 §2.8).
//!
//! This is the authenticated-encryption workhorse of the whole stack: the
//! file-system shield, the network shield record layer, EPC page sealing
//! and the CAS secret database all encrypt through this module.
//!
//! # Examples
//!
//! ```
//! use securetf_crypto::aead::{seal, open, Key, Nonce};
//!
//! # fn main() -> Result<(), securetf_crypto::CryptoError> {
//! let key = Key::from_bytes([3u8; 32]);
//! let nonce = Nonce::from_bytes([5u8; 12]);
//! let ct = seal(&key, &nonce, b"plaintext", b"aad");
//! assert_eq!(open(&key, &nonce, &ct, b"aad")?, b"plaintext");
//! assert!(open(&key, &nonce, &ct, b"other aad").is_err());
//! # Ok(())
//! # }
//! ```

use crate::chacha20::ChaCha20;
use crate::ct;
use crate::poly1305::Poly1305;
use crate::CryptoError;

/// Length of the authentication tag appended to each ciphertext.
pub const TAG_LEN: usize = 16;
/// Length of an AEAD key.
pub const KEY_LEN: usize = 32;
/// Length of an AEAD nonce.
pub const NONCE_LEN: usize = 12;

/// A 256-bit AEAD key. Zeroed on drop.
#[derive(Clone, PartialEq, Eq)]
pub struct Key([u8; KEY_LEN]);

impl Drop for Key {
    fn drop(&mut self) {
        // Best-effort scrubbing of key material from memory.
        for b in self.0.iter_mut() {
            // Volatile write prevents the store from being elided.
            unsafe { std::ptr::write_volatile(b, 0) };
        }
    }
}

impl std::fmt::Debug for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Key(..)")
    }
}

impl Key {
    /// Wraps raw key bytes.
    pub fn from_bytes(bytes: [u8; KEY_LEN]) -> Self {
        Key(bytes)
    }

    /// Derives a key from a byte slice by hashing (for non-uniform input).
    pub fn derive_from(material: &[u8]) -> Self {
        Key(crate::sha256::digest(material))
    }

    /// Returns the raw bytes.
    pub fn as_bytes(&self) -> &[u8; KEY_LEN] {
        &self.0
    }
}

/// A 96-bit AEAD nonce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Nonce([u8; NONCE_LEN]);

impl Nonce {
    /// Wraps raw nonce bytes.
    pub fn from_bytes(bytes: [u8; NONCE_LEN]) -> Self {
        Nonce(bytes)
    }

    /// Builds a nonce from a 64-bit sequence number and a 32-bit stream id.
    ///
    /// The network shield derives record nonces this way so that a single
    /// key never reuses a nonce across directions.
    pub fn from_counter(stream_id: u32, seq: u64) -> Self {
        let mut n = [0u8; NONCE_LEN];
        n[..4].copy_from_slice(&stream_id.to_le_bytes());
        n[4..].copy_from_slice(&seq.to_le_bytes());
        Nonce(n)
    }

    /// Returns the raw bytes.
    pub fn as_bytes(&self) -> &[u8; NONCE_LEN] {
        &self.0
    }
}

fn poly_key(key: &Key, nonce: &Nonce) -> [u8; 32] {
    let mut c = ChaCha20::new(&key.0, &nonce.0, 0);
    let block = c.next_block();
    let mut pk = [0u8; 32];
    pk.copy_from_slice(&block[..32]);
    pk
}

fn compute_tag(pk: &[u8; 32], aad: &[u8], ciphertext: &[u8]) -> [u8; 16] {
    let mut mac = Poly1305::new(pk);
    mac.update(aad);
    mac.update(&vec![0u8; (16 - aad.len() % 16) % 16]);
    mac.update(ciphertext);
    mac.update(&vec![0u8; (16 - ciphertext.len() % 16) % 16]);
    mac.update(&(aad.len() as u64).to_le_bytes());
    mac.update(&(ciphertext.len() as u64).to_le_bytes());
    mac.finalize()
}

/// Encrypts and authenticates `plaintext` with associated data `aad`.
///
/// Returns `ciphertext || tag`.
pub fn seal(key: &Key, nonce: &Nonce, plaintext: &[u8], aad: &[u8]) -> Vec<u8> {
    let mut out = plaintext.to_vec();
    ChaCha20::new(&key.0, &nonce.0, 1).apply_keystream(&mut out);
    let tag = compute_tag(&poly_key(key, nonce), aad, &out);
    out.extend_from_slice(&tag);
    out
}

/// Verifies and decrypts `sealed` (as produced by [`seal`]).
///
/// # Errors
///
/// * [`CryptoError::TruncatedInput`] if `sealed` is shorter than a tag.
/// * [`CryptoError::TagMismatch`] if authentication fails (tampered
///   ciphertext, wrong key/nonce or wrong associated data).
pub fn open(key: &Key, nonce: &Nonce, sealed: &[u8], aad: &[u8]) -> Result<Vec<u8>, CryptoError> {
    if sealed.len() < TAG_LEN {
        return Err(CryptoError::TruncatedInput);
    }
    let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
    let expect = compute_tag(&poly_key(key, nonce), aad, ciphertext);
    if !ct::eq(&expect, tag) {
        return Err(CryptoError::TagMismatch);
    }
    let mut out = ciphertext.to_vec();
    ChaCha20::new(&key.0, &nonce.0, 1).apply_keystream(&mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 7539 §2.8.2 AEAD test vector.
    #[test]
    fn rfc7539_aead_vector() {
        let key = Key::from_bytes(
            unhex("808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
                .try_into()
                .unwrap(),
        );
        let nonce = Nonce::from_bytes(unhex("070000004041424344454647").try_into().unwrap());
        let aad = unhex("50515253c0c1c2c3c4c5c6c7");
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        let sealed = seal(&key, &nonce, plaintext, &aad);
        let (ct_part, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        assert_eq!(
            hex(&ct_part[..16]),
            "d31a8d34648e60db7b86afbc53ef7ec2"
        );
        assert_eq!(hex(tag), "1ae10b594f09e26a7e902ecbd0600691");
        assert_eq!(open(&key, &nonce, &sealed, &aad).unwrap(), plaintext);
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let key = Key::from_bytes([1; 32]);
        let nonce = Nonce::from_bytes([2; 12]);
        let mut sealed = seal(&key, &nonce, b"hello world", b"");
        sealed[3] ^= 0x80;
        assert_eq!(open(&key, &nonce, &sealed, b""), Err(CryptoError::TagMismatch));
    }

    #[test]
    fn tampered_tag_rejected() {
        let key = Key::from_bytes([1; 32]);
        let nonce = Nonce::from_bytes([2; 12]);
        let mut sealed = seal(&key, &nonce, b"hello world", b"");
        let last = sealed.len() - 1;
        sealed[last] ^= 1;
        assert_eq!(open(&key, &nonce, &sealed, b""), Err(CryptoError::TagMismatch));
    }

    #[test]
    fn wrong_aad_rejected() {
        let key = Key::from_bytes([1; 32]);
        let nonce = Nonce::from_bytes([2; 12]);
        let sealed = seal(&key, &nonce, b"payload", b"v1");
        assert!(open(&key, &nonce, &sealed, b"v2").is_err());
    }

    #[test]
    fn wrong_nonce_rejected() {
        let key = Key::from_bytes([1; 32]);
        let sealed = seal(&key, &Nonce::from_bytes([2; 12]), b"payload", b"");
        assert!(open(&key, &Nonce::from_bytes([3; 12]), &sealed, b"").is_err());
    }

    #[test]
    fn truncated_input_rejected() {
        let key = Key::from_bytes([1; 32]);
        let nonce = Nonce::from_bytes([2; 12]);
        assert_eq!(
            open(&key, &nonce, &[0u8; 5], b""),
            Err(CryptoError::TruncatedInput)
        );
    }

    #[test]
    fn empty_plaintext_roundtrip() {
        let key = Key::from_bytes([7; 32]);
        let nonce = Nonce::from_bytes([8; 12]);
        let sealed = seal(&key, &nonce, b"", b"just aad");
        assert_eq!(sealed.len(), TAG_LEN);
        assert_eq!(open(&key, &nonce, &sealed, b"just aad").unwrap(), b"");
    }

    #[test]
    fn counter_nonces_are_distinct() {
        let a = Nonce::from_counter(1, 1);
        let b = Nonce::from_counter(1, 2);
        let c = Nonce::from_counter(2, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn key_debug_does_not_leak() {
        let key = Key::from_bytes([0xcd; 32]);
        assert!(!format!("{key:?}").contains("cd"));
    }
}
