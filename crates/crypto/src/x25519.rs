//! X25519 Diffie-Hellman over Curve25519 (RFC 7748).
//!
//! Field arithmetic uses five 51-bit limbs over 2^255 - 19 with `u128`
//! intermediates; scalar multiplication is the constant-time Montgomery
//! ladder from the RFC.
//!
//! # Examples
//!
//! ```
//! use securetf_crypto::x25519::{PublicKey, StaticSecret};
//!
//! let alice = StaticSecret::from_bytes([0x11; 32]);
//! let bob = StaticSecret::from_bytes([0x22; 32]);
//! let shared_a = alice.diffie_hellman(&PublicKey::from(&bob));
//! let shared_b = bob.diffie_hellman(&PublicKey::from(&alice));
//! assert_eq!(shared_a, shared_b);
//! ```

/// An element of GF(2^255 - 19) in five 51-bit limbs.
#[derive(Debug, Clone, Copy)]
struct Fe([u64; 5]);

const MASK51: u64 = (1 << 51) - 1;

impl Fe {
    const ZERO: Fe = Fe([0; 5]);
    const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let load = |b: &[u8]| -> u64 {
            let mut v = [0u8; 8];
            v.copy_from_slice(b);
            u64::from_le_bytes(v)
        };
        // RFC 7748: the top bit of the u-coordinate is masked.
        let l0 = load(&bytes[0..8]) & MASK51;
        let l1 = (load(&bytes[6..14]) >> 3) & MASK51;
        let l2 = (load(&bytes[12..20]) >> 6) & MASK51;
        let l3 = (load(&bytes[19..27]) >> 1) & MASK51;
        let l4 = (load(&bytes[24..32]) >> 12) & MASK51;
        Fe([l0, l1, l2, l3, l4])
    }

    fn to_bytes(self) -> [u8; 32] {
        // Fully reduce mod 2^255-19.
        let mut t = self.reduce_weak().0;
        // Conditionally subtract p: compute t - p and keep if non-negative.
        let mut q = (t[0].wrapping_add(19)) >> 51;
        q = (t[1].wrapping_add(q)) >> 51;
        q = (t[2].wrapping_add(q)) >> 51;
        q = (t[3].wrapping_add(q)) >> 51;
        q = (t[4].wrapping_add(q)) >> 51;
        t[0] = t[0].wrapping_add(19u64.wrapping_mul(q));
        let mut carry = t[0] >> 51;
        t[0] &= MASK51;
        t[1] = t[1].wrapping_add(carry);
        carry = t[1] >> 51;
        t[1] &= MASK51;
        t[2] = t[2].wrapping_add(carry);
        carry = t[2] >> 51;
        t[2] &= MASK51;
        t[3] = t[3].wrapping_add(carry);
        carry = t[3] >> 51;
        t[3] &= MASK51;
        t[4] = t[4].wrapping_add(carry);
        t[4] &= MASK51;

        let mut out = [0u8; 32];
        let words = [
            t[0] | (t[1] << 51),
            (t[1] >> 13) | (t[2] << 38),
            (t[2] >> 26) | (t[3] << 25),
            (t[3] >> 39) | (t[4] << 12),
        ];
        for (i, w) in words.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    fn reduce_weak(self) -> Fe {
        let mut t = self.0;
        let mut c = t[0] >> 51;
        t[0] &= MASK51;
        t[1] += c;
        c = t[1] >> 51;
        t[1] &= MASK51;
        t[2] += c;
        c = t[2] >> 51;
        t[2] &= MASK51;
        t[3] += c;
        c = t[3] >> 51;
        t[3] &= MASK51;
        t[4] += c;
        c = t[4] >> 51;
        t[4] &= MASK51;
        t[0] += c * 19;
        Fe(t)
    }

    fn add(self, rhs: Fe) -> Fe {
        Fe([
            self.0[0] + rhs.0[0],
            self.0[1] + rhs.0[1],
            self.0[2] + rhs.0[2],
            self.0[3] + rhs.0[3],
            self.0[4] + rhs.0[4],
        ])
        .reduce_weak()
    }

    fn sub(self, rhs: Fe) -> Fe {
        // Add 2*p before subtracting to keep limbs non-negative.
        const TWO_P: [u64; 5] = [
            0xfffffffffffda * 2,
            0xffffffffffffe * 2,
            0xffffffffffffe * 2,
            0xffffffffffffe * 2,
            0xffffffffffffe * 2,
        ];
        Fe([
            self.0[0] + TWO_P[0] - rhs.0[0],
            self.0[1] + TWO_P[1] - rhs.0[1],
            self.0[2] + TWO_P[2] - rhs.0[2],
            self.0[3] + TWO_P[3] - rhs.0[3],
            self.0[4] + TWO_P[4] - rhs.0[4],
        ])
        .reduce_weak()
    }

    fn mul(self, rhs: Fe) -> Fe {
        let a = self.reduce_weak().0;
        let b = rhs.reduce_weak().0;
        let m = |x: u64, y: u64| x as u128 * y as u128;
        let b19: [u64; 5] = [b[0], b[1] * 19, b[2] * 19, b[3] * 19, b[4] * 19];

        let c0 = m(a[0], b[0]) + m(a[1], b19[4]) + m(a[2], b19[3]) + m(a[3], b19[2]) + m(a[4], b19[1]);
        let c1 = m(a[0], b[1]) + m(a[1], b[0]) + m(a[2], b19[4]) + m(a[3], b19[3]) + m(a[4], b19[2]);
        let c2 = m(a[0], b[2]) + m(a[1], b[1]) + m(a[2], b[0]) + m(a[3], b19[4]) + m(a[4], b19[3]);
        let c3 = m(a[0], b[3]) + m(a[1], b[2]) + m(a[2], b[1]) + m(a[3], b[0]) + m(a[4], b19[4]);
        let c4 = m(a[0], b[4]) + m(a[1], b[3]) + m(a[2], b[2]) + m(a[3], b[1]) + m(a[4], b[0]);

        Fe::carry128([c0, c1, c2, c3, c4])
    }

    fn square(self) -> Fe {
        self.mul(self)
    }

    fn carry128(mut c: [u128; 5]) -> Fe {
        let mut t = [0u64; 5];
        let mut carry: u128 = 0;
        for i in 0..5 {
            c[i] += carry;
            t[i] = (c[i] as u64) & MASK51;
            carry = c[i] >> 51;
        }
        t[0] += (carry as u64) * 19;
        Fe(t).reduce_weak()
    }

    fn mul_small(self, k: u64) -> Fe {
        let a = self.reduce_weak().0;
        Fe::carry128([
            a[0] as u128 * k as u128,
            a[1] as u128 * k as u128,
            a[2] as u128 * k as u128,
            a[3] as u128 * k as u128,
            a[4] as u128 * k as u128,
        ])
    }

    /// Computes self^(p-2) = self^-1 via Fermat's little theorem.
    fn invert(self) -> Fe {
        // Addition chain for 2^255 - 21.
        let z2 = self.square();
        let z9 = z2.square().square().mul(self);
        let z11 = z9.mul(z2);
        let z2_5_0 = z11.square().mul(z9);
        let mut t = z2_5_0;
        for _ in 0..5 {
            t = t.square();
        }
        let z2_10_0 = t.mul(z2_5_0);
        t = z2_10_0;
        for _ in 0..10 {
            t = t.square();
        }
        let z2_20_0 = t.mul(z2_10_0);
        t = z2_20_0;
        for _ in 0..20 {
            t = t.square();
        }
        let z2_40_0 = t.mul(z2_20_0);
        t = z2_40_0;
        for _ in 0..10 {
            t = t.square();
        }
        let z2_50_0 = t.mul(z2_10_0);
        t = z2_50_0;
        for _ in 0..50 {
            t = t.square();
        }
        let z2_100_0 = t.mul(z2_50_0);
        t = z2_100_0;
        for _ in 0..100 {
            t = t.square();
        }
        let z2_200_0 = t.mul(z2_100_0);
        t = z2_200_0;
        for _ in 0..50 {
            t = t.square();
        }
        let z2_250_0 = t.mul(z2_50_0);
        t = z2_250_0;
        for _ in 0..5 {
            t = t.square();
        }
        t.mul(z11)
    }

    /// Constant-time conditional swap driven by `swap` ∈ {0, 1}.
    fn cswap(a: &mut Fe, b: &mut Fe, swap: u64) {
        let mask = 0u64.wrapping_sub(swap);
        for i in 0..5 {
            let x = mask & (a.0[i] ^ b.0[i]);
            a.0[i] ^= x;
            b.0[i] ^= x;
        }
    }
}

/// Performs the raw X25519 function: scalar multiplication of the point with
/// u-coordinate `u` by `scalar` (clamped per RFC 7748).
pub fn x25519(scalar: &[u8; 32], u: &[u8; 32]) -> [u8; 32] {
    let mut k = *scalar;
    k[0] &= 248;
    k[31] &= 127;
    k[31] |= 64;

    let x1 = Fe::from_bytes(u);
    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = 0u64;

    for t in (0..255).rev() {
        let k_t = ((k[t / 8] >> (t % 8)) & 1) as u64;
        swap ^= k_t;
        Fe::cswap(&mut x2, &mut x3, swap);
        Fe::cswap(&mut z2, &mut z3, swap);
        swap = k_t;

        let a = x2.add(z2);
        let aa = a.square();
        let b = x2.sub(z2);
        let bb = b.square();
        let e = aa.sub(bb);
        let c = x3.add(z3);
        let d = x3.sub(z3);
        let da = d.mul(a);
        let cb = c.mul(b);
        x3 = da.add(cb).square();
        z3 = x1.mul(da.sub(cb).square());
        x2 = aa.mul(bb);
        z2 = e.mul(aa.add(e.mul_small(121665)));
    }
    Fe::cswap(&mut x2, &mut x3, swap);
    Fe::cswap(&mut z2, &mut z3, swap);

    x2.mul(z2.invert()).to_bytes()
}

/// The X25519 base point (u = 9).
pub const BASEPOINT: [u8; 32] = {
    let mut b = [0u8; 32];
    b[0] = 9;
    b
};

/// A private X25519 scalar. Zeroed on drop.
#[derive(Clone)]
pub struct StaticSecret {
    scalar: [u8; 32],
}

impl Drop for StaticSecret {
    fn drop(&mut self) {
        for b in self.scalar.iter_mut() {
            // Volatile write prevents the store from being elided.
            unsafe { std::ptr::write_volatile(b, 0) };
        }
    }
}

impl std::fmt::Debug for StaticSecret {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "StaticSecret(..)")
    }
}

impl StaticSecret {
    /// Creates a secret from raw bytes (clamping happens at use time).
    pub fn from_bytes(scalar: [u8; 32]) -> Self {
        StaticSecret { scalar }
    }

    /// Generates a secret from an RNG.
    pub fn random<R: rand::RngCore>(rng: &mut R) -> Self {
        let mut scalar = [0u8; 32];
        rng.fill_bytes(&mut scalar);
        StaticSecret { scalar }
    }

    /// Computes the shared secret with a peer's public key.
    pub fn diffie_hellman(&self, peer: &PublicKey) -> [u8; 32] {
        x25519(&self.scalar, &peer.0)
    }
}

/// A public X25519 point (u-coordinate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublicKey(pub [u8; 32]);

impl From<&StaticSecret> for PublicKey {
    fn from(secret: &StaticSecret) -> Self {
        PublicKey(x25519(&secret.scalar, &BASEPOINT))
    }
}

impl PublicKey {
    /// Returns the raw 32-byte encoding.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex32(s: &str) -> [u8; 32] {
        let v: Vec<u8> = (0..64)
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect();
        v.try_into().unwrap()
    }

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 7748 §5.2 test vector 1.
    #[test]
    fn rfc7748_vector1() {
        let scalar =
            unhex32("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let u = unhex32("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        assert_eq!(
            hex(&x25519(&scalar, &u)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        );
    }

    // RFC 7748 §5.2 test vector 2.
    #[test]
    fn rfc7748_vector2() {
        let scalar =
            unhex32("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
        let u = unhex32("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
        assert_eq!(
            hex(&x25519(&scalar, &u)),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957"
        );
    }

    // RFC 7748 §5.2 iterated test, 1 iteration.
    #[test]
    fn rfc7748_iterated_once() {
        let k = unhex32("0900000000000000000000000000000000000000000000000000000000000000");
        let out = x25519(&k, &k);
        assert_eq!(
            hex(&out),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079"
        );
    }

    // RFC 7748 §5.2 iterated test, 1000 iterations.
    #[test]
    fn rfc7748_iterated_thousand() {
        let mut k = unhex32("0900000000000000000000000000000000000000000000000000000000000000");
        let mut u = k;
        for _ in 0..1000 {
            let out = x25519(&k, &u);
            u = k;
            k = out;
        }
        assert_eq!(
            hex(&k),
            "684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51"
        );
    }

    // RFC 7748 §6.1 Diffie-Hellman example.
    #[test]
    fn rfc7748_dh_example() {
        let alice_priv =
            unhex32("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
        let bob_priv =
            unhex32("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
        let alice_pub = x25519(&alice_priv, &BASEPOINT);
        let bob_pub = x25519(&bob_priv, &BASEPOINT);
        assert_eq!(
            hex(&alice_pub),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
        );
        assert_eq!(
            hex(&bob_pub),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
        );
        let shared = x25519(&alice_priv, &bob_pub);
        assert_eq!(
            hex(&shared),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742"
        );
        assert_eq!(shared, x25519(&bob_priv, &alice_pub));
    }

    #[test]
    fn key_exchange_api_agrees() {
        let a = StaticSecret::from_bytes([0x42; 32]);
        let b = StaticSecret::from_bytes([0x24; 32]);
        assert_eq!(
            a.diffie_hellman(&PublicKey::from(&b)),
            b.diffie_hellman(&PublicKey::from(&a))
        );
    }

    #[test]
    fn debug_does_not_leak_secret() {
        let s = StaticSecret::from_bytes([0xab; 32]);
        assert!(!format!("{s:?}").contains("ab"));
    }
}
