//! Cryptographic primitives for the secureTF reproduction.
//!
//! The offline dependency set for this project contains no cryptography
//! crates, so every primitive required by the shielded-execution stack is
//! implemented here from scratch and validated against the RFC / FIPS test
//! vectors in each module's unit tests:
//!
//! * [`sha256`] — SHA-256 (FIPS 180-4)
//! * [`hmac`] — HMAC-SHA256 (RFC 2104, vectors from RFC 4231)
//! * [`hkdf`] — HKDF (RFC 5869)
//! * [`chacha20`] — the ChaCha20 stream cipher (RFC 7539), with a 4-way
//!   interleaved multi-block fast path and word-wise keystream XOR
//! * [`poly1305`] — the Poly1305 one-time authenticator (RFC 7539),
//!   copy-free 16-byte block loop with precomputed reduction multipliers
//! * [`aead`] — ChaCha20-Poly1305 AEAD (RFC 7539), with zero-allocation
//!   in-place detached seal/open on a reusable [`aead::AeadCtx`] plus the
//!   original allocating and reference paths for A/B comparison
//! * [`x25519`] — Diffie-Hellman over Curve25519 (RFC 7748)
//! * [`drbg`] — a deterministic HMAC-DRBG (NIST SP 800-90A style)
//! * [`ct`] — constant-time comparison helpers
//!
//! # Examples
//!
//! Authenticated encryption round trip:
//!
//! ```
//! use securetf_crypto::aead::{self, Key, Nonce};
//!
//! # fn main() -> Result<(), securetf_crypto::CryptoError> {
//! let key = Key::from_bytes([7u8; 32]);
//! let nonce = Nonce::from_bytes([1u8; 12]);
//! let sealed = aead::seal(&key, &nonce, b"model weights", b"header");
//! let opened = aead::open(&key, &nonce, &sealed, b"header")?;
//! assert_eq!(opened, b"model weights");
//! # Ok(())
//! # }
//! ```

pub mod aead;
pub mod chacha20;
pub mod ct;
pub mod drbg;
pub mod hkdf;
pub mod hmac;
pub mod poly1305;
pub mod sha256;
pub mod x25519;

use std::error::Error;
use std::fmt;

/// Errors produced by cryptographic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// An authentication tag failed to verify; the ciphertext (or its
    /// associated data) was tampered with or the wrong key was used.
    TagMismatch,
    /// The input was too short to contain the expected structure.
    TruncatedInput,
    /// A key-exchange produced the all-zero shared secret (low-order point).
    LowOrderPoint,
    /// Requested output length exceeds what the primitive can produce.
    OutputTooLong,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::TagMismatch => write!(f, "authentication tag mismatch"),
            CryptoError::TruncatedInput => write!(f, "input truncated"),
            CryptoError::LowOrderPoint => write!(f, "low-order point in key exchange"),
            CryptoError::OutputTooLong => write!(f, "requested output too long"),
        }
    }
}

impl Error for CryptoError {}
