//! Constant-time comparison helpers.
//!
//! Tag comparisons in the AEAD, the file-system shield and the attestation
//! protocol must not leak where the first differing byte is.
//!
//! # Examples
//!
//! ```
//! assert!(securetf_crypto::ct::eq(b"abc", b"abc"));
//! assert!(!securetf_crypto::ct::eq(b"abc", b"abd"));
//! ```

/// Compares two byte slices in constant time (for equal lengths).
///
/// Returns `false` immediately if the lengths differ — the length of a tag
/// is public information.
#[must_use]
pub fn eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    // Collapse to 0/1 without a data-dependent branch.
    (1u8 & ((diff as u16).wrapping_sub(1) >> 8) as u8) == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices() {
        assert!(eq(b"", b""));
        assert!(eq(&[0u8; 64], &[0u8; 64]));
    }

    #[test]
    fn unequal_lengths() {
        assert!(!eq(b"a", b"ab"));
    }

    #[test]
    fn every_single_bit_flip_detected() {
        let a = [0x5au8; 16];
        for byte in 0..16 {
            for bit in 0..8 {
                let mut b = a;
                b[byte] ^= 1 << bit;
                assert!(!eq(&a, &b));
            }
        }
    }
}
