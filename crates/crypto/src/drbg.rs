//! A deterministic random bit generator in the style of NIST SP 800-90A
//! HMAC-DRBG, built on [`crate::hmac`].
//!
//! The TEE simulator uses this for in-enclave randomness so that whole
//! simulated deployments are reproducible from a seed, which in turn makes
//! the benchmark harness deterministic.
//!
//! # Examples
//!
//! ```
//! use securetf_crypto::drbg::HmacDrbg;
//!
//! let mut a = HmacDrbg::new(b"seed material");
//! let mut b = HmacDrbg::new(b"seed material");
//! assert_eq!(a.generate(16), b.generate(16));
//! ```

use crate::hmac::hmac_sha256;

/// HMAC-DRBG instantiated with SHA-256.
#[derive(Clone)]
pub struct HmacDrbg {
    key: [u8; 32],
    value: [u8; 32],
    reseed_counter: u64,
}

impl std::fmt::Debug for HmacDrbg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HmacDrbg")
            .field("reseed_counter", &self.reseed_counter)
            .finish_non_exhaustive()
    }
}

impl HmacDrbg {
    /// Instantiates the DRBG from seed material.
    pub fn new(seed: &[u8]) -> Self {
        let mut drbg = HmacDrbg {
            key: [0u8; 32],
            value: [1u8; 32],
            reseed_counter: 1,
        };
        drbg.update(Some(seed));
        drbg
    }

    fn update(&mut self, provided: Option<&[u8]>) {
        let mut material = self.value.to_vec();
        material.push(0x00);
        if let Some(p) = provided {
            material.extend_from_slice(p);
        }
        self.key = hmac_sha256(&self.key, &material);
        self.value = hmac_sha256(&self.key, &self.value);
        if let Some(p) = provided {
            let mut material = self.value.to_vec();
            material.push(0x01);
            material.extend_from_slice(p);
            self.key = hmac_sha256(&self.key, &material);
            self.value = hmac_sha256(&self.key, &self.value);
        }
    }

    /// Mixes additional entropy into the state.
    pub fn reseed(&mut self, entropy: &[u8]) {
        self.update(Some(entropy));
        self.reseed_counter = 1;
    }

    /// Generates `len` pseudorandom bytes.
    pub fn generate(&mut self, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            self.value = hmac_sha256(&self.key, &self.value);
            let take = (len - out.len()).min(32);
            out.extend_from_slice(&self.value[..take]);
        }
        self.update(None);
        self.reseed_counter += 1;
        out
    }

    /// Fills `buf` with pseudorandom bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        let bytes = self.generate(buf.len());
        buf.copy_from_slice(&bytes);
    }

    /// Generates a `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill(&mut b);
        u64::from_le_bytes(b)
    }
}

impl rand::RngCore for HmacDrbg {
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    fn next_u64(&mut self) -> u64 {
        HmacDrbg::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.fill(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = HmacDrbg::new(b"abc");
        let mut b = HmacDrbg::new(b"abc");
        assert_eq!(a.generate(100), b.generate(100));
        assert_eq!(a.generate(7), b.generate(7));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = HmacDrbg::new(b"abc");
        let mut b = HmacDrbg::new(b"abd");
        assert_ne!(a.generate(32), b.generate(32));
    }

    #[test]
    fn consecutive_outputs_differ() {
        let mut d = HmacDrbg::new(b"seed");
        assert_ne!(d.generate(32), d.generate(32));
    }

    #[test]
    fn reseed_changes_stream() {
        let mut a = HmacDrbg::new(b"seed");
        let mut b = HmacDrbg::new(b"seed");
        a.reseed(b"extra entropy");
        assert_ne!(a.generate(32), b.generate(32));
    }

    #[test]
    fn rngcore_integration() {
        use rand::Rng;
        let mut d = HmacDrbg::new(b"rng seed");
        let x: f64 = d.gen();
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn generate_spans_multiple_blocks() {
        let mut d = HmacDrbg::new(b"s");
        let long = d.generate(100);
        assert_eq!(long.len(), 100);
        // Blocks must not repeat back-to-back.
        assert_ne!(&long[0..32], &long[32..64]);
    }
}
