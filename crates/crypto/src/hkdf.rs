//! HKDF with SHA-256 (RFC 5869).
//!
//! Used by the network shield handshake and the CAS secret-provisioning
//! protocol to derive traffic keys from Diffie-Hellman shared secrets.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), securetf_crypto::CryptoError> {
//! let prk = securetf_crypto::hkdf::extract(b"salt", b"input keying material");
//! let okm = securetf_crypto::hkdf::expand(&prk, b"context", 42)?;
//! assert_eq!(okm.len(), 42);
//! # Ok(())
//! # }
//! ```

use crate::hmac::{hmac_sha256, HmacSha256};
use crate::CryptoError;

/// HKDF-Extract: derives a pseudorandom key from input keying material.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: derives `len` bytes of output keying material.
///
/// # Errors
///
/// Returns [`CryptoError::OutputTooLong`] if `len > 255 * 32`.
pub fn expand(prk: &[u8; 32], info: &[u8], len: usize) -> Result<Vec<u8>, CryptoError> {
    if len > 255 * 32 {
        return Err(CryptoError::OutputTooLong);
    }
    let mut okm = Vec::with_capacity(len);
    let mut prev: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while okm.len() < len {
        let mut mac = HmacSha256::new(prk);
        mac.update(&prev);
        mac.update(info);
        mac.update(&[counter]);
        let block = mac.finalize();
        let take = (len - okm.len()).min(32);
        okm.extend_from_slice(&block[..take]);
        prev = block.to_vec();
        counter = counter.wrapping_add(1);
    }
    Ok(okm)
}

/// Convenience: extract-then-expand in one call.
///
/// # Errors
///
/// Returns [`CryptoError::OutputTooLong`] if `len > 255 * 32`.
pub fn derive(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Result<Vec<u8>, CryptoError> {
    expand(&extract(salt, ikm), info, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 5869 test case 1.
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0b; 22];
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let prk = extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = expand(&prk, &info, 42).unwrap();
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    // RFC 5869 test case 3: zero-length salt and info.
    #[test]
    fn rfc5869_case3_empty_salt_info() {
        let ikm = [0x0b; 22];
        let prk = extract(b"", &ikm);
        let okm = expand(&prk, b"", 42).unwrap();
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn max_output_length_enforced() {
        let prk = [0u8; 32];
        assert!(expand(&prk, b"", 255 * 32).is_ok());
        assert_eq!(
            expand(&prk, b"", 255 * 32 + 1),
            Err(CryptoError::OutputTooLong)
        );
    }

    #[test]
    fn different_info_yields_independent_keys() {
        let prk = extract(b"s", b"ikm");
        let a = expand(&prk, b"client", 32).unwrap();
        let b = expand(&prk, b"server", 32).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn expand_is_prefix_consistent() {
        // Shorter outputs must be prefixes of longer ones (RFC property).
        let prk = extract(b"salt", b"ikm");
        let long = expand(&prk, b"i", 100).unwrap();
        let short = expand(&prk, b"i", 33).unwrap();
        assert_eq!(&long[..33], &short[..]);
    }
}
