//! The Poly1305 one-time authenticator (RFC 7539).
//!
//! Two implementations share the streaming API:
//!
//! * [`Poly1305`] — the **fast path**: 44/44/42-bit limbs over 2^130 - 5
//!   with `u128` products, three multiplications per 16-byte block. The
//!   block loop consumes 16-byte chunks straight from the input slice
//!   (no intermediate copies) and the clamped `r` plus its reduction
//!   multipliers are precomputed once at key setup.
//! * [`ReferencePoly1305`] — the retained original 26-bit-limb
//!   implementation, kept verbatim for differential tests and A/B
//!   benchmarking (`BENCH_crypto.json`).
//!
//! Both produce identical tags for every key and message.
//!
//! # Examples
//!
//! ```
//! use securetf_crypto::poly1305::Poly1305;
//!
//! let key = [0x42u8; 32];
//! let mut mac = Poly1305::new(&key);
//! mac.update(b"data to authenticate");
//! let tag = mac.finalize();
//! assert_eq!(tag.len(), 16);
//! ```

/// Mask of a 44-bit low/middle limb.
const M44: u64 = 0xfff_ffff_ffff;
/// Mask of the 42-bit top limb.
const M42: u64 = 0x3ff_ffff_ffff;

/// Poly1305 authenticator state (44/44/42-bit limbs, `u128` products).
#[derive(Debug, Clone)]
pub struct Poly1305 {
    /// Clamped `r` split into 44/44/42-bit limbs.
    r: [u64; 3],
    /// `20 * r[1..3]`: the reduction multipliers (2^132 ≡ 4·5 = 20).
    s: [u64; 2],
    h: [u64; 3],
    pad: [u64; 2],
    buf: [u8; 16],
    buf_len: usize,
}

impl Poly1305 {
    /// Creates a new authenticator from a 32-byte one-time key.
    pub fn new(key: &[u8; 32]) -> Self {
        // Clamp r per the RFC, then split into 44/44/42-bit limbs.
        let t0 = u64::from_le_bytes(key[0..8].try_into().expect("8 bytes"))
            & 0x0ffffffc_0fffffff;
        let t1 = u64::from_le_bytes(key[8..16].try_into().expect("8 bytes"))
            & 0x0ffffffc_0ffffffc;
        let r = [
            t0 & M44,
            ((t0 >> 44) | (t1 << 20)) & M44,
            (t1 >> 24) & M42,
        ];
        let s = [r[1] * 20, r[2] * 20];
        let pad = [
            u64::from_le_bytes(key[16..24].try_into().expect("8 bytes")),
            u64::from_le_bytes(key[24..32].try_into().expect("8 bytes")),
        ];
        Poly1305 {
            r,
            s,
            h: [0; 3],
            pad,
            buf: [0u8; 16],
            buf_len: 0,
        }
    }

    #[inline(always)]
    fn block(&mut self, block: &[u8; 16], partial: bool) {
        // A full block contributes 2^128; bit 128 lands 40 bits into the
        // top limb (128 - 88).
        let hibit: u64 = if partial { 0 } else { 1 << 40 };
        let t0 = u64::from_le_bytes(block[0..8].try_into().expect("8 bytes"));
        let t1 = u64::from_le_bytes(block[8..16].try_into().expect("8 bytes"));

        let [r0, r1, r2] = self.r;
        let [s1, s2] = self.s;
        let h0 = self.h[0] + (t0 & M44);
        let h1 = self.h[1] + (((t0 >> 44) | (t1 << 20)) & M44);
        let h2 = self.h[2] + (((t1 >> 24) & M42) | hibit);

        // h * r mod 2^130 - 5: three 128-bit column products.
        let d0 = h0 as u128 * r0 as u128 + h1 as u128 * s2 as u128 + h2 as u128 * s1 as u128;
        let d1 = h0 as u128 * r1 as u128 + h1 as u128 * r0 as u128 + h2 as u128 * s2 as u128;
        let d2 = h0 as u128 * r2 as u128 + h1 as u128 * r1 as u128 + h2 as u128 * r0 as u128;

        let mut c = (d0 >> 44) as u64;
        let h0 = (d0 as u64) & M44;
        let d1 = d1 + c as u128;
        c = (d1 >> 44) as u64;
        let h1 = (d1 as u64) & M44;
        let d2 = d2 + c as u128;
        c = (d2 >> 42) as u64;
        let h2 = (d2 as u64) & M42;
        let h0 = h0 + c * 5;
        let c = h0 >> 44;
        self.h = [h0 & M44, h1 + c, h2];
    }

    /// Absorbs a run of full 16-byte blocks with `h` held in locals so
    /// the hot loop never round-trips the accumulator through memory.
    fn blocks(&mut self, data: &[u8]) {
        let [r0, r1, r2] = self.r;
        let [s1, s2] = self.s;
        let [mut h0, mut h1, mut h2] = self.h;
        for b in data.chunks_exact(16) {
            let t0 = u64::from_le_bytes(b[0..8].try_into().expect("8 bytes"));
            let t1 = u64::from_le_bytes(b[8..16].try_into().expect("8 bytes"));
            let m0 = h0 + (t0 & M44);
            let m1 = h1 + (((t0 >> 44) | (t1 << 20)) & M44);
            let m2 = h2 + (((t1 >> 24) & M42) | (1 << 40));

            let d0 = m0 as u128 * r0 as u128 + m1 as u128 * s2 as u128 + m2 as u128 * s1 as u128;
            let d1 = m0 as u128 * r1 as u128 + m1 as u128 * r0 as u128 + m2 as u128 * s2 as u128;
            let d2 = m0 as u128 * r2 as u128 + m1 as u128 * r1 as u128 + m2 as u128 * r0 as u128;

            let mut c = (d0 >> 44) as u64;
            h0 = (d0 as u64) & M44;
            let d1 = d1 + c as u128;
            c = (d1 >> 44) as u64;
            h1 = (d1 as u64) & M44;
            let d2 = d2 + c as u128;
            c = (d2 >> 42) as u64;
            h2 = (d2 as u64) & M42;
            h0 += c * 5;
            c = h0 >> 44;
            h0 &= M44;
            h1 += c;
        }
        self.h = [h0, h1, h2];
    }

    /// Absorbs message bytes. Full 16-byte blocks are consumed directly
    /// from `data`; only a sub-block tail is buffered.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buf_len > 0 {
            let take = (16 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 16 {
                let block = self.buf;
                self.block(&block, false);
                self.buf_len = 0;
            }
        }
        let full = data.len() - data.len() % 16;
        self.blocks(&data[..full]);
        let rem = &data[full..];
        if !rem.is_empty() {
            self.buf[..rem.len()].copy_from_slice(rem);
            self.buf_len = rem.len();
        }
    }

    /// Produces the 16-byte tag.
    pub fn finalize(mut self) -> [u8; 16] {
        if self.buf_len > 0 {
            let mut block = [0u8; 16];
            block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            block[self.buf_len] = 1;
            self.block(&block, true);
        }
        // Full carry propagation.
        let [mut h0, mut h1, mut h2] = self.h;
        let mut c = h1 >> 44;
        h1 &= M44;
        h2 += c;
        c = h2 >> 42;
        h2 &= M42;
        h0 += c * 5;
        c = h0 >> 44;
        h0 &= M44;
        h1 += c;
        c = h1 >> 44;
        h1 &= M44;
        h2 += c;
        c = h2 >> 42;
        h2 &= M42;
        h0 += c * 5;
        c = h0 >> 44;
        h0 &= M44;
        h1 += c;

        // Compute h + -p (i.e. h - (2^130 - 5)) and select.
        let mut g0 = h0.wrapping_add(5);
        c = g0 >> 44;
        g0 &= M44;
        let mut g1 = h1.wrapping_add(c);
        c = g1 >> 44;
        g1 &= M44;
        let g2 = h2.wrapping_add(c).wrapping_sub(1 << 42);

        // Borrow in g2's sign bit means h < p: keep h. Otherwise take g.
        let mask = (g2 >> 63).wrapping_sub(1);
        h0 = (h0 & !mask) | (g0 & mask);
        h1 = (h1 & !mask) | (g1 & mask);
        h2 = (h2 & !mask) | (g2 & M42 & mask);

        // Add the pad mod 2^128.
        let [t0, t1] = self.pad;
        h0 += t0 & M44;
        c = h0 >> 44;
        h0 &= M44;
        h1 += (((t0 >> 44) | (t1 << 20)) & M44) + c;
        c = h1 >> 44;
        h1 &= M44;
        h2 += ((t1 >> 24) & M42) + c;
        h2 &= M42;

        // Serialize h to 128 bits little-endian.
        let lo = h0 | (h1 << 44);
        let hi = (h1 >> 20) | (h2 << 24);
        let mut out = [0u8; 16];
        out[0..8].copy_from_slice(&lo.to_le_bytes());
        out[8..16].copy_from_slice(&hi.to_le_bytes());
        out
    }
}

/// The retained original Poly1305 (26-bit limbs), kept verbatim so the
/// fast path has a fixed baseline for differential tests and the
/// `BENCH_crypto.json` A/B comparison.
#[derive(Debug, Clone)]
pub struct ReferencePoly1305 {
    r: [u32; 5],
    h: [u32; 5],
    pad: [u32; 4],
    buf: [u8; 16],
    buf_len: usize,
}

impl ReferencePoly1305 {
    /// Creates a new authenticator from a 32-byte one-time key.
    pub fn new(key: &[u8; 32]) -> Self {
        // Clamp r per the RFC.
        let t0 = u32::from_le_bytes([key[0], key[1], key[2], key[3]]);
        let t1 = u32::from_le_bytes([key[4], key[5], key[6], key[7]]);
        let t2 = u32::from_le_bytes([key[8], key[9], key[10], key[11]]);
        let t3 = u32::from_le_bytes([key[12], key[13], key[14], key[15]]);
        let r = [
            t0 & 0x3ffffff,
            ((t0 >> 26) | (t1 << 6)) & 0x3ffff03,
            ((t1 >> 20) | (t2 << 12)) & 0x3ffc0ff,
            ((t2 >> 14) | (t3 << 18)) & 0x3f03fff,
            (t3 >> 8) & 0x00fffff,
        ];
        let pad = [
            u32::from_le_bytes([key[16], key[17], key[18], key[19]]),
            u32::from_le_bytes([key[20], key[21], key[22], key[23]]),
            u32::from_le_bytes([key[24], key[25], key[26], key[27]]),
            u32::from_le_bytes([key[28], key[29], key[30], key[31]]),
        ];
        ReferencePoly1305 {
            r,
            h: [0; 5],
            pad,
            buf: [0u8; 16],
            buf_len: 0,
        }
    }

    fn block(&mut self, block: &[u8; 16], partial: bool) {
        let hibit: u32 = if partial { 0 } else { 1 << 24 };
        let t0 = u32::from_le_bytes([block[0], block[1], block[2], block[3]]);
        let t1 = u32::from_le_bytes([block[4], block[5], block[6], block[7]]);
        let t2 = u32::from_le_bytes([block[8], block[9], block[10], block[11]]);
        let t3 = u32::from_le_bytes([block[12], block[13], block[14], block[15]]);

        self.h[0] = self.h[0].wrapping_add(t0 & 0x3ffffff);
        self.h[1] = self.h[1].wrapping_add(((t0 >> 26) | (t1 << 6)) & 0x3ffffff);
        self.h[2] = self.h[2].wrapping_add(((t1 >> 20) | (t2 << 12)) & 0x3ffffff);
        self.h[3] = self.h[3].wrapping_add(((t2 >> 14) | (t3 << 18)) & 0x3ffffff);
        self.h[4] = self.h[4].wrapping_add((t3 >> 8) | hibit);

        let [r0, r1, r2, r3, r4] = self.r.map(|x| x as u64);
        let s1 = r1 * 5;
        let s2 = r2 * 5;
        let s3 = r3 * 5;
        let s4 = r4 * 5;
        let [h0, h1, h2, h3, h4] = self.h.map(|x| x as u64);

        let d0 = h0 * r0 + h1 * s4 + h2 * s3 + h3 * s2 + h4 * s1;
        let d1 = h0 * r1 + h1 * r0 + h2 * s4 + h3 * s3 + h4 * s2;
        let d2 = h0 * r2 + h1 * r1 + h2 * r0 + h3 * s4 + h4 * s3;
        let d3 = h0 * r3 + h1 * r2 + h2 * r1 + h3 * r0 + h4 * s4;
        let d4 = h0 * r4 + h1 * r3 + h2 * r2 + h3 * r1 + h4 * r0;

        let mut c: u64;
        let mut d = [d0, d1, d2, d3, d4];
        c = d[0] >> 26;
        d[1] += c;
        let h0 = (d[0] & 0x3ffffff) as u32;
        c = d[1] >> 26;
        d[2] += c;
        let h1 = (d[1] & 0x3ffffff) as u32;
        c = d[2] >> 26;
        d[3] += c;
        let h2 = (d[2] & 0x3ffffff) as u32;
        c = d[3] >> 26;
        d[4] += c;
        let h3 = (d[3] & 0x3ffffff) as u32;
        c = d[4] >> 26;
        let h4 = (d[4] & 0x3ffffff) as u32;
        let h0 = h0.wrapping_add((c * 5) as u32);
        let c2 = h0 >> 26;
        let h0 = h0 & 0x3ffffff;
        let h1 = h1.wrapping_add(c2);
        self.h = [h0, h1, h2, h3, h4];
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buf_len > 0 {
            let take = (16 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 16 {
                let block = self.buf;
                self.block(&block, false);
                self.buf_len = 0;
            }
        }
        while data.len() >= 16 {
            let mut block = [0u8; 16];
            block.copy_from_slice(&data[..16]);
            self.block(&block, false);
            data = &data[16..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Produces the 16-byte tag.
    pub fn finalize(mut self) -> [u8; 16] {
        if self.buf_len > 0 {
            let mut block = [0u8; 16];
            block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            block[self.buf_len] = 1;
            self.block(&block, true);
        }
        // Full carry propagation.
        let mut h = self.h;
        let mut c: u32;
        c = h[1] >> 26;
        h[1] &= 0x3ffffff;
        h[2] = h[2].wrapping_add(c);
        c = h[2] >> 26;
        h[2] &= 0x3ffffff;
        h[3] = h[3].wrapping_add(c);
        c = h[3] >> 26;
        h[3] &= 0x3ffffff;
        h[4] = h[4].wrapping_add(c);
        c = h[4] >> 26;
        h[4] &= 0x3ffffff;
        h[0] = h[0].wrapping_add(c.wrapping_mul(5));
        c = h[0] >> 26;
        h[0] &= 0x3ffffff;
        h[1] = h[1].wrapping_add(c);

        // Compute h + -p (i.e. h - (2^130 - 5)) and select.
        let mut g = [0u32; 5];
        c = 5;
        for i in 0..5 {
            let t = h[i].wrapping_add(c);
            c = t >> 26;
            g[i] = t & 0x3ffffff;
        }
        g[4] = g[4].wrapping_sub(1 << 26);

        let mask = (g[4] >> 31).wrapping_sub(1); // all-ones if g >= p
        for i in 0..5 {
            h[i] = (h[i] & !mask) | (g[i] & mask);
        }

        // Serialize h to 128 bits little-endian.
        let h0 = h[0] | (h[1] << 26);
        let h1 = (h[1] >> 6) | (h[2] << 20);
        let h2 = (h[2] >> 12) | (h[3] << 14);
        let h3 = (h[3] >> 18) | (h[4] << 8);

        // Add the pad with carries.
        let mut f: u64;
        let mut out = [0u8; 16];
        f = h0 as u64 + self.pad[0] as u64;
        out[0..4].copy_from_slice(&(f as u32).to_le_bytes());
        f = h1 as u64 + self.pad[1] as u64 + (f >> 32);
        out[4..8].copy_from_slice(&(f as u32).to_le_bytes());
        f = h2 as u64 + self.pad[2] as u64 + (f >> 32);
        out[8..12].copy_from_slice(&(f as u32).to_le_bytes());
        f = h3 as u64 + self.pad[3] as u64 + (f >> 32);
        out[12..16].copy_from_slice(&(f as u32).to_le_bytes());
        out
    }
}

/// One-shot Poly1305 tag computation.
pub fn poly1305(key: &[u8; 32], message: &[u8]) -> [u8; 16] {
    let mut mac = Poly1305::new(key);
    mac.update(message);
    mac.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 7539 §2.5.2.
    #[test]
    fn rfc7539_vector() {
        let key: [u8; 32] = unhex(
            "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b",
        )
        .try_into()
        .unwrap();
        let tag = poly1305(&key, b"Cryptographic Forum Research Group");
        assert_eq!(hex(&tag), "a8061dc1305136c6c22b8baf0c0127a9");
    }

    // RFC 7539 appendix A.3 test vector #1: all-zero key.
    #[test]
    fn zero_key_zero_tag() {
        let tag = poly1305(&[0u8; 32], &[0u8; 64]);
        assert_eq!(tag, [0u8; 16]);
    }

    // RFC 7539 appendix A.3 #3: r with all bits set before clamping.
    #[test]
    fn incremental_matches_oneshot() {
        let key = [0x33u8; 32];
        let msg: Vec<u8> = (0..200u8).collect();
        let whole = poly1305(&key, &msg);
        let mut mac = Poly1305::new(&key);
        for chunk in msg.chunks(5) {
            mac.update(chunk);
        }
        assert_eq!(mac.finalize(), whole);
    }

    #[test]
    fn partial_final_block() {
        // 17 bytes: one full block plus 1-byte partial.
        let key = [0x11u8; 32];
        let tag_a = poly1305(&key, &[0xaa; 17]);
        let tag_b = poly1305(&key, &[0xaa; 16]);
        assert_ne!(tag_a, tag_b);
    }

    // RFC 7539 A.3 #7-style edge: h wraps around 2^130-5.
    #[test]
    fn wraparound_edge() {
        let mut key = [0u8; 32];
        key[0..16].copy_from_slice(&unhex("01000000000000000000000000000000"));
        let msg = unhex(
            "ffffffffffffffffffffffffffffffff\
             f0ffffffffffffffffffffffffffffff\
             11000000000000000000000000000000",
        );
        let tag = poly1305(&key, &msg);
        assert_eq!(hex(&tag), "05000000000000000000000000000000");
    }

    // A.3 #4-#6: the clamp edge (r all-ones) and h saturation edges —
    // exactly where a limb-width rewrite would slip.
    #[test]
    fn reference_agrees_across_every_length_and_edge_key() {
        let keys: [[u8; 32]; 3] = [
            [0xff; 32],
            std::array::from_fn(|i| i as u8),
            {
                let mut k = [0u8; 32];
                k[0..16].copy_from_slice(&unhex("02000000000000000000000000000000"));
                k
            },
        ];
        for key in &keys {
            for len in 0..=130usize {
                let msg: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
                let fast = poly1305(key, &msg);
                let mut r = ReferencePoly1305::new(key);
                r.update(&msg);
                assert_eq!(fast, r.finalize(), "len {len}");
            }
            // All-ones message stresses carry saturation at bulk sizes.
            let bulk = vec![0xffu8; 1024];
            let fast = poly1305(key, &bulk);
            let mut r = ReferencePoly1305::new(key);
            r.update(&bulk);
            assert_eq!(fast, r.finalize());
        }
    }
}
