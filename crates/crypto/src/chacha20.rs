//! The ChaCha20 stream cipher (RFC 7539).
//!
//! # Examples
//!
//! ```
//! use securetf_crypto::chacha20::ChaCha20;
//!
//! let mut data = *b"secret tensor bytes";
//! ChaCha20::new(&[0u8; 32], &[0u8; 12], 1).apply_keystream(&mut data);
//! assert_ne!(&data, b"secret tensor bytes");
//! ChaCha20::new(&[0u8; 32], &[0u8; 12], 1).apply_keystream(&mut data);
//! assert_eq!(&data, b"secret tensor bytes");
//! ```

/// ChaCha20 stream cipher state.
#[derive(Debug, Clone)]
pub struct ChaCha20 {
    state: [u32; 16],
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha20 {
    /// Creates a cipher instance from a 256-bit key, 96-bit nonce and the
    /// initial 32-bit block counter.
    pub fn new(key: &[u8; 32], nonce: &[u8; 12], counter: u32) -> Self {
        let mut state = [0u32; 16];
        state[0] = 0x61707865;
        state[1] = 0x3320646e;
        state[2] = 0x79622d32;
        state[3] = 0x6b206574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                key[i * 4],
                key[i * 4 + 1],
                key[i * 4 + 2],
                key[i * 4 + 3],
            ]);
        }
        state[12] = counter;
        for i in 0..3 {
            state[13 + i] = u32::from_le_bytes([
                nonce[i * 4],
                nonce[i * 4 + 1],
                nonce[i * 4 + 2],
                nonce[i * 4 + 3],
            ]);
        }
        ChaCha20 { state }
    }

    /// Produces the next 64-byte keystream block and advances the counter.
    pub fn next_block(&mut self) -> [u8; 64] {
        let mut working = self.state;
        for _ in 0..10 {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = working[i].wrapping_add(self.state[i]);
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        self.state[12] = self.state[12].wrapping_add(1);
        out
    }

    /// XORs the keystream into `data` in place (encrypts or decrypts).
    pub fn apply_keystream(&mut self, data: &mut [u8]) {
        for chunk in data.chunks_mut(64) {
            let block = self.next_block();
            for (byte, k) in chunk.iter_mut().zip(block.iter()) {
                *byte ^= k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 7539 §2.3.2 block function test vector.
    #[test]
    fn rfc7539_block_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut c = ChaCha20::new(&key, &nonce, 1);
        let block = c.next_block();
        assert_eq!(
            hex(&block[..16]),
            "10f1e7e4d13b5915500fdd1fa32071c4"
        );
        assert_eq!(hex(&block[48..]), "b5129cd1de164eb9cbd083e8a2503c4e");
    }

    // RFC 7539 §2.4.2 encryption test vector (the "sunscreen" plaintext).
    #[test]
    fn rfc7539_encryption_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could \
offer you only one tip for the future, sunscreen would be it."
            .to_vec();
        ChaCha20::new(&key, &nonce, 1).apply_keystream(&mut data);
        assert_eq!(
            hex(&data[..32]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        );
        assert_eq!(hex(&data[data.len() - 8..]), "8eedf2785e42874d");
    }

    // RFC 7539 A.1 test vector #1: all-zero key and nonce, counter 0.
    #[test]
    fn rfc7539_a1_zero_vector() {
        let mut c = ChaCha20::new(&[0u8; 32], &[0u8; 12], 0);
        let block = c.next_block();
        assert_eq!(
            hex(&block[..32]),
            "76b8e0ada0f13d90405d6ae55386bd28bdd219b8a08ded1aa836efcc8b770dc7"
        );
    }

    // RFC 7539 A.1 test vector #2: counter 1.
    #[test]
    fn rfc7539_a1_counter_one() {
        let mut c = ChaCha20::new(&[0u8; 32], &[0u8; 12], 1);
        let block = c.next_block();
        assert_eq!(
            hex(&block[..16]),
            "9f07e7be5551387a98ba977c732d080d"
        );
    }

    #[test]
    fn keystream_counter_advances() {
        let mut c = ChaCha20::new(&[1u8; 32], &[2u8; 12], 0);
        let b0 = c.next_block();
        let b1 = c.next_block();
        assert_ne!(b0, b1);
        // Restarting at counter 1 reproduces the second block.
        let mut c1 = ChaCha20::new(&[1u8; 32], &[2u8; 12], 1);
        assert_eq!(c1.next_block(), b1);
    }

    #[test]
    fn roundtrip_arbitrary_lengths() {
        for len in [0usize, 1, 63, 64, 65, 200] {
            let original: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
            let mut data = original.clone();
            ChaCha20::new(&[9u8; 32], &[3u8; 12], 5).apply_keystream(&mut data);
            ChaCha20::new(&[9u8; 32], &[3u8; 12], 5).apply_keystream(&mut data);
            assert_eq!(data, original, "len {len}");
        }
    }
}
