//! The ChaCha20 stream cipher (RFC 7539 / RFC 8439).
//!
//! Two keystream engines share one state layout:
//!
//! * the **fast path** ([`ChaCha20::apply_keystream`]) generates four
//!   independent block states at a time, round-robining each vector of
//!   four lanes through the quarter-round so the compiler keeps the
//!   lanes in SIMD registers, and XORs the keystream into the data
//!   word-wise (`u64`), and
//! * the **reference path** ([`ChaCha20::apply_keystream_reference`])
//!   retains the original one-block scalar loop with byte-wise XOR, kept
//!   for differential tests and A/B benchmarking (`BENCH_crypto.json`).
//!
//! Both produce bit-identical keystream for any input length.
//!
//! # Block-counter exhaustion
//!
//! The RFC's block counter is 32 bits: a single (key, nonce) stream is
//! good for 2³² · 64 B = 256 GiB of keystream. Advancing past that wraps
//! the counter back onto already-emitted keystream — silent catastrophic
//! reuse — so debug builds **panic** on counter wrap-around; release
//! builds keep the RFC's wrapping behavior, and callers are expected to
//! re-nonce long before the limit (the shields chunk at 64 KiB).
//!
//! # Examples
//!
//! ```
//! use securetf_crypto::chacha20::ChaCha20;
//!
//! let mut data = *b"secret tensor bytes";
//! ChaCha20::new(&[0u8; 32], &[0u8; 12], 1).apply_keystream(&mut data);
//! assert_ne!(&data, b"secret tensor bytes");
//! ChaCha20::new(&[0u8; 32], &[0u8; 12], 1).apply_keystream(&mut data);
//! assert_eq!(&data, b"secret tensor bytes");
//! ```

/// Number of interleaved block states in the multi-block fast path.
const LANES: usize = 4;

/// ChaCha20 stream cipher state.
#[derive(Debug, Clone)]
pub struct ChaCha20 {
    state: [u32; 16],
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Quarter-round over four independent lanes at once. Each statement is
/// a 4-wide lane loop, so the four block states march through the round
/// in lockstep — the layout auto-vectorizes to 128-bit SIMD.
#[inline(always)]
// Indexing two rows of `v` per statement; the explicit lane loops keep
// the four states visibly in lockstep, which is the whole point.
#[allow(clippy::needless_range_loop)]
fn quarter_round_x4(v: &mut [[u32; LANES]; 16], a: usize, b: usize, c: usize, d: usize) {
    for l in 0..LANES {
        v[a][l] = v[a][l].wrapping_add(v[b][l]);
    }
    for l in 0..LANES {
        v[d][l] = (v[d][l] ^ v[a][l]).rotate_left(16);
    }
    for l in 0..LANES {
        v[c][l] = v[c][l].wrapping_add(v[d][l]);
    }
    for l in 0..LANES {
        v[b][l] = (v[b][l] ^ v[c][l]).rotate_left(12);
    }
    for l in 0..LANES {
        v[a][l] = v[a][l].wrapping_add(v[b][l]);
    }
    for l in 0..LANES {
        v[d][l] = (v[d][l] ^ v[a][l]).rotate_left(8);
    }
    for l in 0..LANES {
        v[c][l] = v[c][l].wrapping_add(v[d][l]);
    }
    for l in 0..LANES {
        v[b][l] = (v[b][l] ^ v[c][l]).rotate_left(7);
    }
}

/// Four-lane block generation on SSE2 (baseline on x86_64): each 128-bit
/// register holds one state word across the four interleaved blocks —
/// the same layout as the portable `[[u32; LANES]; 16]` path — but with
/// the rotates issued as explicit vector shift/or pairs, which the
/// baseline autovectorizer does not reliably derive from `rotate_left`.
#[cfg(target_arch = "x86_64")]
mod sse2 {
    use core::arch::x86_64::{
        __m128i, _mm_add_epi32, _mm_loadu_si128, _mm_or_si128, _mm_set1_epi32, _mm_set_epi32,
        _mm_slli_epi32, _mm_srli_epi32, _mm_storeu_si128, _mm_unpackhi_epi32, _mm_unpackhi_epi64,
        _mm_unpacklo_epi32, _mm_unpacklo_epi64, _mm_xor_si128,
    };

    /// 32-bit left-rotate of each lane (shift counts must be immediates).
    macro_rules! rotl {
        ($x:expr, $n:literal) => {
            _mm_or_si128(_mm_slli_epi32($x, $n), _mm_srli_epi32($x, 32 - $n))
        };
    }

    #[inline]
    #[target_feature(enable = "sse2")]
    fn quarter_round(v: &mut [__m128i; 16], a: usize, b: usize, c: usize, d: usize) {
        v[a] = _mm_add_epi32(v[a], v[b]);
        v[d] = rotl!(_mm_xor_si128(v[d], v[a]), 16);
        v[c] = _mm_add_epi32(v[c], v[d]);
        v[b] = rotl!(_mm_xor_si128(v[b], v[c]), 12);
        v[a] = _mm_add_epi32(v[a], v[b]);
        v[d] = rotl!(_mm_xor_si128(v[d], v[a]), 8);
        v[c] = _mm_add_epi32(v[c], v[d]);
        v[b] = rotl!(_mm_xor_si128(v[b], v[c]), 7);
    }

    /// Runs the 20 ChaCha rounds over four interleaved block states
    /// (counters `state[12]` through `state[12] + 3`, wrapping per the
    /// RFC) and returns the post-round vectors with the initial state
    /// added back — word `i` of block `l` in lane `l` of vector `i`.
    #[inline]
    #[target_feature(enable = "sse2")]
    fn rounds(state: &[u32; 16]) -> [__m128i; 16] {
        let mut v: [__m128i; 16] = core::array::from_fn(|i| _mm_set1_epi32(state[i] as i32));
        v[12] = _mm_add_epi32(v[12], _mm_set_epi32(3, 2, 1, 0));
        let init = v;
        for _ in 0..10 {
            quarter_round(&mut v, 0, 4, 8, 12);
            quarter_round(&mut v, 1, 5, 9, 13);
            quarter_round(&mut v, 2, 6, 10, 14);
            quarter_round(&mut v, 3, 7, 11, 15);
            quarter_round(&mut v, 0, 5, 10, 15);
            quarter_round(&mut v, 1, 6, 11, 12);
            quarter_round(&mut v, 2, 7, 8, 13);
            quarter_round(&mut v, 3, 4, 9, 14);
        }
        for (word, start) in v.iter_mut().zip(init) {
            *word = _mm_add_epi32(*word, start);
        }
        v
    }

    /// Transposes one group of four lane vectors (`v[g]..v[g+4]`, word
    /// rows) into four block rows: element `l` of the result is the
    /// 16 contiguous keystream bytes `g*16..g*16+16` of block `l`.
    #[inline]
    #[target_feature(enable = "sse2")]
    fn transpose4(v0: __m128i, v1: __m128i, v2: __m128i, v3: __m128i) -> [__m128i; 4] {
        let t0 = _mm_unpacklo_epi32(v0, v1);
        let t1 = _mm_unpackhi_epi32(v0, v1);
        let t2 = _mm_unpacklo_epi32(v2, v3);
        let t3 = _mm_unpackhi_epi32(v2, v3);
        [
            _mm_unpacklo_epi64(t0, t2),
            _mm_unpackhi_epi64(t0, t2),
            _mm_unpacklo_epi64(t1, t3),
            _mm_unpackhi_epi64(t1, t3),
        ]
    }

    /// Computes four consecutive keystream blocks into `out`.
    #[target_feature(enable = "sse2")]
    pub(super) fn four_blocks(state: &[u32; 16], out: &mut [u8; 4 * 64]) {
        let v = rounds(state);
        for g in 0..4 {
            let rows = transpose4(v[g * 4], v[g * 4 + 1], v[g * 4 + 2], v[g * 4 + 3]);
            for (l, row) in rows.into_iter().enumerate() {
                let at = l * 64 + g * 16;
                // SAFETY: `at + 16 <= 256`, an in-bounds unaligned store.
                unsafe { _mm_storeu_si128(out.as_mut_ptr().add(at).cast::<__m128i>(), row) };
            }
        }
    }

    /// XORs four consecutive keystream blocks straight into `data` — one
    /// pass over memory, no intermediate keystream buffer.
    #[target_feature(enable = "sse2")]
    pub(super) fn xor_four_blocks(state: &[u32; 16], data: &mut [u8; 4 * 64]) {
        let v = rounds(state);
        for g in 0..4 {
            let rows = transpose4(v[g * 4], v[g * 4 + 1], v[g * 4 + 2], v[g * 4 + 3]);
            for (l, row) in rows.into_iter().enumerate() {
                let at = l * 64 + g * 16;
                // SAFETY: `at + 16 <= 256`, in-bounds unaligned accesses.
                unsafe {
                    let p = data.as_mut_ptr().add(at).cast::<__m128i>();
                    _mm_storeu_si128(p, _mm_xor_si128(_mm_loadu_si128(p), row));
                }
            }
        }
    }
}

/// Eight-lane block generation on AVX2, selected at runtime (the first
/// `apply_keystream` call probes CPUID; the result is cached by std).
/// Same interleaved layout as the SSE2 engine, twice as wide.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use core::arch::x86_64::{
        __m256i, _mm256_add_epi32, _mm256_loadu_si256, _mm256_or_si256, _mm256_permute2x128_si256,
        _mm256_set1_epi32, _mm256_set_epi32, _mm256_slli_epi32, _mm256_srli_epi32,
        _mm256_storeu_si256, _mm256_unpackhi_epi32, _mm256_unpackhi_epi64, _mm256_unpacklo_epi32,
        _mm256_unpacklo_epi64, _mm256_xor_si256,
    };

    /// 32-bit left-rotate of each lane (shift counts must be immediates).
    macro_rules! rotl {
        ($x:expr, $n:literal) => {
            _mm256_or_si256(_mm256_slli_epi32($x, $n), _mm256_srli_epi32($x, 32 - $n))
        };
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    fn quarter_round(v: &mut [__m256i; 16], a: usize, b: usize, c: usize, d: usize) {
        v[a] = _mm256_add_epi32(v[a], v[b]);
        v[d] = rotl!(_mm256_xor_si256(v[d], v[a]), 16);
        v[c] = _mm256_add_epi32(v[c], v[d]);
        v[b] = rotl!(_mm256_xor_si256(v[b], v[c]), 12);
        v[a] = _mm256_add_epi32(v[a], v[b]);
        v[d] = rotl!(_mm256_xor_si256(v[d], v[a]), 8);
        v[c] = _mm256_add_epi32(v[c], v[d]);
        v[b] = rotl!(_mm256_xor_si256(v[b], v[c]), 7);
    }

    /// Transposes one group of eight lane vectors (word rows `g*8..g*8+8`
    /// across eight blocks) into eight block rows: element `l` of the
    /// result is the 32 contiguous keystream bytes `g*32..g*32+32` of
    /// block `l`.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn transpose8(r: [__m256i; 8]) -> [__m256i; 8] {
        let t0 = _mm256_unpacklo_epi32(r[0], r[1]);
        let t1 = _mm256_unpackhi_epi32(r[0], r[1]);
        let t2 = _mm256_unpacklo_epi32(r[2], r[3]);
        let t3 = _mm256_unpackhi_epi32(r[2], r[3]);
        let t4 = _mm256_unpacklo_epi32(r[4], r[5]);
        let t5 = _mm256_unpackhi_epi32(r[4], r[5]);
        let t6 = _mm256_unpacklo_epi32(r[6], r[7]);
        let t7 = _mm256_unpackhi_epi32(r[6], r[7]);
        let u0 = _mm256_unpacklo_epi64(t0, t2);
        let u1 = _mm256_unpackhi_epi64(t0, t2);
        let u2 = _mm256_unpacklo_epi64(t1, t3);
        let u3 = _mm256_unpackhi_epi64(t1, t3);
        let u4 = _mm256_unpacklo_epi64(t4, t6);
        let u5 = _mm256_unpackhi_epi64(t4, t6);
        let u6 = _mm256_unpacklo_epi64(t5, t7);
        let u7 = _mm256_unpackhi_epi64(t5, t7);
        // The unpacks work within 128-bit halves; stitch the halves.
        [
            _mm256_permute2x128_si256(u0, u4, 0x20),
            _mm256_permute2x128_si256(u1, u5, 0x20),
            _mm256_permute2x128_si256(u2, u6, 0x20),
            _mm256_permute2x128_si256(u3, u7, 0x20),
            _mm256_permute2x128_si256(u0, u4, 0x31),
            _mm256_permute2x128_si256(u1, u5, 0x31),
            _mm256_permute2x128_si256(u2, u6, 0x31),
            _mm256_permute2x128_si256(u3, u7, 0x31),
        ]
    }

    /// XORs eight consecutive keystream blocks (counters `state[12]`
    /// through `state[12] + 7`, wrapping per the RFC) straight into
    /// `data` — one pass over memory, no intermediate keystream buffer.
    #[target_feature(enable = "avx2")]
    pub(super) fn xor_eight_blocks(state: &[u32; 16], data: &mut [u8; 8 * 64]) {
        let mut v: [__m256i; 16] = core::array::from_fn(|i| _mm256_set1_epi32(state[i] as i32));
        v[12] = _mm256_add_epi32(v[12], _mm256_set_epi32(7, 6, 5, 4, 3, 2, 1, 0));
        let init = v;
        for _ in 0..10 {
            quarter_round(&mut v, 0, 4, 8, 12);
            quarter_round(&mut v, 1, 5, 9, 13);
            quarter_round(&mut v, 2, 6, 10, 14);
            quarter_round(&mut v, 3, 7, 11, 15);
            quarter_round(&mut v, 0, 5, 10, 15);
            quarter_round(&mut v, 1, 6, 11, 12);
            quarter_round(&mut v, 2, 7, 8, 13);
            quarter_round(&mut v, 3, 4, 9, 14);
        }
        for (word, start) in v.iter_mut().zip(init) {
            *word = _mm256_add_epi32(*word, start);
        }
        for g in 0..2 {
            let rows = transpose8(core::array::from_fn(|i| v[g * 8 + i]));
            for (l, row) in rows.into_iter().enumerate() {
                let at = l * 64 + g * 32;
                // SAFETY: `at + 32 <= 512`, in-bounds unaligned accesses.
                unsafe {
                    let p = data.as_mut_ptr().add(at).cast::<__m256i>();
                    _mm256_storeu_si256(p, _mm256_xor_si256(_mm256_loadu_si256(p), row));
                }
            }
        }
    }
}

/// XORs `ks[..data.len()]` into `data`, eight bytes at a time.
#[inline(always)]
fn xor_words(data: &mut [u8], ks: &[u8]) {
    let full = data.len() - data.len() % 8;
    for (dw, kw) in data[..full]
        .chunks_exact_mut(8)
        .zip(ks[..full].chunks_exact(8))
    {
        let x = u64::from_le_bytes(dw.try_into().expect("8 bytes"))
            ^ u64::from_le_bytes(kw.try_into().expect("8 bytes"));
        dw.copy_from_slice(&x.to_le_bytes());
    }
    for (db, kb) in data[full..].iter_mut().zip(&ks[full..]) {
        *db ^= kb;
    }
}

impl ChaCha20 {
    /// Creates a cipher instance from a 256-bit key, 96-bit nonce and the
    /// initial 32-bit block counter.
    pub fn new(key: &[u8; 32], nonce: &[u8; 12], counter: u32) -> Self {
        let mut state = [0u32; 16];
        state[0] = 0x61707865;
        state[1] = 0x3320646e;
        state[2] = 0x79622d32;
        state[3] = 0x6b206574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                key[i * 4],
                key[i * 4 + 1],
                key[i * 4 + 2],
                key[i * 4 + 3],
            ]);
        }
        state[12] = counter;
        for i in 0..3 {
            state[13 + i] = u32::from_le_bytes([
                nonce[i * 4],
                nonce[i * 4 + 1],
                nonce[i * 4 + 2],
                nonce[i * 4 + 3],
            ]);
        }
        ChaCha20 { state }
    }

    /// Advances the block counter by `blocks`, panicking in debug builds
    /// if the 32-bit counter wraps (keystream reuse past 256 GiB).
    #[inline(always)]
    fn advance_counter(&mut self, blocks: u32) {
        let (next, wrapped) = self.state[12].overflowing_add(blocks);
        debug_assert!(
            !wrapped,
            "ChaCha20 32-bit block counter wrapped: >256 GiB of keystream \
             requested under a single nonce (keystream reuse)"
        );
        self.state[12] = next;
    }

    /// Produces the next 64-byte keystream block and advances the counter.
    pub fn next_block(&mut self) -> [u8; 64] {
        let mut working = self.state;
        for _ in 0..10 {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = working[i].wrapping_add(self.state[i]);
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        self.advance_counter(1);
        out
    }

    /// Computes four consecutive keystream blocks (counters `c..c+4`)
    /// into `out` without advancing the counter. Dispatches to the SSE2
    /// engine on x86_64 (where SSE2 is baseline); the portable four-lane
    /// scalar path serves every other architecture and the differential
    /// tests.
    #[inline]
    #[cfg_attr(all(target_arch = "x86_64", not(test)), allow(dead_code))]
    fn four_blocks(&self, out: &mut [u8; 4 * 64]) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86_64 baseline target, so the
        // required target feature is statically present.
        unsafe {
            sse2::four_blocks(&self.state, out)
        }
        #[cfg(not(target_arch = "x86_64"))]
        self.four_blocks_portable(out)
    }

    /// Portable four-lane block generation (the auto-vectorizable layout
    /// the SSE2 engine mirrors). Kept on every architecture so the
    /// differential tests can pin the SIMD engine against it.
    #[cfg_attr(target_arch = "x86_64", allow(dead_code))]
    fn four_blocks_portable(&self, out: &mut [u8; 4 * 64]) {
        let mut v = [[0u32; LANES]; 16];
        for (row, &word) in v.iter_mut().zip(self.state.iter()) {
            *row = [word; LANES];
        }
        for (l, counter) in v[12].iter_mut().enumerate() {
            *counter = self.state[12].wrapping_add(l as u32);
        }
        let init = v;
        for _ in 0..10 {
            quarter_round_x4(&mut v, 0, 4, 8, 12);
            quarter_round_x4(&mut v, 1, 5, 9, 13);
            quarter_round_x4(&mut v, 2, 6, 10, 14);
            quarter_round_x4(&mut v, 3, 7, 11, 15);
            quarter_round_x4(&mut v, 0, 5, 10, 15);
            quarter_round_x4(&mut v, 1, 6, 11, 12);
            quarter_round_x4(&mut v, 2, 7, 8, 13);
            quarter_round_x4(&mut v, 3, 4, 9, 14);
        }
        for l in 0..LANES {
            let base = l * 64;
            for i in 0..16 {
                let word = v[i][l].wrapping_add(init[i][l]);
                out[base + i * 4..base + i * 4 + 4].copy_from_slice(&word.to_le_bytes());
            }
        }
    }

    /// XORs the keystream into `data` in place (encrypts or decrypts).
    ///
    /// Multi-block fast path: 256-byte stretches run four interleaved
    /// block states through the rounds and XOR word-wise; the sub-256-byte
    /// tail falls back to single blocks so short records never pay for
    /// keystream they do not consume. Output is bit-identical to
    /// [`ChaCha20::apply_keystream_reference`] for every input length.
    pub fn apply_keystream(&mut self, data: &mut [u8]) {
        #[cfg(target_arch = "x86_64")]
        let data = if std::arch::is_x86_feature_detected!("avx2") {
            let mut chunks = data.chunks_exact_mut(8 * 64);
            for chunk in &mut chunks {
                // SAFETY: the AVX2 target feature was just detected.
                unsafe {
                    avx2::xor_eight_blocks(&self.state, chunk.try_into().expect("512-byte chunk"))
                }
                self.advance_counter(2 * LANES as u32);
            }
            chunks.into_remainder()
        } else {
            data
        };
        let mut chunks = data.chunks_exact_mut(4 * 64);
        for chunk in &mut chunks {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: SSE2 is part of the x86_64 baseline target, so the
            // required target feature is statically present.
            unsafe {
                sse2::xor_four_blocks(&self.state, chunk.try_into().expect("256-byte chunk"))
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                let mut ks = [0u8; 4 * 64];
                self.four_blocks(&mut ks);
                xor_words(chunk, &ks);
            }
            self.advance_counter(LANES as u32);
        }
        for chunk in chunks.into_remainder().chunks_mut(64) {
            let block = self.next_block();
            xor_words(chunk, &block);
        }
    }

    /// The original scalar keystream application — one block at a time,
    /// byte-wise XOR — retained as the A/B reference for the fast path.
    pub fn apply_keystream_reference(&mut self, data: &mut [u8]) {
        for chunk in data.chunks_mut(64) {
            let block = self.next_block();
            for (byte, k) in chunk.iter_mut().zip(block.iter()) {
                *byte ^= k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 7539 §2.3.2 block function test vector.
    #[test]
    fn rfc7539_block_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut c = ChaCha20::new(&key, &nonce, 1);
        let block = c.next_block();
        assert_eq!(
            hex(&block[..16]),
            "10f1e7e4d13b5915500fdd1fa32071c4"
        );
        assert_eq!(hex(&block[48..]), "b5129cd1de164eb9cbd083e8a2503c4e");
    }

    // RFC 7539 §2.4.2 encryption test vector (the "sunscreen" plaintext).
    #[test]
    fn rfc7539_encryption_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could \
offer you only one tip for the future, sunscreen would be it."
            .to_vec();
        ChaCha20::new(&key, &nonce, 1).apply_keystream(&mut data);
        assert_eq!(
            hex(&data[..32]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        );
        assert_eq!(hex(&data[data.len() - 8..]), "8eedf2785e42874d");
    }

    // RFC 7539 A.1 test vector #1: all-zero key and nonce, counter 0.
    #[test]
    fn rfc7539_a1_zero_vector() {
        let mut c = ChaCha20::new(&[0u8; 32], &[0u8; 12], 0);
        let block = c.next_block();
        assert_eq!(
            hex(&block[..32]),
            "76b8e0ada0f13d90405d6ae55386bd28bdd219b8a08ded1aa836efcc8b770dc7"
        );
    }

    // RFC 7539 A.1 test vector #2: counter 1.
    #[test]
    fn rfc7539_a1_counter_one() {
        let mut c = ChaCha20::new(&[0u8; 32], &[0u8; 12], 1);
        let block = c.next_block();
        assert_eq!(
            hex(&block[..16]),
            "9f07e7be5551387a98ba977c732d080d"
        );
    }

    #[test]
    fn keystream_counter_advances() {
        let mut c = ChaCha20::new(&[1u8; 32], &[2u8; 12], 0);
        let b0 = c.next_block();
        let b1 = c.next_block();
        assert_ne!(b0, b1);
        // Restarting at counter 1 reproduces the second block.
        let mut c1 = ChaCha20::new(&[1u8; 32], &[2u8; 12], 1);
        assert_eq!(c1.next_block(), b1);
    }

    #[test]
    fn roundtrip_arbitrary_lengths() {
        for len in [0usize, 1, 63, 64, 65, 200, 255, 256, 257, 1000] {
            let original: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
            let mut data = original.clone();
            ChaCha20::new(&[9u8; 32], &[3u8; 12], 5).apply_keystream(&mut data);
            ChaCha20::new(&[9u8; 32], &[3u8; 12], 5).apply_keystream(&mut data);
            assert_eq!(data, original, "len {len}");
        }
    }

    #[test]
    fn fast_path_matches_reference_for_every_length() {
        // Straddles the 512-byte (AVX2), 256-byte (SSE2/portable) and
        // 64-byte block boundaries and every mixed-tail combination.
        for len in 0..=1200usize {
            let original: Vec<u8> = (0..len).map(|i| (i.wrapping_mul(31) % 256) as u8).collect();
            let mut fast = original.clone();
            let mut slow = original.clone();
            ChaCha20::new(&[7u8; 32], &[4u8; 12], 3).apply_keystream(&mut fast);
            ChaCha20::new(&[7u8; 32], &[4u8; 12], 3).apply_keystream_reference(&mut slow);
            assert_eq!(fast, slow, "len {len}");
        }
    }

    #[test]
    fn fast_path_advances_counter_identically() {
        let mut fast = ChaCha20::new(&[8u8; 32], &[6u8; 12], 0);
        let mut slow = fast.clone();
        let mut a = vec![0u8; 999];
        let mut b = vec![0u8; 999];
        fast.apply_keystream(&mut a);
        slow.apply_keystream_reference(&mut b);
        assert_eq!(a, b);
        // Subsequent blocks agree: both engines consumed the same counters.
        assert_eq!(fast.next_block(), slow.next_block());
    }

    #[test]
    fn simd_engine_matches_portable_four_lane_path() {
        // Pins whichever engine `four_blocks` dispatches to (SSE2 on
        // x86_64) against the portable lane layout, including at the
        // counter's wrap boundary where lanes wrap individually.
        for counter in [0u32, 1, 77, u32::MAX - 3, u32::MAX] {
            let c = ChaCha20::new(&[9u8; 32], &[2u8; 12], counter);
            let mut dispatched = [0u8; 4 * 64];
            let mut portable = [0u8; 4 * 64];
            c.four_blocks(&mut dispatched);
            c.four_blocks_portable(&mut portable);
            assert_eq!(dispatched, portable, "counter {counter}");
        }
    }

    // The 32-bit counter is allowed to reach its last block...
    #[test]
    fn counter_may_reach_last_block() {
        let mut c = ChaCha20::new(&[1u8; 32], &[1u8; 12], u32::MAX - 4);
        let mut data = [0u8; 4 * 64]; // blocks MAX-4 .. MAX-1: no wrap
        c.apply_keystream(&mut data);
    }

    // ...but producing keystream past it must fail loudly in debug builds
    // instead of silently reusing the stream (>256 GiB single-nonce).
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "block counter wrapped")]
    fn counter_wrap_panics_in_debug() {
        let mut c = ChaCha20::new(&[1u8; 32], &[1u8; 12], u32::MAX);
        let _ = c.next_block(); // uses counter MAX, then wraps advancing
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "block counter wrapped")]
    fn multi_block_counter_wrap_panics_in_debug() {
        let mut c = ChaCha20::new(&[1u8; 32], &[1u8; 12], u32::MAX - 2);
        let mut data = [0u8; 4 * 64]; // needs counters MAX-2..MAX+1: wraps
        c.apply_keystream(&mut data);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "block counter wrapped")]
    fn eight_block_counter_wrap_panics_in_debug() {
        let mut c = ChaCha20::new(&[1u8; 32], &[1u8; 12], u32::MAX - 6);
        let mut data = [0u8; 8 * 64]; // needs counters MAX-6..MAX+1: wraps
        c.apply_keystream(&mut data);
    }
}
